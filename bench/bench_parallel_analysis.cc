// Parallel per-part analysis engine: end-to-end WFIT statement throughput
// at 1 / 2 / 8 analysis threads on the benchmark workload at full candidate
// scale (idxCnt = 40, stateCnt = 500), with interleaved DBA feedback.
//
// Three tuner configurations are measured:
//
//   WFA+ (paper partition)  — the paper's evaluation configuration
//                             (stateCnt 500); per-part tasks are tiny
//                             (~10 us), so this row mostly shows the
//                             dispatch overhead floor;
//   WFA+ (scaled-up parts)  — stateCnt 64k: per-part work-function state
//                             is 100x larger, the regime the parallel
//                             engine is built for (per-part relaxation +
//                             IBG tasks in the 0.1-1 ms range);
//   WFIT (auto)             — adds chooseCands (serial per statement), so
//                             the speedup shows the Amdahl effect of the
//                             candidate-maintenance stage.
//
// For every thread count the recommendation trajectory is recorded and
// compared bit-for-bit — the determinism contract of the engine. The
// statement-scoped what-if memo hit rate is reported alongside. Results are
// merged into BENCH_service.json for the perf trajectory.
//
// NOTE: wall-clock speedup requires actual cores; on a single-core host the
// trajectories still validate but the parallel runs will not be faster.
// Set WFIT_BENCH_FAST=1 for a scaled-down smoke run.
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/worker_pool.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "harness/reporting.h"

namespace wfit {
namespace {

using Clock = std::chrono::steady_clock;

struct RunStats {
  double seconds = 0.0;
  double stmts_per_minute = 0.0;
  uint64_t what_if_calls = 0;
  WhatIfCacheCounters cache;
  std::vector<IndexSet> trajectory;
};

/// Replays the workload through `tuner` with deterministic interleaved
/// feedback (every 150th statement the DBA vetoes the first recommended
/// index — identical across runs as long as trajectories are identical).
RunStats Replay(Tuner* tuner, const Workload& w,
                const WhatIfOptimizer& real_optimizer) {
  RunStats stats;
  stats.trajectory.reserve(w.size());
  uint64_t calls_before = real_optimizer.num_calls();
  Clock::time_point t0 = Clock::now();
  for (size_t i = 0; i < w.size(); ++i) {
    tuner->AnalyzeQuery(w[i]);
    if (i > 0 && i % 150 == 0) {
      IndexSet rec = tuner->Recommendation();
      if (!rec.empty()) {
        tuner->Feedback(IndexSet{}, IndexSet{*rec.begin()});
      }
    }
    stats.trajectory.push_back(tuner->Recommendation());
  }
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  stats.stmts_per_minute =
      60.0 * static_cast<double>(w.size()) / stats.seconds;
  stats.what_if_calls = real_optimizer.num_calls() - calls_before;
  stats.cache = tuner->WhatIfCache();
  return stats;
}

bool TrajectoriesMatch(const std::vector<IndexSet>& a,
                       const std::vector<IndexSet>& b, const char* label) {
  if (a.size() != b.size()) {
    std::cout << "  TRAJECTORY MISMATCH (" << label << "): length\n";
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::cout << "  TRAJECTORY MISMATCH (" << label << ") at statement "
                << i << "\n";
      return false;
    }
  }
  return true;
}

void PrintRow(size_t threads, const RunStats& r, const RunStats& base) {
  std::cout << std::setw(10) << threads << std::setw(12) << std::fixed
            << std::setprecision(2) << r.seconds << std::setw(16)
            << static_cast<uint64_t>(r.stmts_per_minute) << std::setw(10)
            << std::setprecision(2) << base.seconds / r.seconds
            << std::setw(14) << r.what_if_calls << std::setw(12)
            << std::setprecision(3) << r.cache.hit_rate() << "\n";
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  const bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  bench::BenchEnv env;
  const Workload& workload = env.workload();
  const std::vector<size_t> thread_counts = {1, 2, 8};

  std::cout << "parallel per-part analysis engine, " << workload.size()
            << " statements, hardware_concurrency = "
            << WorkerPool::DefaultThreads() << "\n";

  std::vector<std::pair<std::string, double>> json;
  bool all_identical = true;

  // --- WFA+ over offline fixed stable partitions (full candidate scale) -
  // Paper-scale parts (stateCnt 500) and scaled-up parts (stateCnt 64k):
  // the first shows the dispatch-overhead floor on tiny tasks, the second
  // the regime where per-part state dominates and the fan-out pays.
  struct FixedConfig {
    const char* label;
    const char* json_prefix;
    size_t state_cnt;
  };
  const std::vector<FixedConfig> fixed_configs = {
      {"WFA+ paper partition (stateCnt 500)", "parallel_wfa_plus", 500},
      {"WFA+ scaled-up parts (stateCnt 64k)", "parallel_wfa_plus_big",
       size_t{1} << 16},
  };
  for (const FixedConfig& config : fixed_configs) {
    harness::OfflinePartitionResult fixed =
        env.FixedPartition(config.state_cnt, /*idx_cnt=*/40);
    std::cout << "\n" << config.label << ": " << fixed.partition.size()
              << " parts, " << fixed.candidates.size() << " candidates\n";
    std::cout << std::setw(10) << "threads" << std::setw(12) << "wall s"
              << std::setw(16) << "stmts/min" << std::setw(10) << "speedup"
              << std::setw(14) << "what-if" << std::setw(12) << "hit rate"
              << "\n";
    RunStats base;
    for (size_t threads : thread_counts) {
      WfaPlus tuner(&env.pool(), &env.optimizer(), fixed.partition,
                    IndexSet{});
      std::unique_ptr<WorkerPool> pool;
      if (threads > 1) {
        // threads - 1 workers + the calling thread = `threads` total.
        pool = std::make_unique<WorkerPool>(threads - 1);
        tuner.SetAnalysisPool(pool.get());
      }
      RunStats r = Replay(&tuner, workload, env.optimizer());
      if (threads == 1) base = r;
      PrintRow(threads, r, base);
      all_identical =
          all_identical &&
          TrajectoriesMatch(base.trajectory, r.trajectory, config.label);
      json.emplace_back(std::string(config.json_prefix) +
                            "_stmts_per_min_t" + std::to_string(threads),
                        r.stmts_per_minute);
      if (threads == thread_counts.back()) {
        json.emplace_back(std::string(config.json_prefix) + "_speedup_t8",
                          base.seconds / r.seconds);
        json.emplace_back(std::string(config.json_prefix) + "_cache_hit_rate",
                          r.cache.hit_rate());
      }
    }
  }

  // --- Full WFIT (automatic candidate maintenance, full scale) ----------
  {
    WfitOptions options;  // paper defaults: idxCnt 40, stateCnt 500
    std::cout << "\nWFIT auto (idxCnt " << options.candidates.idx_cnt
              << ", stateCnt " << options.candidates.state_cnt << ")\n";
    std::cout << std::setw(10) << "threads" << std::setw(12) << "wall s"
              << std::setw(16) << "stmts/min" << std::setw(10) << "speedup"
              << std::setw(14) << "what-if" << std::setw(12) << "hit rate"
              << "\n";
    RunStats base;
    for (size_t threads : thread_counts) {
      Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
      std::unique_ptr<WorkerPool> pool;
      if (threads > 1) {
        // threads - 1 workers + the calling thread = `threads` total.
        pool = std::make_unique<WorkerPool>(threads - 1);
        tuner.SetAnalysisPool(pool.get());
      }
      RunStats r = Replay(&tuner, workload, env.optimizer());
      if (threads == 1) base = r;
      PrintRow(threads, r, base);
      all_identical = all_identical &&
                      TrajectoriesMatch(base.trajectory, r.trajectory, "WFIT");
      json.emplace_back(
          "parallel_wfit_stmts_per_min_t" + std::to_string(threads),
          r.stmts_per_minute);
      if (threads == thread_counts.back()) {
        json.emplace_back("parallel_wfit_speedup_t8",
                          base.seconds / r.seconds);
        json.emplace_back("parallel_wfit_cache_hit_rate",
                          r.cache.hit_rate());
      }
    }
  }

  std::cout << "\ntrajectories identical across thread counts: "
            << (all_identical ? "yes" : "NO") << "\n";
  json.emplace_back("parallel_trajectories_identical",
                    all_identical ? 1.0 : 0.0);
  json.emplace_back("parallel_bench_fast_mode", fast ? 1.0 : 0.0);
  harness::UpdateBenchJson("BENCH_service.json", json);
  std::cout << "wrote BENCH_service.json\n";
  return all_identical ? 0 : 1;
}
