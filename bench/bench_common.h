// Shared setup for the figure-reproduction benches: the benchmark catalog,
// the 8-phase workload trace (Sec. 6.1) and the offline fixed partitions.
// Every bench prints the series its figure plots; EXPERIMENTS.md records
// paper-vs-measured shapes.
#ifndef WFIT_BENCH_BENCH_COMMON_H_
#define WFIT_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "catalog/benchmark_schemas.h"
#include "harness/offline_tuning.h"
#include "optimizer/what_if.h"
#include "workload/benchmark_trace.h"

namespace wfit::bench {

/// Full evaluation environment. The defaults reproduce the paper's setup:
/// 8 phases x 200 statements over four datasets, idxCnt = 40,
/// histSize = 100. Set WFIT_BENCH_FAST=1 to run a scaled-down trace
/// (4 x 60) for smoke testing.
class BenchEnv {
 public:
  explicit BenchEnv(uint64_t seed = 20120402) {
    bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
    catalog_ = BuildBenchmarkCatalog(BenchmarkScale{fast ? 0.2 : 1.0});
    pool_ = std::make_unique<IndexPool>(&catalog_);
    model_ = std::make_unique<CostModel>(&catalog_, pool_.get());
    optimizer_ = std::make_unique<WhatIfOptimizer>(model_.get());

    TraceOptions trace_options;
    trace_options.seed = seed;
    if (fast) {
      trace_options.num_phases = 4;
      trace_options.statements_per_phase = 60;
    }
    trace_ = GenerateBenchmarkTrace(catalog_, trace_options);
    workload_ = ToWorkload(trace_);
  }

  harness::OfflinePartitionResult FixedPartition(size_t state_cnt,
                                                 size_t idx_cnt = 40) {
    harness::OfflineTuningOptions options;
    options.idx_cnt = idx_cnt;
    options.state_cnt = state_cnt;
    // The measurement pass is workload-only; share it across partitions.
    if (!offline_stats_) {
      offline_stats_ = std::make_unique<harness::OfflineStats>(
          harness::ComputeOfflineStats(workload_, pool_.get(),
                                       optimizer_.get(), options));
    }
    return harness::PartitionFromStats(*offline_stats_, options);
  }

  Catalog& catalog() { return catalog_; }
  IndexPool& pool() { return *pool_; }
  CostModel& model() { return *model_; }
  WhatIfOptimizer& optimizer() { return *optimizer_; }
  const Workload& workload() const { return workload_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  Catalog catalog_;
  std::unique_ptr<IndexPool> pool_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::vector<TraceEntry> trace_;
  Workload workload_;
  std::unique_ptr<harness::OfflineStats> offline_stats_;
};

}  // namespace wfit::bench

#endif  // WFIT_BENCH_BENCH_COMMON_H_
