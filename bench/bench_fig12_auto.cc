// Figure 12: automatic maintenance of the stable partition. FIXED uses the
// offline partition for the whole run; AUTO lets chooseCands mine
// candidates and repartition online (full WFIT). OPT stays restricted to
// the fixed candidate set, which is why AUTO can transiently exceed it in
// the read-mostly early phases.
#include <iostream>

#include "baselines/opt.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "harness/experiment.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  auto p500 = env.FixedPartition(500);
  OptimalPlanner planner(&env.pool(), &env.optimizer());
  OptimalSchedule opt =
      planner.Solve(env.workload(), p500.partition, IndexSet{});
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(opt.prefix_optimum, "OPT");

  std::vector<harness::ExperimentSeries> series;
  uint64_t repartitions = 0;
  size_t universe = 0;
  {
    WfitOptions options;
    options.name = "AUTO";
    options.candidates.idx_cnt = 40;
    options.candidates.state_cnt = 500;
    options.candidates.hist_size = 100;
    Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
    repartitions = tuner.RepartitionCount();
    universe = tuner.selector().universe().size();
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  "FIXED");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }

  harness::PrintRatioTable(
      std::cout, opt_series, series,
      "Figure 12: Automatic maintenance of stable partition");
  std::cout << "\nAUTO mined " << universe << " candidate indices and "
            << "changed the stable partition " << repartitions
            << " times\n";
  return 0;
}
