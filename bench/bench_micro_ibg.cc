// Micro-benchmark (ablation): IBG construction, cost lookups and doi
// computation as the per-statement candidate count grows — the knobs behind
// chooseCands' ibg_cap and the what-if call counts of Sec. 6.2. The custom
// main additionally merges a machine-readable `ibg_build_us_micro`
// (12-candidate build on this fixture's query) into BENCH_service.json so
// the enumeration core's perf trajectory is tracked across PRs
// (`ibg_build_us` proper is emitted by bench_wfit_hotpath at selector
// scale).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "harness/reporting.h"
#include "ibg/ibg.h"
#include "ibg/interactions.h"
#include "optimizer/index_extractor.h"
#include "workload/binder.h"

namespace {

using namespace wfit;

struct IbgFixture {
  IbgFixture() : env(7), binder(&env.catalog()) {
    auto bound = binder.BindSql(
        "SELECT count(*) FROM tpch.lineitem "
        "WHERE l_shipdate BETWEEN 9000 AND 9060 "
        "AND l_quantity BETWEEN 1 AND 4 "
        "AND l_extendedprice BETWEEN 1000 AND 2500 "
        "AND l_discount = 0.05");
    WFIT_CHECK(bound.ok(), bound.status().ToString());
    query = std::move(bound).value();
    // Intern a pool of candidate indices on the query's columns.
    ExtractorOptions opts;
    opts.max_candidates_per_statement = 24;
    all_candidates = ExtractIndices(query, &env.pool(), opts);
  }

  bench::BenchEnv env;
  Binder binder;
  Statement query;
  std::vector<IndexId> all_candidates;
};

IbgFixture& Fixture() {
  static IbgFixture fixture;
  return fixture;
}

void BM_IbgBuild(benchmark::State& state) {
  IbgFixture& f = Fixture();
  size_t n = std::min<size_t>(static_cast<size_t>(state.range(0)),
                              f.all_candidates.size());
  std::vector<IndexId> cands(f.all_candidates.begin(),
                             f.all_candidates.begin() + n);
  uint64_t calls = 0;
  for (auto _ : state) {
    IndexBenefitGraph ibg(f.query, f.env.optimizer(), cands);
    calls += ibg.build_calls();
    benchmark::DoNotOptimize(ibg.num_nodes());
  }
  state.counters["whatif_calls"] = benchmark::Counter(
      static_cast<double>(calls), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IbgBuild)->DenseRange(2, 12, 2);

void BM_IbgCostLookup(benchmark::State& state) {
  IbgFixture& f = Fixture();
  size_t n = std::min<size_t>(8, f.all_candidates.size());
  std::vector<IndexId> cands(f.all_candidates.begin(),
                             f.all_candidates.begin() + n);
  IndexBenefitGraph ibg(f.query, f.env.optimizer(), cands);
  Mask mask = 0;
  for (auto _ : state) {
    mask = (mask + 1) & ((Mask{1} << n) - 1);
    benchmark::DoNotOptimize(ibg.CostOf(mask));
  }
}
BENCHMARK(BM_IbgCostLookup);

void BM_ComputeInteractions(benchmark::State& state) {
  IbgFixture& f = Fixture();
  size_t n = std::min<size_t>(static_cast<size_t>(state.range(0)),
                              f.all_candidates.size());
  std::vector<IndexId> cands(f.all_candidates.begin(),
                             f.all_candidates.begin() + n);
  IndexBenefitGraph ibg(f.query, f.env.optimizer(), cands);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeInteractions(ibg).size());
  }
}
BENCHMARK(BM_ComputeInteractions)->DenseRange(2, 12, 2);

void BM_WhatIfOptimize(benchmark::State& state) {
  IbgFixture& f = Fixture();
  IndexSet config = IndexSet::FromVector(f.all_candidates);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.env.optimizer().Cost(f.query, config));
  }
}
BENCHMARK(BM_WhatIfOptimize);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Machine-readable perf trajectory: mean 12-candidate build latency.
  IbgFixture& f = Fixture();
  size_t n = std::min<size_t>(12, f.all_candidates.size());
  std::vector<IndexId> cands(f.all_candidates.begin(),
                             f.all_candidates.begin() + n);
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 200;
  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < kReps; ++i) {
    IndexBenefitGraph ibg(f.query, f.env.optimizer(), cands);
    benchmark::DoNotOptimize(ibg.num_nodes());
  }
  double us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
      kReps;
  wfit::harness::UpdateBenchJson("BENCH_service.json",
                                 {{"ibg_build_us_micro", us}});
  return 0;
}
