// Figure 11: effect of delayed DBA responses. The DBA requests and accepts
// the current recommendation every T statements (V_T); accepting casts the
// implicit votes derived from the adopted changes, which "renews the lease"
// of the configuration. T = 1 grants WFIT full autonomy.
#include <iostream>

#include "baselines/opt.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "harness/experiment.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  auto p500 = env.FixedPartition(500);
  OptimalPlanner planner(&env.pool(), &env.optimizer());
  OptimalSchedule opt =
      planner.Solve(env.workload(), p500.partition, IndexSet{});
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(opt.prefix_optimum, "OPT");

  std::vector<harness::ExperimentSeries> series;
  for (size_t lag : {size_t{1}, size_t{25}, size_t{50}, size_t{75}}) {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  lag == 1 ? "WFIT" : "LAG " + std::to_string(lag));
    harness::ExperimentOptions options;
    options.lag = lag;
    series.push_back(driver.Run(&tuner, IndexSet{}, {}, options));
  }

  harness::PrintRatioTable(std::cout, opt_series, series,
                           "Figure 11: Effect of delayed responses");
  return 0;
}
