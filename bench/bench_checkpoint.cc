// Durability overhead bench: snapshot write/restore latency and size for a
// warmed-up WFIT state, delta-snapshot size reduction, write-ahead journal
// append/fsync throughput, journal compaction reclaim, group-commit fsync
// coalescing, cold-tenant archival throughput, and end-to-end recovery
// (snapshot load + journal suffix replay). Merges the machine-readable
// numbers into BENCH_service.json.
//
// WFIT_BENCH_FAST=1 runs the scaled-down trace for CI smoke.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "persist/archive.h"
#include "persist/delta.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "persist/tenant_tree.h"
#include "service/fsync_batcher.h"
#include "service/tuner_service.h"

namespace {

using namespace wfit;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::BenchEnv env;
  const bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  const size_t warmup = fast ? 150 : 600;
  const size_t suffix = fast ? 50 : 200;

  const fs::path dir =
      fs::temp_directory_path() /
      ("wfit_bench_checkpoint_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  WfitOptions options;  // paper defaults: idxCnt 40, stateCnt 500
  Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
  const Workload& w = env.workload();
  std::cout << "warming up WFIT over " << warmup << " statements...\n";
  for (size_t i = 0; i < warmup && i < w.size(); ++i) {
    tuner.AnalyzeQuery(w[i]);
  }

  // --- snapshot write ---------------------------------------------------
  persist::SnapshotMeta meta;
  meta.analyzed = warmup;
  const int kWriteReps = 5;
  double write_ms = 0.0;
  uint64_t snapshot_bytes = 0;
  for (int rep = 0; rep < kWriteReps; ++rep) {
    Clock::time_point start = Clock::now();
    auto bytes = persist::WriteSnapshot(dir.string(), tuner, env.pool(), meta);
    write_ms += MillisSince(start);
    WFIT_CHECK(bytes.ok(), bytes.status().ToString());
    snapshot_bytes = *bytes;
  }
  write_ms /= kWriteReps;
  std::cout << "snapshot write: " << write_ms << " ms, " << snapshot_bytes
            << " bytes (" << tuner.TotalStates() << " work-function states, "
            << env.pool().size() << " interned indices)\n";

  // --- snapshot restore -------------------------------------------------
  double read_ms = 0.0;
  {
    bench::BenchEnv fresh_env;
    const int kReadReps = 5;
    for (int rep = 0; rep < kReadReps; ++rep) {
      Wfit restored(&fresh_env.pool(), &fresh_env.optimizer(), IndexSet{},
                    options);
      Clock::time_point start = Clock::now();
      persist::SnapshotLoadResult loaded = persist::LoadLatestSnapshot(
          dir.string(), &restored, &fresh_env.pool());
      read_ms += MillisSince(start);
      WFIT_CHECK(loaded.loaded, "bench snapshot must load");
    }
    read_ms /= kReadReps;
  }
  std::cout << "snapshot restore: " << read_ms << " ms\n";

  // --- delta snapshots --------------------------------------------------
  // Full checkpoint, then one delta per analyzed statement: the steady
  // state of a tenant checkpointing on cadence. The reduction is the
  // headline — per-statement churn touches a handful of selector windows
  // and one work-function column, not the whole state.
  const fs::path delta_dir = dir / "delta";
  fs::create_directories(delta_dir);
  uint64_t delta_full_bytes = 0;
  uint64_t delta_bytes = 0;  // smallest steady-state delta observed
  size_t extra_analyzed = 0;
  {
    persist::DeltaCheckpointer cp;
    persist::SnapshotMeta dmeta;
    dmeta.analyzed = warmup;
    auto full = cp.Write(delta_dir.string(), tuner, env.pool(), dmeta);
    WFIT_CHECK(full.ok(), full.status().ToString());
    WFIT_CHECK(full->wrote_full, "first checkpoint must be full");
    delta_full_bytes = full->bytes;
    const size_t kDeltaReps = 16;
    for (size_t k = 0; k < kDeltaReps; ++k) {
      const size_t seq = warmup + extra_analyzed;
      if (seq >= w.size()) break;
      tuner.AnalyzeQuery(w[seq]);
      ++extra_analyzed;
      dmeta.analyzed = warmup + extra_analyzed;
      auto r = cp.Write(delta_dir.string(), tuner, env.pool(), dmeta);
      WFIT_CHECK(r.ok(), r.status().ToString());
      if (!r->wrote_full &&
          (delta_bytes == 0 || r->bytes < delta_bytes)) {
        delta_bytes = r->bytes;
      }
    }
  }
  const double delta_reduction =
      delta_bytes > 0
          ? static_cast<double>(delta_full_bytes) /
                static_cast<double>(delta_bytes)
          : 0.0;
  std::cout << "delta snapshot: full " << delta_full_bytes << " B, delta "
            << delta_bytes << " B = " << delta_reduction << "x reduction\n";

  // --- journal append + fsync throughput --------------------------------
  const size_t kJournalRecords = fast ? 2000 : 20000;
  const size_t kSyncBatch = 32;
  const std::string journal_path = (dir / "bench_journal.wfj").string();
  double journal_ms = 0.0;
  {
    persist::JournalWriter writer;
    WFIT_CHECK(writer.Open(journal_path, 0, 0).ok(), "journal open");
    Clock::time_point start = Clock::now();
    for (size_t i = 0; i < kJournalRecords; ++i) {
      WFIT_CHECK(writer.AppendStatement(i, w[i % w.size()]).ok(),
                 "journal append");
      if ((i + 1) % kSyncBatch == 0) {
        WFIT_CHECK(writer.Sync().ok(), "journal sync");
      }
    }
    WFIT_CHECK(writer.Sync().ok(), "journal sync");
    journal_ms = MillisSince(start);
  }
  const double journal_recs_per_s =
      static_cast<double>(kJournalRecords) / (journal_ms / 1000.0);
  std::cout << "journal: " << kJournalRecords << " records in " << journal_ms
            << " ms (fsync every " << kSyncBatch << ") = "
            << journal_recs_per_s / 1000.0 << "k records/s\n";

  // --- journal compaction -----------------------------------------------
  // Drop the half already covered by checkpoints: the steady-state rewrite
  // a cadenced full checkpoint triggers.
  double compact_ms = 0.0;
  uint64_t journal_compacted_bytes = 0;
  {
    Clock::time_point start = Clock::now();
    auto compacted =
        persist::CompactJournal(journal_path, kJournalRecords / 2);
    compact_ms = MillisSince(start);
    WFIT_CHECK(compacted.ok(), compacted.status().ToString());
    journal_compacted_bytes = compacted->old_bytes - compacted->new_bytes;
    std::cout << "journal compaction: " << compacted->dropped_records
              << " records / " << journal_compacted_bytes
              << " B reclaimed in " << compact_ms << " ms\n";
  }

  // --- group commit -----------------------------------------------------
  // One shard = one journal descriptor syncing once per 5-statement
  // analysis batch. Plain: one fdatasync per shard per batch. Batched:
  // every sync routed through one shared FsyncBatcher window.
  double group_commit_fsyncs_per_kstmt = 0.0;
  double group_commit_fsync_reduction = 0.0;
  {
    const size_t kShards = 16;
    const size_t kBatchesPerShard = fast ? 30 : 100;
    const size_t kStmtsPerBatch = 5;
    service::FsyncBatcher::Options bopts;
    bopts.window_us = 2000;  // wide window: every shard lands in each cycle
    service::FsyncBatcher batcher(bopts);
    std::vector<int> fds;
    for (size_t s = 0; s < kShards; ++s) {
      const std::string path =
          (dir / ("gc_shard_" + std::to_string(s))).string();
      int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
      WFIT_CHECK(fd >= 0, "open group-commit scratch file");
      fds.push_back(fd);
    }
    std::vector<std::thread> threads;
    for (size_t s = 0; s < kShards; ++s) {
      threads.emplace_back([&, s] {
        const char record[64] = {0};
        for (size_t b = 0; b < kBatchesPerShard; ++b) {
          WFIT_CHECK(::write(fds[s], record, sizeof(record)) ==
                         static_cast<ssize_t>(sizeof(record)),
                     "group-commit write");
          WFIT_CHECK(batcher.SyncRequired(fds[s]).ok(),
                     "group-commit sync");
        }
      });
    }
    for (auto& t : threads) t.join();
    service::FsyncBatcher::Stats stats = batcher.GetStats();
    for (int fd : fds) {
      batcher.Forget(fd);
      ::close(fd);
    }
    const double total_stmts =
        static_cast<double>(kShards * kBatchesPerShard * kStmtsPerBatch);
    const double plain_fsyncs =
        static_cast<double>(kShards * kBatchesPerShard);
    group_commit_fsyncs_per_kstmt =
        static_cast<double>(stats.sync_calls) / (total_stmts / 1000.0);
    group_commit_fsync_reduction =
        plain_fsyncs / static_cast<double>(std::max<uint64_t>(
                           stats.sync_calls, 1));
    std::cout << "group commit: " << plain_fsyncs << " shard syncs in "
              << stats.cycles << " cycles / " << stats.sync_calls
              << " kernel flushes (" << stats.syncfs_calls
              << " syncfs) = " << group_commit_fsync_reduction
              << "x fewer fsyncs, " << group_commit_fsyncs_per_kstmt
              << " fsyncs/kstmt\n";
  }

  // --- cold-tenant archival ---------------------------------------------
  // Pack + stage + segment-flush a checkpoint tree per tenant — the cost
  // ArchiveColdTenants pays per cold tenant. Tenant count is capped by a
  // disk budget so the full trace stays bounded.
  double archive_pack_ms = 0.0;
  {
    auto probe = persist::PackCheckpointDir(delta_dir.string());
    WFIT_CHECK(probe.ok(), probe.status().ToString());
    const uint64_t kDiskBudget = 256ull * 1024 * 1024;
    const size_t target = fast ? 300 : 2000;
    const size_t tenants = std::max<size_t>(
        1, std::min<size_t>(target, kDiskBudget / probe->size()));
    const fs::path archive_root = dir / "archive_bench";
    fs::create_directories(archive_root);
    auto opened = persist::ArchiveStore::Open(archive_root.string());
    WFIT_CHECK(opened.ok(), opened.status().ToString());
    persist::ArchiveStore store = std::move(opened).value();
    Clock::time_point start = Clock::now();
    for (size_t t = 0; t < tenants; ++t) {
      auto pack = persist::PackCheckpointDir(delta_dir.string());
      WFIT_CHECK(pack.ok(), pack.status().ToString());
      WFIT_CHECK(
          store.Stage("tenant-" + std::to_string(t), std::move(*pack)).ok(),
          "archive stage");
    }
    WFIT_CHECK(store.Flush().ok(), "archive flush");
    archive_pack_ms = MillisSince(start) / static_cast<double>(tenants);
    persist::ArchiveStats stats = store.GetStats();
    std::cout << "archival: " << tenants << " tenants ("
              << probe->size() / 1024 << " KiB packs) into "
              << stats.segments << " segments = " << archive_pack_ms
              << " ms/tenant\n";
    fs::remove_all(archive_root);
  }

  // --- end-to-end recovery (snapshot + journal suffix replay) -----------
  double recover_ms = 0.0;
  uint64_t replayed = 0;
  {
    // Continue the original run for `suffix` statements through a durable
    // service (journaling them past the snapshot), crash-style shutdown,
    // then time a fresh Open.
    fs::remove(journal_path);  // the throughput journal is not part of it
    service::TunerServiceOptions sopts;
    sopts.checkpoint_dir = dir.string();
    // Keep the warmup snapshot the newest: no cadence/shutdown snapshots.
    sopts.checkpoint_every_statements = 1u << 30;
    sopts.checkpoint_on_shutdown = false;
    auto moved = std::make_unique<Wfit>(std::move(tuner));
    auto service = service::TunerService::Open(std::move(moved), &env.pool(),
                                               sopts);
    WFIT_CHECK(service.ok(), service.status().ToString());
    (*service)->Start();
    for (size_t seq = warmup; seq < warmup + suffix && seq < w.size();
         ++seq) {
      (*service)->SubmitAt(seq, w[seq]);
    }
    (*service)->Shutdown();

    bench::BenchEnv fresh_env;
    Wfit restored(&fresh_env.pool(), &fresh_env.optimizer(), IndexSet{},
                  options);
    service::RecoveryStats stats;
    Clock::time_point start = Clock::now();
    auto reopened = service::TunerService::Open(
        std::make_unique<Wfit>(std::move(restored)), &fresh_env.pool(),
        sopts, &stats);
    recover_ms = MillisSince(start);
    WFIT_CHECK(reopened.ok(), reopened.status().ToString());
    replayed = stats.replayed_statements;
    std::cout << "recovery: snapshot@" << stats.snapshot_analyzed << " + "
              << replayed << " replayed statements in " << recover_ms
              << " ms\n";
  }

  harness::UpdateBenchJson(
      "BENCH_service.json",
      {
          {"checkpoint_write_ms", write_ms},
          {"checkpoint_restore_ms", read_ms},
          {"checkpoint_snapshot_bytes", static_cast<double>(snapshot_bytes)},
          {"checkpoint_delta_bytes", static_cast<double>(delta_bytes)},
          {"checkpoint_delta_reduction", delta_reduction},
          {"journal_append_records_per_s", journal_recs_per_s},
          {"journal_compacted_bytes",
           static_cast<double>(journal_compacted_bytes)},
          {"journal_compact_ms", compact_ms},
          {"group_commit_fsyncs_per_kstmt", group_commit_fsyncs_per_kstmt},
          {"group_commit_fsync_reduction", group_commit_fsync_reduction},
          {"archive_pack_ms", archive_pack_ms},
          {"recovery_open_ms", recover_ms},
          {"recovery_replayed_statements", static_cast<double>(replayed)},
      });
  std::cout << "merged durability numbers into BENCH_service.json\n";

  fs::remove_all(dir);
  return 0;
}
