// Durability overhead bench: snapshot write/restore latency and size for a
// warmed-up WFIT state, write-ahead journal append/fsync throughput, and
// end-to-end recovery (snapshot load + journal suffix replay). Merges the
// machine-readable numbers into BENCH_service.json.
//
// WFIT_BENCH_FAST=1 runs the scaled-down trace for CI smoke.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "service/tuner_service.h"

namespace {

using namespace wfit;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::BenchEnv env;
  const bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  const size_t warmup = fast ? 150 : 600;
  const size_t suffix = fast ? 50 : 200;

  const fs::path dir =
      fs::temp_directory_path() /
      ("wfit_bench_checkpoint_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  WfitOptions options;  // paper defaults: idxCnt 40, stateCnt 500
  Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
  const Workload& w = env.workload();
  std::cout << "warming up WFIT over " << warmup << " statements...\n";
  for (size_t i = 0; i < warmup && i < w.size(); ++i) {
    tuner.AnalyzeQuery(w[i]);
  }

  // --- snapshot write ---------------------------------------------------
  persist::SnapshotMeta meta;
  meta.analyzed = warmup;
  const int kWriteReps = 5;
  double write_ms = 0.0;
  uint64_t snapshot_bytes = 0;
  for (int rep = 0; rep < kWriteReps; ++rep) {
    Clock::time_point start = Clock::now();
    auto bytes = persist::WriteSnapshot(dir.string(), tuner, env.pool(), meta);
    write_ms += MillisSince(start);
    WFIT_CHECK(bytes.ok(), bytes.status().ToString());
    snapshot_bytes = *bytes;
  }
  write_ms /= kWriteReps;
  std::cout << "snapshot write: " << write_ms << " ms, " << snapshot_bytes
            << " bytes (" << tuner.TotalStates() << " work-function states, "
            << env.pool().size() << " interned indices)\n";

  // --- snapshot restore -------------------------------------------------
  double read_ms = 0.0;
  {
    bench::BenchEnv fresh_env;
    const int kReadReps = 5;
    for (int rep = 0; rep < kReadReps; ++rep) {
      Wfit restored(&fresh_env.pool(), &fresh_env.optimizer(), IndexSet{},
                    options);
      Clock::time_point start = Clock::now();
      persist::SnapshotLoadResult loaded = persist::LoadLatestSnapshot(
          dir.string(), &restored, &fresh_env.pool());
      read_ms += MillisSince(start);
      WFIT_CHECK(loaded.loaded, "bench snapshot must load");
    }
    read_ms /= kReadReps;
  }
  std::cout << "snapshot restore: " << read_ms << " ms\n";

  // --- journal append + fsync throughput --------------------------------
  const size_t kJournalRecords = fast ? 2000 : 20000;
  const size_t kSyncBatch = 32;
  const std::string journal_path = (dir / "bench_journal.wfj").string();
  double journal_ms = 0.0;
  {
    persist::JournalWriter writer;
    WFIT_CHECK(writer.Open(journal_path, 0, 0).ok(), "journal open");
    Clock::time_point start = Clock::now();
    for (size_t i = 0; i < kJournalRecords; ++i) {
      WFIT_CHECK(writer.AppendStatement(i, w[i % w.size()]).ok(),
                 "journal append");
      if ((i + 1) % kSyncBatch == 0) {
        WFIT_CHECK(writer.Sync().ok(), "journal sync");
      }
    }
    WFIT_CHECK(writer.Sync().ok(), "journal sync");
    journal_ms = MillisSince(start);
  }
  const double journal_recs_per_s =
      static_cast<double>(kJournalRecords) / (journal_ms / 1000.0);
  std::cout << "journal: " << kJournalRecords << " records in " << journal_ms
            << " ms (fsync every " << kSyncBatch << ") = "
            << journal_recs_per_s / 1000.0 << "k records/s\n";

  // --- end-to-end recovery (snapshot + journal suffix replay) -----------
  double recover_ms = 0.0;
  uint64_t replayed = 0;
  {
    // Continue the original run for `suffix` statements through a durable
    // service (journaling them past the snapshot), crash-style shutdown,
    // then time a fresh Open.
    fs::remove(journal_path);  // the throughput journal is not part of it
    service::TunerServiceOptions sopts;
    sopts.checkpoint_dir = dir.string();
    // Keep the warmup snapshot the newest: no cadence/shutdown snapshots.
    sopts.checkpoint_every_statements = 1u << 30;
    sopts.checkpoint_on_shutdown = false;
    auto moved = std::make_unique<Wfit>(std::move(tuner));
    auto service = service::TunerService::Open(std::move(moved), &env.pool(),
                                               sopts);
    WFIT_CHECK(service.ok(), service.status().ToString());
    (*service)->Start();
    for (size_t seq = warmup; seq < warmup + suffix && seq < w.size();
         ++seq) {
      (*service)->SubmitAt(seq, w[seq]);
    }
    (*service)->Shutdown();

    bench::BenchEnv fresh_env;
    Wfit restored(&fresh_env.pool(), &fresh_env.optimizer(), IndexSet{},
                  options);
    service::RecoveryStats stats;
    Clock::time_point start = Clock::now();
    auto reopened = service::TunerService::Open(
        std::make_unique<Wfit>(std::move(restored)), &fresh_env.pool(),
        sopts, &stats);
    recover_ms = MillisSince(start);
    WFIT_CHECK(reopened.ok(), reopened.status().ToString());
    replayed = stats.replayed_statements;
    std::cout << "recovery: snapshot@" << stats.snapshot_analyzed << " + "
              << replayed << " replayed statements in " << recover_ms
              << " ms\n";
  }

  harness::UpdateBenchJson(
      "BENCH_service.json",
      {
          {"checkpoint_write_ms", write_ms},
          {"checkpoint_restore_ms", read_ms},
          {"checkpoint_snapshot_bytes", static_cast<double>(snapshot_bytes)},
          {"journal_append_records_per_s", journal_recs_per_s},
          {"recovery_open_ms", recover_ms},
          {"recovery_replayed_statements", static_cast<double>(replayed)},
      });
  std::cout << "merged durability numbers into BENCH_service.json\n";

  fs::remove_all(dir);
  return 0;
}
