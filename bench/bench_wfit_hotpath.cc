// The WFIT hot path end to end: chooseCands (statement-wide IBG, stats
// refresh, topIndices, choosePartition) plus the per-part WFA step, at full
// candidate scale (idxCnt 40, stateCnt 500) on the paper's benchmark trace.
//
// Reported series (merged into BENCH_service.json):
//
//   wfit_auto_stmts_per_min       — single-threaded WFIT-auto throughput on
//                                   the benchmark trace; THE number to
//                                   compare across PRs (PR 2 baseline:
//                                   ~9.4k/min in the same container);
//   wfit_auto_stmts_per_min_t8    — same with an 8-wide analysis pool
//                                   (parallel IBG + per-part fan-out; reads
//                                   as ~1x on a single-core host);
//   ibg_build_us                  — mean statement-wide IBG build latency
//                                   at selector scale;
//   whatif_cross_stmt_hit_rate    — cross-statement cache hit rate on a
//                                   repeated-template workload (the OLTP /
//                                   prepared-statement regime), plus the
//                                   cached-vs-uncached speedup there.
//
// Determinism gates (process exits nonzero on violation): trajectories
// bit-for-bit identical at 1/2/8 analysis threads AND with the
// cross-statement cache disabled vs enabled.
//
// Set WFIT_BENCH_FAST=1 for a scaled-down smoke run.
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/worker_pool.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "obs/trace.h"
#include "optimizer/index_extractor.h"

namespace wfit {
namespace {

using Clock = std::chrono::steady_clock;

struct RunStats {
  double seconds = 0.0;
  double stmts_per_minute = 0.0;
  uint64_t what_if_calls = 0;
  WhatIfCacheCounters cache;
  std::vector<IndexSet> trajectory;
};

/// Replays the workload with deterministic interleaved feedback (identical
/// cadence to bench_parallel_analysis, so the stmts/min series is
/// comparable across PRs).
RunStats Replay(Tuner* tuner, const Workload& w,
                const WhatIfOptimizer& real_optimizer) {
  RunStats stats;
  stats.trajectory.reserve(w.size());
  uint64_t calls_before = real_optimizer.num_calls();
  Clock::time_point t0 = Clock::now();
  for (size_t i = 0; i < w.size(); ++i) {
    tuner->AnalyzeQuery(w[i]);
    if (i > 0 && i % 150 == 0) {
      IndexSet rec = tuner->Recommendation();
      if (!rec.empty()) {
        tuner->Feedback(IndexSet{}, IndexSet{*rec.begin()});
      }
    }
    stats.trajectory.push_back(tuner->Recommendation());
  }
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  stats.stmts_per_minute =
      60.0 * static_cast<double>(w.size()) / stats.seconds;
  stats.what_if_calls = real_optimizer.num_calls() - calls_before;
  stats.cache = tuner->WhatIfCache();
  return stats;
}

bool Check(bool ok, const char* what) {
  if (!ok) std::cout << "DETERMINISM VIOLATION: " << what << "\n";
  return ok;
}

bool SameTrajectory(const std::vector<IndexSet>& a,
                    const std::vector<IndexSet>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  const bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  bench::BenchEnv env;
  const Workload& workload = env.workload();
  bool ok = true;
  std::vector<std::pair<std::string, double>> json;

  std::cout << "WFIT hot path, " << workload.size()
            << " statements (benchmark trace), hardware_concurrency = "
            << WorkerPool::DefaultThreads() << "\n\n";

  // --- WFIT auto on the benchmark trace, 1/2/8 analysis threads ---------
  {
    WfitOptions options;  // paper defaults: idxCnt 40, stateCnt 500
    std::cout << "WFIT auto (idxCnt " << options.candidates.idx_cnt
              << ", stateCnt " << options.candidates.state_cnt << ")\n"
              << std::setw(10) << "threads" << std::setw(12) << "wall s"
              << std::setw(16) << "stmts/min" << std::setw(14) << "what-if"
              << std::setw(12) << "hit rate" << std::setw(12) << "cross"
              << "\n";
    RunStats base;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
      std::unique_ptr<WorkerPool> pool;
      if (threads > 1) {
        pool = std::make_unique<WorkerPool>(threads - 1);
        tuner.SetAnalysisPool(pool.get());
      }
      RunStats r = Replay(&tuner, workload, env.optimizer());
      std::cout << std::setw(10) << threads << std::setw(12) << std::fixed
                << std::setprecision(2) << r.seconds << std::setw(16)
                << static_cast<uint64_t>(r.stmts_per_minute) << std::setw(14)
                << r.what_if_calls << std::setw(12) << std::setprecision(3)
                << r.cache.hit_rate() << std::setw(12)
                << r.cache.cross_hit_rate() << "\n";
      if (threads == 1) {
        base = r;
        json.emplace_back("wfit_auto_stmts_per_min", r.stmts_per_minute);
      } else {
        ok &= Check(SameTrajectory(base.trajectory, r.trajectory),
                    "thread-count trajectory mismatch");
        json.emplace_back(
            "wfit_auto_stmts_per_min_t" + std::to_string(threads),
            r.stmts_per_minute);
      }
    }

    // Cross-statement cache disabled: identical trajectory, slower.
    WfitOptions no_cache = options;
    no_cache.cross_cache.max_templates = 0;
    Wfit uncached(&env.pool(), &env.optimizer(), IndexSet{}, no_cache);
    RunStats r = Replay(&uncached, workload, env.optimizer());
    std::cout << std::setw(10) << "no-cache" << std::setw(12) << std::fixed
              << std::setprecision(2) << r.seconds << std::setw(16)
              << static_cast<uint64_t>(r.stmts_per_minute) << std::setw(14)
              << r.what_if_calls << std::setw(12) << std::setprecision(3)
              << r.cache.hit_rate() << std::setw(12) << 0.0 << "\n";
    ok &= Check(SameTrajectory(base.trajectory, r.trajectory),
                "cold/warm cross-statement cache trajectory mismatch");
  }

  // --- Statement-wide IBG build latency at selector scale ---------------
  {
    ExtractorOptions xopts;
    xopts.max_candidates_per_statement = 24;
    std::vector<IndexId> cands;
    // The first query that yields a wide candidate slate.
    const Statement* q = nullptr;
    for (const Statement& stmt : workload) {
      std::vector<IndexId> extracted = ExtractIndices(stmt, &env.pool(), xopts);
      if (extracted.size() >= 8 &&
          (q == nullptr || extracted.size() > cands.size())) {
        q = &stmt;
        cands = std::move(extracted);
      }
      if (cands.size() >= 12) break;
    }
    WFIT_CHECK(q != nullptr,
               "benchmark trace yielded no statement with >= 8 candidates");
    const int reps = fast ? 50 : 300;
    Clock::time_point t0 = Clock::now();
    uint64_t nodes = 0;
    for (int i = 0; i < reps; ++i) {
      IndexBenefitGraph ibg(*q, env.optimizer(), cands, /*max_nodes=*/150);
      nodes += ibg.num_nodes();
    }
    double us = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                    .count() /
                reps;
    std::cout << "\nIBG build (" << cands.size() << " candidates, "
              << nodes / static_cast<uint64_t>(reps)
              << " nodes): " << std::fixed << std::setprecision(1) << us
              << " us\n";
    json.emplace_back("ibg_build_us", us);
  }

  // --- Cross-statement cache on a repeated-template workload ------------
  {
    // The OLTP regime: a fixed set of templates cycling (prepared
    // statements). Sampled from the benchmark trace for realistic shapes.
    const size_t num_templates = 24;
    const size_t repeats = fast ? 20 : 60;
    Workload templated;
    templated.reserve(num_templates * repeats);
    for (size_t r = 0; r < repeats; ++r) {
      for (size_t t = 0; t < num_templates && t < workload.size(); ++t) {
        templated.push_back(workload[t]);
      }
    }
    WfitOptions options;
    Wfit cached(&env.pool(), &env.optimizer(), IndexSet{}, options);
    RunStats with_cache = Replay(&cached, templated, env.optimizer());
    WfitOptions no_cache = options;
    no_cache.cross_cache.max_templates = 0;
    Wfit uncached(&env.pool(), &env.optimizer(), IndexSet{}, no_cache);
    RunStats without = Replay(&uncached, templated, env.optimizer());
    ok &= Check(SameTrajectory(with_cache.trajectory, without.trajectory),
                "templated-workload cache trajectory mismatch");
    std::cout << "\nrepeated templates (" << num_templates << " x " << repeats
              << "): cached " << static_cast<uint64_t>(
                     with_cache.stmts_per_minute)
              << " stmts/min vs uncached "
              << static_cast<uint64_t>(without.stmts_per_minute)
              << " (speedup " << std::setprecision(2)
              << with_cache.stmts_per_minute / without.stmts_per_minute
              << "), cross hit rate " << std::setprecision(3)
              << with_cache.cache.cross_hit_rate() << ", real what-if "
              << with_cache.what_if_calls << " vs " << without.what_if_calls
              << "\n";
    json.emplace_back("whatif_cross_stmt_hit_rate",
                      with_cache.cache.cross_hit_rate());
    json.emplace_back("whatif_cross_stmt_speedup",
                      with_cache.stmts_per_minute / without.stmts_per_minute);
  }

  // --- Tracing overhead: the same single-threaded replay with runtime
  // tracing off vs on (spans recorded into the per-thread rings). Gated
  // at <= 5% by tools/check_bench.py; the trajectories must not move.
  {
    WfitOptions options;
    Wfit off_tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
    RunStats off = Replay(&off_tuner, workload, env.optimizer());
    obs::SetTracingEnabled(true);
    Wfit on_tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
    RunStats on = Replay(&on_tuner, workload, env.optimizer());
    obs::SetTracingEnabled(false);
    const obs::TraceCounters traced = obs::CollectTraceCounters();
    obs::ClearTraceForTest();
    ok &= Check(SameTrajectory(off.trajectory, on.trajectory),
                "tracing-enabled trajectory mismatch");
    const double overhead_pct =
        off.seconds > 0.0 ? (on.seconds - off.seconds) / off.seconds * 100.0
                          : 0.0;
    std::cout << "\ntracing overhead: off " << std::fixed
              << std::setprecision(2) << off.seconds << "s vs on "
              << on.seconds << "s (" << std::showpos << overhead_pct
              << "%" << std::noshowpos << ", " << traced.recorded
              << " spans recorded)\n";
    json.emplace_back("tracing_overhead_pct", overhead_pct);
  }

  json.emplace_back("wfit_hotpath_trajectories_identical", ok ? 1.0 : 0.0);
  json.emplace_back("wfit_hotpath_fast_mode", fast ? 1.0 : 0.0);
  harness::UpdateBenchJson("BENCH_service.json", json);
  std::cout << "\ntrajectory determinism (threads x cache): "
            << (ok ? "yes" : "NO") << "\nwrote BENCH_service.json\n";
  return ok ? 0 : 1;
}
