// Multi-tenant router throughput and fairness: N independent databases
// behind one TenantRouter (shared drain + analysis pool), each streaming
// the same volume of statements from its own producer. Measures
//
//   tenants_aggregate_stmts_per_min — fleet-wide sustained analysis rate;
//   tenants_fairness_min_max_ratio  — min/max per-tenant progress sampled
//                                     when the fleet is half done (1.0 =
//                                     perfectly fair round-robin);
//   tenants_single_stmts_per_min    — the same total volume through one
//                                     tenant, for the sharding overhead.
//
// Numbers merge into BENCH_service.json (the perf trajectory artifact) and
// the bench exits nonzero if fairness collapses (< 0.2) or any tenant
// starves. Set WFIT_BENCH_FAST=1 for a scaled-down smoke run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "service/tenant_router.h"

namespace wfit {
namespace {

using Clock = std::chrono::steady_clock;

/// One tenant's private tuning environment over the shared read-only
/// benchmark catalog: its own pool, cost model and optimizer, so shards
/// are as independent as real per-database deployments.
struct TenantEnv {
  explicit TenantEnv(Catalog* catalog) {
    pool = std::make_unique<IndexPool>(catalog);
    model = std::make_unique<CostModel>(catalog, pool.get());
    optimizer = std::make_unique<WhatIfOptimizer>(model.get());
  }
  std::unique_ptr<IndexPool> pool;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<WhatIfOptimizer> optimizer;
};

WfitOptions LeanOptions() {
  // The service-throughput candidate budget (cf. WFIT-100 in the paper):
  // sustained ingest with a small monitored set.
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 100;
  options.candidates.hist_size = 50;
  options.candidates.ibg_cap = 12;
  options.candidates.ibg_node_budget = 60;
  return options;
}

std::string TenantName(size_t t) { return "db-" + std::to_string(t); }

struct RunResult {
  double wall_seconds = 0.0;
  double aggregate_stmts_per_min = 0.0;
  double fairness_min_max_ratio = 1.0;
  service::RouterMetricsSnapshot metrics;
};

/// Streams `per_tenant` statements into each of `tenants` shards from one
/// producer per tenant; samples per-tenant progress at the halfway point
/// for the fairness spread.
RunResult RunRouter(Catalog* catalog, const Workload& workload,
                    size_t tenants, size_t per_tenant) {
  std::vector<std::unique_ptr<TenantEnv>> envs;
  for (size_t t = 0; t < tenants; ++t) {
    envs.push_back(std::make_unique<TenantEnv>(catalog));
  }
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 512;
  options.shard.max_batch = 32;
  options.analysis_threads = 1;
  options.drain_threads = std::min<size_t>(WorkerPool::DefaultThreads(), 4);
  service::TenantRouter router(
      [&](const std::string& id) {
        size_t t = std::strtoull(id.substr(3).c_str(), nullptr, 10);
        service::TenantTuner made;
        made.tuner = std::make_unique<Wfit>(envs[t]->pool.get(),
                                            envs[t]->optimizer.get(),
                                            IndexSet{}, LeanOptions());
        return made;
      },
      options);
  router.Start();

  RunResult result;
  const uint64_t half_total = tenants * per_tenant / 2;
  std::atomic<bool> done{false};
  // Fairness probe: the min/max per-tenant analyzed count the moment the
  // fleet crosses 50% — a starved tenant drags the ratio toward 0.
  std::thread prober([&] {
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t total = 0;
      std::vector<uint64_t> counts(tenants);
      for (size_t t = 0; t < tenants; ++t) {
        counts[t] = router.analyzed(TenantName(t));
        total += counts[t];
      }
      if (total >= half_total) {
        uint64_t lo = *std::min_element(counts.begin(), counts.end());
        uint64_t hi = *std::max_element(counts.begin(), counts.end());
        result.fairness_min_max_ratio =
            hi == 0 ? 1.0
                    : static_cast<double>(lo) / static_cast<double>(hi);
        return;
      }
      std::this_thread::yield();
    }
  });

  Clock::time_point start = Clock::now();
  std::vector<std::thread> producers;
  for (size_t t = 0; t < tenants; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < per_tenant; ++i) {
        router.Submit(TenantName(t), workload[i % workload.size()]);
      }
    });
  }
  for (auto& p : producers) p.join();
  for (size_t t = 0; t < tenants; ++t) {
    router.WaitUntilAnalyzed(TenantName(t), per_tenant);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  done.store(true);
  prober.join();
  router.Shutdown();
  result.aggregate_stmts_per_min =
      60.0 * static_cast<double>(tenants * per_tenant) / result.wall_seconds;
  result.metrics = router.Metrics();
  return result;
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  bench::BenchEnv env;
  const size_t tenants = fast ? 4 : 8;
  const size_t per_tenant = fast ? 400 : 1500;

  RunResult multi =
      RunRouter(&env.catalog(), env.workload(), tenants, per_tenant);
  harness::PrintRouterMetrics(
      std::cout,
      std::to_string(tenants) + " tenants x " +
          std::to_string(per_tenant) + " statements",
      multi.metrics);
  std::cout << "  wall time            " << multi.wall_seconds << " s\n"
            << "  aggregate ingest     "
            << static_cast<uint64_t>(multi.aggregate_stmts_per_min)
            << " statements/min\n"
            << "  fairness (min/max)   " << multi.fairness_min_max_ratio
            << " at 50% fleet progress\n";

  // The same total volume through ONE shard: what sharding costs.
  RunResult single =
      RunRouter(&env.catalog(), env.workload(), 1, tenants * per_tenant);
  std::cout << "\nsingle tenant, same total volume:\n"
            << "  wall time            " << single.wall_seconds << " s\n"
            << "  sustained ingest     "
            << static_cast<uint64_t>(single.aggregate_stmts_per_min)
            << " statements/min\n";

  bool every_tenant_finished = true;
  for (const service::TenantMetricsEntry& t : multi.metrics.tenants) {
    if (t.service.statements_analyzed != per_tenant) {
      every_tenant_finished = false;
      std::cout << "  WARNING: " << t.id << " analyzed "
                << t.service.statements_analyzed << " != " << per_tenant
                << "\n";
    }
  }
  bool fair = multi.fairness_min_max_ratio >= 0.2;
  std::cout << "  all tenants complete " << (every_tenant_finished ? "yes" : "NO")
            << "\n  fairness >= 0.2      " << (fair ? "yes" : "NO") << "\n";

  harness::UpdateBenchJson(
      "BENCH_service.json",
      {
          {"tenants", static_cast<double>(tenants)},
          {"tenants_aggregate_stmts_per_min", multi.aggregate_stmts_per_min},
          {"tenants_fairness_min_max_ratio", multi.fairness_min_max_ratio},
          {"tenants_single_stmts_per_min", single.aggregate_stmts_per_min},
      });
  std::cout << "wrote BENCH_service.json\n";
  return (every_tenant_finished && fair) ? 0 : 1;
}
