// Multi-tenant router throughput and fairness: N independent databases
// behind one TenantRouter (shared drain + analysis pool), each streaming
// the same volume of statements from its own producer. Measures
//
//   tenants_aggregate_stmts_per_min — fleet-wide sustained analysis rate;
//   tenants_fairness_min_max_ratio  — min/max per-tenant progress sampled
//                                     when the fleet is half done (1.0 =
//                                     perfectly fair round-robin);
//   tenants_single_stmts_per_min    — the same total volume through one
//                                     tenant, for the sharding overhead.
//
// Numbers merge into BENCH_service.json (the perf trajectory artifact) and
// the bench exits nonzero if fairness collapses (< 0.2) or any tenant
// starves. Set WFIT_BENCH_FAST=1 for a scaled-down smoke run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "obs/stages.h"
#include "service/tenant_router.h"
#include "service/tuner_service.h"

namespace wfit {
namespace {

using Clock = std::chrono::steady_clock;

/// One tenant's private tuning environment over the shared read-only
/// benchmark catalog: its own pool, cost model and optimizer, so shards
/// are as independent as real per-database deployments.
struct TenantEnv {
  explicit TenantEnv(Catalog* catalog) {
    pool = std::make_unique<IndexPool>(catalog);
    model = std::make_unique<CostModel>(catalog, pool.get());
    optimizer = std::make_unique<WhatIfOptimizer>(model.get());
  }
  std::unique_ptr<IndexPool> pool;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<WhatIfOptimizer> optimizer;
};

WfitOptions LeanOptions() {
  // The service-throughput candidate budget (cf. WFIT-100 in the paper):
  // sustained ingest with a small monitored set.
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 100;
  options.candidates.hist_size = 50;
  options.candidates.ibg_cap = 12;
  options.candidates.ibg_node_budget = 60;
  return options;
}

std::string TenantName(size_t t) { return "db-" + std::to_string(t); }

struct RunResult {
  double wall_seconds = 0.0;
  double aggregate_stmts_per_min = 0.0;
  double fairness_min_max_ratio = 1.0;
  service::RouterMetricsSnapshot metrics;
};

/// Streams `per_tenant` statements into each of `tenants` shards from one
/// producer per tenant; samples per-tenant progress at the halfway point
/// for the fairness spread.
RunResult RunRouter(Catalog* catalog, const Workload& workload,
                    size_t tenants, size_t per_tenant) {
  std::vector<std::unique_ptr<TenantEnv>> envs;
  for (size_t t = 0; t < tenants; ++t) {
    envs.push_back(std::make_unique<TenantEnv>(catalog));
  }
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 512;
  options.shard.max_batch = 32;
  options.analysis_threads = 1;
  options.drain_threads = std::min<size_t>(WorkerPool::DefaultThreads(), 4);
  service::TenantRouter router(
      [&](const std::string& id) {
        size_t t = std::strtoull(id.substr(3).c_str(), nullptr, 10);
        service::TenantTuner made;
        made.tuner = std::make_unique<Wfit>(envs[t]->pool.get(),
                                            envs[t]->optimizer.get(),
                                            IndexSet{}, LeanOptions());
        return made;
      },
      options);
  router.Start();

  RunResult result;
  const uint64_t half_total = tenants * per_tenant / 2;
  std::atomic<bool> done{false};
  // Fairness probe: the min/max per-tenant analyzed count the moment the
  // fleet crosses 50% — a starved tenant drags the ratio toward 0.
  std::thread prober([&] {
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t total = 0;
      std::vector<uint64_t> counts(tenants);
      for (size_t t = 0; t < tenants; ++t) {
        counts[t] = router.analyzed(TenantName(t));
        total += counts[t];
      }
      if (total >= half_total) {
        uint64_t lo = *std::min_element(counts.begin(), counts.end());
        uint64_t hi = *std::max_element(counts.begin(), counts.end());
        result.fairness_min_max_ratio =
            hi == 0 ? 1.0
                    : static_cast<double>(lo) / static_cast<double>(hi);
        return;
      }
      std::this_thread::yield();
    }
  });

  Clock::time_point start = Clock::now();
  std::vector<std::thread> producers;
  for (size_t t = 0; t < tenants; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < per_tenant; ++i) {
        router.Submit(TenantName(t), workload[i % workload.size()]);
      }
    });
  }
  for (auto& p : producers) p.join();
  for (size_t t = 0; t < tenants; ++t) {
    router.WaitUntilAnalyzed(TenantName(t), per_tenant);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  done.store(true);
  prober.join();
  router.Shutdown();
  result.aggregate_stmts_per_min =
      60.0 * static_cast<double>(tenants * per_tenant) / result.wall_seconds;
  result.metrics = router.Metrics();
  return result;
}

/// QoS skew: one heavy tenant (DRR weight 4, 8x the volume) beside three
/// light tenants. The invariant under test: the flood must not push a
/// light tenant's queue-wait p99 past what weighted scheduling promises —
/// the light p99 is the gated number.
struct SkewResult {
  double light_p99_ms = 0.0;
  double heavy_p99_ms = 0.0;
  bool lights_complete = true;
};

SkewResult RunSkewed(Catalog* catalog, const Workload& workload,
                     size_t light_per_tenant) {
  constexpr size_t kTenants = 4;  // db-0 heavy, db-1..3 light
  const size_t heavy_volume = 8 * light_per_tenant;
  std::vector<std::unique_ptr<TenantEnv>> envs;
  for (size_t t = 0; t < kTenants; ++t) {
    envs.push_back(std::make_unique<TenantEnv>(catalog));
  }
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 256;
  options.shard.max_batch = 16;
  options.analysis_threads = 1;
  options.drain_threads = 2;  // fewer drains than tenants: contention real
  options.tenant_qos[TenantName(0)] = service::TenantQos{.weight = 4.0};
  service::TenantRouter router(
      [&](const std::string& id) {
        size_t t = std::strtoull(id.substr(3).c_str(), nullptr, 10);
        service::TenantTuner made;
        made.tuner = std::make_unique<Wfit>(envs[t]->pool.get(),
                                            envs[t]->optimizer.get(),
                                            IndexSet{}, LeanOptions());
        return made;
      },
      options);
  router.Start();

  std::vector<std::thread> producers;
  producers.emplace_back([&] {
    for (size_t i = 0; i < heavy_volume; ++i) {
      router.Submit(TenantName(0), workload[i % workload.size()]);
    }
  });
  for (size_t t = 1; t < kTenants; ++t) {
    producers.emplace_back([&, t] {
      for (size_t i = 0; i < light_per_tenant; ++i) {
        router.Submit(TenantName(t), workload[i % workload.size()]);
      }
    });
  }
  for (auto& p : producers) p.join();
  router.WaitUntilAnalyzed(TenantName(0), heavy_volume);
  for (size_t t = 1; t < kTenants; ++t) {
    router.WaitUntilAnalyzed(TenantName(t), light_per_tenant);
  }
  router.Shutdown();

  SkewResult result;
  for (const service::TenantMetricsEntry& e : router.Metrics().tenants) {
    const double p99_ms =
        e.service.StageQuantileUpperUs(obs::Stage::kQueueWait, 0.99) / 1000.0;
    if (e.id == TenantName(0)) {
      result.heavy_p99_ms = p99_ms;
    } else {
      result.light_p99_ms = std::max(result.light_p99_ms, p99_ms);
      if (e.service.statements_analyzed != light_per_tenant) {
        result.lights_complete = false;
      }
    }
  }
  return result;
}

/// 10x spike into an overload-enabled shard, producers on 2-second
/// deadline submits: the server may shed (kBusy) but a producer call can
/// never block past its deadline. Recovery = seconds from the end of the
/// spike until the controller walks back to Normal under trickle load.
struct SpikeResult {
  double recovery_s = 0.0;
  double max_submit_block_s = 0.0;
  uint64_t ingress_shed = 0;
  uint64_t transitions = 0;
  bool recovered = false;
};

SpikeResult RunSpike(Catalog* catalog, const Workload& workload,
                     size_t spike_statements) {
  TenantEnv env(catalog);
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 64;  // 10x spike overwhelms this
  options.shard.max_batch = 8;
  options.shard.overload.enabled = true;
  options.shard.overload.sample_floor = 0.25;
  options.analysis_threads = 1;
  options.drain_threads = 1;
  service::TenantRouter router(
      [&](const std::string&) {
        service::TenantTuner made;
        made.tuner = std::make_unique<Wfit>(env.pool.get(),
                                            env.optimizer.get(), IndexSet{},
                                            LeanOptions());
        return made;
      },
      options);
  router.Start();
  const std::string id = TenantName(0);

  SpikeResult result;
  auto deadline_submit = [&](const Statement& stmt) {
    const Clock::time_point begin = Clock::now();
    const service::PushAtResult r = router.SubmitWithDeadline(
        id, stmt, begin + std::chrono::seconds(2));
    const double blocked =
        std::chrono::duration<double>(Clock::now() - begin).count();
    result.max_submit_block_s =
        std::max(result.max_submit_block_s, blocked);
    if (r == service::PushAtResult::kWouldBlock) ++result.ingress_shed;
  };

  // The spike: 10x queue capacity as fast as the producer can push.
  for (size_t i = 0; i < spike_statements; ++i) {
    deadline_submit(workload[i % workload.size()]);
  }
  const Clock::time_point spike_end = Clock::now();

  // Trickle load while the backlog drains; the controller needs batches
  // flowing to observe the fill dropping and walk back to Normal.
  bool recovered = false;
  for (size_t i = 0; i < 20000; ++i) {
    if (router.Metrics().aggregate.overload_mode == 0 &&
        router.Metrics().aggregate.queue_depth == 0) {
      recovered = true;
      break;
    }
    deadline_submit(workload[i % workload.size()]);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  result.recovered = recovered;
  result.recovery_s =
      std::chrono::duration<double>(Clock::now() - spike_end).count();
  router.Shutdown();
  result.transitions = router.Metrics().aggregate.overload_transitions;
  return result;
}

/// The honesty control: with the controller armed but never tripped (rate
/// stays 1.0), the recommendation trajectory must be bit-identical to a
/// run with the controller compiled out of the decision path.
size_t RateOneDivergence(Catalog* catalog, const Workload& workload,
                         size_t statements) {
  std::vector<IndexSet> histories[2];
  for (int enabled = 0; enabled < 2; ++enabled) {
    TenantEnv env(catalog);
    service::TunerServiceOptions options;
    // Worst-case fill stays under 1/8 — far below the high watermark, so
    // the armed controller never leaves Normal and the rate stays 1.0.
    options.queue_capacity = 8 * statements;
    options.max_batch = 16;
    options.analysis_threads = 1;
    options.record_history = true;
    options.overload.enabled = enabled == 1;
    service::TunerService svc(
        std::make_unique<Wfit>(env.pool.get(), env.optimizer.get(),
                               IndexSet{}, LeanOptions()),
        options);
    svc.StartDetached(nullptr);
    for (size_t i = 0; i < statements; ++i) {
      svc.SubmitAt(i, workload[i % workload.size()]);
    }
    while (svc.ProcessBatch() > 0) {
    }
    svc.Shutdown();
    histories[enabled] = svc.History();
  }
  size_t divergence = 0;
  for (size_t i = 0; i < histories[0].size(); ++i) {
    if (i >= histories[1].size() || histories[0][i] != histories[1][i]) {
      ++divergence;
    }
  }
  return divergence;
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  bench::BenchEnv env;
  const size_t tenants = fast ? 4 : 8;
  const size_t per_tenant = fast ? 400 : 1500;

  RunResult multi =
      RunRouter(&env.catalog(), env.workload(), tenants, per_tenant);
  harness::PrintRouterMetrics(
      std::cout,
      std::to_string(tenants) + " tenants x " +
          std::to_string(per_tenant) + " statements",
      multi.metrics);
  std::cout << "  wall time            " << multi.wall_seconds << " s\n"
            << "  aggregate ingest     "
            << static_cast<uint64_t>(multi.aggregate_stmts_per_min)
            << " statements/min\n"
            << "  fairness (min/max)   " << multi.fairness_min_max_ratio
            << " at 50% fleet progress\n";

  // The same total volume through ONE shard: what sharding costs.
  RunResult single =
      RunRouter(&env.catalog(), env.workload(), 1, tenants * per_tenant);
  std::cout << "\nsingle tenant, same total volume:\n"
            << "  wall time            " << single.wall_seconds << " s\n"
            << "  sustained ingest     "
            << static_cast<uint64_t>(single.aggregate_stmts_per_min)
            << " statements/min\n";

  bool every_tenant_finished = true;
  for (const service::TenantMetricsEntry& t : multi.metrics.tenants) {
    if (t.service.statements_analyzed != per_tenant) {
      every_tenant_finished = false;
      std::cout << "  WARNING: " << t.id << " analyzed "
                << t.service.statements_analyzed << " != " << per_tenant
                << "\n";
    }
  }
  bool fair = multi.fairness_min_max_ratio >= 0.2;
  std::cout << "  all tenants complete " << (every_tenant_finished ? "yes" : "NO")
            << "\n  fairness >= 0.2      " << (fair ? "yes" : "NO") << "\n";

  // QoS skew: a weighted heavy flood beside protected light tenants.
  SkewResult skew =
      RunSkewed(&env.catalog(), env.workload(), fast ? 200 : 600);
  std::cout << "\nskewed load (heavy weight 4, 8x volume):\n"
            << "  light tenant p99     " << skew.light_p99_ms
            << " ms queue wait\n"
            << "  heavy tenant p99     " << skew.heavy_p99_ms
            << " ms queue wait\n"
            << "  lights complete      "
            << (skew.lights_complete ? "yes" : "NO") << "\n";

  // 10x spike into an overload-enabled shard with 2s deadline submits.
  SpikeResult spike =
      RunSpike(&env.catalog(), env.workload(), fast ? 640 : 1280);
  std::cout << "\noverload spike (10x queue capacity):\n"
            << "  recovery             " << spike.recovery_s << " s\n"
            << "  max submit block     " << spike.max_submit_block_s
            << " s\n"
            << "  ingress shed (kBusy) " << spike.ingress_shed << "\n"
            << "  controller epochs    " << spike.transitions << "\n"
            << "  recovered to Normal  " << (spike.recovered ? "yes" : "NO")
            << "\n";

  size_t divergence =
      RateOneDivergence(&env.catalog(), env.workload(), fast ? 120 : 300);
  std::cout << "  rate-1.0 divergence  " << divergence
            << " statements (must be 0)\n";

  bool producers_bounded = spike.max_submit_block_s < 2.5;
  bool honest = divergence == 0;

  harness::UpdateBenchJson(
      "BENCH_service.json",
      {
          {"tenants", static_cast<double>(tenants)},
          {"tenants_aggregate_stmts_per_min", multi.aggregate_stmts_per_min},
          {"tenants_fairness_min_max_ratio", multi.fairness_min_max_ratio},
          {"tenants_single_stmts_per_min", single.aggregate_stmts_per_min},
          {"qos_light_tenant_p99_ms", skew.light_p99_ms},
          {"overload_recovery_s", spike.recovery_s},
      });
  std::cout << "wrote BENCH_service.json\n";
  return (every_tenant_finished && fair && skew.lights_complete &&
          spike.recovered && producers_bounded && honest)
             ? 0
             : 1;
}
