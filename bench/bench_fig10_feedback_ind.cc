// Figure 10: effect of feedback under the index-independence assumption.
// WFIT-IND ignores all interactions (singleton parts), so its internal
// statistics are inaccurate — good DBA votes (GOOD-IND) must still lift
// its recommendations substantially.
#include <iostream>

#include "baselines/opt.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "harness/experiment.h"
#include "harness/feedback_gen.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  auto p500 = env.FixedPartition(500);
  OptimalPlanner planner(&env.pool(), &env.optimizer());
  OptimalSchedule opt =
      planner.Solve(env.workload(), p500.partition, IndexSet{});
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(opt.prefix_optimum, "OPT");
  std::vector<FeedbackEvent> v_good = GoodFeedback(opt, IndexSet{});

  std::vector<harness::ExperimentSeries> series;
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.singleton_partition,
                  IndexSet{}, "GOOD-IND");
    series.push_back(driver.Run(&tuner, IndexSet{}, v_good));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.singleton_partition,
                  IndexSet{}, "WFIT-IND");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }

  harness::PrintRatioTable(
      std::cout, opt_series, series,
      "Figure 10: Feedback under independence assumption");
  return 0;
}
