// Figure 9: effect of DBA feedback. VGOOD casts the votes a prescient DBA
// would derive from OPT's schedule; VBAD mirrors them. Both run against the
// no-feedback WFIT baseline on the stateCnt = 500 fixed partition.
#include <iostream>

#include "baselines/opt.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "harness/experiment.h"
#include "harness/feedback_gen.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  auto p500 = env.FixedPartition(500);
  OptimalPlanner planner(&env.pool(), &env.optimizer());
  OptimalSchedule opt =
      planner.Solve(env.workload(), p500.partition, IndexSet{});
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(opt.prefix_optimum, "OPT");

  std::vector<FeedbackEvent> v_good = GoodFeedback(opt, IndexSet{});
  std::vector<FeedbackEvent> v_bad = BadFeedback(opt, IndexSet{});
  std::cout << "Feedback events: " << v_good.size() << "\n";

  std::vector<harness::ExperimentSeries> series;
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  "GOOD");
    series.push_back(driver.Run(&tuner, IndexSet{}, v_good));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  "WFIT");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  "BAD");
    series.push_back(driver.Run(&tuner, IndexSet{}, v_bad));
  }

  harness::PrintRatioTable(std::cout, opt_series, series,
                           "Figure 9: Effect of DBA's feedback");
  return 0;
}
