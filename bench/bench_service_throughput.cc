// Online tuning service throughput: sustained ingest rate (statements per
// minute) and snapshot-read latency under concurrent producers, with the
// queue bound enforced throughout. Two configurations are measured:
//
//   pipeline-only  — a no-op tuner isolates the queue + worker + snapshot
//                    machinery (the service's intrinsic ceiling);
//   WFIT serial    — end-to-end analysis on the benchmark workload with
//                    analysis_threads = 1;
//   WFIT parallel  — same tuner with the per-part analysis fanned out
//                    across the service-owned worker pool.
//
// Headline numbers (sustained stmts/min, what-if cache hit rate) are merged
// into BENCH_service.json for the perf trajectory.
// Set WFIT_BENCH_FAST=1 for a scaled-down smoke run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/worker_pool.h"
#include "core/wfit.h"
#include "harness/reporting.h"
#include "service/tuner_service.h"

namespace wfit {
namespace {

using Clock = std::chrono::steady_clock;

/// Isolates the service machinery: analysis is free, so the measured rate
/// is the ingestion pipeline's own ceiling.
class NullTuner : public Tuner {
 public:
  void AnalyzeQuery(const Statement& q) override { (void)q; }
  IndexSet Recommendation() const override { return IndexSet{}; }
  std::string name() const override { return "null"; }
};

struct RunResult {
  double wall_seconds = 0.0;
  double statements_per_minute = 0.0;
  std::vector<double> read_latency_us;  // sorted
  service::MetricsSnapshot metrics;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[i];
}

/// Streams `total` statements (the workload, cycled) from `producers`
/// threads while one reader hammers Recommendation().
RunResult RunService(std::unique_ptr<Tuner> tuner, const Workload& workload,
                     size_t total, int producers, size_t queue_capacity,
                     size_t analysis_threads = 1) {
  service::TunerServiceOptions options;
  options.queue_capacity = queue_capacity;
  options.max_batch = 32;
  options.analysis_threads = analysis_threads;
  service::TunerService service(std::move(tuner), options);
  service.Start();

  std::atomic<bool> done{false};
  RunResult result;
  std::thread reader([&] {
    // Sample continuously; cap retained samples to bound memory.
    while (!done.load(std::memory_order_relaxed)) {
      Clock::time_point t0 = Clock::now();
      auto snap = service.Recommendation();
      double us = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                      .count();
      if (snap != nullptr && result.read_latency_us.size() < 2000000) {
        result.read_latency_us.push_back(us);
      }
      std::this_thread::yield();
    }
  });

  Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Each producer streams its strided share of the cycled workload.
      for (size_t i = p; i < total; i += producers) {
        service.Submit(workload[i % workload.size()]);
      }
    });
  }
  for (auto& t : threads) t.join();
  service.Shutdown();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  done.store(true);
  reader.join();

  result.statements_per_minute =
      60.0 * static_cast<double>(total) / result.wall_seconds;
  result.metrics = service.Metrics();
  std::sort(result.read_latency_us.begin(), result.read_latency_us.end());
  return result;
}

void Report(const std::string& title, const RunResult& r, size_t total) {
  wfit::harness::PrintServiceMetrics(std::cout, title, r.metrics);
  std::cout << "  wall time            " << r.wall_seconds << " s\n"
            << "  sustained ingest     "
            << static_cast<uint64_t>(r.statements_per_minute)
            << " statements/min\n"
            << "  snapshot reads       " << r.read_latency_us.size()
            << "  (p50 " << Percentile(r.read_latency_us, 0.5) << " us, p99 "
            << Percentile(r.read_latency_us, 0.99) << " us, max "
            << (r.read_latency_us.empty() ? 0.0 : r.read_latency_us.back())
            << " us)\n";
  bool bounded = r.metrics.queue_high_water <= r.metrics.queue_capacity;
  bool fast_enough = r.statements_per_minute >= 100000.0;
  std::cout << "  queue bounded        " << (bounded ? "yes" : "NO") << "\n"
            << "  >=100k stmts/min     " << (fast_enough ? "yes" : "NO")
            << "\n";
  if (r.metrics.statements_analyzed != total) {
    std::cout << "  WARNING: analyzed " << r.metrics.statements_analyzed
              << " != submitted " << total << "\n";
  }
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  bench::BenchEnv env;
  const Workload& workload = env.workload();
  const int producers = 4;

  std::vector<std::pair<std::string, double>> json;

  {
    size_t total = fast ? 50000 : 400000;
    auto r = RunService(std::make_unique<NullTuner>(), workload, total,
                        producers, /*queue_capacity=*/4096);
    Report("service pipeline only (null tuner), " + std::to_string(total) +
               " statements, " + std::to_string(producers) + " producers",
           r, total);
    json.emplace_back("service_pipeline_stmts_per_min",
                      r.statements_per_minute);
  }

  {
    size_t total = fast ? 2000 : 8000;
    // Lean candidate budget: the service targets sustained ingest, so the
    // tuner runs with a small monitored set (cf. WFIT-100 in the paper).
    WfitOptions options;
    options.candidates.idx_cnt = 8;
    options.candidates.state_cnt = 100;
    options.candidates.hist_size = 50;
    options.candidates.ibg_cap = 12;
    options.candidates.ibg_node_budget = 60;

    auto serial_tuner = std::make_unique<Wfit>(&env.pool(), &env.optimizer(),
                                               IndexSet{}, options);
    auto serial = RunService(std::move(serial_tuner), workload, total,
                             producers, /*queue_capacity=*/1024,
                             /*analysis_threads=*/1);
    Report("WFIT end-to-end (serial analysis), " + std::to_string(total) +
               " statements, " + std::to_string(producers) + " producers",
           serial, total);

    const size_t threads = WorkerPool::DefaultThreads();
    auto parallel_tuner = std::make_unique<Wfit>(
        &env.pool(), &env.optimizer(), IndexSet{}, options);
    auto parallel = RunService(std::move(parallel_tuner), workload, total,
                               producers, /*queue_capacity=*/1024,
                               /*analysis_threads=*/threads);
    Report("WFIT end-to-end (parallel analysis, " + std::to_string(threads) +
               " threads), " + std::to_string(total) + " statements, " +
               std::to_string(producers) + " producers",
           parallel, total);

    json.emplace_back("service_wfit_serial_stmts_per_min",
                      serial.statements_per_minute);
    json.emplace_back("service_wfit_parallel_stmts_per_min",
                      parallel.statements_per_minute);
    json.emplace_back("service_wfit_parallel_threads",
                      static_cast<double>(threads));
    json.emplace_back("what_if_cache_hit_rate",
                      parallel.metrics.what_if_cache_hit_rate());
    json.emplace_back("what_if_cache_hits",
                      static_cast<double>(parallel.metrics.what_if_cache_hits));
    json.emplace_back(
        "what_if_cache_misses",
        static_cast<double>(parallel.metrics.what_if_cache_misses));
  }

  harness::UpdateBenchJson("BENCH_service.json", json);
  std::cout << "wrote BENCH_service.json\n";
  return 0;
}
