// Distributed control-plane benchmarks: the RPC stack's raw round-trip
// rate, aggregate tuning throughput of one node vs a two-node fleet
// (same tenants, same statements, routed over loopback TCP), and the
// wall-clock cost of a LIVE tenant migration — whose stitched trajectory
// is verified bit-for-bit against a dedicated single-router reference
// (the bench exits nonzero on divergence, so the perf artifact can never
// hide a correctness regression). Measures
//
//   net_rpc_round_trips_per_sec       — kPing round trips, one client;
//   cluster_single_node_stmts_per_min — T tenants through 1 node;
//   cluster_two_node_stmts_per_min    — same tenants split across 2;
//   cluster_scaleup_2node             — two-node / single-node ratio
//                                       (read on multi-core hardware;
//                                       a single-core host pins it ~1);
//   migration_handoff_ms              — evict + pack + ship + seed;
//   cluster_migration_trajectory_identical — 1.0 iff bit-identical;
//   failover_takeover_ms              — SIGKILL-equivalent crash of the
//                                       owner to the first successful
//                                       client RPC against the survivor
//                                       (lease expiry + adoption);
//   cluster_failover_trajectory_identical — 1.0 iff the survivor's
//                                       resumed trajectory matches an
//                                       undisturbed reference.
//
// Numbers merge into BENCH_service.json. WFIT_BENCH_FAST=1 scales the
// volume down for CI smoke runs.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/demo_env.h"
#include "cluster/membership.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "harness/reporting.h"
#include "net/client.h"
#include "net/server.h"

namespace wfit {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using cluster::ClusterClient;
using cluster::ClusterConfig;
using cluster::DemoFleetEnv;
using cluster::TunerNode;

std::string TempRoot(const std::string& tag) {
  std::string dir = (fs::temp_directory_path() /
                     ("wfit_bench_cluster_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

/// Raw wire throughput: a trivial echo server, one blocking client,
/// sequential pings — the per-RPC floor under everything else here.
double MeasureRpcRoundTrips(size_t pings) {
  net::Server server([](const net::Request&) { return net::Response{}; },
                     [](const net::Request&) { return net::Response{}; },
                     [](net::MsgType) { return false; });
  if (!server.Start().ok()) return 0.0;
  net::Client client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) return 0.0;
  net::Request ping;
  ping.type = net::MsgType::kPing;
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < pings; ++i) {
    auto resp = client.Call(ping);
    if (!resp.ok()) return 0.0;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Shutdown();
  return static_cast<double>(pings) / secs;
}

/// An in-process fleet of `n` nodes (ids "n0".."nK") sharing one demo
/// environment, with tenants pinned round-robin via overrides so the
/// load split is deterministic regardless of what the hash would pick.
struct Fleet {
  std::shared_ptr<DemoFleetEnv> env;
  std::vector<std::unique_ptr<TunerNode>> nodes;
  ClusterConfig config;

  Fleet(size_t n, size_t tenants, size_t statements, const std::string& tag)
      : env(std::make_shared<DemoFleetEnv>(statements)) {
    ClusterConfig boot;
    boot.version = 1;
    for (size_t i = 0; i < n; ++i) {
      boot.nodes.push_back(
          {"n" + std::to_string(i), "127.0.0.1", 0});
    }
    boot.Normalize();
    for (size_t i = 0; i < n; ++i) {
      cluster::TunerNodeOptions options;
      options.node_id = "n" + std::to_string(i);
      options.config = boot;
      options.router.shard.queue_capacity = 64;
      options.router.shard.max_batch = 16;
      options.router.shard.record_history = true;
      options.router.shard.checkpoint_every_statements = 200;
      options.router.checkpoint_root =
          TempRoot(tag + "_n" + std::to_string(i));
      options.router.analysis_threads = 1;
      options.router.drain_threads = 2;
      options.router.repin = env->MakeRepinner();
      nodes.push_back(std::make_unique<TunerNode>(env->MakeTunerFactory(),
                                                  std::move(options)));
      if (!nodes.back()->Start().ok()) {
        std::cerr << "node start failed\n";
        std::exit(1);
      }
    }
    config.version = 2;
    for (size_t i = 0; i < n; ++i) {
      config.nodes.push_back({"n" + std::to_string(i), "127.0.0.1",
                              nodes[i]->port()});
    }
    for (size_t t = 0; t < tenants; ++t) {
      config.overrides[DemoFleetEnv::TenantName(t)] =
          "n" + std::to_string(t % n);
    }
    config.Normalize();
    for (auto& node : nodes) node->InstallConfig(config);
  }

  void Shutdown() {
    for (auto& node : nodes) node->Shutdown();
  }
};

/// Streams every tenant's full workload through the cluster client (one
/// producer per tenant) and waits until each shard analyzed everything.
/// Returns aggregate statements/min.
double RunTenants(Fleet& fleet, size_t tenants, std::atomic<bool>* failed) {
  const size_t statements = fleet.env->statements();
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> producers;
  for (size_t t = 0; t < tenants; ++t) {
    producers.emplace_back([&, t] {
      ClusterClient client(fleet.config);
      const std::string tenant = DemoFleetEnv::TenantName(t);
      const Workload& workload = fleet.env->Env(t).workload;
      for (size_t seq = 0; seq < workload.size(); ++seq) {
        net::Request req;
        req.type = net::MsgType::kSubmitAt;
        req.seq = seq;
        req.has_statement = true;
        req.statement = workload[seq];
        auto resp = client.Call(tenant, std::move(req));
        if (!resp.ok() || resp->kind != net::RespKind::kOk) {
          failed->store(true);
          return;
        }
      }
      while (!failed->load()) {
        net::Request probe;
        probe.type = net::MsgType::kGetAnalyzed;
        auto resp = client.Call(tenant, probe);
        if (resp.ok() && resp->kind == net::RespKind::kOk &&
            resp->analyzed >= workload.size()) {
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (auto& p : producers) p.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return 60.0 * static_cast<double>(tenants * statements) / secs;
}

struct MigrationResult {
  double handoff_ms = 0.0;
  bool identical = false;
};

/// One tenant, two nodes, a DBA vote pinned in the future, a live
/// handoff mid-workload — then the stitched source+target trajectory is
/// compared against a dedicated never-migrated router.
MigrationResult MeasureMigration(size_t statements, uint64_t migrate_after) {
  MigrationResult result;
  const std::string tenant = DemoFleetEnv::TenantName(0);

  // Reference: one router, same env parameters, full workload.
  std::vector<IndexSet> reference;
  {
    DemoFleetEnv env(statements);
    service::TenantRouterOptions options;
    options.shard.queue_capacity = 64;
    options.shard.max_batch = 16;
    options.shard.record_history = true;
    options.analysis_threads = 1;
    options.drain_threads = 2;
    options.repin = env.MakeRepinner();
    service::TenantRouter router(env.MakeTunerFactory(), options);
    router.Start();
    for (const service::PinnedVote& vote : env.PinnedVotesFor(0, 0)) {
      router.FeedbackAfter(tenant, vote.after_seq, vote.f_plus,
                           vote.f_minus);
    }
    const Workload& workload = env.Env(0).workload;
    for (size_t seq = 0; seq < workload.size(); ++seq) {
      router.SubmitAt(tenant, seq, workload[seq]);
    }
    router.WaitUntilAnalyzed(tenant, statements);
    reference = router.History(tenant);
    router.Shutdown();
  }

  Fleet fleet(2, /*tenants=*/1, statements, "mig");
  std::atomic<bool> failed{false};
  std::thread producer([&] {
    ClusterClient client(fleet.config);
    for (const service::PinnedVote& vote :
         fleet.env->PinnedVotesFor(0, 0)) {
      net::Request req;
      req.type = net::MsgType::kFeedbackAfter;
      req.seq = vote.after_seq;
      req.f_plus = vote.f_plus;
      req.f_minus = vote.f_minus;
      auto resp = client.Call(tenant, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) {
        failed.store(true);
        return;
      }
    }
    const Workload& workload = fleet.env->Env(0).workload;
    for (size_t seq = 0; seq < workload.size() && !failed.load(); ++seq) {
      net::Request req;
      req.type = net::MsgType::kSubmitAt;
      req.seq = seq;
      req.has_statement = true;
      req.statement = workload[seq];
      auto resp = client.Call(tenant, std::move(req));
      if (!resp.ok() || resp->kind != net::RespKind::kOk) {
        failed.store(true);
        return;
      }
    }
    while (!failed.load()) {
      net::Request probe;
      probe.type = net::MsgType::kGetAnalyzed;
      auto resp = client.Call(tenant, probe);
      if (resp.ok() && resp->kind == net::RespKind::kOk &&
          resp->analyzed >= fleet.env->statements()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  ClusterClient admin(fleet.config);
  while (!failed.load()) {
    net::Request probe;
    probe.type = net::MsgType::kGetAnalyzed;
    auto resp = admin.Call(tenant, probe);
    if (resp.ok() && resp->kind == net::RespKind::kOk &&
        resp->analyzed >= migrate_after) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // The tenant is pinned to n0 by the fleet's overrides; hand it to n1.
  if (!failed.load()) {
    net::Request migrate;
    migrate.type = net::MsgType::kMigrate;
    migrate.target_node = "n1";
    auto resp = admin.Call(tenant, std::move(migrate));
    if (resp.ok() && resp->kind == net::RespKind::kOk) {
      result.handoff_ms = static_cast<double>(resp->count);
    } else {
      failed.store(true);
    }
  }
  producer.join();

  if (!failed.load()) {
    std::vector<std::optional<IndexSet>> slots(statements);
    for (auto& node : fleet.nodes) {
      const uint64_t start = node->router().HistoryStart(tenant);
      const std::vector<IndexSet> part = node->router().History(tenant);
      for (size_t i = 0; i < part.size(); ++i) {
        if (start + i < slots.size()) slots[start + i] = part[i];
      }
    }
    result.identical = reference.size() == statements;
    for (size_t seq = 0; seq < statements && result.identical; ++seq) {
      result.identical =
          slots[seq].has_value() && *slots[seq] == reference[seq];
      if (!result.identical) {
        std::cerr << "  DIVERGENCE at statement " << seq << "\n";
      }
    }
  }
  fleet.Shutdown();
  return result;
}

struct FailoverResult {
  double takeover_ms = 0.0;
  bool identical = false;
};

/// One tenant pinned to a node that gets crashed (SIGKILL semantics: no
/// parting checkpoint, journal only) mid-workload in a membership-enabled
/// two-node fleet. Measures the gap from the crash to the first client
/// RPC the survivor answers for that tenant — lease expiry, checkpoint
/// recovery, and config fan-out included — and verifies the survivor's
/// resumed trajectory bit-for-bit against an undisturbed reference.
FailoverResult MeasureFailover(size_t statements, uint64_t kill_after) {
  FailoverResult result;
  const std::string tenant = DemoFleetEnv::TenantName(0);

  service::TenantRouterOptions router_options;
  router_options.shard.queue_capacity = 32;
  router_options.shard.max_batch = 8;
  router_options.shard.record_history = true;
  router_options.shard.checkpoint_every_statements = 100;
  router_options.shard.checkpoint_on_shutdown = false;  // crash realism
  router_options.analysis_threads = 1;
  router_options.drain_threads = 1;

  // Reference: one router, never disturbed, votes registered up front.
  std::vector<IndexSet> reference;
  {
    DemoFleetEnv env(statements);
    auto options = router_options;
    options.repin = env.MakeRepinner();
    service::TenantRouter router(env.MakeTunerFactory(), options);
    router.Start();
    for (const service::PinnedVote& vote : env.PinnedVotesFor(0, 0)) {
      router.FeedbackAfter(tenant, vote.after_seq, vote.f_plus,
                           vote.f_minus);
    }
    const Workload& workload = env.Env(0).workload;
    for (size_t seq = 0; seq < workload.size(); ++seq) {
      router.SubmitAt(tenant, seq, workload[seq]);
    }
    router.WaitUntilAnalyzed(tenant, statements);
    reference = router.History(tenant);
    router.Shutdown();
  }

  // A two-node fleet sharing one checkpoint root, with the tenant
  // pinned to "a" (the victim) and aggressive failure-detection knobs
  // so the bench measures takeover, not lease padding.
  auto env = std::make_shared<DemoFleetEnv>(statements);
  const std::string fleet_root = TempRoot("failover");
  cluster::MembershipOptions membership;
  membership.heartbeat_interval_ms = 20;
  membership.suspect_after_misses = 2;
  membership.lease_ms = 250;
  membership.rpc_timeout_ms = 100;

  ClusterConfig boot;
  boot.version = 1;
  boot.nodes.push_back({"a", "127.0.0.1", 0});
  boot.nodes.push_back({"b", "127.0.0.1", 0});
  boot.Normalize();
  std::vector<std::unique_ptr<TunerNode>> nodes;
  for (const std::string& id : {std::string("a"), std::string("b")}) {
    cluster::TunerNodeOptions options;
    options.node_id = id;
    options.config = boot;
    options.router = router_options;
    options.router.repin = env->MakeRepinner();
    options.fleet_root = fleet_root;
    options.enable_membership = true;
    options.membership = membership;
    nodes.push_back(std::make_unique<TunerNode>(env->MakeTunerFactory(),
                                                std::move(options)));
    if (!nodes.back()->Start().ok()) {
      std::cerr << "failover bench: node start failed\n";
      return result;
    }
  }
  ClusterConfig config;
  config.version = 2;
  for (auto& node : nodes) {
    config.nodes.push_back({node->node_id(), "127.0.0.1", node->port()});
  }
  config.overrides[tenant] = "a";
  config.Normalize();
  for (auto& node : nodes) node->InstallConfig(config);

  // Crash-tolerant producer: resubmits from the analyzed watermark when
  // progress stalls, so the statements that died in a's ingest queue are
  // replayed against the survivor.
  std::atomic<bool> replay_ok{false};
  std::thread producer([&] {
    cluster::ClusterClientOptions copts;
    copts.retry_deadline_ms = 3000;
    copts.jitter_seed = 42;
    ClusterClient client(config, copts);
    replay_ok.store(
        cluster::ReplayTenantWorkload(client, *env, 0, true, 180000));
  });

  TunerNode& a = *nodes[0];
  TunerNode& b = *nodes[1];
  while (a.router().analyzed(tenant) < kill_after) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  const Clock::time_point crash_at = Clock::now();
  a.Crash();
  // One client Call spanning the outage: its internal retry/re-aim loop
  // returns as soon as ANY node answers for the tenant again.
  double takeover = -1.0;
  {
    cluster::ClusterClientOptions copts;
    copts.retry_deadline_ms = 60000;
    copts.jitter_seed = 7;
    ClusterClient monitor(config, copts);
    net::Request probe;
    probe.type = net::MsgType::kGetAnalyzed;
    auto resp = monitor.Call(tenant, std::move(probe));
    if (resp.ok() && resp->kind == net::RespKind::kOk) {
      takeover = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           crash_at)
                     .count();
    }
  }
  producer.join();

  if (takeover >= 0.0 && replay_ok.load()) {
    result.takeover_ms = takeover;
    const uint64_t start = b.router().HistoryStart(tenant);
    const std::vector<IndexSet> suffix = b.router().History(tenant);
    result.identical = reference.size() == statements &&
                       start + suffix.size() == statements;
    for (size_t i = 0; i < suffix.size() && result.identical; ++i) {
      result.identical = suffix[i] == reference[start + i];
      if (!result.identical) {
        std::cerr << "  FAILOVER DIVERGENCE at statement " << (start + i)
                  << "\n";
      }
    }
  } else {
    std::cerr << "failover bench: takeover=" << takeover
              << " replay_ok=" << replay_ok.load() << "\n";
  }
  for (auto& node : nodes) node->Shutdown();
  return result;
}

}  // namespace
}  // namespace wfit

int main() {
  using namespace wfit;
  const bool fast = std::getenv("WFIT_BENCH_FAST") != nullptr;
  const size_t pings = fast ? 2000 : 20000;
  const size_t tenants = fast ? 2 : 4;
  const size_t statements = fast ? 120 : 300;
  const size_t mig_statements = fast ? 160 : 300;
  const uint64_t migrate_after = fast ? 80 : 150;

  const double rpc_per_sec = MeasureRpcRoundTrips(pings);
  std::cout << "rpc round trips        "
            << static_cast<uint64_t>(rpc_per_sec) << " /s over loopback\n";

  std::atomic<bool> failed{false};
  double single = 0.0, two = 0.0;
  {
    Fleet fleet(1, tenants, statements, "one");
    single = RunTenants(fleet, tenants, &failed);
    fleet.Shutdown();
  }
  {
    Fleet fleet(2, tenants, statements, "two");
    two = RunTenants(fleet, tenants, &failed);
    fleet.Shutdown();
  }
  if (failed.load()) {
    std::cerr << "throughput phase failed\n";
    return 1;
  }
  const double scaleup = single > 0.0 ? two / single : 0.0;
  std::cout << "single node            " << static_cast<uint64_t>(single)
            << " statements/min (" << tenants << " tenants x "
            << statements << ")\n"
            << "two nodes              " << static_cast<uint64_t>(two)
            << " statements/min\n"
            << "scale-up               " << scaleup
            << "x (meaningful on multi-core hosts only)\n";

  MigrationResult migration =
      MeasureMigration(mig_statements, migrate_after);
  std::cout << "migration handoff      " << migration.handoff_ms << " ms\n"
            << "trajectory identical   "
            << (migration.identical ? "yes" : "NO") << "\n";

  const size_t fo_statements = fast ? 160 : 300;
  const uint64_t kill_after = fast ? 60 : 150;
  FailoverResult failover = MeasureFailover(fo_statements, kill_after);
  std::cout << "failover takeover      " << failover.takeover_ms << " ms\n"
            << "failover identical     "
            << (failover.identical ? "yes" : "NO") << "\n";

  harness::UpdateBenchJson(
      "BENCH_service.json",
      {
          {"net_rpc_round_trips_per_sec", rpc_per_sec},
          {"cluster_single_node_stmts_per_min", single},
          {"cluster_two_node_stmts_per_min", two},
          {"cluster_scaleup_2node", scaleup},
          {"migration_handoff_ms", migration.handoff_ms},
          {"cluster_migration_trajectory_identical",
           migration.identical ? 1.0 : 0.0},
          {"failover_takeover_ms", failover.takeover_ms},
          {"cluster_failover_trajectory_identical",
           failover.identical ? 1.0 : 0.0},
      });
  std::cout << "wrote BENCH_service.json\n";
  return (migration.identical && failover.identical) ? 0 : 1;
}
