// Figure 8: baseline performance evaluation. Fixed stable partitions with
// stateCnt ∈ {2000, 500, 100}, WFIT-IND (all-singleton parts) and BC,
// measured as cumulative totWork ratio against OPT (OPT = 1).
#include <iostream>

#include "baselines/bc.h"
#include "baselines/opt.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "harness/experiment.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  std::cout << "Workload: " << env.workload().size() << " statements\n";
  auto p2000 = env.FixedPartition(2000);
  auto p500 = env.FixedPartition(500);
  auto p100 = env.FixedPartition(100);
  std::cout << "Mined universe: " << p2000.universe_size
            << " candidate indices; |C| = " << p2000.candidates.size()
            << "\n";

  // OPT over the most detailed configuration space (stateCnt = 2000).
  OptimalPlanner planner(&env.pool(), &env.optimizer());
  OptimalSchedule opt =
      planner.Solve(env.workload(), p2000.partition, IndexSet{});
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(opt.prefix_optimum, "OPT");

  std::vector<harness::ExperimentSeries> series;
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p2000.partition, IndexSet{},
                  "WFIT-2000");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p500.partition, IndexSet{},
                  "WFIT-500");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p100.partition, IndexSet{},
                  "WFIT-100");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    WfaPlus tuner(&env.pool(), &env.optimizer(), p2000.singleton_partition,
                  IndexSet{}, "WFIT-IND");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    BcTuner tuner(&env.pool(), &env.optimizer(), p2000.candidates,
                  IndexSet{});
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }

  harness::PrintRatioTable(std::cout, opt_series, series,
                           "Figure 8: Baseline performance evaluation");
  std::cout << "\n";
  harness::PrintOverheadTable(std::cout, series, env.workload().size());
  return 0;
}
