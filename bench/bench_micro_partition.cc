// Micro-benchmark (ablation): choosePartition's randomized search — cost
// and achieved loss as functions of candidate count, stateCnt and
// RAND_CNT. Motivates the paper's default knobs.
#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.h"
#include "core/partition.h"

namespace {

using namespace wfit;

DoiFn RandomDoi(size_t n, uint64_t seed, double density) {
  std::map<std::pair<IndexId, IndexId>, double> table;
  Rng rng(seed);
  for (IndexId a = 0; a < n; ++a) {
    for (IndexId b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(density)) {
        table[{a, b}] = rng.Uniform(0.1, 100.0);
      }
    }
  }
  return [table = std::move(table)](IndexId a, IndexId b) {
    auto key = std::minmax(a, b);
    auto it = table.find({key.first, key.second});
    return it == table.end() ? 0.0 : it->second;
  };
}

std::vector<IndexId> Indices(size_t n) {
  std::vector<IndexId> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<IndexId>(i);
  return out;
}

void BM_ChoosePartitionByCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DoiFn doi = RandomDoi(n, 11, 0.15);
  PartitionOptions opts;
  opts.state_cnt = 500;
  Rng rng(1);
  double last_loss = 0.0;
  for (auto _ : state) {
    auto parts = ChoosePartition(Indices(n), {}, doi, opts, &rng);
    last_loss = PartitionLoss(parts, doi);
    benchmark::DoNotOptimize(parts.size());
  }
  state.counters["loss"] = last_loss;
}
BENCHMARK(BM_ChoosePartitionByCount)->DenseRange(10, 40, 10);

void BM_ChoosePartitionByStateCnt(benchmark::State& state) {
  const size_t n = 40;
  DoiFn doi = RandomDoi(n, 13, 0.15);
  PartitionOptions opts;
  opts.state_cnt = static_cast<size_t>(state.range(0));
  Rng rng(2);
  double last_loss = 0.0;
  for (auto _ : state) {
    auto parts = ChoosePartition(Indices(n), {}, doi, opts, &rng);
    last_loss = PartitionLoss(parts, doi);
    benchmark::DoNotOptimize(parts.size());
  }
  state.counters["loss"] = last_loss;
}
BENCHMARK(BM_ChoosePartitionByStateCnt)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(10000);

void BM_ChoosePartitionByRandCnt(benchmark::State& state) {
  const size_t n = 30;
  DoiFn doi = RandomDoi(n, 17, 0.2);
  PartitionOptions opts;
  opts.state_cnt = 500;
  opts.rand_cnt = static_cast<int>(state.range(0));
  Rng rng(3);
  double last_loss = 0.0;
  for (auto _ : state) {
    auto parts = ChoosePartition(Indices(n), {}, doi, opts, &rng);
    last_loss = PartitionLoss(parts, doi);
    benchmark::DoNotOptimize(parts.size());
  }
  state.counters["loss"] = last_loss;
}
BENCHMARK(BM_ChoosePartitionByRandCnt)->Arg(1)->Arg(5)->Arg(10)->Arg(30);

void BM_PartitionLoss(benchmark::State& state) {
  const size_t n = 40;
  DoiFn doi = RandomDoi(n, 19, 0.25);
  Rng rng(4);
  PartitionOptions opts;
  opts.state_cnt = 1000;
  auto parts = ChoosePartition(Indices(n), {}, doi, opts, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionLoss(parts, doi));
  }
}
BENCHMARK(BM_PartitionLoss);

}  // namespace

BENCHMARK_MAIN();
