// Micro-benchmark (ablation): WFA's per-statement update cost. The
// O(k·2^k) min-plus relaxation vs the naive O(4^k) reference shows why the
// relaxation matters for stateCnt = 2000-sized parts.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/work_function.h"

namespace {

using wfit::Mask;
using wfit::PartCostFn;
using wfit::WfaInstance;

WfaInstance MakeInstance(size_t k, uint64_t seed) {
  wfit::Rng rng(seed);
  std::vector<wfit::IndexId> members(k);
  std::vector<double> create(k), drop(k);
  for (size_t i = 0; i < k; ++i) {
    members[i] = static_cast<wfit::IndexId>(i);
    create[i] = static_cast<double>(rng.UniformInt(10, 200));
    drop[i] = static_cast<double>(rng.UniformInt(0, 10));
  }
  return WfaInstance(members, create, drop, 0);
}

std::vector<double> RandomCosts(size_t k, uint64_t seed) {
  wfit::Rng rng(seed);
  std::vector<double> costs(size_t{1} << k);
  for (double& c : costs) c = static_cast<double>(rng.UniformInt(0, 100));
  return costs;
}

void BM_WfaAnalyzeQuery(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  WfaInstance wfa = MakeInstance(k, 1);
  std::vector<double> costs = RandomCosts(k, 2);
  PartCostFn fn = [&costs](Mask s) { return costs[s]; };
  for (auto _ : state) {
    wfa.AnalyzeQuery(fn);
    benchmark::DoNotOptimize(wfa.recommendation());
  }
  state.SetComplexityN(static_cast<int64_t>(size_t{1} << k));
}
BENCHMARK(BM_WfaAnalyzeQuery)->DenseRange(2, 14, 2)->Complexity();

// Naive O(4^k) reference, for the ablation comparison.
void BM_WfaNaiveUpdate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t n = size_t{1} << k;
  wfit::Rng rng(3);
  std::vector<double> create(k), drop(k), w(n, 0.0);
  for (size_t i = 0; i < k; ++i) {
    create[i] = static_cast<double>(rng.UniformInt(10, 200));
    drop[i] = static_cast<double>(rng.UniformInt(0, 10));
  }
  std::vector<double> costs = RandomCosts(k, 4);
  auto delta = [&](Mask from, Mask to) {
    double cost = 0.0;
    for (size_t i = 0; i < k; ++i) {
      Mask m = Mask{1} << i;
      if ((to & m) && !(from & m)) cost += create[i];
      if ((from & m) && !(to & m)) cost += drop[i];
    }
    return cost;
  };
  for (auto _ : state) {
    std::vector<double> v(n), next(n);
    for (Mask s = 0; s < n; ++s) v[s] = w[s] + costs[s];
    for (Mask s = 0; s < n; ++s) {
      double best = v[s];
      for (Mask x = 0; x < n; ++x) {
        best = std::min(best, v[x] + delta(x, s));
      }
      next[s] = best;
    }
    benchmark::DoNotOptimize(next.data());
    w = std::move(next);
  }
}
BENCHMARK(BM_WfaNaiveUpdate)->DenseRange(2, 10, 2);

void BM_WfaFeedback(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  WfaInstance wfa = MakeInstance(k, 5);
  for (auto _ : state) {
    wfa.ApplyFeedback(/*f_plus=*/1, /*f_minus=*/2);
    benchmark::DoNotOptimize(wfa.recommendation());
  }
}
BENCHMARK(BM_WfaFeedback)->DenseRange(2, 14, 4);

}  // namespace

BENCHMARK_MAIN();
