// Sec. 6.2 "Overhead": per-statement analysis time and what-if optimizer
// calls, as a function of stateCnt. The paper reports ~300 ms/statement for
// its Java-on-DB2 prototype and 5-100 what-if calls per query; our
// simulator's absolute times are far smaller, but the scaling trends in
// stateCnt are the reproducible signal.
#include <iostream>

#include "baselines/bc.h"
#include "bench/bench_common.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "harness/experiment.h"
#include "harness/reporting.h"

int main() {
  using namespace wfit;
  bench::BenchEnv env;
  harness::ExperimentDriver driver(&env.workload(), &env.optimizer());

  std::vector<harness::ExperimentSeries> series;
  for (size_t state_cnt : {size_t{100}, size_t{500}, size_t{2000}}) {
    auto fixed = env.FixedPartition(state_cnt);
    WfaPlus tuner(&env.pool(), &env.optimizer(), fixed.partition, IndexSet{},
                  "WFIT-" + std::to_string(state_cnt));
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    auto fixed = env.FixedPartition(500);
    WfaPlus tuner(&env.pool(), &env.optimizer(), fixed.singleton_partition,
                  IndexSet{}, "WFIT-IND");
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    auto fixed = env.FixedPartition(500);
    BcTuner tuner(&env.pool(), &env.optimizer(), fixed.candidates,
                  IndexSet{});
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }
  {
    WfitOptions options;
    options.name = "WFIT-AUTO";
    Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
    series.push_back(driver.Run(&tuner, IndexSet{}, {}));
  }

  std::cout << "== Overhead (Sec. 6.2): analysis cost per statement ==\n";
  harness::PrintOverheadTable(std::cout, series, env.workload().size());

  // The paper notes what-if calls grow as candidates are mined from the
  // workload: report first-quarter vs last-quarter averages for AUTO.
  {
    WfitOptions options;
    options.name = "WFIT-AUTO";
    Wfit tuner(&env.pool(), &env.optimizer(), IndexSet{}, options);
    const Workload& w = env.workload();
    size_t quarter = w.size() / 4;
    uint64_t calls_start = 0, calls_end = 0;
    for (size_t n = 0; n < w.size(); ++n) {
      uint64_t before = env.optimizer().num_calls();
      tuner.AnalyzeQuery(w[n]);
      uint64_t used = env.optimizer().num_calls() - before;
      if (n < quarter) calls_start += used;
      if (n >= w.size() - quarter) calls_end += used;
    }
    std::cout << "\nWFIT-AUTO what-if calls/statement: first quarter "
              << static_cast<double>(calls_start) /
                     static_cast<double>(quarter)
              << ", last quarter "
              << static_cast<double>(calls_end) /
                     static_cast<double>(quarter)
              << " (paper: ~5 near the start, ~100 near the end)\n";
  }
  return 0;
}
