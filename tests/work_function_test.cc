#include "core/work_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace wfit {
namespace {

/// Example 4.1 / Figure 2 of the paper: one index `a` with creation cost 20
/// and drop cost 0, three queries. The paper's work-function values, scores
/// and recommendations must be matched exactly.
class Example41 : public ::testing::Test {
 protected:
  Example41()
      : wfa_({/*members=*/7}, /*create=*/{20.0}, /*drop=*/{0.0},
             /*initial_config=*/0) {}

  static PartCostFn Costs(double cost_empty, double cost_a) {
    return [cost_empty, cost_a](Mask s) {
      return s == 0 ? cost_empty : cost_a;
    };
  }

  WfaInstance wfa_;
};

TEST_F(Example41, InitialWorkFunction) {
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b0), 0.0);
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b1), 20.0);
  EXPECT_EQ(wfa_.recommendation(), 0u);
}

TEST_F(Example41, AfterQuery1) {
  wfa_.AnalyzeQuery(Costs(15.0, 5.0));
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b0), 15.0);
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b1), 25.0);
  // Scores equal the work function values; ∅ wins on the lower score.
  EXPECT_DOUBLE_EQ(wfa_.Score(0b0), 15.0);
  EXPECT_DOUBLE_EQ(wfa_.Score(0b1), 25.0);
  EXPECT_EQ(wfa_.recommendation(), 0u);
}

TEST_F(Example41, AfterQuery2SwitchesToA) {
  wfa_.AnalyzeQuery(Costs(15.0, 5.0));
  wfa_.AnalyzeQuery(Costs(20.0, 2.0));
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b0), 27.0);
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b1), 27.0);
  // Both scores are 27, but only {a} satisfies the self-path condition
  // (its work function evaluates q2 at {a} in both paths), so WFA switches.
  EXPECT_EQ(wfa_.recommendation(), 0b1u);
}

TEST_F(Example41, AfterQuery3KeepsADespiteDropBeingFavored) {
  wfa_.AnalyzeQuery(Costs(15.0, 5.0));
  wfa_.AnalyzeQuery(Costs(20.0, 2.0));
  wfa_.AnalyzeQuery(Costs(15.0, 20.0));
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b0), 42.0);
  EXPECT_DOUBLE_EQ(wfa_.work_value(0b1), 47.0);
  EXPECT_DOUBLE_EQ(wfa_.Score(0b0), 62.0);
  EXPECT_DOUBLE_EQ(wfa_.Score(0b1), 47.0);
  // The difference in work functions (5) is below the re-creation cost
  // (20), so the recommendation does not change — the paper's point about
  // WFA's robustness.
  EXPECT_EQ(wfa_.recommendation(), 0b1u);
}

TEST_F(Example41, HighlightedPathTotalWorkIs57) {
  // The figure's highlighted path: ∅ for q1, {a} for q2 and q3.
  double total = 0.0;
  total += 0.0 + 15.0;   // δ(∅,∅) + cost(q1,∅)
  total += 20.0 + 2.0;   // δ(∅,{a}) + cost(q2,{a})
  total += 0.0 + 20.0;   // δ({a},{a}) + cost(q3,{a})
  EXPECT_DOUBLE_EQ(total, 57.0);
}

// ---------------------------------------------------------------------------
// Randomized equivalence with a naive O(4^k) reference implementation.
// ---------------------------------------------------------------------------

struct NaiveWfa {
  std::vector<double> create, drop, w;
  Mask rec = 0;

  double Delta(Mask from, Mask to) const {
    double cost = 0.0;
    for (size_t i = 0; i < create.size(); ++i) {
      Mask m = Mask{1} << i;
      if ((to & m) && !(from & m)) cost += create[i];
      if ((from & m) && !(to & m)) cost += drop[i];
    }
    return cost;
  }

  void AnalyzeQuery(const PartCostFn& cost) {
    const size_t n = w.size();
    std::vector<double> v(n), next(n);
    for (Mask s = 0; s < n; ++s) v[s] = w[s] + cost(s);
    for (Mask s = 0; s < n; ++s) {
      double best = v[s];
      for (Mask x = 0; x < n; ++x) best = std::min(best, v[x] + Delta(x, s));
      next[s] = best;
    }
    // Recommendation: min score among self-path states, lexicographic ties.
    bool have = false;
    Mask best_state = 0;
    double best_score = 0.0;
    auto nearly = [](double a, double b) {
      double scale = std::max({std::abs(a), std::abs(b), 1.0});
      return std::abs(a - b) <= 1e-9 * scale;
    };
    for (Mask s = 0; s < n; ++s) {
      if (!nearly(next[s], v[s])) continue;
      double score = next[s] + Delta(s, rec);
      if (!have || score + 1e-12 < best_score ||
          (nearly(score, best_score) && LexPrefers(s, best_state))) {
        have = true;
        best_state = s;
        best_score = score;
      }
    }
    w = std::move(next);
    rec = best_state;
  }
};

class WfaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WfaEquivalence, FastRelaxationMatchesNaive) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const size_t k = static_cast<size_t>(rng.UniformInt(1, 6));
  const size_t n = size_t{1} << k;

  std::vector<IndexId> members(k);
  NaiveWfa naive;
  for (size_t i = 0; i < k; ++i) {
    members[i] = static_cast<IndexId>(i);
    naive.create.push_back(static_cast<double>(rng.UniformInt(1, 100)));
    naive.drop.push_back(static_cast<double>(rng.UniformInt(0, 10)));
  }
  Mask init = static_cast<Mask>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
  WfaInstance fast(members, naive.create, naive.drop, init);
  naive.w.resize(n);
  for (Mask s = 0; s < n; ++s) naive.w[s] = naive.Delta(init, s);
  naive.rec = init;

  for (int query = 0; query < 12; ++query) {
    std::vector<double> costs(n);
    for (Mask s = 0; s < n; ++s) {
      costs[s] = static_cast<double>(rng.UniformInt(0, 60));
    }
    PartCostFn fn = [&costs](Mask s) { return costs[s]; };
    fast.AnalyzeQuery(fn);
    naive.AnalyzeQuery(fn);
    for (Mask s = 0; s < n; ++s) {
      ASSERT_NEAR(fast.work_value(s), naive.w[s], 1e-9)
          << "query " << query << " state " << s;
    }
    ASSERT_EQ(fast.recommendation(), naive.rec) << "query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WfaEquivalence,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Structural invariants.
// ---------------------------------------------------------------------------

TEST(WfaInvariantTest, WorkFunctionStaysDeltaConsistent) {
  // w(S) ≤ w(X) + δ(X, S) after every update (the property that makes the
  // per-coordinate relaxation exact).
  Rng rng(77);
  const size_t k = 4, n = 16;
  std::vector<IndexId> members = {0, 1, 2, 3};
  std::vector<double> create, drop;
  for (size_t i = 0; i < k; ++i) {
    create.push_back(static_cast<double>(rng.UniformInt(5, 50)));
    drop.push_back(static_cast<double>(rng.UniformInt(0, 5)));
  }
  WfaInstance wfa(members, create, drop, 0);
  for (int query = 0; query < 20; ++query) {
    std::vector<double> costs(n);
    for (Mask s = 0; s < n; ++s) {
      costs[s] = static_cast<double>(rng.UniformInt(0, 40));
    }
    wfa.AnalyzeQuery([&costs](Mask s) { return costs[s]; });
    for (Mask s = 0; s < n; ++s) {
      for (Mask x = 0; x < n; ++x) {
        EXPECT_LE(wfa.work_value(s),
                  wfa.work_value(x) + wfa.Delta(x, s) + 1e-9);
      }
    }
  }
}

TEST(WfaInvariantTest, WorkFunctionMonotoneNonDecreasing) {
  Rng rng(88);
  std::vector<IndexId> members = {0, 1, 2};
  WfaInstance wfa(members, {30, 40, 50}, {1, 2, 3}, 0);
  std::vector<double> prev(8);
  for (Mask s = 0; s < 8; ++s) prev[s] = wfa.work_value(s);
  for (int query = 0; query < 15; ++query) {
    std::vector<double> costs(8);
    for (Mask s = 0; s < 8; ++s) {
      costs[s] = static_cast<double>(rng.UniformInt(0, 30));
    }
    wfa.AnalyzeQuery([&costs](Mask s) { return costs[s]; });
    for (Mask s = 0; s < 8; ++s) {
      EXPECT_GE(wfa.work_value(s) + 1e-12, prev[s]);
      prev[s] = wfa.work_value(s);
    }
  }
}

TEST(WfaInvariantTest, ZeroCostQueryKeepsRecommendation) {
  WfaInstance wfa({0, 1}, {25, 25}, {1, 1}, 0b01);
  Mask before = wfa.recommendation();
  wfa.AnalyzeQuery([](Mask) { return 7.0; });  // constant cost: no signal
  EXPECT_EQ(wfa.recommendation(), before);
}

// ---------------------------------------------------------------------------
// Feedback (Fig. 4).
// ---------------------------------------------------------------------------

TEST(WfaFeedbackTest, PositiveVoteForcesIndexIn) {
  WfaInstance wfa({0, 1}, {100, 100}, {1, 1}, 0);
  EXPECT_EQ(wfa.recommendation(), 0u);
  wfa.ApplyFeedback(/*f_plus=*/0b01, /*f_minus=*/0);
  EXPECT_EQ(wfa.recommendation() & 0b01, 0b01u);
}

TEST(WfaFeedbackTest, NegativeVoteForcesIndexOut) {
  WfaInstance wfa({0, 1}, {100, 100}, {1, 1}, 0b11);
  wfa.ApplyFeedback(/*f_plus=*/0, /*f_minus=*/0b10);
  EXPECT_EQ(wfa.recommendation() & 0b10, 0u);
  EXPECT_EQ(wfa.recommendation() & 0b01, 0b01u);  // untouched index stays
}

TEST(WfaFeedbackTest, Inequality51HoldsAfterFeedback) {
  Rng rng(99);
  std::vector<IndexId> members = {0, 1, 2};
  WfaInstance wfa(members, {40, 60, 80}, {2, 3, 4}, 0);
  // A few queries to roughen the work function.
  for (int query = 0; query < 5; ++query) {
    std::vector<double> costs(8);
    for (Mask s = 0; s < 8; ++s) {
      costs[s] = static_cast<double>(rng.UniformInt(0, 50));
    }
    wfa.AnalyzeQuery([&costs](Mask s) { return costs[s]; });
  }
  const Mask f_plus = 0b001, f_minus = 0b100;
  wfa.ApplyFeedback(f_plus, f_minus);
  const Mask rec = wfa.recommendation();
  for (Mask s = 0; s < 8; ++s) {
    Mask s_cons = (s & ~f_minus) | f_plus;
    double min_diff = wfa.Delta(s, s_cons) + wfa.Delta(s_cons, s);
    double diff = wfa.Score(s) - wfa.Score(rec);
    EXPECT_GE(diff + 1e-9, min_diff) << "state " << s;
  }
}

TEST(WfaFeedbackTest, RecoversFromBadVote) {
  // Vote an index in against the workload's will; enough adverse queries
  // must eventually drive it back out.
  WfaInstance wfa({0}, {30}, {0}, 0);
  wfa.ApplyFeedback(/*f_plus=*/1, /*f_minus=*/0);
  EXPECT_EQ(wfa.recommendation(), 1u);
  PartCostFn adverse = [](Mask s) { return s == 0 ? 0.0 : 10.0; };
  int queries_until_drop = 0;
  for (; queries_until_drop < 50 && wfa.recommendation() == 1u;
       ++queries_until_drop) {
    wfa.AnalyzeQuery(adverse);
  }
  EXPECT_LT(queries_until_drop, 50) << "never recovered from bad feedback";
  EXPECT_GT(queries_until_drop, 1) << "feedback had no stickiness at all";
}

TEST(WfaFeedbackDeathTest, ContradictoryVotesAbort) {
  WfaInstance wfa({0}, {10}, {1}, 0);
  EXPECT_DEATH({ wfa.ApplyFeedback(1, 1); }, "contradictory");
}

TEST(WfaMappingTest, ToMaskAndToSet) {
  WfaInstance wfa({10, 20, 30}, {1, 1, 1}, {0, 0, 0}, 0);
  IndexSet set{20, 99};
  EXPECT_EQ(wfa.ToMask(set), 0b010u);
  EXPECT_EQ(wfa.ToSet(0b101), (IndexSet{10, 30}));
  EXPECT_EQ(wfa.RecommendationSet(), IndexSet{});
}

}  // namespace
}  // namespace wfit
