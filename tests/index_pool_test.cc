#include "catalog/index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(IndexPoolTest, InternIsIdempotent) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId a2 = db.Ix("t1", {"a"});
  EXPECT_EQ(a, a2);
  EXPECT_EQ(db.pool().size(), 1u);
}

TEST(IndexPoolTest, ColumnOrderMatters) {
  TestDb db;
  IndexId ab = db.Ix("t1", {"a", "b"});
  IndexId ba = db.Ix("t1", {"b", "a"});
  EXPECT_NE(ab, ba);
}

TEST(IndexPoolTest, DifferentTablesDifferentIndices) {
  TestDb db;
  // "fk" on t2 vs "a" on t1: distinct ids even with same ordinal.
  IndexId i1 = db.Ix("t1", {"k"});
  IndexId i2 = db.Ix("t2", {"fk"});
  EXPECT_NE(i1, i2);
}

TEST(IndexPoolTest, NameIncludesTableAndColumns) {
  TestDb db;
  IndexId ab = db.Ix("t1", {"a", "b"});
  EXPECT_EQ(db.pool().Name(ab), "ix_test.t1(a,b)");
}

TEST(IndexPoolTest, EntryWidthIsKeyPlusRowPointer) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});       // 8-byte column
  IndexId ab = db.Ix("t1", {"a", "b"}); // two 8-byte columns
  EXPECT_EQ(db.pool().EntryWidth(a), 16u);
  EXPECT_EQ(db.pool().EntryWidth(ab), 24u);
}

TEST(IndexPoolTest, IndicesOnTable) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId b = db.Ix("t1", {"b"});
  IndexId x = db.Ix("t2", {"x"});
  auto t1id = db.catalog().FindTable("t1");
  ASSERT_TRUE(t1id.ok());
  std::vector<IndexId> on_t1 = db.pool().IndicesOnTable(*t1id);
  EXPECT_EQ(on_t1.size(), 2u);
  EXPECT_NE(std::find(on_t1.begin(), on_t1.end(), a), on_t1.end());
  EXPECT_NE(std::find(on_t1.begin(), on_t1.end(), b), on_t1.end());
  EXPECT_EQ(std::find(on_t1.begin(), on_t1.end(), x), on_t1.end());
}

TEST(IndexPoolDeathTest, EmptyColumnListAborts) {
  TestDb db;
  IndexDef def;
  def.table = 0;
  EXPECT_DEATH({ db.pool().Intern(def); }, "no columns");
}

}  // namespace
}  // namespace wfit
