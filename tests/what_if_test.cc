#include "optimizer/what_if.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(WhatIfTest, EmptyConfigUsesTableScan) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  PlanSummary plan = db.optimizer().Optimize(q, IndexSet{});
  EXPECT_TRUE(plan.used.empty());
  auto t1 = db.catalog().FindTable("t1");
  EXPECT_GE(plan.cost, db.model().TablePages(*t1));
}

TEST(WhatIfTest, SelectiveIndexBeatsScan) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  IndexId a = db.Ix("t1", {"a"});
  double scan = db.optimizer().Cost(q, IndexSet{});
  PlanSummary plan = db.optimizer().Optimize(q, IndexSet{a});
  EXPECT_LT(plan.cost, scan / 10);
  EXPECT_TRUE(plan.used.Contains(a));
}

TEST(WhatIfTest, UsedIsSubsetOfConfig) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100 AND b = 7");
  IndexSet config{db.Ix("t1", {"a"}), db.Ix("t1", {"b"}),
                  db.Ix("t2", {"x"})};
  PlanSummary plan = db.optimizer().Optimize(q, config);
  EXPECT_TRUE(plan.used.IsSubsetOf(config));
  // The t2 index cannot serve a t1-only query.
  EXPECT_FALSE(plan.used.Contains(db.Ix("t2", {"x"})));
}

TEST(WhatIfTest, QueryCostMonotoneInConfig) {
  // Adding indices never hurts a SELECT: the plan space only grows.
  TestDb db;
  Rng rng(4242);
  std::vector<IndexId> ids = {
      db.Ix("t1", {"a"}),      db.Ix("t1", {"b"}),
      db.Ix("t1", {"a", "b"}), db.Ix("t1", {"c"}),
      db.Ix("t2", {"x"}),      db.Ix("t2", {"fk"}),
  };
  std::vector<Statement> queries = {
      db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 50"),
      db.Bind("SELECT count(*) FROM t1 WHERE a = 3 AND b BETWEEN 0 AND 10"),
      db.Bind("SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t2.x = 1"),
      db.Bind("SELECT d FROM t1 WHERE c = 5 ORDER BY a"),
  };
  for (const Statement& q : queries) {
    for (int trial = 0; trial < 60; ++trial) {
      IndexSet base;
      for (IndexId id : ids) {
        if (rng.Bernoulli(0.4)) base.Add(id);
      }
      IndexSet super = base;
      for (IndexId id : ids) {
        if (rng.Bernoulli(0.3)) super.Add(id);
      }
      EXPECT_LE(db.optimizer().Cost(q, super),
                db.optimizer().Cost(q, base) + 1e-9)
          << q.sql;
    }
  }
}

TEST(WhatIfTest, IntersectionCreatesInteraction) {
  // Two medium-selectivity range predicates: each index alone barely helps
  // (fetch-bound), together they intersect — benefit of a depends on b.
  TestDb db;
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 200 AND b BETWEEN 0 AND 100");
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  double c_none = db.optimizer().Cost(q, IndexSet{});
  double c_a = db.optimizer().Cost(q, IndexSet{ia});
  double c_b = db.optimizer().Cost(q, IndexSet{ib});
  double c_ab = db.optimizer().Cost(q, IndexSet{ia, ib});
  double benefit_a_alone = c_none - c_a;
  double benefit_a_given_b = c_b - c_ab;
  EXPECT_GT(c_none, 0);
  // Interaction: the two marginal benefits differ materially.
  EXPECT_GT(std::abs(benefit_a_alone - benefit_a_given_b),
            0.01 * std::max(1.0, std::abs(benefit_a_alone)));
  // And the pair is genuinely better than either alone.
  EXPECT_LT(c_ab, std::min(c_a, c_b));
  PlanSummary plan = db.optimizer().Optimize(q, IndexSet{ia, ib});
  EXPECT_EQ(plan.used.size(), 2u);
}

TEST(WhatIfTest, CoveringIndexAvoidsFetch) {
  TestDb db;
  // count(*) with one range predicate: a single-column index is covering.
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 2000");
  IndexId ia = db.Ix("t1", {"a"});
  double with_index = db.optimizer().Cost(q, IndexSet{ia});
  double without = db.optimizer().Cost(q, IndexSet{});
  // Covering scan of ~20% of the index should be far below the heap scan.
  EXPECT_LT(with_index, without / 5);
}

TEST(WhatIfTest, CompositeIndexServesEqualityPlusRange) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE c = 5 AND a BETWEEN 0 AND 1000");
  IndexId c_only = db.Ix("t1", {"c"});
  IndexId c_then_a = db.Ix("t1", {"c", "a"});
  double cost_single = db.optimizer().Cost(q, IndexSet{c_only});
  double cost_composite = db.optimizer().Cost(q, IndexSet{c_then_a});
  EXPECT_LT(cost_composite, cost_single);
}

TEST(WhatIfTest, OrderByIndexAvoidsSort) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 5000 ORDER BY a");
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});  // irrelevant to the sort
  double with_sort_avoider = db.optimizer().Cost(q, IndexSet{ia});
  double with_other = db.optimizer().Cost(q, IndexSet{ib});
  EXPECT_LT(with_sort_avoider, with_other);
}

TEST(WhatIfTest, IndexNestedLoopJoinUsesJoinColumnIndex) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t2.y = 3");
  IndexId k_index = db.Ix("t1", {"k"});
  double without = db.optimizer().Cost(q, IndexSet{});
  PlanSummary with_inl = db.optimizer().Optimize(q, IndexSet{k_index});
  EXPECT_LT(with_inl.cost, without);
  EXPECT_TRUE(with_inl.used.Contains(k_index));
}

TEST(WhatIfTest, UpdateMaintenancePenalizesIndexes) {
  TestDb db;
  Statement u = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 1000");
  IndexId ia = db.Ix("t1", {"a"});  // contains the SET column -> affected
  double without = db.optimizer().Cost(u, IndexSet{});
  double with_a = db.optimizer().Cost(u, IndexSet{ia});
  EXPECT_GT(with_a, without);
}

TEST(WhatIfTest, UpdateOnlyMaintainsAffectedIndexes) {
  TestDb db;
  Statement u = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 1000");
  IndexId ib = db.Ix("t1", {"b"});  // b is not assigned -> unaffected
  double without = db.optimizer().Cost(u, IndexSet{});
  double with_b = db.optimizer().Cost(u, IndexSet{ib});
  EXPECT_DOUBLE_EQ(with_b, without);
}

TEST(WhatIfTest, UpdateLocateCanBenefitFromIndex) {
  TestDb db;
  // The WHERE column is indexed and unassigned: locate gets cheaper, and
  // the index incurs no maintenance.
  Statement u = db.Bind("UPDATE t1 SET d = d + 1 WHERE a = 17");
  IndexId ia = db.Ix("t1", {"a"});
  double without = db.optimizer().Cost(u, IndexSet{});
  double with_a = db.optimizer().Cost(u, IndexSet{ia});
  EXPECT_LT(with_a, without);
}

TEST(WhatIfTest, DeleteMaintainsAllIndexesOnTable) {
  TestDb db;
  Statement d = db.Bind("DELETE FROM t1 WHERE a = 17");
  IndexId ib = db.Ix("t1", {"b"});
  IndexSet with_b{ib};
  PlanSummary plan = db.optimizer().Optimize(d, with_b);
  EXPECT_TRUE(plan.used.Contains(ib));  // maintenance makes it relevant
}

TEST(WhatIfTest, InsertCostScalesWithRowsAndIndexes) {
  TestDb db;
  Statement small = db.Bind("INSERT INTO t2 VALUES (1,2,3)");
  Statement big = db.Bind(
      "INSERT INTO t2 VALUES (1,2,3),(1,2,3),(1,2,3),(1,2,3),(1,2,3),"
      "(1,2,3),(1,2,3),(1,2,3),(1,2,3),(1,2,3)");
  IndexId ix = db.Ix("t2", {"x"});
  EXPECT_LT(db.optimizer().Cost(small, IndexSet{}),
            db.optimizer().Cost(big, IndexSet{}));
  EXPECT_LT(db.optimizer().Cost(big, IndexSet{}),
            db.optimizer().Cost(big, IndexSet{ix}));
}

TEST(WhatIfTest, CallCounterTracksOptimizations) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t3 WHERE v = 1");
  uint64_t before = db.optimizer().num_calls();
  db.optimizer().Cost(q, IndexSet{});
  db.optimizer().Cost(q, IndexSet{});
  EXPECT_EQ(db.optimizer().num_calls(), before + 2);
  db.optimizer().ResetCallCount();
  EXPECT_EQ(db.optimizer().num_calls(), 0u);
}

TEST(WhatIfTest, IrrelevantIndexLeavesCostUnchanged) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  IndexId on_t2 = db.Ix("t2", {"x"});
  EXPECT_DOUBLE_EQ(db.optimizer().Cost(q, IndexSet{}),
                   db.optimizer().Cost(q, IndexSet{on_t2}));
}

}  // namespace
}  // namespace wfit
