// The durability headline invariant: kill the service after statement k,
// recover from checkpoint_dir, finish the workload — the recommendation
// trajectory is bit-for-bit identical to an uninterrupted run. Covered for
// WFIT (auto candidate maintenance) and WFA+ (fixed stable partition),
// with interleaved DBA feedback, at analysis_threads 1 and 8, with and
// without a usable snapshot (journal-only cold start).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "persist/journal.h"
#include "service/tuner_service.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

constexpr size_t kTotal = 200;
constexpr size_t kCrashAt = 137;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

enum class Kind { kWfit, kWfaPlus };

/// Every run interns the vote targets first, in a fixed order, so IndexIds
/// agree across "processes" (fresh TestDb instances).
std::vector<IndexId> SeedIds(TestDb& db) {
  return {db.Ix("t1", {"a"}), db.Ix("t2", {"x"}), db.Ix("t1", {"b"})};
}

std::unique_ptr<Tuner> MakeTuner(Kind kind, TestDb& db) {
  if (kind == Kind::kWfit) {
    return std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                                  FastOptions());
  }
  std::vector<IndexSet> parts{
      IndexSet{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})},
      IndexSet{db.Ix("t2", {"x"})},
      IndexSet{db.Ix("t3", {"v"})},
  };
  return std::make_unique<WfaPlus>(&db.pool(), &db.optimizer(),
                                   std::move(parts), IndexSet{});
}

struct Vote {
  uint64_t after;
  IndexSet plus;
  IndexSet minus;
};

std::vector<Vote> MakeVotes(const std::vector<IndexId>& ids) {
  return {
      {30, IndexSet{ids[0]}, IndexSet{}},
      {81, IndexSet{}, IndexSet{ids[1]}},
      {kCrashAt - 1, IndexSet{ids[2]}, IndexSet{ids[0]}},
      {163, IndexSet{ids[0]}, IndexSet{ids[2]}},
  };
}

TunerServiceOptions BaseOptions(size_t threads) {
  TunerServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 5;
  options.analysis_threads = threads;
  options.record_history = true;
  return options;
}

/// Submits w[first, last) from two producers with explicit sequence
/// numbers (stale sequences are dropped by the exactly-once contract).
void Produce(TunerService& service, const Workload& w, size_t first,
             size_t last) {
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (size_t seq = first + static_cast<size_t>(p); seq < last;
           seq += 2) {
        service.SubmitAt(seq, w[seq]);
      }
    });
  }
  for (auto& t : producers) t.join();
}

std::vector<IndexSet> ReferenceHistory(Kind kind, size_t threads) {
  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  std::unique_ptr<Tuner> tuner = MakeTuner(kind, db);
  Workload w = BuildWorkload(db, kTotal);
  TunerService service(std::move(tuner), BaseOptions(threads));
  service.Start();
  for (const Vote& v : MakeVotes(ids)) {
    service.FeedbackAfter(v.after, v.plus, v.minus);
  }
  Produce(service, w, 0, kTotal);
  service.Shutdown();
  return service.History();
}

/// The crash + recover flow. Returns the reference-aligned suffix: the
/// recovered run's history starting at `*out_start` (the snapshot's
/// analyzed count, or 0 for a journal-only cold start).
std::vector<IndexSet> CrashAndRecover(Kind kind, size_t threads,
                                      bool drop_snapshots,
                                      uint64_t* out_start,
                                      RecoveryStats* out_stats) {
  const std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_recovery_" + std::to_string(::getpid()) + "_" +
        std::to_string(static_cast<int>(kind)) + "_" +
        std::to_string(threads) + (drop_snapshots ? "_nosnap" : "")))
          .string();
  fs::remove_all(dir);

  TunerServiceOptions options = BaseOptions(threads);
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 50;
  // Simulate the crash: no final checkpoint, so recovery must replay the
  // journal suffix past the last periodic snapshot.
  options.checkpoint_on_shutdown = false;

  // "Process 1": analyze the first kCrashAt statements, then die.
  {
    TestDb db;
    std::vector<IndexId> ids = SeedIds(db);
    std::unique_ptr<Tuner> tuner = MakeTuner(kind, db);
    Workload w = BuildWorkload(db, kTotal);
    auto service =
        TunerService::Open(std::move(tuner), &db.pool(), options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    (*service)->Start();
    for (const Vote& v : MakeVotes(ids)) {
      if (v.after < kCrashAt) {
        (*service)->FeedbackAfter(v.after, v.plus, v.minus);
      }
    }
    Produce(**service, w, 0, kCrashAt);
    EXPECT_TRUE((*service)->WaitUntilAnalyzed(kCrashAt));
    (*service)->Shutdown();
    MetricsSnapshot m = (*service)->Metrics();
    EXPECT_GE(m.journal_records, kCrashAt);
    if (!drop_snapshots) {
      EXPECT_GE(m.checkpoints_written, 1u);
    }
  }
  if (drop_snapshots) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".wfsnap") fs::remove(entry.path());
    }
  }

  // "Process 2": fresh everything, recover, finish the workload — the
  // producers replay the whole workload; recovered statements are dropped.
  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  std::unique_ptr<Tuner> tuner = MakeTuner(kind, db);
  Workload w = BuildWorkload(db, kTotal);
  RecoveryStats stats;
  auto service =
      TunerService::Open(std::move(tuner), &db.pool(), options, &stats);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(stats.analyzed, kCrashAt);
  (*service)->Start();
  for (const Vote& v : MakeVotes(ids)) {
    if (v.after >= kCrashAt) {
      (*service)->FeedbackAfter(v.after, v.plus, v.minus);
    }
  }
  Produce(**service, w, 0, kTotal);
  (*service)->Shutdown();
  *out_start = stats.snapshot_loaded ? stats.snapshot_analyzed : 0;
  if (out_stats != nullptr) *out_stats = stats;
  return (*service)->History();
}

void CheckRecoveryMatchesReference(Kind kind, size_t threads,
                                   bool drop_snapshots) {
  std::vector<IndexSet> reference = ReferenceHistory(kind, threads);
  ASSERT_EQ(reference.size(), kTotal);
  uint64_t start = 0;
  RecoveryStats stats;
  std::vector<IndexSet> recovered =
      CrashAndRecover(kind, threads, drop_snapshots, &start, &stats);
  ASSERT_EQ(recovered.size(), kTotal - start);
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[start + i])
        << "trajectory diverged at statement " << (start + i)
        << " (recovery started at " << start << ")";
  }
  if (drop_snapshots) {
    EXPECT_FALSE(stats.snapshot_loaded);
    EXPECT_EQ(stats.replayed_statements, kCrashAt);
  } else {
    EXPECT_TRUE(stats.snapshot_loaded);
    EXPECT_GE(stats.snapshot_analyzed, 50u);
    EXPECT_EQ(stats.replayed_statements, kCrashAt - stats.snapshot_analyzed);
  }
}

TEST(RecoveryTest, WfitBitForBitSerial) {
  CheckRecoveryMatchesReference(Kind::kWfit, 1, /*drop_snapshots=*/false);
}

TEST(RecoveryTest, WfitBitForBitParallel8) {
  CheckRecoveryMatchesReference(Kind::kWfit, 8, /*drop_snapshots=*/false);
}

TEST(RecoveryTest, WfaPlusBitForBitSerial) {
  CheckRecoveryMatchesReference(Kind::kWfaPlus, 1, /*drop_snapshots=*/false);
}

TEST(RecoveryTest, WfaPlusBitForBitParallel8) {
  CheckRecoveryMatchesReference(Kind::kWfaPlus, 8, /*drop_snapshots=*/false);
}

TEST(RecoveryTest, JournalOnlyColdStartReplaysEverything) {
  CheckRecoveryMatchesReference(Kind::kWfit, 1, /*drop_snapshots=*/true);
}

TEST(RecoveryTest, CrossStatementCacheIsSnapshotExemptAndRecoverySafe) {
  // The cross-statement what-if cache is deliberately NOT part of the
  // persisted state: a recovered process starts with a cold cache while
  // the uninterrupted reference ran fully warm. The bit-for-bit recovery
  // tests above already exercise this implicitly; here it is pinned down
  // explicitly: (1) the uninterrupted run takes cross-tier hits, (2) a
  // tuner with the tier disabled produces the identical trajectory, so a
  // cold post-recovery cache can never change the replayed trajectory.
  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  Workload w = BuildWorkload(db, 80);

  Wfit warm(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  WfitOptions no_cache_options = FastOptions();
  no_cache_options.cross_cache.max_templates = 0;
  TestDb db2;
  std::vector<IndexId> ids2 = SeedIds(db2);
  Workload w2 = BuildWorkload(db2, 80);
  Wfit cold(&db2.pool(), &db2.optimizer(), IndexSet{}, no_cache_options);

  for (size_t i = 0; i < w.size(); ++i) {
    warm.AnalyzeQuery(w[i]);
    cold.AnalyzeQuery(w2[i]);
    if (i == 30) {
      warm.Feedback(IndexSet{ids[0]}, IndexSet{ids[1]});
      cold.Feedback(IndexSet{ids2[0]}, IndexSet{ids2[1]});
    }
    ASSERT_EQ(warm.Recommendation(), cold.Recommendation())
        << "cache warmth changed the trajectory at statement " << i;
  }
  EXPECT_GT(warm.WhatIfCache().cross_hits, 0u)
      << "the workload repeats templates, so the warm run must differ from "
         "the cold one in probe counts";
  EXPECT_EQ(cold.WhatIfCache().cross_hits, 0u);
  // And the persisted state of the warm tuner says nothing about its
  // cache: exporting + restoring onto a fresh (cold-cache) tuner continues
  // identically — the exact recovery situation.
  WfitState state = warm.ExportState();
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, no_cache_options);
  ASSERT_TRUE(restored.RestoreState(state).ok());
  for (size_t i = 0; i < 40; ++i) {
    warm.AnalyzeQuery(w[i]);
    restored.AnalyzeQuery(w2[i]);
    ASSERT_EQ(warm.Recommendation(), restored.Recommendation())
        << "restored cold-cache tuner diverged at statement " << i;
  }
}

TEST(RecoveryTest, WalAheadOfAnalysisRequeuesIntakeAndKeepsVoteBoundaries) {
  // The crash window the analyzed markers exist for: the batch WAL made
  // statements 0..9 durable, but only 0..5 finished analysis (markers)
  // before the crash — and a vote keyed after statement 7 died in memory.
  // Recovery must resume the trajectory at 6 and hand 6..9 back as intake,
  // so the driver's re-registered vote still lands exactly after 7.
  const std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_recovery_wal_ahead_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    TestDb db;
    SeedIds(db);
    Workload w = BuildWorkload(db, 10);
    persist::JournalWriter jw;
    ASSERT_TRUE(jw.Open((fs::path(dir) / "journal.wfj").string(), 0, 0).ok());
    for (uint64_t seq = 0; seq < 10; ++seq) {
      ASSERT_TRUE(jw.AppendStatement(seq, w[seq]).ok());
    }
    for (uint64_t seq = 0; seq < 6; ++seq) {
      ASSERT_TRUE(jw.AppendAnalyzed(seq).ok());
    }
    ASSERT_TRUE(jw.Sync().ok());
  }

  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  Workload w = BuildWorkload(db, 10);
  TunerServiceOptions options = BaseOptions(1);
  options.checkpoint_dir = dir;
  RecoveryStats stats;
  auto service = TunerService::Open(MakeTuner(Kind::kWfit, db), &db.pool(),
                                    options, &stats);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(stats.analyzed, 6u);
  EXPECT_EQ(stats.replayed_statements, 6u);
  EXPECT_EQ(stats.requeued_statements, 4u);
  // Re-pin the vote BEFORE Start(): statements 6..9 are requeued intake
  // the worker analyzes the moment it spawns, and a vote registered after
  // that may land past its boundary (the driver contract: votes for
  // boundaries >= the recovery point re-register before analysis resumes).
  (*service)->FeedbackAfter(7, IndexSet{ids[0]}, IndexSet{ids[1]});
  (*service)->Start();
  // The producer replays the whole workload: 0..5 are dropped as already
  // analyzed, 6..9 collide with the requeued copies and are dropped too.
  Produce(**service, w, 0, 10);
  (*service)->Shutdown();
  std::vector<IndexSet> history = (*service)->History();
  ASSERT_EQ(history.size(), 10u);

  // Serial reference: the uninterrupted run with the vote after 7.
  TestDb ref_db;
  std::vector<IndexId> ref_ids = SeedIds(ref_db);
  Workload ref_w = BuildWorkload(ref_db, 10);
  std::unique_ptr<Tuner> ref = MakeTuner(Kind::kWfit, ref_db);
  for (size_t i = 0; i < 10; ++i) {
    ref->AnalyzeQuery(ref_w[i]);
    if (i == 7) ref->Feedback(IndexSet{ref_ids[0]}, IndexSet{ref_ids[1]});
    ASSERT_EQ(history[i], ref->Recommendation())
        << "diverged at statement " << i;
  }
}

TEST(RecoveryTest, JournalDeletedAfterCheckpointStillRecovers) {
  const std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_recovery_nojournal_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  TunerServiceOptions options = BaseOptions(1);
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 16;

  IndexSet final_rec;
  {
    TestDb db;
    SeedIds(db);
    Workload w = BuildWorkload(db, 40);
    auto service = TunerService::Open(MakeTuner(Kind::kWfit, db), &db.pool(),
                                      options);
    ASSERT_TRUE(service.ok());
    (*service)->Start();
    Produce(**service, w, 0, 40);
    (*service)->Shutdown();  // shutdown checkpoint covers the journal
    final_rec = (*service)->Recommendation()->configuration;
  }
  // An operator (or disk cleanup) removes the journal; the snapshot
  // references journal records that no longer exist. Recovery must accept
  // the snapshot as authoritative and re-stamp the LSN domain so future
  // recoveries stay consistent.
  fs::remove(fs::path(dir) / "journal.wfj");
  {
    TestDb db;
    SeedIds(db);
    Workload w = BuildWorkload(db, 60);
    RecoveryStats stats;
    auto service = TunerService::Open(MakeTuner(Kind::kWfit, db), &db.pool(),
                                      options, &stats);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_TRUE(stats.snapshot_loaded);
    EXPECT_EQ(stats.analyzed, 40u);
    EXPECT_EQ(stats.replayed_statements, 0u);
    EXPECT_EQ((*service)->tuner().Recommendation(), final_rec);
    // Continue past the re-stamp, crash-style, and recover once more: the
    // fresh journal + re-stamped snapshot must line up.
    (*service)->Start();
    Produce(**service, w, 40, 60);
    (*service)->Shutdown();
  }
  {
    TestDb db;
    SeedIds(db);
    RecoveryStats stats;
    auto service = TunerService::Open(MakeTuner(Kind::kWfit, db), &db.pool(),
                                      options, &stats);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    EXPECT_EQ(stats.analyzed, 60u);
  }
}

TEST(RecoveryTest, FreshDirectoryIsAColdStartWithJournaling) {
  const std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_recovery_fresh_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  std::unique_ptr<Tuner> tuner = MakeTuner(Kind::kWfit, db);
  Workload w = BuildWorkload(db, 40);
  TunerServiceOptions options = BaseOptions(1);
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 16;
  RecoveryStats stats;
  auto service =
      TunerService::Open(std::move(tuner), &db.pool(), options, &stats);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.analyzed, 0u);
  (*service)->Start();
  Produce(**service, w, 0, 40);
  (*service)->Shutdown();
  MetricsSnapshot m = (*service)->Metrics();
  // One WAL record + one analyzed marker per statement.
  EXPECT_EQ(m.journal_records, 80u);
  EXPECT_GE(m.checkpoints_written, 2u);  // cadence + shutdown checkpoint
  EXPECT_GT(m.last_snapshot_bytes, 0u);
  EXPECT_EQ(m.last_checkpoint_seq, 40u);
  EXPECT_GT(m.journal_syncs, 0u);
  // The shutdown checkpoint makes restart instant: nothing to replay.
  TestDb db2;
  SeedIds(db2);
  RecoveryStats stats2;
  auto service2 = TunerService::Open(MakeTuner(Kind::kWfit, db2),
                                     &db2.pool(), options, &stats2);
  ASSERT_TRUE(service2.ok()) << service2.status().ToString();
  EXPECT_TRUE(stats2.snapshot_loaded);
  EXPECT_EQ(stats2.analyzed, 40u);
  EXPECT_EQ(stats2.replayed_statements, 0u);
  // Not started yet: read the restored tuner directly.
  EXPECT_EQ((*service2)->tuner().Recommendation(),
            (*service)->Recommendation()->configuration);
}

}  // namespace
}  // namespace wfit::service
