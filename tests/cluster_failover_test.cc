// The self-healing guarantees of the membership layer: a node killed
// mid-workload is detected by lease expiry, its tenants are adopted by
// the survivors from the shared checkpoint tree, and the resumed
// trajectory is bit-for-bit what an uninterrupted run would have
// produced from the last durable boundary. Failover moves ONLY the dead
// node's tenants; a one-way partition makes a peer suspect but never
// falsely dead; the whole stack survives a deterministic fault-injection
// soak; the rebalancer drains a hot node to balance and stops; and
// decommission moves only the leaving node's tenants.
#include "cluster/membership.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/demo_env.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "net/fault.h"

namespace fs = std::filesystem;

namespace wfit::cluster {
namespace {

constexpr size_t kLongWorkload = 220;   // vote pinned after statement 149
constexpr size_t kShortWorkload = 60;   // below the first vote stage
const char kTenant[] = "tenant-0";

std::string TempRoot(const std::string& tag) {
  std::string dir = (fs::path(::testing::TempDir()) /
                     ("wfit_failover_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

service::TenantRouterOptions RouterOptions() {
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 32;
  options.shard.max_batch = 8;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = 100;
  // Crash realism: no parting checkpoint — only journaled state
  // survives, exactly what a SIGKILL would leave behind.
  options.shard.checkpoint_on_shutdown = false;
  options.analysis_threads = 1;
  options.drain_threads = 1;
  return options;
}

/// What a dedicated, never-disturbed router recommends for tenant-0
/// across the long workload (votes registered up front).
const std::vector<IndexSet>& ReferenceTrajectory() {
  static const std::vector<IndexSet>* reference = [] {
    auto env = std::make_shared<DemoFleetEnv>(kLongWorkload);
    auto options = RouterOptions();
    options.repin = env->MakeRepinner();
    service::TenantRouter router(env->MakeTunerFactory(), options);
    router.Start();
    for (const service::PinnedVote& vote : env->PinnedVotesFor(0, 0)) {
      router.FeedbackAfter(kTenant, vote.after_seq, vote.f_plus,
                           vote.f_minus);
    }
    const Workload& workload = env->Env(0).workload;
    for (size_t seq = 0; seq < workload.size(); ++seq) {
      EXPECT_TRUE(router.SubmitAt(kTenant, seq, workload[seq]));
    }
    EXPECT_TRUE(router.WaitUntilAnalyzed(kTenant, kLongWorkload));
    auto* history = new std::vector<IndexSet>(router.History(kTenant));
    router.Shutdown();
    return history;
  }();
  return *reference;
}

/// A membership-enabled in-process fleet sharing one DemoFleetEnv and
/// one fleet checkpoint root (node `n` persists under <root>/<n>, which
/// is what failover recovers from).
struct Fleet {
  std::shared_ptr<DemoFleetEnv> env;
  std::string fleet_root;
  std::vector<std::unique_ptr<TunerNode>> nodes;
  ClusterConfig config;

  Fleet(const std::string& tag, size_t statements,
        const std::vector<std::string>& ids,
        const MembershipOptions& membership,
        const std::map<std::string, std::string>& overrides = {})
      : env(std::make_shared<DemoFleetEnv>(statements)),
        fleet_root(TempRoot(tag)) {
    ClusterConfig boot;
    boot.version = 1;
    for (const std::string& id : ids) {
      boot.nodes.push_back({id, "127.0.0.1", 0});
    }
    boot.Normalize();
    for (const std::string& id : ids) {
      TunerNodeOptions options;
      options.node_id = id;
      options.config = boot;
      options.router = RouterOptions();
      options.router.repin = env->MakeRepinner();
      options.fleet_root = fleet_root;
      options.enable_membership = true;
      options.membership = membership;
      nodes.push_back(std::make_unique<TunerNode>(env->MakeTunerFactory(),
                                                  std::move(options)));
      EXPECT_TRUE(nodes.back()->Start().ok());
    }
    config.version = 2;
    for (auto& node : nodes) {
      config.nodes.push_back({node->node_id(), "127.0.0.1", node->port()});
    }
    for (const auto& [tenant, node] : overrides) {
      config.overrides[tenant] = node;
    }
    config.Normalize();
    for (auto& node : nodes) node->InstallConfig(config);
  }

  TunerNode& Node(const std::string& id) {
    for (auto& node : nodes) {
      if (node->node_id() == id) return *node;
    }
    ADD_FAILURE() << "no node " << id;
    return *nodes.front();
  }

  void Shutdown() {
    for (auto& node : nodes) node->Shutdown();
  }
};

ClusterClient MakeClient(const Fleet& fleet, uint64_t jitter_seed,
                         int retry_deadline_ms = 5000) {
  ClusterClientOptions options;
  options.retry_deadline_ms = retry_deadline_ms;
  options.jitter_seed = jitter_seed;
  return ClusterClient(fleet.config, options);
}

/// Resident + persisted tenants of a node, deduplicated.
std::vector<std::string> TenantsAt(TunerNode& node) {
  std::vector<std::string> all = node.router().ResidentTenants();
  for (std::string& t : node.router().PersistedTenants()) {
    if (std::find(all.begin(), all.end(), t) == all.end()) {
      all.push_back(std::move(t));
    }
  }
  std::sort(all.begin(), all.end());
  return all;
}

bool Holds(TunerNode& node, const std::string& tenant) {
  const std::vector<std::string> all = TenantsAt(node);
  return std::find(all.begin(), all.end(), tenant) != all.end();
}

MembershipOptions FastMembership() {
  MembershipOptions m;
  m.heartbeat_interval_ms = 25;
  m.suspect_after_misses = 3;
  m.lease_ms = 500;
  m.rpc_timeout_ms = 100;
  return m;
}

// --- 1. The tentpole: SIGKILL mid-workload, survivor adopts, suffix ---
// --- trajectory is bit-for-bit the reference from the last durable  ---
// --- boundary.                                                      ---

TEST(ClusterFailoverTest, FailoverRecoversTenantBitIdentical) {
  const std::vector<IndexSet>& reference = ReferenceTrajectory();
  ASSERT_EQ(reference.size(), kLongWorkload);

  // Pin the tenant to "a", the node we will kill. "b" (the survivor)
  // becomes acting coordinator the moment a's lease expires.
  Fleet fleet("bitident", kLongWorkload, {"a", "b"}, FastMembership(),
              {{kTenant, "a"}});

  std::atomic<bool> replay_ok{false};
  std::thread producer([&] {
    ClusterClient client = MakeClient(fleet, /*jitter_seed=*/42,
                                      /*retry_deadline_ms=*/3000);
    replay_ok.store(
        ReplayTenantWorkload(client, *fleet.env, 0, true, 120000));
  });

  // Kill "a" once the tenant is mid-workload. The statement-149 vote is
  // still in its future: recovery must re-pin it (repinner) and the
  // producer must resubmit what died in a's ingest queue.
  constexpr uint64_t kKillAfter = 60;
  TunerNode& a = fleet.Node("a");
  TunerNode& b = fleet.Node("b");
  while (a.router().analyzed(kTenant) < kKillAfter) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  a.Crash();

  producer.join();
  EXPECT_TRUE(replay_ok.load());

  // The survivor adopted the tenant and finished the workload.
  EXPECT_TRUE(b.router().IsResident(kTenant));
  EXPECT_EQ(b.router().analyzed(kTenant), kLongWorkload);
  EXPECT_EQ(b.Config().FindNode("a"), nullptr);
  const MembershipCounters counters = b.membership()->Counters();
  EXPECT_GE(counters.failovers, 1u);
  EXPECT_GE(counters.tenants_failed_over, 1u);
  EXPECT_GT(counters.last_takeover_ms, 0u);

  // Bit-for-bit identity from the last durable boundary: b's history
  // self-describes where it starts; every entry must match what the
  // never-disturbed reference produced at the same sequence. The start
  // must sit before the vote boundary (kill at ~60 + a ring of slack),
  // or the test would not prove the vote survived the failover.
  const uint64_t start = b.router().HistoryStart(kTenant);
  const std::vector<IndexSet> suffix = b.router().History(kTenant);
  ASSERT_EQ(start + suffix.size(), kLongWorkload);
  EXPECT_LT(start, 149u);
  for (size_t i = 0; i < suffix.size(); ++i) {
    ASSERT_EQ(suffix[i], reference[start + i])
        << "trajectory diverged at statement " << (start + i);
  }
  fleet.Shutdown();
}

// --- 2. Failover moves ONLY the dead node's tenants. ---

TEST(ClusterFailoverTest, FailoverMovesOnlyDeadNodesTenants) {
  Fleet fleet("onlydead", kShortWorkload, {"a", "b", "c"},
              FastMembership(),
              {{"tenant-0", "a"},
               {"tenant-1", "b"},
               {"tenant-2", "c"},
               {"tenant-3", "c"}});

  for (size_t t = 0; t < 4; ++t) {
    ClusterClient client = MakeClient(fleet, 100 + t);
    ASSERT_TRUE(ReplayTenantWorkload(client, *fleet.env, t, false, 60000))
        << "tenant-" << t;
  }
  TunerNode& a = fleet.Node("a");
  TunerNode& b = fleet.Node("b");
  ASSERT_TRUE(a.router().IsResident("tenant-0"));
  ASSERT_TRUE(b.router().IsResident("tenant-1"));

  fleet.Node("c").Crash();

  // "a" (lowest live id) is the acting coordinator; wait for it to
  // remove "c" from the config.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (a.Config().FindNode("c") != nullptr &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(a.Config().FindNode("c"), nullptr) << "failover never ran";
  // The config flips before the takeover bookkeeping (eager re-admission
  // of adopted tenants runs in between); wait for the counters too.
  while (a.membership()->Counters().tenants_failed_over < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Survivors' own tenants never moved — same incarnation, history
  // still starts at 0, resident all along.
  EXPECT_TRUE(a.router().IsResident("tenant-0"));
  EXPECT_TRUE(b.router().IsResident("tenant-1"));
  EXPECT_EQ(a.router().HistoryStart("tenant-0"), 0u);
  EXPECT_EQ(b.router().HistoryStart("tenant-1"), 0u);
  EXPECT_FALSE(Holds(a, "tenant-1"));
  EXPECT_FALSE(Holds(b, "tenant-0"));

  // The dead node's tenants were re-placed by rendezvous hash onto the
  // survivors (their overrides pointed at "c" and were dropped), and
  // live exactly where the successor config says.
  EXPECT_EQ(a.membership()->Counters().tenants_failed_over, 2u);
  const ClusterConfig after = a.Config();
  for (const std::string tenant : {"tenant-2", "tenant-3"}) {
    const std::string owner = OwnerOf(after, tenant)->id;
    ASSERT_TRUE(owner == "a" || owner == "b");
    EXPECT_TRUE(Holds(fleet.Node(owner), tenant)) << tenant;
    EXPECT_FALSE(Holds(fleet.Node(owner == "a" ? "b" : "a"), tenant))
        << tenant;
  }

  // The adopted tenants recover and finish serving: replaying their
  // (already fully analyzed) workload must converge without loss.
  for (size_t t = 2; t < 4; ++t) {
    ClusterClient client = MakeClient(fleet, 200 + t);
    EXPECT_TRUE(ReplayTenantWorkload(client, *fleet.env, t, false, 60000))
        << "tenant-" << t;
  }
  fleet.Shutdown();
}

// --- 3. One-way partition: suspect, never falsely dead. ---

TEST(ClusterFailoverTest, OneWayPartitionSuspectsButNeverKills) {
  net::ScopedFaultInjection faults(net::FaultOptions{});  // partitions only
  MembershipOptions membership = FastMembership();
  membership.lease_ms = 400;
  Fleet fleet("oneway", kShortWorkload, {"a", "b"}, membership);
  TunerNode& a = fleet.Node("a");
  TunerNode& b = fleet.Node("b");

  // Block this process's traffic TOWARD b: a's probes of b now fail,
  // while b's probes of a still land (and refresh b's lease at a — the
  // passive half of the protocol).
  net::FaultInjector::Get()->PartitionTo("127.0.0.1", b.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));

  bool saw_suspect = false;
  for (const PeerView& peer : a.membership()->Peers()) {
    if (peer.id != "b") continue;
    EXPECT_NE(peer.health, NodeHealth::kDead)
        << "one-way partition must never look like a death";
    saw_suspect = peer.health == NodeHealth::kSuspect;
    EXPECT_GE(peer.consecutive_misses, 3u);
  }
  EXPECT_TRUE(saw_suspect);
  EXPECT_EQ(a.membership()->Counters().failovers, 0u);
  EXPECT_EQ(b.membership()->Counters().failovers, 0u);
  EXPECT_NE(a.Config().FindNode("b"), nullptr);
  EXPECT_GT(net::FaultInjector::Get()->counters().partition_blocks, 0u);

  // Heal: the next successful probe clears the misses and the peer
  // drops back to alive on its own.
  net::FaultInjector::Get()->HealAll();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool alive = false;
  while (!alive && std::chrono::steady_clock::now() < deadline) {
    for (const PeerView& peer : a.membership()->Peers()) {
      if (peer.id == "b" && peer.health == NodeHealth::kAlive) alive = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(alive);
  fleet.Shutdown();
}

// --- 4. Deterministic chaos soak: scripted drops, tears, duplicates ---
// --- and delays — the trajectory still matches the clean reference. ---

TEST(ClusterFailoverTest, ChaosSoakKeepsTrajectoryIdentical) {
  const std::vector<IndexSet>& reference = ReferenceTrajectory();

  net::FaultOptions chaos;
  chaos.seed = 99;
  chaos.connect_fail = 0.05;
  chaos.send_drop = 0.05;
  chaos.send_tear = 0.03;
  chaos.send_dup = 0.03;
  chaos.delay = 0.10;
  chaos.delay_ms = 2;
  net::ScopedFaultInjection faults(chaos);

  // Generous lease: probes do get dropped, but never for a whole lease
  // in a row — nobody must die in this test.
  MembershipOptions membership;
  membership.heartbeat_interval_ms = 50;
  membership.suspect_after_misses = 3;
  membership.lease_ms = 2000;
  membership.rpc_timeout_ms = 250;
  Fleet fleet("chaos", kLongWorkload, {"a", "b"}, membership);

  ClusterClient client = MakeClient(fleet, /*jitter_seed=*/7);
  ASSERT_TRUE(ReplayTenantWorkload(client, *fleet.env, 0, true, 120000));

  TunerNode& owner = fleet.Node(OwnerOf(fleet.config, kTenant)->id);
  EXPECT_EQ(owner.router().analyzed(kTenant), kLongWorkload);
  EXPECT_EQ(owner.router().HistoryStart(kTenant), 0u);
  const std::vector<IndexSet> history = owner.router().History(kTenant);
  ASSERT_EQ(history.size(), kLongWorkload);
  for (size_t seq = 0; seq < kLongWorkload; ++seq) {
    ASSERT_EQ(history[seq], reference[seq])
        << "chaos changed the trajectory at statement " << seq;
  }
  // The soak must actually have injected faults, and survived them
  // without declaring anyone dead.
  EXPECT_GT(net::FaultInjector::Get()->counters().total(), 0u);
  EXPECT_EQ(fleet.Node("a").membership()->Counters().failovers, 0u);
  EXPECT_EQ(fleet.Node("b").membership()->Counters().failovers, 0u);
  fleet.Shutdown();
}

// --- 5. The rebalancer drains a hot node to balance, then stops. ---

TEST(ClusterFailoverTest, RebalancerDrainsHotNodeAndConverges) {
  MembershipOptions membership;
  membership.heartbeat_interval_ms = 50;
  membership.suspect_after_misses = 3;
  membership.lease_ms = 3000;  // migration I/O must not read as death
  membership.rpc_timeout_ms = 250;
  membership.rebalance_interval_ms = 100;
  membership.rebalance_min_spread = 1;
  membership.migration_budget_per_round = 1;
  Fleet fleet("rebalance", kShortWorkload, {"a", "b"}, membership,
              {{"tenant-0", "a"},
               {"tenant-1", "a"},
               {"tenant-2", "a"},
               {"tenant-3", "a"}});

  // Load all four tenants onto `a` with rebalancing paused — otherwise
  // the drain races the replays and the 4/0 starting point never exists.
  for (auto& node : fleet.nodes) {
    node->membership()->SetRebalancePaused(true);
  }
  for (size_t t = 0; t < 4; ++t) {
    ClusterClient client = MakeClient(fleet, 300 + t);
    ASSERT_TRUE(ReplayTenantWorkload(client, *fleet.env, t, false, 60000))
        << "tenant-" << t;
  }
  TunerNode& a = fleet.Node("a");
  TunerNode& b = fleet.Node("b");
  ASSERT_EQ(TenantsAt(a).size(), 4u);
  ASSERT_TRUE(TenantsAt(b).empty());
  for (auto& node : fleet.nodes) {
    node->membership()->SetRebalancePaused(false);
  }

  // 4/0 must drain to 2/2: one migration per round until the spread is
  // within rebalance_min_spread, and not a single tenant further.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((TenantsAt(a).size() != 2 || TenantsAt(b).size() != 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(TenantsAt(a).size(), 2u);
  EXPECT_EQ(TenantsAt(b).size(), 2u);
  EXPECT_GE(a.membership()->Counters().rebalance_migrations, 2u);

  // Converged: a few more rebalance rounds change nothing.
  const uint64_t settled =
      a.membership()->Counters().rebalance_migrations;
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_EQ(a.membership()->Counters().rebalance_migrations, settled);
  EXPECT_EQ(TenantsAt(a).size(), 2u);
  EXPECT_EQ(TenantsAt(b).size(), 2u);
  fleet.Shutdown();
}

// --- 6. Decommission drains ONLY the leaving node, which stays alive ---
// --- (empty) until the operator shuts it down.                       ---

TEST(ClusterFailoverTest, DecommissionMovesOnlyLeavingNodesTenants) {
  MembershipOptions membership = FastMembership();
  membership.lease_ms = 3000;  // drain I/O must not read as death
  Fleet fleet("decomm", kShortWorkload, {"a", "b", "c"}, membership,
              {{"tenant-0", "a"},
               {"tenant-1", "b"},
               {"tenant-2", "c"},
               {"tenant-3", "c"}});

  for (size_t t = 0; t < 4; ++t) {
    ClusterClient client = MakeClient(fleet, 400 + t);
    ASSERT_TRUE(ReplayTenantWorkload(client, *fleet.env, t, false, 60000))
        << "tenant-" << t;
  }
  TunerNode& a = fleet.Node("a");
  TunerNode& b = fleet.Node("b");
  TunerNode& c = fleet.Node("c");

  ClusterClient admin = MakeClient(fleet, 9, /*retry_deadline_ms=*/30000);
  net::Request req;
  req.type = net::MsgType::kDecommission;
  req.target_node = "c";
  auto resp = admin.CallNode("a", std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->kind, net::RespKind::kOk) << resp->message;

  // Only c's tenants moved; the others kept their incarnations.
  EXPECT_EQ(a.Config().FindNode("c"), nullptr);
  EXPECT_TRUE(a.router().IsResident("tenant-0"));
  EXPECT_TRUE(b.router().IsResident("tenant-1"));
  EXPECT_EQ(a.router().HistoryStart("tenant-0"), 0u);
  EXPECT_EQ(b.router().HistoryStart("tenant-1"), 0u);
  EXPECT_TRUE(TenantsAt(c).empty());
  const ClusterConfig after = a.Config();
  for (const std::string tenant : {"tenant-2", "tenant-3"}) {
    const std::string owner = OwnerOf(after, tenant)->id;
    ASSERT_TRUE(owner == "a" || owner == "b");
    EXPECT_TRUE(Holds(fleet.Node(owner), tenant)) << tenant;
  }
  EXPECT_EQ(a.membership()->Counters().decommissions, 1u);

  // The drained node is still alive — it answers RPCs, just owns
  // nothing. The operator decides when it actually goes away.
  net::Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", c.port()).ok());
  net::Request ping;
  ping.type = net::MsgType::kGetConfig;
  auto pong = direct.Call(ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->kind, net::RespKind::kOk);
  fleet.Shutdown();
}

}  // namespace
}  // namespace wfit::cluster
