#include "optimizer/caching_what_if.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/worker_pool.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using wfit::testing::TestDb;

TEST(CachingWhatIfTest, MissThenHitWithinOneStatement) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&q);

  uint64_t base_before = db.optimizer().num_calls();
  PlanSummary first = memo.Optimize(q, IndexSet{a});
  PlanSummary second = memo.Optimize(q, IndexSet{a});
  EXPECT_EQ(db.optimizer().num_calls(), base_before + 1)
      << "the second probe must be served from the memo";
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.bypasses(), 0u);
  EXPECT_EQ(memo.num_calls(), 2u);
  EXPECT_DOUBLE_EQ(first.cost, second.cost);
  EXPECT_EQ(first.used, second.used);
}

TEST(CachingWhatIfTest, ValuesMatchTheBaseOptimizer) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId b = db.Ix("t1", {"b"});
  IndexId x = db.Ix("t2", {"x"});
  Statement q = db.Bind(
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5");
  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&q);
  std::vector<IndexSet> configs = {IndexSet{}, IndexSet{a}, IndexSet{a, b},
                                   IndexSet{a, b, x}, IndexSet{x}};
  for (const IndexSet& c : configs) {
    PlanSummary direct = db.optimizer().Optimize(q, c);
    PlanSummary cached_cold = memo.Optimize(q, c);
    PlanSummary cached_warm = memo.Optimize(q, c);
    EXPECT_DOUBLE_EQ(direct.cost, cached_cold.cost) << c.ToString();
    EXPECT_DOUBLE_EQ(direct.cost, cached_warm.cost) << c.ToString();
    EXPECT_EQ(direct.used, cached_warm.used) << c.ToString();
  }
  EXPECT_EQ(memo.hits(), configs.size());
  EXPECT_EQ(memo.misses(), configs.size());
}

TEST(CachingWhatIfTest, NoStaleCostsAcrossStatements) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  // Same table, same index, different predicates: the costs differ, so a
  // stale cache entry would be observable.
  Statement q1 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  Statement q2 = db.Bind("SELECT count(*) FROM t1 WHERE a = 7");
  double direct1 = db.optimizer().Cost(q1, IndexSet{a});
  double direct2 = db.optimizer().Cost(q2, IndexSet{a});
  ASSERT_NE(direct1, direct2) << "test needs distinguishable statements";

  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&q1);
  EXPECT_DOUBLE_EQ(memo.Optimize(q1, IndexSet{a}).cost, direct1);
  EXPECT_GT(memo.scoped_entries(), 0u);

  memo.BeginStatement(&q2);
  EXPECT_EQ(memo.scoped_entries(), 0u) << "BeginStatement must clear tier 1";
  EXPECT_DOUBLE_EQ(memo.Optimize(q2, IndexSet{a}).cost, direct2)
      << "different predicates mean a different fingerprint: the cross tier "
         "must not serve q1's cost";

  // Back to q1: its second sighting admits it to the cross tier (filled by
  // this statement's probes)...
  memo.BeginStatement(&q1);
  EXPECT_DOUBLE_EQ(memo.Optimize(q1, IndexSet{a}).cost, direct1);
  // ...so the third sighting is served from it, with q1's (correct) cost.
  memo.BeginStatement(&q1);
  uint64_t misses_before = memo.misses();
  uint64_t cross_before = memo.cross_hits();
  EXPECT_DOUBLE_EQ(memo.Optimize(q1, IndexSet{a}).cost, direct1);
  EXPECT_EQ(memo.misses(), misses_before);
  EXPECT_EQ(memo.cross_hits(), cross_before + 1);
}

TEST(CachingWhatIfTest, CrossTierDisabledRestoresPerStatementSemantics) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  Statement q1 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  CrossStatementCacheOptions off;
  off.max_templates = 0;
  CachingWhatIfOptimizer memo(&db.optimizer(), off);
  memo.BeginStatement(&q1);
  memo.Optimize(q1, IndexSet{a});
  memo.BeginStatement(&q1);  // same statement, re-scoped
  memo.Optimize(q1, IndexSet{a});
  EXPECT_EQ(memo.misses(), 2u) << "disabled tier must not survive re-scope";
  EXPECT_EQ(memo.cross_hits(), 0u);
  EXPECT_EQ(memo.cross_templates(), 0u);
}

TEST(CachingWhatIfTest, CrossTierServesRepeatedTemplates) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  // Two distinct Statement objects with identical structure: the realistic
  // repeated-template case (a re-bound prepared statement).
  Statement q1 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  Statement q2 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  ASSERT_EQ(q1.Fingerprint(), q2.Fingerprint());
  ASSERT_TRUE(SameCostShape(q1, q2));

  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&q1);
  double cost1 = memo.Optimize(q1, IndexSet{a}).cost;
  EXPECT_EQ(memo.misses(), 1u);
  EXPECT_EQ(memo.cross_templates(), 0u)
      << "second-touch admission: one sighting earns no entry";

  memo.BeginStatement(&q2);  // second sighting: admitted + filled
  memo.Optimize(q2, IndexSet{a});
  EXPECT_EQ(memo.cross_templates(), 1u);

  memo.BeginStatement(&q1);  // third sighting: served
  uint64_t base_before = db.optimizer().num_calls();
  double cost3 = memo.Optimize(q1, IndexSet{a}).cost;
  EXPECT_EQ(db.optimizer().num_calls(), base_before)
      << "the repeat must not reach the real optimizer";
  EXPECT_EQ(memo.cross_hits(), 1u);
  EXPECT_DOUBLE_EQ(cost1, cost3);
  // Within the same statement, the promoted entry is a statement-tier hit.
  memo.Optimize(q1, IndexSet{a});
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.cross_templates(), 1u) << "one template, seen three times";
}

TEST(CachingWhatIfTest, CrossTierLruEvictsLeastRecentTemplate) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  // Four structurally distinct templates (bound literals are not part of
  // the structure, but columns and selectivities are).
  std::vector<Statement> stmts = {
      db.Bind("SELECT count(*) FROM t1 WHERE a = 1"),
      db.Bind("SELECT count(*) FROM t1 WHERE b = 2"),
      db.Bind("SELECT count(*) FROM t1 WHERE c = 3"),
      db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 50"),
  };
  ASSERT_NE(stmts[0].Fingerprint(), stmts[3].Fingerprint());
  CrossStatementCacheOptions opts;
  opts.max_templates = 2;
  CachingWhatIfOptimizer memo(&db.optimizer(), opts);
  // Two passes: the first leaves second-touch footprints, the second
  // admits every template in order — overflowing the 2-entry LRU.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Statement& q : stmts) {
      memo.BeginStatement(&q);
      memo.Optimize(q, IndexSet{a});
    }
  }
  EXPECT_EQ(memo.cross_templates(), 2u) << "LRU bound must hold";
  // stmts[3] and stmts[2] are resident; stmts[0] was evicted first.
  memo.BeginStatement(&stmts[3]);
  memo.Optimize(stmts[3], IndexSet{a});
  EXPECT_EQ(memo.cross_hits(), 1u);
  memo.BeginStatement(&stmts[0]);
  uint64_t misses_before = memo.misses();
  memo.Optimize(stmts[0], IndexSet{a});
  EXPECT_EQ(memo.misses(), misses_before + 1) << "evicted template is cold";
}

TEST(CachingWhatIfTest, PerTemplateConfigBoundStopsInsertsNotServing) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId b = db.Ix("t1", {"b"});
  IndexId c = db.Ix("t1", {"c"});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 3 AND b = 4");
  CrossStatementCacheOptions opts;
  opts.max_configs_per_template = 2;
  CachingWhatIfOptimizer memo(&db.optimizer(), opts);
  memo.BeginStatement(&q);  // first sighting: footprint only
  memo.BeginStatement(&q);  // admitted; probes below fill the entry
  memo.Optimize(q, IndexSet{a});
  memo.Optimize(q, IndexSet{b});
  memo.Optimize(q, IndexSet{c});  // over the per-template bound
  memo.BeginStatement(&q);        // re-scope: tier 1 cold, cross tier warm
  uint64_t base_before = db.optimizer().num_calls();
  memo.Optimize(q, IndexSet{a});
  memo.Optimize(q, IndexSet{b});
  EXPECT_EQ(db.optimizer().num_calls(), base_before)
      << "bounded template still serves its resident configurations";
  EXPECT_EQ(memo.cross_hits(), 2u);
  memo.Optimize(q, IndexSet{c});
  EXPECT_EQ(db.optimizer().num_calls(), base_before + 1)
      << "the configuration past the bound was not retained";
}

TEST(CachingWhatIfTest, ProbesOutsideTheScopedStatementBypass) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  Statement scoped = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  Statement other = db.Bind("SELECT count(*) FROM t1 WHERE a = 2");
  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&scoped);

  double direct = db.optimizer().Cost(other, IndexSet{a});
  EXPECT_DOUBLE_EQ(memo.Optimize(other, IndexSet{a}).cost, direct);
  EXPECT_DOUBLE_EQ(memo.Optimize(other, IndexSet{a}).cost, direct);
  EXPECT_EQ(memo.bypasses(), 2u) << "non-scoped probes never cache";
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 0u);
}

TEST(CachingWhatIfTest, CostModelPassesThroughToTheBase) {
  TestDb db;
  CachingWhatIfOptimizer memo(&db.optimizer());
  EXPECT_EQ(&memo.cost_model(), &db.optimizer().cost_model());
}

TEST(CachingWhatIfTest, ConcurrentProbesAreConsistent) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId b = db.Ix("t1", {"b"});
  IndexId c = db.Ix("t1", {"c"});
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3");
  std::vector<IndexSet> configs = {IndexSet{},     IndexSet{a},
                                   IndexSet{b},    IndexSet{c},
                                   IndexSet{a, b}, IndexSet{a, c},
                                   IndexSet{b, c}, IndexSet{a, b, c}};
  std::vector<double> expected;
  for (const IndexSet& cfg : configs) {
    expected.push_back(db.optimizer().Cost(q, cfg));
  }

  CachingWhatIfOptimizer memo(&db.optimizer());
  memo.BeginStatement(&q);
  WorkerPool pool(4);
  constexpr size_t kProbes = 400;
  std::vector<double> got(kProbes);
  pool.ParallelFor(kProbes, [&](size_t i) {
    got[i] = memo.Optimize(q, configs[i % configs.size()]).cost;
  });
  for (size_t i = 0; i < kProbes; ++i) {
    EXPECT_DOUBLE_EQ(got[i], expected[i % configs.size()]) << "probe " << i;
  }
  EXPECT_EQ(memo.hits() + memo.misses(), kProbes);
  // Duplicate concurrent computation of a not-yet-inserted key is allowed,
  // but bounded by the thread count per key in practice; leave generous
  // slack (5 threads x 8 keys) so the assertion never flakes.
  EXPECT_GE(memo.hits(), kProbes - 5 * configs.size());
}

}  // namespace
}  // namespace wfit
