#include "persist/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "persist/codec.h"
#include "tests/test_util.h"

namespace wfit::persist {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

std::string TempPath(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("wfit_journal_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  return (dir / name).string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Bit-exact statement comparison through the wire codec.
std::string Wire(const Statement& stmt) {
  Encoder e;
  EncodeStatement(stmt, &e);
  return e.data();
}

class JournalTest : public ::testing::Test {
 protected:
  TestDb db_;
};

TEST_F(JournalTest, StatementCodecRoundTrips) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t3 WHERE v = 9",
  };
  for (const char* sql : shapes) {
    Statement original = db_.Bind(sql);
    Encoder e;
    EncodeStatement(original, &e);
    Decoder d(e.data());
    Statement decoded;
    ASSERT_TRUE(DecodeStatement(&d, &decoded).ok()) << sql;
    EXPECT_TRUE(d.done());
    EXPECT_EQ(Wire(original), Wire(decoded)) << sql;
    EXPECT_EQ(original.sql, decoded.sql);
  }
}

TEST_F(JournalTest, AppendAndReadBack) {
  const std::string path = TempPath("roundtrip.wfj");
  fs::remove(path);
  Statement s0 = db_.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150");
  Statement s1 = db_.Bind("UPDATE t1 SET d = 1 WHERE a = 77");
  IndexSet plus{3, 7};
  IndexSet minus{11};
  {
    JournalWriter w;
    ASSERT_TRUE(w.Open(path, 0, 0).ok());
    ASSERT_TRUE(w.AppendStatement(0, s0).ok());
    ASSERT_TRUE(w.AppendStatement(1, s1).ok());
    ASSERT_TRUE(w.AppendFeedback(2, /*post=*/true, plus, minus).ok());
    ASSERT_TRUE(w.AppendAnalyzed(1).ok());
    ASSERT_TRUE(w.Sync().ok());
    EXPECT_EQ(w.lsn(), 4u);
    EXPECT_EQ(w.syncs(), 1u);
  }
  auto result = ReadJournal(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 4u);
  EXPECT_FALSE(result->truncated_tail);
  EXPECT_EQ(result->valid_bytes, fs::file_size(path));
  EXPECT_EQ(result->records[0].type, JournalRecordType::kStatement);
  EXPECT_EQ(result->records[0].seq, 0u);
  EXPECT_EQ(Wire(result->records[0].statement), Wire(s0));
  EXPECT_EQ(result->records[1].seq, 1u);
  EXPECT_EQ(Wire(result->records[1].statement), Wire(s1));
  EXPECT_EQ(result->records[2].type, JournalRecordType::kFeedback);
  EXPECT_EQ(result->records[2].boundary, 2u);
  EXPECT_TRUE(result->records[2].post);
  EXPECT_EQ(result->records[2].f_plus, plus);
  EXPECT_EQ(result->records[2].f_minus, minus);
  EXPECT_EQ(result->records[3].type, JournalRecordType::kAnalyzed);
  EXPECT_EQ(result->records[3].seq, 1u);
}

TEST_F(JournalTest, EpochRecordsRoundTrip) {
  const std::string path = TempPath("epochs.wfj");
  fs::remove(path);
  Statement s0 = db_.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150");
  {
    JournalWriter w;
    ASSERT_TRUE(w.Open(path, 0, 0).ok());
    // Epoch before its batch's statements, the order AnalyzeBatch writes.
    ASSERT_TRUE(w.AppendEpoch(0, /*overload_mode=*/1, /*sample_rate=*/1.0,
                              /*sample_seed=*/42)
                    .ok());
    ASSERT_TRUE(w.AppendStatement(0, s0).ok());
    ASSERT_TRUE(w.AppendEpoch(1, /*overload_mode=*/2, /*sample_rate=*/0.25,
                              /*sample_seed=*/42)
                    .ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  auto result = ReadJournal(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].type, JournalRecordType::kEpoch);
  EXPECT_EQ(result->records[0].seq, 0u);
  EXPECT_EQ(result->records[0].overload_mode, 1);
  EXPECT_DOUBLE_EQ(result->records[0].sample_rate, 1.0);
  EXPECT_EQ(result->records[0].sample_seed, 42u);
  EXPECT_EQ(result->records[1].type, JournalRecordType::kStatement);
  EXPECT_EQ(result->records[2].type, JournalRecordType::kEpoch);
  EXPECT_EQ(result->records[2].seq, 1u);
  EXPECT_EQ(result->records[2].overload_mode, 2);
  EXPECT_DOUBLE_EQ(result->records[2].sample_rate, 0.25);
}

TEST_F(JournalTest, MissingFileIsNotFound) {
  auto result = ReadJournal(TempPath("does_not_exist.wfj"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(JournalTest, TornTailIsTolerated) {
  const std::string path = TempPath("torn.wfj");
  fs::remove(path);
  Statement stmt = db_.Bind("SELECT count(*) FROM t3 WHERE v = 9");
  {
    JournalWriter w;
    ASSERT_TRUE(w.Open(path, 0, 0).ok());
    for (uint64_t seq = 0; seq < 3; ++seq) {
      ASSERT_TRUE(w.AppendStatement(seq, stmt).ok());
    }
    ASSERT_TRUE(w.Sync().ok());
  }
  std::string contents = ReadFile(path);
  // A crash mid-append leaves a partial final record.
  WriteFile(path, contents.substr(0, contents.size() - 5));
  auto result = ReadJournal(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 2u);
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_LT(result->valid_bytes, contents.size());
  EXPECT_EQ(result->records[1].seq, 1u);
}

TEST_F(JournalTest, CorruptRecordStopsReplayAtLastGoodRecord) {
  const std::string path = TempPath("corrupt.wfj");
  fs::remove(path);
  Statement stmt = db_.Bind("SELECT count(*) FROM t3 WHERE v = 9");
  uint64_t first_record_end = 0;
  {
    JournalWriter w;
    ASSERT_TRUE(w.Open(path, 0, 0).ok());
    ASSERT_TRUE(w.AppendStatement(0, stmt).ok());
    first_record_end = w.bytes();
    ASSERT_TRUE(w.AppendStatement(1, stmt).ok());
    ASSERT_TRUE(w.AppendStatement(2, stmt).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  std::string contents = ReadFile(path);
  // Flip one payload byte inside the second record.
  contents[first_record_end + 10] ^= 0x40;
  WriteFile(path, contents);
  auto result = ReadJournal(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 1u);
  EXPECT_TRUE(result->truncated_tail);
  EXPECT_EQ(result->valid_bytes, first_record_end);
}

TEST_F(JournalTest, ReopenTruncatesTornTailAndAppends) {
  const std::string path = TempPath("reopen.wfj");
  fs::remove(path);
  Statement stmt = db_.Bind("SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40");
  {
    JournalWriter w;
    ASSERT_TRUE(w.Open(path, 0, 0).ok());
    ASSERT_TRUE(w.AppendStatement(0, stmt).ok());
    ASSERT_TRUE(w.AppendStatement(1, stmt).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  std::string contents = ReadFile(path);
  WriteFile(path, contents + "torn-garbage");
  auto before = ReadJournal(path);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->truncated_tail);
  ASSERT_EQ(before->records.size(), 2u);
  // Recovery-style reopen: truncate to the last complete record, append.
  {
    JournalWriter w;
    ASSERT_TRUE(
        w.Open(path, before->valid_bytes, before->records.size()).ok());
    EXPECT_EQ(w.lsn(), 2u);
    ASSERT_TRUE(w.AppendStatement(2, stmt).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  auto after = ReadJournal(path);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->truncated_tail);
  ASSERT_EQ(after->records.size(), 3u);
  EXPECT_EQ(after->records[2].seq, 2u);
}

}  // namespace
}  // namespace wfit::persist
