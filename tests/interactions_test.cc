#include "ibg/interactions.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(InteractionsTest, DoiIsSymmetric) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200 AND b BETWEEN 0 "
      "AND 120");
  std::vector<IndexId> cands = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"}),
                                db.Ix("t1", {"a", "b"})};
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = 0; j < cands.size(); ++j) {
      if (i == j) continue;
      EXPECT_NEAR(
          DegreeOfInteraction(ibg, static_cast<int>(i), static_cast<int>(j)),
          DegreeOfInteraction(ibg, static_cast<int>(j), static_cast<int>(i)),
          1e-9);
    }
  }
}

TEST(InteractionsTest, IntersectablePairInteracts) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 200 AND b BETWEEN 0 AND 100");
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  IndexBenefitGraph ibg(q, db.optimizer(), {ia, ib});
  double doi = DegreeOfInteraction(ibg, ibg.BitOf(ia), ibg.BitOf(ib));
  EXPECT_GT(doi, 0.0);
}

TEST(InteractionsTest, IndicesOnDifferentTablesOfSeparateQueriesAreIndependent) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ix = db.Ix("t2", {"x"});
  IndexBenefitGraph ibg(q, db.optimizer(), {ia, ix});
  EXPECT_DOUBLE_EQ(DegreeOfInteraction(ibg, ibg.BitOf(ia), ibg.BitOf(ix)),
                   0.0);
}

TEST(InteractionsTest, RedundantIndexesInteract) {
  // ix(a) and ix(a,b) serve the same predicate: the benefit of one drops
  // when the other is present — a (negative-type) interaction.
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 500 AND b = 3");
  IndexId ia = db.Ix("t1", {"a"});
  IndexId iab = db.Ix("t1", {"a", "b"});
  IndexBenefitGraph ibg(q, db.optimizer(), {ia, iab});
  EXPECT_GT(DegreeOfInteraction(ibg, ibg.BitOf(ia), ibg.BitOf(iab)), 0.0);
}

TEST(InteractionsTest, ComputeInteractionsListsPositivePairsOnly) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 200 AND b BETWEEN 0 AND 100");
  std::vector<IndexId> cands = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"}),
                                db.Ix("t2", {"x"})};
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  std::vector<InteractionEntry> entries = ComputeInteractions(ibg);
  for (const InteractionEntry& e : entries) {
    EXPECT_GT(e.doi, 0.0);
    EXPECT_NE(e.a, db.Ix("t2", {"x"}));
    EXPECT_NE(e.b, db.Ix("t2", {"x"}));
  }
  // The a/b pair must be among them.
  bool found = false;
  for (const InteractionEntry& e : entries) {
    if ((e.a == cands[0] && e.b == cands[1]) ||
        (e.a == cands[1] && e.b == cands[0])) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InteractionsTest, DoiMatchesBruteForceDefinition) {
  // doi(a,b) = max_X |benefit({a}, X) − benefit({a}, X ∪ {b})| via direct
  // what-if arithmetic over all contexts.
  TestDb db;
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 300 AND b BETWEEN 0 AND 150");
  std::vector<IndexId> cands = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"}),
                                db.Ix("t1", {"c"})};
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  int bit_a = ibg.BitOf(cands[0]);
  int bit_b = ibg.BitOf(cands[1]);
  double doi = DegreeOfInteraction(ibg, bit_a, bit_b);

  double brute = 0.0;
  const Mask ab = (Mask{1} << bit_a) | (Mask{1} << bit_b);
  const Mask full = static_cast<Mask>((1u << cands.size()) - 1);
  for (Mask x = 0; x <= full; ++x) {
    if ((x & ab) != 0) continue;
    auto cost = [&](Mask m) { return db.optimizer().Cost(q, ibg.ToSet(m)); };
    double v = cost(x) - cost(x | (Mask{1} << bit_a)) -
               cost(x | (Mask{1} << bit_b)) + cost(x | ab);
    brute = std::max(brute, std::abs(v));
  }
  EXPECT_NEAR(doi, brute, 1e-6 * std::max(1.0, brute));
}

TEST(InteractionsDeathTest, SelfInteractionAborts) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  IndexBenefitGraph ibg(q, db.optimizer(), {db.Ix("t1", {"a"})});
  EXPECT_DEATH({ (void)DegreeOfInteraction(ibg, 0, 0); }, "itself");
}

}  // namespace
}  // namespace wfit
