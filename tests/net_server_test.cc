// The epoll server + blocking client under friendly and hostile use:
// round trips, pipelining (including slow-path admin RPCs interleaved
// with fast ones on one connection — response order must match request
// order), garbage bytes, half-frames, and peers that vanish mid-RPC.
// Protocol damage must always surface as a clean Status on the affected
// connection and leave the server serving everyone else.
#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"

namespace wfit::net {
namespace {

/// Echo server: fast requests answer immediately, kDrain is "slow" (admin
/// thread + 20ms stall) so tests can overlap the two planes.
class EchoServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(
        [this](const Request& req) {
          fast_count_.fetch_add(1);
          Response resp;
          resp.text = "fast:" + req.tenant;
          return resp;
        },
        [this](const Request& req) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          slow_count_.fetch_add(1);
          Response resp;
          resp.text = "slow:" + req.tenant;
          return resp;
        },
        [](MsgType type) { return type == MsgType::kDrain; });
    ASSERT_TRUE(server_->Start().ok());
  }

  Request Ping(const std::string& tag) {
    Request req;
    req.type = MsgType::kPing;
    req.tenant = tag;
    return req;
  }

  std::unique_ptr<Server> server_;
  std::atomic<int> fast_count_{0};
  std::atomic<int> slow_count_{0};
};

TEST_F(EchoServerTest, RoundTripsManyRequests) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  for (int i = 0; i < 50; ++i) {
    auto resp = client.Call(Ping(std::to_string(i)));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->kind, RespKind::kOk);
    EXPECT_EQ(resp->text, "fast:" + std::to_string(i));
  }
  EXPECT_EQ(fast_count_.load(), 50);
  EXPECT_EQ(server_->requests_served(), 50u);
}

TEST_F(EchoServerTest, ConcurrentClientsAreIsolated) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 25; ++i) {
        const std::string tag = std::to_string(c) + ":" + std::to_string(i);
        auto resp = client.Call(Ping(tag));
        if (!resp.ok() || resp->text != "fast:" + tag) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Writes raw bytes and reads framed responses without the Client's
/// one-at-a-time discipline — for pipelining and hostile-input tests.
struct RawConn {
  int fd = -1;
  FrameReader reader;

  explicit RawConn(uint16_t port) {
    auto connected = ConnectTcp("127.0.0.1", port);
    if (connected.ok()) fd = *connected;
  }
  ~RawConn() { CloseFd(fd); }

  StatusOr<Response> ReadResponse() {
    std::string payload;
    while (true) {
      auto next = reader.Next(&payload);
      if (!next.ok()) return next.status();
      if (*next) break;
      char buf[4096];
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return Status::Internal("connection closed");
      reader.Feed(buf, static_cast<size_t>(n));
    }
    Response resp;
    WFIT_RETURN_IF_ERROR(DecodeResponse(payload, &resp));
    return resp;
  }
};

TEST_F(EchoServerTest, PipelinedRequestsAnswerInOrder) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    Request req;
    req.type = MsgType::kPing;
    req.tenant = std::to_string(i);
    wire += EncodeFrame(EncodeRequest(req));
  }
  ASSERT_TRUE(WriteAll(conn.fd, wire).ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->text, "fast:" + std::to_string(i));
  }
}

TEST_F(EchoServerTest, SlowAndFastInterleavedKeepOrder) {
  // slow, fast, slow, fast... pipelined in one burst: the admin-thread
  // hop for slow requests must not let a later fast response overtake.
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  std::string wire;
  std::vector<std::string> expect;
  for (int i = 0; i < 6; ++i) {
    Request req;
    req.type = (i % 2 == 0) ? MsgType::kDrain : MsgType::kPing;
    req.tenant = std::to_string(i);
    expect.push_back((i % 2 == 0 ? "slow:" : "fast:") + req.tenant);
    wire += EncodeFrame(EncodeRequest(req));
  }
  ASSERT_TRUE(WriteAll(conn.fd, wire).ok());
  for (int i = 0; i < 6; ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->text, expect[i]) << "response " << i;
  }
  EXPECT_EQ(slow_count_.load(), 3);
}

TEST_F(EchoServerTest, SlowRequestDoesNotBlockOtherConnections) {
  RawConn slow_conn(server_->port());
  ASSERT_GE(slow_conn.fd, 0);
  Request drain;
  drain.type = MsgType::kDrain;
  ASSERT_TRUE(
      WriteAll(slow_conn.fd, EncodeFrame(EncodeRequest(drain))).ok());
  // While the admin thread stalls 20ms, a fast request on another
  // connection must complete well within that window.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = client.Call(Ping("concurrent"));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(resp.ok());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  auto slow_resp = slow_conn.ReadResponse();
  ASSERT_TRUE(slow_resp.ok());
  EXPECT_EQ(slow_resp->text, "slow:");
}

TEST_F(EchoServerTest, CorruptFrameGetsErrorResponseThenClose) {
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  std::string wire = EncodeFrame(EncodeRequest(Ping("x")));
  wire[wire.size() - 1] ^= 0x20;  // flip a payload bit -> CRC mismatch
  ASSERT_TRUE(WriteAll(conn.fd, wire).ok());
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->kind, RespKind::kError);
  EXPECT_EQ(resp->code, StatusCode::kInvalidArgument);
  // After the error the server closes; further reads hit EOF.
  auto eof = conn.ReadResponse();
  EXPECT_FALSE(eof.ok());
  // ...and the server still serves new connections.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_TRUE(client.Call(Ping("after")).ok());
}

TEST_F(EchoServerTest, UndecodablePayloadGetsErrorResponse) {
  // Valid frame, garbage inside: the wire decoder (not the framer)
  // rejects it; still an error response, not a dropped connection with
  // no explanation and never an abort.
  RawConn conn(server_->port());
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(
      WriteAll(conn.fd, EncodeFrame("\x01\xee not a request")).ok());
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->kind, RespKind::kError);
}

TEST_F(EchoServerTest, AbruptDisconnectMidFrameIsHarmless) {
  {
    RawConn conn(server_->port());
    ASSERT_GE(conn.fd, 0);
    const std::string wire = EncodeFrame(EncodeRequest(Ping("torn")));
    // Half a frame, then vanish.
    ASSERT_TRUE(
        WriteAll(conn.fd, std::string_view(wire).substr(0, wire.size() / 2))
            .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto resp = client.Call(Ping("alive"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->text, "fast:alive");
}

TEST(NetClientTest, TornResponseStreamIsACleanStatus) {
  // A "server" that reads the request and then sends half a response
  // frame before closing: the client must report a mid-RPC close, not
  // hang or crash.
  auto listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = LocalPort(*listener);
  ASSERT_TRUE(port.ok());
  std::thread fake_server([fd = *listener] {
    int conn = ::accept(fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    char buf[4096];
    (void)::recv(conn, buf, sizeof(buf), 0);
    Response resp;
    resp.text = "you will never read all of this";
    const std::string wire = EncodeFrame(EncodeResponse(resp));
    (void)WriteAll(conn, std::string_view(wire).substr(0, wire.size() / 2));
    CloseFd(conn);
  });
  Client client;
  Client::Options opts;
  opts.timeout_ms = 2000;
  ASSERT_TRUE(client.Connect("127.0.0.1", *port, opts).ok());
  Request req;
  req.type = MsgType::kPing;
  auto resp = client.Call(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("mid-RPC"), std::string::npos)
      << resp.status().ToString();
  EXPECT_FALSE(client.connected());  // poisoned stream dropped
  fake_server.join();
  CloseFd(*listener);
}

TEST(NetClientTest, ConnectionRefusedIsAStatus) {
  Client client;
  // Port 1 is essentially never listening.
  EXPECT_FALSE(client.Connect("127.0.0.1", 1).ok());
}

TEST(AdminQueueTest, ShedsWithBusyUnderBacklogAndDrainsToZero) {
  // Tiny admin queue + a deliberately slow handler: with two workers
  // occupied and two jobs queued, every further admin RPC must be shed
  // with kBusy immediately instead of queueing unboundedly — and once
  // the burst passes, the depth gauge must read zero again.
  ServerOptions options;
  options.max_admin_queue = 2;
  std::atomic<int> slow_served{0};
  Server server(
      [](const Request&) { return Response{}; },
      [&slow_served](const Request&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        slow_served.fetch_add(1);
        return Response{};
      },
      [](MsgType type) { return type == MsgType::kDrain; }, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 10;
  std::atomic<int> busy{0}, ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &busy, &ok] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      Request req;
      req.type = MsgType::kDrain;
      auto resp = client.Call(req);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      if (resp->kind == RespKind::kBusy) {
        busy.fetch_add(1);
      } else if (resp->kind == RespKind::kOk) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  // 2 workers + 2 queue slots < 10 near-simultaneous jobs: some were
  // shed, some served, and nobody hung.
  EXPECT_GT(busy.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(busy.load() + ok.load(), kClients);
  EXPECT_EQ(ok.load(), slow_served.load());
  EXPECT_GT(server.admin_shed_total(), 0u);
  EXPECT_EQ(server.admin_queue_depth(), 0u);
  server.Shutdown();
}

}  // namespace
}  // namespace wfit::net
