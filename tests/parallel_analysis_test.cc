// Determinism contract of the parallel analysis engine: the recommendation
// trajectory of a tuner is bit-for-bit identical for every worker-pool
// width, because per-part tasks touch disjoint WfaInstances and the
// what-if layer is a pure function of (statement, configuration).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/worker_pool.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "service/tuner_service.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
      "SELECT count(*) FROM t2 WHERE x = 17 AND y = 3",
      "SELECT count(*) FROM t1 WHERE c = 42",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

/// Runs `tuner` over `w` with feedback interleaved after the keyed
/// statements, recording the recommendation after every statement.
std::vector<IndexSet> Trajectory(
    Tuner* tuner, const Workload& w,
    const std::map<size_t, std::pair<IndexSet, IndexSet>>& feedback) {
  std::vector<IndexSet> out;
  out.reserve(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    tuner->AnalyzeQuery(w[i]);
    auto it = feedback.find(i);
    if (it != feedback.end()) {
      tuner->Feedback(it->second.first, it->second.second);
    }
    out.push_back(tuner->Recommendation());
  }
  return out;
}

TEST(ParallelAnalysisTest, WfitTrajectoryIdenticalAcrossThreadCounts) {
  TestDb db;
  Workload w = BuildWorkload(db, 500);
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  IndexId ix = db.Ix("t2", {"x"});
  // Interleaved DBA feedback: votes in, vetoes, and a flip-flop.
  std::map<size_t, std::pair<IndexSet, IndexSet>> feedback = {
      {50, {IndexSet{ib}, IndexSet{}}},
      {120, {IndexSet{}, IndexSet{ia}}},
      {250, {IndexSet{ia}, IndexSet{ib}}},
      {400, {IndexSet{ix}, IndexSet{}}},
  };

  std::vector<IndexSet> reference;
  for (size_t threads : {1, 2, 8}) {
    Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
    std::unique_ptr<WorkerPool> pool;
    if (threads > 1) {
      // threads - 1 workers + the analyzing thread = `threads` total.
      pool = std::make_unique<WorkerPool>(threads - 1);
      tuner.SetAnalysisPool(pool.get());
    }
    std::vector<IndexSet> got = Trajectory(&tuner, w, feedback);
    WhatIfCacheCounters cache = tuner.WhatIfCache();
    EXPECT_GT(cache.misses, 0u);
    EXPECT_EQ(cache.probes(), cache.hits + cache.cross_hits + cache.misses);
    EXPECT_GT(cache.cross_hits, 0u)
        << "the repeated-template workload must warm the cross tier";
    if (threads == 1) {
      reference = got;
      continue;
    }
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(got[i], reference[i])
          << "divergence at statement " << i << " with " << threads
          << " analysis threads";
    }
  }
}

TEST(ParallelAnalysisTest, WfitTrajectoryIdenticalColdWarmOrDisabledCache) {
  // The cross-statement what-if cache is purely a probe-avoidance layer:
  // with it disabled, cold, or pre-warmed by a whole prior workload, the
  // recommendation trajectory must be bit-for-bit identical (costs are a
  // pure function of statement and configuration).
  TestDb db;
  Workload w = BuildWorkload(db, 200);
  std::map<size_t, std::pair<IndexSet, IndexSet>> feedback = {
      {60, {IndexSet{db.Ix("t1", {"b"})}, IndexSet{}}},
      {140, {IndexSet{}, IndexSet{db.Ix("t1", {"a"})}}},
  };

  WfitOptions disabled_options = FastOptions();
  disabled_options.cross_cache.max_templates = 0;
  Wfit disabled(&db.pool(), &db.optimizer(), IndexSet{}, disabled_options);
  std::vector<IndexSet> reference = Trajectory(&disabled, w, feedback);
  EXPECT_EQ(disabled.WhatIfCache().cross_hits, 0u);

  Wfit cold(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> got_cold = Trajectory(&cold, w, feedback);
  EXPECT_GT(cold.WhatIfCache().cross_hits, 0u);
  ASSERT_EQ(got_cold.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(got_cold[i], reference[i])
        << "cold-cache divergence at statement " << i;
  }

  // The workload cycles 10 templates, so the "cold" run above is served by
  // a warm tier from the second cycle onward — the comparison against the
  // disabled run covers cold, warming, and warm statements alike. Assert
  // the tier really carried the repeats.
  EXPECT_GT(cold.WhatIfCache().cross_hit_rate(), 0.2)
      << "repeated templates must be served by the cross tier";
}

TEST(ParallelAnalysisTest, WfaPlusFixedPartitionIdenticalAcrossThreadCounts) {
  TestDb db;
  Workload w = BuildWorkload(db, 200);
  std::vector<IndexSet> partition = {
      IndexSet{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})},
      IndexSet{db.Ix("t1", {"c"}), db.Ix("t1", {"a", "b"})},
      IndexSet{db.Ix("t2", {"x"}), db.Ix("t2", {"y"})},
      IndexSet{db.Ix("t2", {"fk"})},
      IndexSet{db.Ix("t3", {"v"})},
  };
  std::map<size_t, std::pair<IndexSet, IndexSet>> feedback = {
      {40, {IndexSet{db.Ix("t1", {"c"})}, IndexSet{}}},
      {100, {IndexSet{}, IndexSet{db.Ix("t1", {"a"})}}},
  };

  std::vector<IndexSet> reference;
  for (size_t threads : {1, 2, 8}) {
    WfaPlus tuner(&db.pool(), &db.optimizer(), partition, IndexSet{});
    std::unique_ptr<WorkerPool> pool;
    if (threads > 1) {
      // threads - 1 workers + the analyzing thread = `threads` total.
      pool = std::make_unique<WorkerPool>(threads - 1);
      tuner.SetAnalysisPool(pool.get());
    }
    std::vector<IndexSet> got = Trajectory(&tuner, w, feedback);
    if (threads == 1) {
      reference = got;
      continue;
    }
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(got[i], reference[i])
          << "divergence at statement " << i << " with " << threads
          << " analysis threads";
    }
  }
}

TEST(ParallelAnalysisTest, MemoHitsAcrossPartsOfOneStatement) {
  TestDb db;
  // Two parts over the same table guarantee overlapping probe keys within
  // one statement (at minimum the per-part IBG leaves), so the memo must
  // register hits while the trajectory stays correct.
  std::vector<IndexSet> partition = {
      IndexSet{db.Ix("t1", {"a"})},
      IndexSet{db.Ix("t1", {"b"})},
      IndexSet{db.Ix("t1", {"c"})},
  };
  Workload w = BuildWorkload(db, 30);
  WfaPlus tuner(&db.pool(), &db.optimizer(), partition, IndexSet{});
  for (const Statement& q : w) tuner.AnalyzeQuery(q);
  WhatIfCacheCounters cache = tuner.WhatIfCache();
  EXPECT_GT(cache.misses, 0u);
  EXPECT_GT(cache.hits, 0u)
      << "per-part IBGs of one statement share configuration probes";
  EXPECT_GT(cache.hit_rate(), 0.0);
}

TEST(ParallelAnalysisTest, ServiceWithParallelAnalysisMatchesSerialReplay) {
  TestDb db;
  Workload w = BuildWorkload(db, 96);

  // Serial reference, directly on a tuner.
  Wfit serial(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> reference = Trajectory(&serial, w, {});

  service::TunerServiceOptions options;
  options.queue_capacity = 16;
  options.max_batch = 5;
  options.analysis_threads = 4;
  options.record_history = true;
  service::TunerService svc(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  svc.Start();
  for (size_t i = 0; i < w.size(); ++i) ASSERT_TRUE(svc.SubmitAt(i, w[i]));
  svc.Shutdown();
  std::vector<IndexSet> got = svc.History();
  ASSERT_EQ(got.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(got[i], reference[i]) << "divergence at statement " << i;
  }
  service::MetricsSnapshot m = svc.Metrics();
  EXPECT_EQ(m.analysis_threads, 4u);
  EXPECT_GT(m.what_if_cache_misses, 0u);
}

}  // namespace
}  // namespace wfit
