#include "optimizer/selectivity.h"

#include <gtest/gtest.h>

namespace wfit {
namespace {

ColumnInfo Col(uint64_t distinct, double lo, double hi) {
  ColumnInfo c;
  c.name = "c";
  c.distinct_values = distinct;
  c.width_bytes = 8;
  c.min_value = lo;
  c.max_value = hi;
  return c;
}

TEST(SelectivityTest, Equality) {
  EXPECT_DOUBLE_EQ(EqualitySelectivity(Col(100, 0, 1)), 0.01);
  EXPECT_DOUBLE_EQ(EqualitySelectivity(Col(1, 0, 1)), 1.0);
}

TEST(SelectivityTest, RangeBasic) {
  ColumnInfo c = Col(1000, 0, 100);
  EXPECT_NEAR(RangeSelectivity(c, 0, 10), 0.1, 1e-12);
  EXPECT_NEAR(RangeSelectivity(c, 0, 100), 1.0, 1e-12);
}

TEST(SelectivityTest, RangeClampsToDomain) {
  ColumnInfo c = Col(1000, 0, 100);
  EXPECT_NEAR(RangeSelectivity(c, -50, 10), 0.1, 1e-12);
  EXPECT_NEAR(RangeSelectivity(c, -50, 150), 1.0, 1e-12);
}

TEST(SelectivityTest, RangeOutsideDomainIsZero) {
  ColumnInfo c = Col(1000, 0, 100);
  EXPECT_DOUBLE_EQ(RangeSelectivity(c, 200, 300), 0.0);
  EXPECT_DOUBLE_EQ(RangeSelectivity(c, 10, 5), 0.0);
}

TEST(SelectivityTest, DegenerateRangeFloorsAtOneValueGroup) {
  ColumnInfo c = Col(1000, 0, 100);
  // A point range selects at least 1/distinct.
  EXPECT_DOUBLE_EQ(RangeSelectivity(c, 50, 50), 1.0 / 1000);
}

TEST(SelectivityTest, CompareOps) {
  ColumnInfo c = Col(100, 0, 100);
  EXPECT_DOUBLE_EQ(CompareSelectivity(c, sql::CompareOp::kEq, 5), 0.01);
  EXPECT_DOUBLE_EQ(CompareSelectivity(c, sql::CompareOp::kEq, 500), 0.0);
  EXPECT_NEAR(CompareSelectivity(c, sql::CompareOp::kLt, 25), 0.25, 1e-12);
  EXPECT_NEAR(CompareSelectivity(c, sql::CompareOp::kGe, 75), 0.25, 1e-12);
  EXPECT_NEAR(CompareSelectivity(c, sql::CompareOp::kNe, 5), 0.99, 1e-12);
}

TEST(SelectivityTest, JoinUsesLargerDistinctCount) {
  EXPECT_DOUBLE_EQ(JoinSelectivity(Col(100, 0, 1), Col(1000, 0, 1)), 0.001);
  EXPECT_DOUBLE_EQ(JoinSelectivity(Col(1000, 0, 1), Col(100, 0, 1)), 0.001);
}

TEST(SelectivityTest, StringMappingIsDeterministicAndInDomain) {
  ColumnInfo c = Col(100, 10, 20);
  double v1 = MapStringToDomain(c, "hello");
  double v2 = MapStringToDomain(c, "hello");
  double v3 = MapStringToDomain(c, "world");
  EXPECT_DOUBLE_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  EXPECT_GE(v1, 10.0);
  EXPECT_LE(v1, 20.0);
}

class RangeWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(RangeWidthSweep, SelectivityProportionalToWidth) {
  ColumnInfo c = Col(1000000, 0, 1000);
  double width = GetParam();
  double sel = RangeSelectivity(c, 100, 100 + width);
  EXPECT_NEAR(sel, width / 1000.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, RangeWidthSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0,
                                           500.0));

}  // namespace
}  // namespace wfit
