#include "core/stats.h"

#include <gtest/gtest.h>

namespace wfit {
namespace {

TEST(RecencyWindowTest, EmptyWindowIsZero) {
  RecencyWindow w(10);
  EXPECT_DOUBLE_EQ(w.CurrentValue(100), 0.0);
  EXPECT_TRUE(w.empty());
}

TEST(RecencyWindowTest, ZeroHistSizeDisablesHistory) {
  // hist_size = 0 is a legal knob value: records are dropped and the
  // window stays permanently empty (and must not crash the ring indexing).
  RecencyWindow w(0);
  w.Record(1, 5.0);
  w.Record(2, 7.0);
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.CurrentValue(3), 0.0);
  EXPECT_TRUE(w.Entries().empty());
  w.RestoreEntries({{1, 5.0}, {2, 7.0}});
  EXPECT_TRUE(w.empty());
}

TEST(RecencyWindowTest, SingleEntryFormula) {
  RecencyWindow w(10);
  w.Record(5, 12.0);
  // value*_N = 12 / (N − 5 + 1).
  EXPECT_DOUBLE_EQ(w.CurrentValue(5), 12.0);
  EXPECT_DOUBLE_EQ(w.CurrentValue(10), 12.0 / 6.0);
  EXPECT_DOUBLE_EQ(w.CurrentValue(16), 1.0);
}

TEST(RecencyWindowTest, MaxOverSuffixAverages) {
  // Entries (n=1,b=10), (n=9,b=1), now N=10:
  //   ℓ=1: 1 / (10−9+1)      = 0.5
  //   ℓ=2: (1+10) / (10−1+1) = 1.1   <- max
  RecencyWindow w(10);
  w.Record(1, 10.0);
  w.Record(9, 1.0);
  EXPECT_DOUBLE_EQ(w.CurrentValue(10), 1.1);
}

TEST(RecencyWindowTest, RecentSpikesDominate) {
  // A big recent benefit outweighs a long history of small ones.
  RecencyWindow w(100);
  for (uint64_t n = 1; n <= 50; ++n) w.Record(n, 1.0);
  w.Record(51, 100.0);
  // ℓ=1: 100/1 = 100 clearly the max.
  EXPECT_DOUBLE_EQ(w.CurrentValue(51), 100.0);
}

TEST(RecencyWindowTest, HistSizeEvictsOldest) {
  RecencyWindow w(3);
  w.Record(1, 1000.0);  // will be evicted
  w.Record(2, 1.0);
  w.Record(3, 1.0);
  w.Record(4, 1.0);
  EXPECT_EQ(w.size(), 3u);
  // If the 1000 entry survived, the value at N=4 would be ≥ 1000/4 = 250.
  EXPECT_LT(w.CurrentValue(4), 10.0);
}

TEST(RecencyWindowDeathTest, DecreasingPositionsAbort) {
  RecencyWindow w(4);
  w.Record(10, 1.0);
  EXPECT_DEATH({ w.Record(9, 1.0); }, "non-decreasing");
}

TEST(BenefitStatsTest, IgnoresNonPositiveBenefits) {
  BenefitStats stats(10);
  stats.Record(1, 1, 0.0);
  stats.Record(1, 2, -5.0);
  EXPECT_DOUBLE_EQ(stats.CurrentBenefit(1, 5), 0.0);
  stats.Record(1, 3, 6.0);
  EXPECT_GT(stats.CurrentBenefit(1, 3), 0.0);
}

TEST(BenefitStatsTest, UnknownIndexIsZero) {
  BenefitStats stats(10);
  EXPECT_DOUBLE_EQ(stats.CurrentBenefit(42, 100), 0.0);
}

TEST(BenefitStatsTest, TracksIndicesIndependently) {
  BenefitStats stats(10);
  stats.Record(1, 5, 10.0);
  stats.Record(2, 5, 20.0);
  EXPECT_DOUBLE_EQ(stats.CurrentBenefit(1, 5), 10.0);
  EXPECT_DOUBLE_EQ(stats.CurrentBenefit(2, 5), 20.0);
}

TEST(InteractionStatsTest, PairKeyIsUnordered) {
  InteractionStats stats(10);
  stats.Record(3, 7, 1, 5.0);
  EXPECT_DOUBLE_EQ(stats.CurrentDoi(3, 7, 1), 5.0);
  EXPECT_DOUBLE_EQ(stats.CurrentDoi(7, 3, 1), 5.0);
  EXPECT_TRUE(stats.HasInteraction(7, 3));
  EXPECT_FALSE(stats.HasInteraction(3, 8));
}

TEST(InteractionStatsTest, IgnoresZeroDoi) {
  InteractionStats stats(10);
  stats.Record(1, 2, 1, 0.0);
  EXPECT_FALSE(stats.HasInteraction(1, 2));
}

TEST(InteractionStatsDeathTest, SelfPairAborts) {
  InteractionStats stats(10);
  EXPECT_DEATH({ stats.Record(4, 4, 1, 1.0); }, "itself");
}

TEST(InteractionStatsTest, DecaysWithDistance) {
  InteractionStats stats(10);
  stats.Record(1, 2, 10, 8.0);
  double near = stats.CurrentDoi(1, 2, 10);
  double far = stats.CurrentDoi(1, 2, 100);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
}

}  // namespace
}  // namespace wfit
