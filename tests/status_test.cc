#include "common/status.h"

#include <gtest/gtest.h>

namespace wfit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* rendered;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument: m"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound: m"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       "AlreadyExists: m"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OutOfRange: m"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FailedPrecondition: m"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal: m"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), c.rendered);
  }
}

TEST(StatusTest, EmptyMessageRendersCodeOnly) {
  EXPECT_EQ(Status::NotFound("").ToString(), "NotFound");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

Status Fails() { return Status::OutOfRange("deep"); }
Status Propagates() {
  WFIT_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "deep");
}

TEST(StatusDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH({ (void)v.value(); }, "StatusOr");
}

}  // namespace
}  // namespace wfit
