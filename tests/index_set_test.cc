#include "core/index_set.h"

#include <gtest/gtest.h>

namespace wfit {
namespace {

TEST(IndexSetTest, InitializerListSortsAndDedupes) {
  IndexSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  std::vector<IndexId> ids(s.begin(), s.end());
  EXPECT_EQ(ids, (std::vector<IndexId>{1, 3, 5}));
}

TEST(IndexSetTest, FromVector) {
  IndexSet s = IndexSet::FromVector({9, 2, 2, 7});
  EXPECT_EQ(s.ToString(), "{2, 7, 9}");
}

TEST(IndexSetTest, AddRemoveContains) {
  IndexSet s;
  EXPECT_TRUE(s.Add(4));
  EXPECT_FALSE(s.Add(4));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Remove(4));
  EXPECT_FALSE(s.Remove(4));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.empty());
}

TEST(IndexSetTest, SetAlgebra) {
  IndexSet a{1, 2, 3};
  IndexSet b{3, 4};
  EXPECT_EQ(a.Union(b), (IndexSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (IndexSet{3}));
  EXPECT_EQ(a.Minus(b), (IndexSet{1, 2}));
  EXPECT_EQ(b.Minus(a), (IndexSet{4}));
}

TEST(IndexSetTest, SubsetChecks) {
  IndexSet a{1, 3};
  IndexSet b{1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(IndexSet{}.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(IndexSetTest, EqualityAndHash) {
  IndexSet a{1, 2};
  IndexSet b{2, 1};
  IndexSet c{1, 2, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Hash inequality is not guaranteed in theory, but must hold for these
  // small distinct sets in practice.
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(IndexSetTest, AlgebraLeavesOperandsUntouched) {
  IndexSet a{1, 2};
  IndexSet b{2, 3};
  (void)a.Union(b);
  (void)a.Minus(b);
  (void)a.Intersect(b);
  EXPECT_EQ(a, (IndexSet{1, 2}));
  EXPECT_EQ(b, (IndexSet{2, 3}));
}

TEST(IndexSetTest, IterationIsSorted) {
  IndexSet s;
  for (IndexId id : {9u, 4u, 7u, 1u}) s.Add(id);
  IndexId prev = 0;
  bool first = true;
  for (IndexId id : s) {
    if (!first) {
      EXPECT_GT(id, prev);
    }
    prev = id;
    first = false;
  }
}

}  // namespace
}  // namespace wfit
