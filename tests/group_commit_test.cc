// Group commit: the FsyncBatcher coalesces journal fsyncs across shards
// without weakening durability. Unit tests pin the batcher's contract
// (required syncs block until durable, deferred syncs drain within a
// window, Forget makes closing safe); service and router tests pin the
// invariant that matters — batched fsyncs change WHEN durability happens,
// never WHAT is analyzed: trajectories are bit-identical with and without
// the batcher, including across a crash.
#include "service/fsync_batcher.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/wfit.h"
#include "service/tenant_router.h"
#include "service/tuner_service.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

std::string TempRoot(const std::string& tag) {
  std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_groupcommit_" + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

/// An O_RDWR descriptor onto a fresh temp file the batcher can fsync.
int OpenScratchFd(const std::string& tag, size_t i) {
  std::string path =
      (fs::path(::testing::TempDir()) /
       ("wfit_gc_fd_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(i)))
          .string();
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  EXPECT_GE(fd, 0);
  (void)::write(fd, "x", 1);
  return fd;
}

TEST(FsyncBatcherTest, RequiredSyncIsServedAndCounted) {
  FsyncBatcher batcher;
  int fd = OpenScratchFd("required", 0);
  EXPECT_TRUE(batcher.SyncRequired(fd).ok());
  EXPECT_TRUE(batcher.SyncRequired(fd).ok());
  FsyncBatcher::Stats stats = batcher.GetStats();
  EXPECT_EQ(stats.required, 2u);
  EXPECT_GE(stats.cycles, 1u);
  EXPECT_GE(stats.sync_calls, 1u);
  batcher.Forget(fd);
  ::close(fd);
}

TEST(FsyncBatcherTest, ConcurrentRequiredSyncsShareWindows) {
  // A wide window so all 8 threads reliably land in the same drain cycle
  // even on a loaded CI machine — the coalescing assertion below depends
  // on it.
  FsyncBatcher::Options options;
  options.window_us = 20000;
  FsyncBatcher batcher(options);
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 3;
  std::vector<int> fds;
  for (size_t i = 0; i < kThreads; ++i) {
    fds.push_back(OpenScratchFd("concurrent", i));
  }
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t r = 0; r < kRounds && results[t].ok(); ++r) {
        results[t] = batcher.SyncRequired(fds[t]);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].ok()) << results[t].ToString();
  }
  FsyncBatcher::Stats stats = batcher.GetStats();
  EXPECT_EQ(stats.required, kThreads * kRounds);
  EXPECT_GE(stats.cycles, 1u);
  // The whole point: far fewer kernel flushes than caller syncs. With 8
  // descriptors per window the syncfs fast path caps a cycle at one call.
  EXPECT_LT(stats.sync_calls, kThreads * kRounds);
  for (int fd : fds) {
    batcher.Forget(fd);
    ::close(fd);
  }
}

TEST(FsyncBatcherTest, DeferredSyncDrainsWithinAWindow) {
  FsyncBatcher batcher;
  int fd = OpenScratchFd("deferred", 0);
  const uint64_t cycles_before = batcher.GetStats().cycles;
  batcher.SyncDeferred(fd);
  // The drain thread must pick the dirty fd up on its own; poll with a
  // generous timeout (the window is 200us, CI machines are slow).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    FsyncBatcher::Stats stats = batcher.GetStats();
    if (stats.cycles > cycles_before && stats.deferred == 1u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FsyncBatcher::Stats stats = batcher.GetStats();
  EXPECT_GT(stats.cycles, cycles_before) << "deferred sync never drained";
  EXPECT_EQ(stats.deferred, 1u);
  batcher.Forget(fd);
  ::close(fd);
}

TEST(FsyncBatcherTest, ForgetMakesCloseSafe) {
  FsyncBatcher batcher;
  int fd = OpenScratchFd("forget", 0);
  batcher.SyncDeferred(fd);
  batcher.Forget(fd);  // pending deferred state dropped
  ::close(fd);
  // A full drain cycle after the close must not touch the dead (possibly
  // recycled) descriptor: another required sync on a live fd forces one.
  int live = OpenScratchFd("forget", 1);
  EXPECT_TRUE(batcher.SyncRequired(live).ok());
  batcher.Forget(live);
  ::close(live);
}

// --- Service-level invariants ---------------------------------------------

constexpr size_t kTotal = 160;
constexpr size_t kCrashAt = 110;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

TunerServiceOptions DurableOptions(const std::string& dir) {
  TunerServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 5;
  options.record_history = true;
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 50;
  options.checkpoint_on_shutdown = false;
  return options;
}

std::vector<IndexSet> RunService(const TunerServiceOptions& options,
                                 size_t n) {
  TestDb db;
  Workload w = BuildWorkload(db, n);
  auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                      IndexSet{}, FastOptions());
  auto service = TunerService::Open(std::move(tuner), &db.pool(), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  (*service)->Start();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE((*service)->SubmitAt(i, w[i]));
  }
  (*service)->Shutdown();
  return (*service)->History();
}

TEST(GroupCommitServiceTest, BatchedSyncsDoNotChangeTheTrajectory) {
  const std::string plain_dir = TempRoot("traj_plain");
  const std::string batched_dir = TempRoot("traj_batched");
  std::vector<IndexSet> plain = RunService(DurableOptions(plain_dir), kTotal);

  FsyncBatcher batcher;
  TunerServiceOptions options = DurableOptions(batched_dir);
  options.fsync_batcher = &batcher;
  std::vector<IndexSet> batched = RunService(options, kTotal);

  ASSERT_EQ(plain.size(), batched.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i], batched[i])
        << "group commit changed the trajectory at statement " << i;
  }
  FsyncBatcher::Stats stats = batcher.GetStats();
  EXPECT_GT(stats.required, 0u) << "batcher never used";
  EXPECT_GT(stats.deferred, 0u) << "tail syncs not deferred";
}

TEST(GroupCommitServiceTest, CrashRecoveryWithBatchedSyncsIsBitIdentical) {
  const std::string dir = TempRoot("crash");
  FsyncBatcher batcher;
  TunerServiceOptions options = DurableOptions(dir);
  options.fsync_batcher = &batcher;

  // "Process 1" dies after kCrashAt with only batched durability.
  {
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                        IndexSet{}, FastOptions());
    auto service = TunerService::Open(std::move(tuner), &db.pool(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    (*service)->Start();
    for (size_t i = 0; i < kCrashAt; ++i) {
      ASSERT_TRUE((*service)->SubmitAt(i, w[i]));
    }
    ASSERT_TRUE((*service)->WaitUntilAnalyzed(kCrashAt));
    (*service)->Shutdown();
  }

  // "Process 2" recovers (no batcher needed — recovery only reads) and
  // finishes; the suffix must match the uninterrupted reference.
  TestDb db;
  Workload w = BuildWorkload(db, kTotal);
  auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                      IndexSet{}, FastOptions());
  RecoveryStats stats;
  auto service = TunerService::Open(std::move(tuner), &db.pool(),
                                    DurableOptions(dir), &stats);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(stats.analyzed, kCrashAt)
      << "batched fsyncs lost durably-analyzed work";
  (*service)->Start();
  for (size_t i = 0; i < kTotal; ++i) {
    (*service)->SubmitAt(i, w[i]);
  }
  (*service)->Shutdown();
  std::vector<IndexSet> recovered = (*service)->History();

  TestDb ref_db;
  Workload ref_w = BuildWorkload(ref_db, kTotal);
  Wfit ref(&ref_db.pool(), &ref_db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> reference;
  for (size_t i = 0; i < kTotal; ++i) {
    ref.AnalyzeQuery(ref_w[i]);
    reference.push_back(ref.Recommendation());
  }
  const uint64_t start = stats.snapshot_analyzed;
  ASSERT_EQ(recovered.size(), kTotal - start);
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[start + i])
        << "trajectory diverged at statement " << (start + i);
  }
}

TEST(GroupCommitRouterTest, SharedBatcherAcrossTenantsIsLossless) {
  constexpr size_t kTenants = 3;
  constexpr size_t kStatements = 40;

  auto run = [&](bool group_commit) {
    const std::string root =
        TempRoot(group_commit ? "router_gc" : "router_plain");
    std::vector<std::unique_ptr<TestDb>> dbs;
    for (size_t t = 0; t < kTenants; ++t) {
      dbs.push_back(std::make_unique<TestDb>());
    }
    std::vector<Workload> workloads;
    for (size_t t = 0; t < kTenants; ++t) {
      workloads.push_back(BuildWorkload(*dbs[t], kStatements));
    }
    TenantRouterOptions options;
    options.shard.queue_capacity = 64;
    options.shard.max_batch = 5;
    options.shard.record_history = true;
    options.shard.checkpoint_every_statements = 16;
    options.checkpoint_root = root;
    options.drain_threads = 0;
    options.group_commit = group_commit;
    TenantRouter router(
        [&dbs](const std::string& id) {
          TestDb& db = *dbs[std::stoul(id.substr(3))];
          TenantTuner made;
          made.tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                              IndexSet{}, FastOptions());
          made.pool = &db.pool();
          return made;
        },
        options);
    router.Start();
    for (size_t i = 0; i < kStatements; ++i) {
      for (size_t t = 0; t < kTenants; ++t) {
        EXPECT_TRUE(
            router.Submit("db-" + std::to_string(t), workloads[t][i]));
      }
    }
    while (!router.DrainOne().empty()) {
    }
    router.Shutdown();
    std::vector<std::vector<IndexSet>> histories;
    for (size_t t = 0; t < kTenants; ++t) {
      histories.push_back(router.History("db-" + std::to_string(t)));
    }
    RouterMetricsSnapshot metrics = router.Metrics();
    return std::make_pair(histories, metrics);
  };

  auto [plain, plain_metrics] = run(false);
  auto [batched, batched_metrics] = run(true);

  ASSERT_EQ(plain.size(), batched.size());
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_EQ(plain[t].size(), batched[t].size());
    for (size_t i = 0; i < plain[t].size(); ++i) {
      ASSERT_EQ(plain[t][i], batched[t][i])
          << "tenant " << t << " diverged at statement " << i;
    }
  }
  // The batcher actually carried the shards' syncs...
  EXPECT_GT(batched_metrics.group_commit_required, 0u);
  EXPECT_GT(batched_metrics.group_commit_cycles, 0u);
  // ...and the plain run reports no batcher activity at all.
  EXPECT_EQ(plain_metrics.group_commit_required, 0u);
  EXPECT_EQ(plain_metrics.group_commit_cycles, 0u);
}

}  // namespace
}  // namespace wfit::service
