#include "service/ingest_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace wfit::service {
namespace {

/// Statements in these tests only need an identity; the sql field is a
/// convenient payload.
Statement Tagged(const std::string& tag) {
  Statement s;
  s.sql = tag;
  return s;
}

std::vector<std::string> Tags(const std::vector<Statement>& batch) {
  std::vector<std::string> tags;
  for (const Statement& s : batch) tags.push_back(s.sql);
  return tags;
}

TEST(IngestQueueTest, DeliversFifoSingleThread) {
  IngestQueue q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Push(Tagged(std::to_string(i))));
  }
  EXPECT_EQ(q.depth(), 5u);
  std::vector<Statement> batch;
  uint64_t first_seq = 99;
  EXPECT_EQ(q.PopBatch(&batch, 10, &first_seq), 5u);
  EXPECT_EQ(first_seq, 0u);
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"0", "1", "2", "3", "4"}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngestQueueTest, PopBatchRespectsMaxBatch) {
  IngestQueue q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(Tagged("s")));
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(q.depth(), 6u);
  batch.clear();
  uint64_t first_seq = 0;
  EXPECT_EQ(q.PopBatch(&batch, 100, &first_seq), 6u);
  EXPECT_EQ(first_seq, 4u);
}

TEST(IngestQueueTest, TryPushRefusesWhenFull) {
  IngestQueue q(2);
  EXPECT_TRUE(q.TryPush(Tagged("a")));
  EXPECT_TRUE(q.TryPush(Tagged("b")));
  EXPECT_FALSE(q.TryPush(Tagged("c")));
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 1), 1u);
  EXPECT_TRUE(q.TryPush(Tagged("c")));
  EXPECT_EQ(q.depth(), 2u);
}

TEST(IngestQueueTest, PushBlocksOnBackpressureAndResumes) {
  IngestQueue q(1);
  EXPECT_TRUE(q.Push(Tagged("0")));
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(Tagged("1")));  // blocks until the pop below
    EXPECT_TRUE(q.Push(Tagged("2")));
  });
  // Let the producer actually hit the full ring before draining; popping
  // too early lets both pushes through without a wait and the counter
  // assertion below turns flaky.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<Statement> batch;
  size_t got = 0;
  while (got < 3) {
    got += q.PopBatch(&batch, 1);
  }
  producer.join();
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"0", "1", "2"}));
  EXPECT_GE(q.push_waits(), 1u);
  EXPECT_EQ(q.high_water(), 1u);
}

TEST(IngestQueueTest, ExplicitSequenceDeliveredInOrder) {
  IngestQueue q(8);
  EXPECT_TRUE(q.PushAt(2, Tagged("2")));
  EXPECT_TRUE(q.PushAt(0, Tagged("0")));
  // Only the contiguous prefix {0} is deliverable; 2 waits for 1.
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 10), 1u);
  EXPECT_EQ(batch.back().sql, "0");
  EXPECT_TRUE(q.PushAt(1, Tagged("1")));
  batch.clear();
  EXPECT_EQ(q.PopBatch(&batch, 10), 2u);
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"1", "2"}));
}

TEST(IngestQueueTest, CloseDrainsThenReportsEndOfStream) {
  IngestQueue q(8);
  EXPECT_TRUE(q.Push(Tagged("a")));
  EXPECT_TRUE(q.Push(Tagged("b")));
  q.Close();
  EXPECT_FALSE(q.Push(Tagged("c")));
  EXPECT_FALSE(q.TryPush(Tagged("c")));
  EXPECT_FALSE(q.PushAt(7, Tagged("c")));
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 10), 2u);
  EXPECT_EQ(q.PopBatch(&batch, 10), 0u);  // end of stream, no block
}

TEST(IngestQueueTest, CloseUnblocksWaitingConsumer) {
  IngestQueue q(4);
  std::thread closer([&] { q.Close(); });
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 1), 0u);
  closer.join();
}

TEST(IngestQueueTest, MultiProducerImplicitTicketsDeliverEachOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  IngestQueue q(32);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(Tagged(std::to_string(p * kPerProducer + i))));
      }
    });
  }
  std::multiset<std::string> seen;
  std::vector<Statement> batch;
  while (seen.size() < kProducers * kPerProducer) {
    batch.clear();
    size_t n = q.PopBatch(&batch, 7);
    ASSERT_GT(n, 0u);
    for (const Statement& s : batch) seen.insert(s.sql);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Exactly-once delivery: no tag repeats.
  EXPECT_EQ(seen.size(), std::set<std::string>(seen.begin(), seen.end()).size());
  EXPECT_LE(q.high_water(), 32u);
  EXPECT_EQ(q.total_pushed(), static_cast<uint64_t>(kProducers * kPerProducer));
}

TEST(IngestQueueTest, MultiProducerExplicitSequenceRestoresTotalOrder) {
  constexpr int kProducers = 4;
  constexpr uint64_t kTotal = 600;
  IngestQueue q(16);  // much smaller than the stream: exercises blocking
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (uint64_t seq = p; seq < kTotal; seq += kProducers) {
        ASSERT_TRUE(q.PushAt(seq, Tagged(std::to_string(seq))));
      }
    });
  }
  std::vector<std::string> delivered;
  std::vector<Statement> batch;
  while (delivered.size() < kTotal) {
    batch.clear();
    size_t n = q.PopBatch(&batch, 13);
    ASSERT_GT(n, 0u);
    for (const Statement& s : batch) delivered.push_back(s.sql);
  }
  for (auto& t : producers) t.join();
  for (uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(delivered[i], std::to_string(i));
  }
}

TEST(IngestQueueTest, PushWithDeadlineTimesOutAndTombstonesItsTicket) {
  IngestQueue q(2);
  EXPECT_EQ(q.PushWithDeadline(Tagged("a"), std::chrono::steady_clock::now()),
            PushAtResult::kAccepted);
  EXPECT_TRUE(q.Push(Tagged("b")));
  // Full ring: the bounded wait gives up at the deadline instead of
  // blocking the producer forever.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PushWithDeadline(Tagged("never"),
                               start + std::chrono::milliseconds(30)),
            PushAtResult::kWouldBlock);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(2));
  // The timed-out implicit ticket is tombstoned: the consumer drains past
  // it, and a later push (seq 3) is still deliverable — the sequence
  // domain never wedges on the abandoned slot.
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 10), 2u);
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(q.Push(Tagged("c")));
  batch.clear();
  EXPECT_EQ(q.PopBatch(&batch, 10), 1u);
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"c"}));
}

TEST(IngestQueueTest, PushAtWithDeadlineLeavesSeqRetryable) {
  IngestQueue q(2);
  EXPECT_EQ(q.PushAtWithDeadline(0, Tagged("0"),
                                 std::chrono::steady_clock::now()),
            PushAtResult::kAccepted);
  EXPECT_EQ(q.PushAtWithDeadline(1, Tagged("1"),
                                 std::chrono::steady_clock::now()),
            PushAtResult::kAccepted);
  // seq 2 is a full capacity ahead of the consumer: bounded wait, then
  // kWouldBlock — and because the caller owns the sequence number, no
  // tombstone is left and the same seq succeeds on retry after a pop.
  EXPECT_EQ(q.PushAtWithDeadline(
                2, Tagged("2"),
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(30)),
            PushAtResult::kWouldBlock);
  std::vector<Statement> batch;
  EXPECT_EQ(q.PopBatch(&batch, 1), 1u);
  EXPECT_EQ(q.PushAtWithDeadline(2, Tagged("2"),
                                 std::chrono::steady_clock::now()),
            PushAtResult::kAccepted);
  batch.clear();
  EXPECT_EQ(q.PopBatch(&batch, 10), 2u);
  EXPECT_EQ(Tags(batch), (std::vector<std::string>{"1", "2"}));
  // Duplicate of a delivered seq stays a duplicate through the deadline
  // path (exactly-once).
  EXPECT_EQ(q.PushAtWithDeadline(0, Tagged("0"),
                                 std::chrono::steady_clock::now()),
            PushAtResult::kDuplicate);
}

}  // namespace
}  // namespace wfit::service
