#include "core/candidates.h"

#include <gtest/gtest.h>

#include "optimizer/index_extractor.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(ExtractorTest, SingleColumnCandidatesForPredicates) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a = 5 AND b BETWEEN 0 AND 10");
  std::vector<IndexId> cands = ExtractIndices(q, &db.pool());
  IndexSet set = IndexSet::FromVector(cands);
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"a"})));
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"b"})));
}

TEST(ExtractorTest, CompositeEqualityPlusRange) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE c = 5 AND a BETWEEN 0 AND 10");
  IndexSet set = IndexSet::FromVector(ExtractIndices(q, &db.pool()));
  // Composite (c, a): equality column then range column.
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"c", "a"})));
}

TEST(ExtractorTest, JoinColumnsExtracted) {
  TestDb db;
  Statement q =
      db.Bind("SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t2.x = 1");
  IndexSet set = IndexSet::FromVector(ExtractIndices(q, &db.pool()));
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"k"})));
  EXPECT_TRUE(set.Contains(db.Ix("t2", {"fk"})));
}

TEST(ExtractorTest, OrderByColumnExtracted) {
  TestDb db;
  Statement q = db.Bind("SELECT d FROM t1 WHERE c = 1 ORDER BY a");
  IndexSet set = IndexSet::FromVector(ExtractIndices(q, &db.pool()));
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"a"})));
  // Equality prefix + sort column composite.
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"c", "a"})));
}

TEST(ExtractorTest, UpdateWherePredicatesYieldCandidates) {
  TestDb db;
  Statement u = db.Bind("UPDATE t1 SET d = d + 1 WHERE a BETWEEN 0 AND 9");
  IndexSet set = IndexSet::FromVector(ExtractIndices(u, &db.pool()));
  EXPECT_TRUE(set.Contains(db.Ix("t1", {"a"})));
}

TEST(ExtractorTest, RespectsCandidateCap) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 1 AND "
      "t1.b = 2 AND t1.c = 3 AND t2.x = 4 AND t2.y = 5 ORDER BY t1.d");
  ExtractorOptions opts;
  opts.max_candidates_per_statement = 5;
  EXPECT_LE(ExtractIndices(q, &db.pool(), opts).size(), 5u);
}

TEST(ExtractorTest, NonSargablePredicatesYieldNoSingleColumnCandidate) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE c <> 5");
  std::vector<IndexId> cands = ExtractIndices(q, &db.pool());
  IndexSet set = IndexSet::FromVector(cands);
  EXPECT_FALSE(set.Contains(db.Ix("t1", {"c"})));
}

TEST(ExtractorTest, DeterministicOutput) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a = 1 AND b BETWEEN 0 AND 5");
  auto c1 = ExtractIndices(q, &db.pool());
  auto c2 = ExtractIndices(q, &db.pool());
  EXPECT_EQ(c1, c2);
}

TEST(CandidateSelectorTest, UniverseGrowsWithStatements) {
  TestDb db;
  CandidateOptions opts;
  CandidateSelector selector(&db.pool(), &db.optimizer(), opts, 1);
  EXPECT_EQ(selector.universe().size(), 0u);
  Statement q1 = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  selector.ChooseCands(q1, IndexSet{}, {});
  size_t after_q1 = selector.universe().size();
  EXPECT_GT(after_q1, 0u);
  Statement q2 = db.Bind("SELECT count(*) FROM t2 WHERE x = 5");
  selector.ChooseCands(q2, IndexSet{}, {});
  EXPECT_GT(selector.universe().size(), after_q1);
}

TEST(CandidateSelectorTest, MaterializedIndicesAlwaysRetained) {
  TestDb db;
  CandidateOptions opts;
  opts.idx_cnt = 2;
  CandidateSelector selector(&db.pool(), &db.optimizer(), opts, 1);
  IndexId keep = db.Ix("t2", {"y"});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  CandidateAnalysis analysis =
      selector.ChooseCands(q, IndexSet{keep}, {IndexSet{keep}});
  IndexSet covered;
  for (const IndexSet& p : analysis.partition) covered = covered.Union(p);
  EXPECT_TRUE(covered.Contains(keep));
}

TEST(CandidateSelectorTest, PartitionObeysStateBudget) {
  TestDb db;
  CandidateOptions opts;
  opts.idx_cnt = 10;
  opts.state_cnt = 24;
  CandidateSelector selector(&db.pool(), &db.optimizer(), opts, 1);
  std::vector<IndexSet> partition;
  IndexSet materialized;
  for (int round = 0; round < 10; ++round) {
    Statement q = db.Bind(
        "SELECT d FROM t1 WHERE a BETWEEN 0 AND 200 AND b BETWEEN 0 AND "
        "100");
    CandidateAnalysis analysis =
        selector.ChooseCands(q, materialized, partition);
    partition = analysis.partition;
    EXPECT_LE(PartitionStates(partition), opts.state_cnt);
  }
}

TEST(CandidateSelectorTest, BeneficialIndexEntersCandidates) {
  TestDb db;
  CandidateOptions opts;
  opts.idx_cnt = 4;
  // Make entry easy: small evidence threshold.
  opts.creation_penalty_factor = 1e-6;
  CandidateSelector selector(&db.pool(), &db.optimizer(), opts, 1);
  std::vector<IndexSet> partition;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150");
  CandidateAnalysis analysis = selector.ChooseCands(q, IndexSet{}, partition);
  // After one highly beneficial statement the index on a is a candidate.
  analysis = selector.ChooseCands(q, IndexSet{}, analysis.partition);
  IndexSet covered;
  for (const IndexSet& p : analysis.partition) covered = covered.Union(p);
  EXPECT_TRUE(covered.Contains(db.Ix("t1", {"a"})));
}

TEST(CandidateSelectorTest, IdxCntBoundsPartitionSize) {
  TestDb db;
  CandidateOptions opts;
  opts.idx_cnt = 3;
  opts.creation_penalty_factor = 1e-6;
  CandidateSelector selector(&db.pool(), &db.optimizer(), opts, 1);
  std::vector<IndexSet> partition;
  std::vector<std::string> queries = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 0 AND 50",
      "SELECT count(*) FROM t2 WHERE x = 5",
      "SELECT count(*) FROM t1 WHERE c = 2",
      "SELECT count(*) FROM t2 WHERE fk BETWEEN 0 AND 900",
  };
  for (int round = 0; round < 3; ++round) {
    for (const std::string& sql : queries) {
      Statement q = db.Bind(sql);
      CandidateAnalysis analysis =
          selector.ChooseCands(q, IndexSet{}, partition);
      partition = analysis.partition;
      size_t total = 0;
      for (const IndexSet& p : partition) total += p.size();
      EXPECT_LE(total, opts.idx_cnt);
    }
  }
}

}  // namespace
}  // namespace wfit
