#include "common/bits.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wfit {
namespace {

TEST(BitsTest, PopCount) {
  EXPECT_EQ(PopCount(0u), 0);
  EXPECT_EQ(PopCount(0b1011u), 3);
  EXPECT_EQ(PopCount(0xFFFFFFFFu), 32);
}

TEST(BitsTest, IsSubset) {
  EXPECT_TRUE(IsSubset(0b001, 0b011));
  EXPECT_TRUE(IsSubset(0b000, 0b000));
  EXPECT_TRUE(IsSubset(0b011, 0b011));
  EXPECT_FALSE(IsSubset(0b100, 0b011));
}

TEST(BitsTest, LowestBit) {
  EXPECT_EQ(LowestBit(0b1000), 3);
  EXPECT_EQ(LowestBit(0b0001), 0);
  EXPECT_EQ(LowestBit(0b0110), 1);
}

TEST(BitsTest, SubmaskIteratorEnumeratesAllSubsets) {
  Mask universe = 0b10110;
  std::set<Mask> seen;
  for (SubmaskIterator it(universe); !it.done(); it.Next()) {
    EXPECT_TRUE(IsSubset(it.mask(), universe));
    EXPECT_TRUE(seen.insert(it.mask()).second) << "duplicate submask";
  }
  EXPECT_EQ(seen.size(), size_t{1} << PopCount(universe));
}

TEST(BitsTest, SubmaskIteratorOfEmptyMask) {
  SubmaskIterator it(0);
  EXPECT_FALSE(it.done());
  EXPECT_EQ(it.mask(), 0u);
  it.Next();
  EXPECT_TRUE(it.done());
}

TEST(BitsTest, LexPrefersFavorsLowestDifferingBitSet) {
  // Appendix B: X preferred to Y iff the smallest differing index is in X.
  EXPECT_TRUE(LexPrefers(0b001, 0b010));   // differ at bit 0, X has it
  EXPECT_FALSE(LexPrefers(0b010, 0b001));  // differ at bit 0, Y has it
  EXPECT_TRUE(LexPrefers(0b011, 0b010));
  EXPECT_FALSE(LexPrefers(0b000, 0b000));  // equal: no strict preference
  EXPECT_TRUE(LexPrefers(0b101, 0b110));   // lowest diff bit 0 belongs to X
}

TEST(BitsTest, LexPrefersIsTotalOnDistinctMasks) {
  for (Mask x = 0; x < 16; ++x) {
    for (Mask y = 0; y < 16; ++y) {
      if (x == y) {
        EXPECT_FALSE(LexPrefers(x, y));
        continue;
      }
      EXPECT_NE(LexPrefers(x, y), LexPrefers(y, x))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(BitsTest, LexPrefersIsTransitive) {
  for (Mask a = 0; a < 16; ++a) {
    for (Mask b = 0; b < 16; ++b) {
      for (Mask c = 0; c < 16; ++c) {
        if (LexPrefers(a, b) && LexPrefers(b, c)) {
          EXPECT_TRUE(LexPrefers(a, c))
              << "a=" << a << " b=" << b << " c=" << c;
        }
      }
    }
  }
}

}  // namespace
}  // namespace wfit
