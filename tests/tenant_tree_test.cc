// The multi-tenant checkpoint tree: reversible directory encoding,
// stray-entry-tolerant listing (one foreign file in the root must not
// take recovery down), and the pack/unpack migration format — which has
// to reject every corruption a network hop could produce BEFORE writing
// anything into the target's checkpoint root.
#include "persist/tenant_tree.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"

namespace fs = std::filesystem;

namespace wfit::persist {
namespace {

/// Recomputes the trailer CRC after a mutation, so the test reaches the
/// check BEHIND the CRC (magic, version, name vetting) — a plain bit
/// flip only ever proves the CRC works.
std::string Reseal(std::string pack) {
  const uint32_t crc =
      Crc32(std::string_view(pack).substr(0, pack.size() - 4));
  for (int i = 0; i < 4; ++i) {
    pack[pack.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return pack;
}

std::string TempRoot(const std::string& tag) {
  std::string dir = (fs::path(::testing::TempDir()) /
                     ("wfit_tree_" + tag + "_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

void WriteFile(const fs::path& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(TenantDirCodecTest, RoundTripsHostileIds) {
  for (const std::string& id :
       {std::string("plain"), std::string("tenant-0"),
        std::string("spaces and/slashes"), std::string(".."),
        std::string("."), std::string("%41 already escaped"),
        std::string("\x01\xff" "binary"), std::string("")}) {
    const std::string dir = EncodeTenantDir(id);
    EXPECT_EQ(DecodeTenantDir(dir), id) << "via " << dir;
    // Encoded names are always safe path components.
    EXPECT_EQ(dir.find('/'), std::string::npos);
    EXPECT_NE(dir, ".");
    EXPECT_NE(dir, "..");
  }
}

TEST(ListTenantIdsTest, MissingRootIsAnEmptyTree) {
  auto ids = ListTenantIds(TempRoot("missing"));
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
}

TEST(ListTenantIdsTest, SkipsStrayEntriesInsteadOfFailing) {
  const std::string root = TempRoot("stray");
  fs::create_directories(TenantCheckpointDir(root, "tenant-0"));
  fs::create_directories(TenantCheckpointDir(root, "spaced tenant"));
  // Strays a deployment can realistically drop into the root: an editor
  // backup file, a lost+found-style directory whose name EncodeTenantDir
  // could never have produced, and a tempfile.
  WriteFile(fs::path(root) / "notes.txt", "not a tenant");
  fs::create_directories(fs::path(root) / "has%zzbad-escape");
  WriteFile(fs::path(root) / ".checkpoint.tmp", "");

  uint64_t skipped = 0;
  auto ids = ListTenantIds(root, &skipped);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_EQ(*ids,
            (std::vector<std::string>{"spaced tenant", "tenant-0"}));
  EXPECT_EQ(skipped, 3u);

  // The counter is optional.
  auto again = ListTenantIds(root);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *ids);
}

TEST(CheckpointPackTest, RoundTripsATenantTree) {
  const std::string src = TempRoot("pack_src");
  fs::create_directories(src);
  const std::string journal("journal bytes\n\x00\x01\x02", 17);
  WriteFile(fs::path(src) / "snapshot-000042", std::string(4096, 's'));
  WriteFile(fs::path(src) / "journal", journal);
  WriteFile(fs::path(src) / "empty", "");

  auto pack = PackCheckpointDir(src);
  ASSERT_TRUE(pack.ok()) << pack.status().ToString();

  const std::string dst = TempRoot("pack_dst");
  // Pre-existing contents must be replaced, not merged: the migrated
  // tree is authoritative.
  fs::create_directories(dst);
  WriteFile(fs::path(dst) / "leftover-snapshot", "stale");
  ASSERT_TRUE(UnpackCheckpointDir(*pack, dst).ok());

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dst)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"empty", "journal",
                                             "snapshot-000042"}));
  EXPECT_EQ(ReadFile(fs::path(dst) / "snapshot-000042"),
            std::string(4096, 's'));
  EXPECT_EQ(ReadFile(fs::path(dst) / "journal"), journal);
  EXPECT_EQ(ReadFile(fs::path(dst) / "empty"), "");
}

TEST(CheckpointPackTest, PackingAMissingDirIsNotFound) {
  auto pack = PackCheckpointDir(TempRoot("pack_none"));
  ASSERT_FALSE(pack.ok());
  EXPECT_EQ(pack.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointPackTest, RejectsEveryCorruptionWithoutWriting) {
  const std::string src = TempRoot("corrupt_src");
  fs::create_directories(src);
  WriteFile(fs::path(src) / "snapshot-000001", "snapshot payload");
  WriteFile(fs::path(src) / "journal", "journal payload");
  auto pack = PackCheckpointDir(src);
  ASSERT_TRUE(pack.ok());

  const std::string dst = TempRoot("corrupt_dst");
  auto expect_rejected = [&](std::string mutated, const char* what) {
    Status st = UnpackCheckpointDir(mutated, dst);
    EXPECT_FALSE(st.ok()) << what;
    // Rejected before anything was written: the target dir was either
    // never created or left empty.
    EXPECT_TRUE(!fs::exists(dst) || fs::is_empty(dst)) << what;
    fs::remove_all(dst);
  };

  {
    std::string bad = *pack;
    bad[0] ^= 0x01;
    expect_rejected(Reseal(bad), "bad magic");
    expect_rejected(bad, "bad magic, stale crc");
  }
  {
    std::string bad = *pack;
    bad[4] ^= 0x7f;  // version field follows the 4-byte magic
    expect_rejected(Reseal(bad), "unsupported version");
  }
  {
    std::string bad = *pack;
    bad[bad.size() / 2] ^= 0x10;
    expect_rejected(bad, "flipped payload bit (crc)");
  }
  {
    std::string bad = *pack;
    bad.back() ^= 0x01;
    expect_rejected(bad, "corrupt crc trailer");
  }
  for (size_t cut :
       {size_t{0}, size_t{3}, pack->size() / 2, pack->size() - 1}) {
    expect_rejected(pack->substr(0, cut),
                    "truncation");
  }
}

TEST(CheckpointPackTest, RejectsUnsafeFileNames) {
  // A handcrafted pack must not be able to escape the target directory
  // or smuggle in subpaths. Build a legitimate pack whose file name we
  // then corrupt into a traversal — easiest done by packing a file whose
  // name length matches the attack string.
  const std::string src = TempRoot("unsafe_src");
  fs::create_directories(src);
  const std::string benign = "aaaaaaaaaaa";  // same length as the attack
  WriteFile(fs::path(src) / benign, "payload");
  auto pack = PackCheckpointDir(src);
  ASSERT_TRUE(pack.ok());

  const std::string attack = "../escaped1";
  ASSERT_EQ(attack.size(), benign.size());
  const size_t at = pack->find(benign);
  ASSERT_NE(at, std::string::npos);
  std::string bad = *pack;
  bad.replace(at, attack.size(), attack);
  // Reseal so the CRC passes and the name check itself must reject.
  const std::string dst = TempRoot("unsafe_dst");
  Status st = UnpackCheckpointDir(Reseal(bad), dst);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unsafe file name"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(fs::exists(fs::path(dst).parent_path() / "escaped1"));
  EXPECT_FALSE(fs::exists(dst));
}

}  // namespace
}  // namespace wfit::persist
