#include "workload/binder.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(BinderTest, BindsSingleTableSelect) {
  TestDb db;
  Statement s = db.Bind("SELECT count(*) FROM t1 WHERE a = 100");
  EXPECT_EQ(s.kind, StatementKind::kSelect);
  ASSERT_EQ(s.tables.size(), 1u);
  ASSERT_EQ(s.tables[0].predicates.size(), 1u);
  const ScanPredicate& p = s.tables[0].predicates[0];
  EXPECT_TRUE(p.equality);
  EXPECT_TRUE(p.sargable);
  // a has 10000 distinct values.
  EXPECT_NEAR(p.selectivity, 1.0 / 10000, 1e-12);
}

TEST(BinderTest, RangeSelectivityMatchesDomainFraction) {
  TestDb db;
  // a spans [0, 10000]; [0, 1000] is 10% of the domain.
  Statement s = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 1000");
  ASSERT_EQ(s.tables[0].predicates.size(), 1u);
  EXPECT_NEAR(s.tables[0].predicates[0].selectivity, 0.1, 1e-9);
  EXPECT_FALSE(s.tables[0].predicates[0].equality);
}

TEST(BinderTest, SwappedBetweenBoundsAreNormalized) {
  TestDb db;
  Statement s = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 1000 AND 0");
  EXPECT_NEAR(s.tables[0].predicates[0].selectivity, 0.1, 1e-9);
}

TEST(BinderTest, NotEqualIsNonSargable) {
  TestDb db;
  Statement s = db.Bind("SELECT count(*) FROM t1 WHERE c <> 5");
  ASSERT_EQ(s.tables[0].predicates.size(), 1u);
  EXPECT_FALSE(s.tables[0].predicates[0].sargable);
  EXPECT_NEAR(s.tables[0].predicates[0].selectivity, 1.0 - 1.0 / 100, 1e-9);
}

TEST(BinderTest, JoinResolvesBothSides) {
  TestDb db;
  Statement s =
      db.Bind("SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5");
  EXPECT_EQ(s.tables.size(), 2u);
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_NE(s.joins[0].left.table, s.joins[0].right.table);
}

TEST(BinderTest, AliasResolution) {
  TestDb db;
  Statement s = db.Bind(
      "SELECT count(*) FROM t1 AS x, t2 y WHERE x.k = y.fk AND x.a = 1");
  EXPECT_EQ(s.joins.size(), 1u);
  ASSERT_EQ(s.tables.size(), 2u);
}

TEST(BinderTest, UnknownColumnFails) {
  TestDb db;
  auto r = db.binder().BindSql("SELECT count(*) FROM t1 WHERE nope = 1");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(BinderTest, AmbiguousUnqualifiedColumnFails) {
  TestDb db;
  // Both t1 and t3... only t1 has "a"; craft ambiguity with a column in
  // both tables: none exists, so use the same table twice instead.
  auto r = db.binder().BindSql("SELECT count(*) FROM t1, t1 WHERE a = 1");
  EXPECT_FALSE(r.ok());
}

TEST(BinderTest, UnknownTableFails) {
  TestDb db;
  auto r = db.binder().BindSql("SELECT count(*) FROM missing WHERE a = 1");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(BinderTest, ReferencedColumnsTrackSelectWhereOrderJoins) {
  TestDb db;
  Statement s = db.Bind(
      "SELECT t1.d FROM t1, t2 WHERE t1.a = 5 AND t1.k = t2.fk "
      "ORDER BY t1.b");
  const StatementTable* t1 = nullptr;
  for (const StatementTable& t : s.tables) {
    if (db.catalog().table(t.table).name == "t1") t1 = &t;
  }
  ASSERT_NE(t1, nullptr);
  // d (select), a (where), k (join), b (order by) = 4 columns.
  EXPECT_EQ(t1->referenced_columns.size(), 4u);
}

TEST(BinderTest, SelectStarReferencesAllColumns) {
  TestDb db;
  Statement s = db.Bind("SELECT * FROM t2 WHERE x = 1");
  EXPECT_EQ(s.tables[0].referenced_columns.size(), 3u);
}

TEST(BinderTest, BindsUpdateWithSetColumns) {
  TestDb db;
  Statement s = db.Bind("UPDATE t1 SET d = d + 1 WHERE a BETWEEN 0 AND 10");
  EXPECT_EQ(s.kind, StatementKind::kUpdate);
  ASSERT_EQ(s.set_columns.size(), 1u);
  auto d = db.catalog().FindColumn(s.tables[0].table, "d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(s.set_columns[0], *d);
  EXPECT_EQ(s.tables[0].predicates.size(), 1u);
}

TEST(BinderTest, BindsDelete) {
  TestDb db;
  Statement s = db.Bind("DELETE FROM t2 WHERE y = 3");
  EXPECT_EQ(s.kind, StatementKind::kDelete);
  EXPECT_EQ(s.tables.size(), 1u);
}

TEST(BinderTest, BindsInsert) {
  TestDb db;
  Statement s = db.Bind("INSERT INTO t2 VALUES (1, 2, 3), (4, 5, 6)");
  EXPECT_EQ(s.kind, StatementKind::kInsert);
  EXPECT_EQ(s.insert_rows, 2u);
}

TEST(BinderTest, StringLiteralsMapIntoDomainDeterministically) {
  TestDb db;
  Statement s1 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 'x' AND 'y'");
  Statement s2 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 'x' AND 'y'");
  ASSERT_EQ(s1.tables[0].predicates.size(), 1u);
  EXPECT_DOUBLE_EQ(s1.tables[0].predicates[0].selectivity,
                   s2.tables[0].predicates[0].selectivity);
  EXPECT_GT(s1.tables[0].predicates[0].selectivity, 0.0);
  EXPECT_LE(s1.tables[0].predicates[0].selectivity, 1.0);
}

TEST(BinderTest, KeepsOriginalSqlText) {
  TestDb db;
  const std::string sql = "SELECT count(*) FROM t3 WHERE v = 1";
  Statement s = db.Bind(sql);
  EXPECT_EQ(s.sql, sql);
}

TEST(BinderTest, PredicateOnJoinedTableLandsOnRightSlice) {
  TestDb db;
  Statement s = db.Bind(
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t2.x = 7");
  const StatementTable* t2 = nullptr;
  for (const StatementTable& t : s.tables) {
    if (db.catalog().table(t.table).name == "t2") t2 = &t;
  }
  ASSERT_NE(t2, nullptr);
  ASSERT_EQ(t2->predicates.size(), 1u);
  EXPECT_NEAR(t2->predicates[0].selectivity, 1.0 / 1000, 1e-12);
}

}  // namespace
}  // namespace wfit
