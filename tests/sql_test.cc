#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace wfit::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT a, b FROM t WHERE x >= 1.5;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 11u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndNegatives) {
  auto tokens = Lex("12 3.25 1e6 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 12.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 3.25);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 1e6);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 0.5);
}

TEST(LexerTest, StringsWithEscapedQuote) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Lex("'oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Lex("< <= > >= = <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kNe);
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("a -- comment here\n b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, end
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT count(*) FROM t WHERE a = 5");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_TRUE(sel.count_star);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].name, "t");
  ASSERT_EQ(sel.where.size(), 1u);
  EXPECT_EQ(sel.where[0].kind, Predicate::Kind::kCompare);
  EXPECT_EQ(sel.where[0].op, CompareOp::kEq);
  EXPECT_DOUBLE_EQ(sel.where[0].value.number, 5.0);
}

TEST(ParserTest, PaperExampleQueryParses) {
  // Sec. 6.1's example query, verbatim modulo whitespace.
  const char* sql =
      "SELECT count(*) "
      "FROM tpce.security table1, tpce.company table2, "
      "     tpce.daily_market table0 "
      "WHERE table1.s_pe BETWEEN 63.278 AND 86.091 "
      "AND table1.s_exch_date BETWEEN '1995-05-12-01.46.40' "
      "    AND '2006-07-10-01.46.40' "
      "AND table2.co_open_date BETWEEN '1812-08-05-03.21.02' "
      "    AND '1812-12-12-03.21.02' "
      "AND table1.s_symb = table0.dm_s_symb "
      "AND table2.co_id = table1.s_co_id";
  auto stmt = ParseStatement(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_TRUE(sel.count_star);
  EXPECT_EQ(sel.from.size(), 3u);
  EXPECT_EQ(sel.from[0].alias, "table1");
  ASSERT_EQ(sel.where.size(), 5u);
  EXPECT_EQ(sel.where[0].kind, Predicate::Kind::kBetween);
  EXPECT_EQ(sel.where[1].kind, Predicate::Kind::kBetween);
  EXPECT_TRUE(sel.where[1].low.is_string);
  EXPECT_EQ(sel.where[3].kind, Predicate::Kind::kJoin);
  EXPECT_EQ(sel.where[4].kind, Predicate::Kind::kJoin);
}

TEST(ParserTest, PaperExampleUpdateParses) {
  // Sec. 6.1's example update, with its user-defined function in SET.
  const char* sql =
      "UPDATE tpch.lineitem "
      "SET l_tax = l_tax + RANDOM_SIGN()*0.000001 "
      "WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943";
  auto stmt = ParseStatement(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& upd = std::get<UpdateStmt>(*stmt);
  EXPECT_EQ(upd.table, "tpch.lineitem");
  ASSERT_EQ(upd.set_columns.size(), 1u);
  EXPECT_EQ(upd.set_columns[0], "l_tax");
  ASSERT_EQ(upd.where.size(), 1u);
  EXPECT_EQ(upd.where[0].kind, Predicate::Kind::kBetween);
}

TEST(ParserTest, SelectWithOrderAndGroup) {
  auto stmt = ParseStatement(
      "SELECT a FROM t WHERE b < 3 GROUP BY a ORDER BY a DESC");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(*stmt);
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_EQ(sel.order_by[0].column, "a");
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_FALSE(sel.count_star);
  EXPECT_TRUE(sel.select_list.empty());
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = ParseStatement("DELETE FROM ds.t WHERE a BETWEEN 1 AND 2");
  ASSERT_TRUE(stmt.ok());
  const auto& del = std::get<DeleteStmt>(*stmt);
  EXPECT_EQ(del.table, "ds.t");
  EXPECT_EQ(del.where.size(), 1u);
}

TEST(ParserTest, InsertCountsTuples) {
  auto stmt = ParseStatement("INSERT INTO t VALUES (1, 2), (3, 4), (5, 6)");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(*stmt);
  EXPECT_EQ(ins.table, "t");
  EXPECT_EQ(ins.num_rows, 3u);
}

TEST(ParserTest, NegativeLiterals) {
  auto stmt = ParseStatement("SELECT count(*) FROM t WHERE a > -5");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_DOUBLE_EQ(sel.where[0].value.number, -5.0);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto stmt = ParseStatement("select count(*) from t where a = 1");
  EXPECT_TRUE(stmt.ok());
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
  EXPECT_FALSE(ParseStatement("SELECT count(*) FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT count(*) FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t SET").ok());
  EXPECT_FALSE(ParseStatement("SELECT count(*) FROM t trailing junk=").ok());
}

TEST(ParserTest, RejectsNonEqualityJoin) {
  EXPECT_FALSE(ParseStatement("SELECT count(*) FROM a, b WHERE a.x < b.y").ok());
}

TEST(ParserTest, ScriptParsesMultipleStatements) {
  auto script = ParseScript(
      "SELECT count(*) FROM t; DELETE FROM t WHERE a = 1;\n"
      "INSERT INTO t VALUES (1)");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 3u);
}

TEST(PrinterTest, SelectRoundTrip) {
  const char* sql =
      "SELECT count(*) FROM ds.t WHERE a BETWEEN 1 AND 2 AND b = 3 "
      "ORDER BY c";
  auto stmt = ParseStatement(sql);
  ASSERT_TRUE(stmt.ok());
  std::string printed = Print(*stmt);
  auto reparsed = ParseStatement(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(Print(*reparsed), printed);  // fixed point after one round
}

TEST(PrinterTest, UpdateRoundTrip) {
  auto stmt = ParseStatement("UPDATE t SET a = a + 1 WHERE b = 2");
  ASSERT_TRUE(stmt.ok());
  std::string printed = Print(*stmt);
  auto reparsed = ParseStatement(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  const auto& upd = std::get<UpdateStmt>(*reparsed);
  EXPECT_EQ(upd.set_columns, std::vector<std::string>{"a"});
}

TEST(PrinterTest, InsertRoundTripPreservesRowCount) {
  auto stmt = ParseStatement("INSERT INTO t VALUES (1), (2), (3), (4)");
  ASSERT_TRUE(stmt.ok());
  auto reparsed = ParseStatement(Print(*stmt));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(std::get<InsertStmt>(*reparsed).num_rows, 4u);
}

TEST(PrinterTest, JoinPredicateRoundTrip) {
  auto stmt = ParseStatement(
      "SELECT count(*) FROM a, b WHERE a.x = b.y AND a.z = 1");
  ASSERT_TRUE(stmt.ok());
  auto reparsed = ParseStatement(Print(*stmt));
  ASSERT_TRUE(reparsed.ok());
  const auto& sel = std::get<SelectStmt>(*reparsed);
  EXPECT_EQ(sel.where[0].kind, Predicate::Kind::kJoin);
}

}  // namespace
}  // namespace wfit::sql
