#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace wfit {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical check value for CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "write-ahead journals need torn-tail detection";
  uint32_t one_shot = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "snapshot payload";
  const uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(corrupt), clean);
    }
  }
}

}  // namespace
}  // namespace wfit
