// The tentpole guarantee of the distributed control plane: a tenant
// migrated LIVE between two TunerNodes — mid-workload, with a DBA vote
// still pending in its future — produces a recommendation trajectory
// bit-for-bit identical to a dedicated, never-migrated router. Also:
// failed handoffs revert cleanly (the tenant keeps running at the
// source) and the stitched source+target histories cover every
// statement exactly once.
#include "cluster/node.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/demo_env.h"
#include "cluster/placement.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace fs = std::filesystem;

namespace wfit::cluster {
namespace {

constexpr size_t kStatements = 220;  // votes pinned after 149
constexpr uint64_t kMigrateAfter = 100;
const char kTenant[] = "tenant-0";

std::string TempRoot(const std::string& tag) {
  std::string dir = (fs::path(::testing::TempDir()) /
                     ("wfit_cluster_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

service::TenantRouterOptions RouterOptions(const std::string& root) {
  service::TenantRouterOptions options;
  options.shard.queue_capacity = 32;
  options.shard.max_batch = 8;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = 100;
  options.checkpoint_root = root;
  options.analysis_threads = 1;
  options.drain_threads = 1;
  return options;
}

/// What a dedicated single-node router recommends for tenant-0 across
/// the whole workload (votes registered up front, like every client).
/// Computed once — it seeds the expectation of every test here.
const std::vector<IndexSet>& ReferenceTrajectory() {
  static const std::vector<IndexSet>* reference = [] {
    auto env = std::make_shared<DemoFleetEnv>(kStatements);
    auto options = RouterOptions("");  // no durability needed
    options.repin = env->MakeRepinner();
    service::TenantRouter router(env->MakeTunerFactory(), options);
    router.Start();
    for (const service::PinnedVote& vote : env->PinnedVotesFor(0, 0)) {
      router.FeedbackAfter(kTenant, vote.after_seq, vote.f_plus,
                           vote.f_minus);
    }
    const Workload& workload = env->Env(0).workload;
    for (size_t seq = 0; seq < workload.size(); ++seq) {
      EXPECT_TRUE(router.SubmitAt(kTenant, seq, workload[seq]));
    }
    EXPECT_TRUE(router.WaitUntilAnalyzed(kTenant, kStatements));
    auto* history = new std::vector<IndexSet>(router.History(kTenant));
    router.Shutdown();
    return history;
  }();
  return *reference;
}

/// A two-node in-process cluster sharing one DemoFleetEnv (both nodes
/// re-intern into the same per-tenant pools, as re-admission requires).
struct TwoNodeCluster {
  std::shared_ptr<DemoFleetEnv> env;
  std::unique_ptr<TunerNode> a;
  std::unique_ptr<TunerNode> b;
  ClusterConfig config;

  explicit TwoNodeCluster(const std::string& tag)
      : env(std::make_shared<DemoFleetEnv>(kStatements)) {
    ClusterConfig boot;
    boot.version = 1;
    boot.nodes = {{"a", "127.0.0.1", 0}, {"b", "127.0.0.1", 0}};
    boot.Normalize();
    a = MakeNode("a", boot, tag);
    b = MakeNode("b", boot, tag);
    EXPECT_TRUE(a->Start().ok());
    EXPECT_TRUE(b->Start().ok());
    // Each node only knows its own ephemeral port; publish the complete
    // layout to both as version 2.
    config.version = 2;
    config.nodes = {{"a", "127.0.0.1", a->port()},
                    {"b", "127.0.0.1", b->port()}};
    config.Normalize();
    a->InstallConfig(config);
    b->InstallConfig(config);
  }

  std::unique_ptr<TunerNode> MakeNode(const std::string& id,
                                      const ClusterConfig& boot,
                                      const std::string& tag) {
    TunerNodeOptions options;
    options.node_id = id;
    options.config = boot;
    options.router = RouterOptions(TempRoot(tag + "_" + id));
    options.router.repin = env->MakeRepinner();
    return std::make_unique<TunerNode>(env->MakeTunerFactory(),
                                       std::move(options));
  }

  TunerNode& Owner() {
    return OwnerOf(config, kTenant)->id == "a" ? *a : *b;
  }
  TunerNode& Other() {
    return OwnerOf(config, kTenant)->id == "a" ? *b : *a;
  }

  void Shutdown() {
    a->Shutdown();
    b->Shutdown();
  }
};

/// Registers the vote schedule, then replays the whole workload through
/// the cluster client (which absorbs redirects, kBusy backpressure and
/// the migration window) and waits for full analysis.
void RunWorkload(const ClusterConfig& config, DemoFleetEnv& env,
                 std::atomic<bool>* failed) {
  ClusterClient client(config);
  for (const service::PinnedVote& vote : env.PinnedVotesFor(0, 0)) {
    net::Request req;
    req.type = net::MsgType::kFeedbackAfter;
    req.seq = vote.after_seq;
    req.f_plus = vote.f_plus;
    req.f_minus = vote.f_minus;
    auto resp = client.Call(kTenant, std::move(req));
    if (!resp.ok() || resp->kind != net::RespKind::kOk) {
      failed->store(true);
      return;
    }
  }
  const Workload& workload = env.Env(0).workload;
  for (size_t seq = 0; seq < workload.size(); ++seq) {
    net::Request req;
    req.type = net::MsgType::kSubmitAt;
    req.seq = seq;
    req.has_statement = true;
    req.statement = workload[seq];
    auto resp = client.Call(kTenant, std::move(req));
    if (!resp.ok() || resp->kind != net::RespKind::kOk) {
      failed->store(true);
      return;
    }
  }
  while (true) {
    net::Request probe;
    probe.type = net::MsgType::kGetAnalyzed;
    auto resp = client.Call(kTenant, probe);
    if (resp.ok() && resp->kind == net::RespKind::kOk &&
        resp->analyzed >= workload.size()) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

uint64_t AnalyzedNow(ClusterClient& client) {
  net::Request probe;
  probe.type = net::MsgType::kGetAnalyzed;
  auto resp = client.Call(kTenant, probe);
  if (!resp.ok() || resp->kind != net::RespKind::kOk) return 0;
  return resp->analyzed;
}

/// Reassembles tenant-0's trajectory from both nodes' history segments
/// (each self-describes its start). Gaps or overlaps with disagreeing
/// entries fail the test.
std::vector<IndexSet> Stitch(TwoNodeCluster& cluster) {
  std::vector<std::optional<IndexSet>> slots(kStatements);
  for (TunerNode* node : {cluster.a.get(), cluster.b.get()}) {
    const uint64_t start = node->router().HistoryStart(kTenant);
    const std::vector<IndexSet> part = node->router().History(kTenant);
    for (size_t i = 0; i < part.size(); ++i) {
      const uint64_t seq = start + i;
      if (seq >= slots.size()) {
        ADD_FAILURE() << "history entry beyond the workload: " << seq;
        continue;
      }
      if (slots[seq].has_value()) {
        EXPECT_EQ(*slots[seq], part[i]) << "overlap disagrees at " << seq;
      }
      slots[seq] = part[i];
    }
  }
  std::vector<IndexSet> history;
  for (size_t seq = 0; seq < slots.size(); ++seq) {
    if (!slots[seq].has_value()) {
      ADD_FAILURE() << "no node holds statement " << seq;
      return history;
    }
    history.push_back(*slots[seq]);
  }
  return history;
}

TEST(ClusterMigrationTest, LiveMigrationKeepsTrajectoryBitIdentical) {
  const std::vector<IndexSet>& reference = ReferenceTrajectory();
  ASSERT_EQ(reference.size(), kStatements);

  TwoNodeCluster cluster("live");
  const std::string source_id = cluster.Owner().node_id();
  const std::string target_id = cluster.Other().node_id();

  std::atomic<bool> failed{false};
  std::thread producer(
      [&] { RunWorkload(cluster.config, *cluster.env, &failed); });

  // Wait until the tenant is mid-workload with the statement-149 vote
  // still in its future, then hand it over via the admin RPC.
  ClusterClient admin(cluster.config);
  while (AnalyzedNow(admin) < kMigrateAfter && !failed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_FALSE(failed.load());
  net::Request migrate;
  migrate.type = net::MsgType::kMigrate;
  migrate.target_node = target_id;
  auto resp = admin.Call(kTenant, std::move(migrate));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->kind, net::RespKind::kOk) << resp->message;

  producer.join();
  ASSERT_FALSE(failed.load());

  // The handoff moved residency: the target serves the tenant now, the
  // source keeps only the retired prefix of its history.
  TunerNode& source = source_id == "a" ? *cluster.a : *cluster.b;
  TunerNode& target = target_id == "a" ? *cluster.a : *cluster.b;
  EXPECT_FALSE(source.router().IsResident(kTenant));
  EXPECT_TRUE(target.router().IsResident(kTenant));
  EXPECT_GE(target.router().HistoryStart(kTenant), kMigrateAfter);
  EXPECT_EQ(target.router().analyzed(kTenant), kStatements);

  const std::vector<IndexSet> stitched = Stitch(cluster);
  ASSERT_EQ(stitched.size(), kStatements);
  for (size_t seq = 0; seq < kStatements; ++seq) {
    ASSERT_EQ(stitched[seq], reference[seq])
        << "trajectory diverged at statement " << seq;
  }
  cluster.Shutdown();
}

TEST(ClusterMigrationTest, FailedHandoffRevertsAndStaysConsistent) {
  const std::vector<IndexSet>& reference = ReferenceTrajectory();

  TwoNodeCluster cluster("revert");
  // A third node exists in the layout but never listens: a handoff to it
  // must fail at the transport and revert — the tenant keeps running at
  // the source as if nothing happened.
  ClusterConfig with_ghost = cluster.config;
  with_ghost.version = 3;
  with_ghost.nodes.push_back({"ghost", "127.0.0.1", 1});
  with_ghost.Normalize();
  cluster.a->InstallConfig(with_ghost);
  cluster.b->InstallConfig(with_ghost);
  // The ghost must not own the tenant, or traffic would route into the
  // void; if the hash picks it, pin the tenant to a real node first.
  if (OwnerOf(with_ghost, kTenant)->id == "ghost") {
    ClusterConfig pinned = with_ghost;
    pinned.version = 4;
    pinned.overrides[kTenant] = "a";
    cluster.a->InstallConfig(pinned);
    cluster.b->InstallConfig(pinned);
    with_ghost = pinned;
  }
  cluster.config = with_ghost;

  std::atomic<bool> failed{false};
  std::thread producer(
      [&] { RunWorkload(cluster.config, *cluster.env, &failed); });

  ClusterClient admin(cluster.config);
  while (AnalyzedNow(admin) < kMigrateAfter && !failed.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_FALSE(failed.load());
  net::Request migrate;
  migrate.type = net::MsgType::kMigrate;
  migrate.target_node = "ghost";
  auto resp = admin.Call(kTenant, std::move(migrate));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->kind, net::RespKind::kError) << resp->message;

  producer.join();
  ASSERT_FALSE(failed.load());

  // Migrating to a node outside the layout is rejected up front.
  net::Request bogus;
  bogus.type = net::MsgType::kMigrate;
  bogus.target_node = "never-heard-of-it";
  auto bogus_resp = admin.Call(kTenant, std::move(bogus));
  ASSERT_TRUE(bogus_resp.ok());
  EXPECT_EQ(bogus_resp->kind, net::RespKind::kError);

  const std::vector<IndexSet> stitched = Stitch(cluster);
  ASSERT_EQ(stitched.size(), kStatements);
  for (size_t seq = 0; seq < kStatements; ++seq) {
    ASSERT_EQ(stitched[seq], reference[seq])
        << "trajectory diverged at statement " << seq;
  }
  cluster.Shutdown();
}

// The fleet health plane against a live two-node cluster: kGetHealth
// reports decode for every node, the merged fleet scrape carries
// node="..." labels with one header per family, and a trace id stamped
// by the client at submit time comes back out of kDumpTrace attached to
// the node-side spans (wire propagation end to end).
TEST(ClusterHealthTest, HealthScrapeAndTracePlane) {
  TwoNodeCluster cluster("health");
#ifndef WFIT_DISABLE_TRACING
  obs::SetTracingEnabled(true);
  obs::ClearTraceForTest();
#endif

  ClusterClient client(cluster.config);
  const Workload& workload = cluster.env->Env(0).workload;
  const uint64_t kTrace = 0x7ace1d0000000001ull;
  const size_t kSubmit = 10;
  for (size_t seq = 0; seq < kSubmit; ++seq) {
    net::Request req;
    req.type = net::MsgType::kSubmitAt;
    req.seq = seq;
    req.has_statement = true;
    req.statement = workload[seq];
    req.trace_id = kTrace + seq;
    auto resp = client.Call(kTenant, std::move(req));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->kind, net::RespKind::kOk) << resp->message;
  }
  while (AnalyzedNow(client) < kSubmit) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // kGetHealth: one decoded report per node, with the owner's progress.
  FleetHealth health = client.FetchFleetHealth();
  ASSERT_EQ(health.nodes.size(), 2u);
  uint64_t analyzed = 0;
  for (const obs::NodeHealthReport& r : health.nodes) {
    EXPECT_TRUE(r.node_id == "a" || r.node_id == "b") << r.node_id;
    EXPECT_EQ(r.config_version, cluster.config.version);
    analyzed += r.statements_analyzed;
  }
  EXPECT_GE(analyzed, kSubmit);

  // The merged scrape: per-node series under a single header per family.
  std::string scrape = client.ScrapeFleet();
  EXPECT_NE(scrape.find("wfit_node_config_version{node=\"a\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("wfit_node_config_version{node=\"b\"}"),
            std::string::npos);
  EXPECT_EQ(scrape.find("# HELP wfit_node_config_version"),
            scrape.rfind("# HELP wfit_node_config_version"));

#ifndef WFIT_DISABLE_TRACING
  // kDumpTrace: the client-stamped trace ids reappear on node-side spans
  // (the wire carried the context into the handler and the analysis).
  net::Request dump;
  dump.type = net::MsgType::kDumpTrace;
  auto resp = client.CallNode(cluster.config.nodes[0].id, std::move(dump));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->kind, net::RespKind::kOk);
  std::vector<obs::Span> spans = obs::ParseSpanLines(resp->text);
  size_t stamped = 0;
  for (const obs::Span& s : spans) {
    if (s.trace_id >= kTrace && s.trace_id < kTrace + kSubmit) ++stamped;
  }
  EXPECT_GE(stamped, kSubmit)
      << "client trace ids did not propagate into node spans ("
      << spans.size() << " spans collected)";
  obs::SetTracingEnabled(false);
  obs::ClearTraceForTest();
#endif
  cluster.Shutdown();
}

}  // namespace
}  // namespace wfit::cluster
