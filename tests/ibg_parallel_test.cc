// Determinism contract of the parallel (level-synchronous) IBG build: the
// node set, every cost, relevant_used, the node-budget truncation decision
// and the retry-with-half fallback are byte-identical at any worker-pool
// width — what-if probes of one BFS level are independent, and the merge
// happens serially in canonical mask order.
//
// Also covers the single-reader enforcement: cost lookups memoize into
// mutable caches, so a second thread issuing memoizing reads must abort.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/worker_pool.h"
#include "ibg/ibg.h"
#include "ibg/interactions.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using wfit::testing::TestDb;

std::vector<IndexId> WideCandidates(TestDb& db) {
  // Enough candidates on one table that multi-predicate queries produce a
  // deep node closure (every used index spawns a child per level).
  return {db.Ix("t1", {"a"}),      db.Ix("t1", {"b"}),
          db.Ix("t1", {"c"}),      db.Ix("t1", {"a", "b"}),
          db.Ix("t1", {"b", "a"}), db.Ix("t1", {"a", "c"}),
          db.Ix("t1", {"c", "a"}), db.Ix("t1", {"b", "c"})};
}

struct IbgSignature {
  std::vector<IndexId> candidates;
  std::vector<IndexId> truncated;
  size_t num_nodes = 0;
  uint64_t build_calls = 0;
  Mask relevant_used = 0;
  std::vector<double> costs;  // all 2^|candidates| subsets
  std::vector<double> max_benefits;

  bool operator==(const IbgSignature& other) const {
    return candidates == other.candidates && truncated == other.truncated &&
           num_nodes == other.num_nodes &&
           build_calls == other.build_calls &&
           relevant_used == other.relevant_used && costs == other.costs &&
           max_benefits == other.max_benefits;
  }
};

IbgSignature Signature(const Statement& q, const WhatIfOptimizer& optimizer,
                       const std::vector<IndexId>& candidates,
                       size_t max_nodes, WorkerPool* pool) {
  IndexBenefitGraph ibg(q, optimizer, candidates, max_nodes, pool);
  IbgSignature sig;
  sig.candidates = ibg.candidates();
  sig.truncated = ibg.truncated_candidates();
  sig.num_nodes = ibg.num_nodes();
  sig.build_calls = ibg.build_calls();
  sig.relevant_used = ibg.relevant_used();
  const Mask full =
      ibg.candidates().empty()
          ? 0
          : static_cast<Mask>((1u << ibg.candidates().size()) - 1);
  for (Mask m = 0; m <= full; ++m) {
    sig.costs.push_back(ibg.CostOf(m));
    if (full == 0) break;
  }
  for (size_t bit = 0; bit < ibg.candidates().size(); ++bit) {
    sig.max_benefits.push_back(ibg.MaxBenefit(static_cast<int>(bit)));
  }
  return sig;
}

class IbgParallelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IbgParallelTest, GraphIdenticalToSerialBuild) {
  const size_t threads = GetParam();
  TestDb db;
  std::vector<IndexId> cands = WideCandidates(db);
  std::vector<Statement> queries = {
      db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200 "
              "AND b BETWEEN 0 AND 100"),
      db.Bind("SELECT count(*) FROM t1 WHERE a = 3 AND b = 4 AND c = 5"),
      db.Bind("SELECT d FROM t1 WHERE c = 9 ORDER BY a"),
      db.Bind("UPDATE t1 SET d = 1 WHERE a BETWEEN 0 AND 5"),
  };
  std::unique_ptr<WorkerPool> pool;
  if (threads > 1) pool = std::make_unique<WorkerPool>(threads - 1);
  for (const Statement& q : queries) {
    IbgSignature serial =
        Signature(q, db.optimizer(), cands, 1u << 20, nullptr);
    IbgSignature parallel =
        Signature(q, db.optimizer(), cands, 1u << 20, pool.get());
    EXPECT_TRUE(serial == parallel) << q.sql << " threads=" << threads;
  }
}

TEST_P(IbgParallelTest, NodeBudgetTruncationIdentical) {
  const size_t threads = GetParam();
  TestDb db;
  std::vector<IndexId> cands = WideCandidates(db);
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200 "
      "AND b BETWEEN 0 AND 100 AND c = 3");
  std::unique_ptr<WorkerPool> pool;
  if (threads > 1) pool = std::make_unique<WorkerPool>(threads - 1);
  // Sweep budgets from "sheds almost everything" (the retry-with-half
  // fallback path, possibly several halvings) to "fits exactly".
  bool saw_truncation = false;
  for (size_t budget : {1u, 2u, 3u, 5u, 9u, 17u, 33u, 1024u}) {
    IbgSignature serial =
        Signature(q, db.optimizer(), cands, budget, nullptr);
    IbgSignature parallel =
        Signature(q, db.optimizer(), cands, budget, pool.get());
    EXPECT_TRUE(serial == parallel)
        << "budget=" << budget << " threads=" << threads;
    EXPECT_LE(serial.num_nodes, budget);
    saw_truncation = saw_truncation || !serial.truncated.empty();
    // Shed + kept always partitions the input candidate list.
    EXPECT_EQ(serial.candidates.size() + serial.truncated.size(),
              cands.size());
  }
  EXPECT_TRUE(saw_truncation)
      << "the budget sweep must exercise the retry-with-half path";
}

TEST_P(IbgParallelTest, InteractionsIdentical) {
  const size_t threads = GetParam();
  TestDb db;
  std::vector<IndexId> cands = WideCandidates(db);
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 "
      "AND b BETWEEN 0 AND 80");
  std::unique_ptr<WorkerPool> pool;
  if (threads > 1) pool = std::make_unique<WorkerPool>(threads - 1);
  IndexBenefitGraph serial(q, db.optimizer(), cands);
  IndexBenefitGraph parallel(q, db.optimizer(), cands, 1u << 20, pool.get());
  std::vector<InteractionEntry> si = ComputeInteractions(serial);
  std::vector<InteractionEntry> pi = ComputeInteractions(parallel);
  ASSERT_EQ(si.size(), pi.size());
  EXPECT_FALSE(si.empty()) << "test query must interact";
  for (size_t i = 0; i < si.size(); ++i) {
    EXPECT_EQ(si[i].a, pi[i].a);
    EXPECT_EQ(si[i].b, pi[i].b);
    EXPECT_EQ(si[i].doi, pi[i].doi) << "doi must be bit-identical";
  }
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, IbgParallelTest,
                         ::testing::Values(1u, 2u, 8u));

TEST(IbgSingleReaderDeathTest, SecondThreadMemoizingReadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 3 AND b = 4");
  std::vector<IndexId> cands = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  EXPECT_DEATH(
      {
        IndexBenefitGraph ibg(q, db.optimizer(), cands);
        ibg.CostOf(1);  // claims the graph for this thread
        std::thread other([&] { ibg.CostOf(2); });
        other.join();
      },
      "memoizing reads from two threads");
}

}  // namespace
}  // namespace wfit
