// ServiceMetrics / router Prometheus text output against the exposition
// format grammar: sample-line syntax, HELP/TYPE headers preceding every
// family, label-value escaping, histogram bucket consistency, and counter
// monotonicity across successive scrapes (including across an eviction +
// re-admission cycle, where per-tenant counters merge incarnations).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/wfit.h"
#include "service/metrics.h"
#include "service/tenant_router.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

using wfit::testing::TestDb;

// --- A small exposition-format checker ----------------------------------

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
        name[0] == ':')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0]))) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

struct Sample {
  std::string name;    // metric name (with _bucket/_sum/_count suffix)
  std::string series;  // name + canonical label string
  double value = 0.0;
  std::map<std::string, std::string> labels;
};

/// Parses one exposition line `name[{labels}] value`; returns false (with
/// a reason) on any grammar violation.
bool ParseSample(const std::string& line, Sample* out, std::string* why) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *why = "bad metric name: " + line;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos) {
        *why = "label without '=': " + line;
        return false;
      }
      std::string label = line.substr(i, eq - i);
      if (!ValidLabelName(label)) {
        *why = "bad label name '" + label + "': " + line;
        return false;
      }
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        *why = "unquoted label value: " + line;
        return false;
      }
      // Scan the quoted value honoring escapes; only \\, \" and \n are
      // legal, and raw quotes/newlines must not appear.
      std::string value;
      size_t j = eq + 2;
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\') {
          if (j + 1 >= line.size() ||
              (line[j + 1] != '\\' && line[j + 1] != '"' &&
               line[j + 1] != 'n')) {
            *why = "bad escape in label value: " + line;
            return false;
          }
          value += line[j + 1];
          ++j;
        } else {
          value += line[j];
        }
      }
      if (j >= line.size()) {
        *why = "unterminated label value: " + line;
        return false;
      }
      out->labels[label] = value;
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *why = "unterminated label set: " + line;
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *why = "missing value separator: " + line;
    return false;
  }
  std::string value_token = line.substr(i + 1);
  if (value_token.empty() || value_token.find(' ') != std::string::npos) {
    *why = "malformed value token: " + line;
    return false;
  }
  if (value_token == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
  } else {
    char* end = nullptr;
    out->value = std::strtod(value_token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      *why = "non-numeric value: " + line;
      return false;
    }
  }
  out->series = line.substr(0, i);
  return true;
}

struct Exposition {
  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::vector<Sample> samples;
  std::map<std::string, double> series;  // series string -> value
};

/// Full-grammar walk of an exported page. Fails the current test on any
/// violation (void so ASSERT_* is usable; results via the out param).
void ValidateExposition(const std::string& text,
                        Exposition* out = nullptr) {
  Exposition exposition;
  std::set<std::string> helped;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream h(line.substr(7));
      std::string family;
      h >> family;
      ASSERT_TRUE(ValidMetricName(family)) << line;
      ASSERT_TRUE(helped.insert(family).second)
          << "duplicate HELP for " << family;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string family, type;
      t >> family >> type;
      ASSERT_TRUE(ValidMetricName(family)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary" ||
                  type == "untyped")
          << line;
      ASSERT_TRUE(helped.count(family)) << "TYPE before HELP: " << line;
      ASSERT_TRUE(exposition.types.emplace(family, type).second)
          << "duplicate TYPE for " << family;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    Sample sample;
    std::string why;
    ASSERT_TRUE(ParseSample(line, &sample, &why)) << why;
    // Find the family: the name itself, or (for histograms) the name with
    // a _bucket/_sum/_count suffix stripped.
    std::string family = sample.name;
    if (exposition.types.find(family) == exposition.types.end()) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        std::string s(suffix);
        if (family.size() > s.size() &&
            family.compare(family.size() - s.size(), s.size(), s) == 0) {
          std::string stripped = family.substr(0, family.size() - s.size());
          auto it = exposition.types.find(stripped);
          if (it != exposition.types.end() && it->second == "histogram") {
            family = stripped;
            break;
          }
        }
      }
    }
    auto type = exposition.types.find(family);
    ASSERT_NE(type, exposition.types.end())
        << "sample without TYPE header: " << line;
    if (type->second == "counter") {
      ASSERT_GE(sample.value, 0.0) << "negative counter: " << line;
    }
    ASSERT_TRUE(
        exposition.series.emplace(sample.series, sample.value).second)
        << "duplicate series: " << sample.series;
    exposition.samples.push_back(std::move(sample));
  }
  // Histogram internal consistency: cumulative buckets non-decreasing,
  // +Inf bucket equals _count, per label subset (tenant).
  for (const auto& [family, type] : exposition.types) {
    if (type != "histogram") continue;
    std::map<std::string, std::pair<double, double>> last_and_inf;
    for (const Sample& s : exposition.samples) {
      if (s.name != family + "_bucket") continue;
      std::string key;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") key += k + "=" + v + ";";
      }
      auto& [last, inf] = last_and_inf[key];
      ASSERT_GE(s.value, last) << "non-monotone buckets in " << family;
      last = s.value;
      if (s.labels.at("le") == "+Inf") inf = s.value;
    }
    for (const Sample& s : exposition.samples) {
      if (s.name != family + "_count") continue;
      std::string key;
      for (const auto& [k, v] : s.labels) key += k + "=" + v + ";";
      ASSERT_EQ(s.value, last_and_inf[key].second)
          << family << "_count != +Inf bucket";
    }
  }
  if (out != nullptr) *out = std::move(exposition);
}

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t3 WHERE v = 9",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

TEST(MetricsExportTest, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain-id_1"), "plain-id_1");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(MetricsExportTest, ServiceExportMatchesExpositionGrammar) {
  TestDb db;
  Workload w = BuildWorkload(db, 24);
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()));
  service.Start();
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  service.Shutdown();
  ValidateExposition(ExportText(service.Metrics()));
}

TEST(MetricsExportTest, TenantExportEscapesHostileIdsAndValidates) {
  // Tenant ids that attack the label syntax: quotes, backslashes,
  // newlines, braces, commas.
  MetricsSnapshot a;
  a.statements_analyzed = 3;
  a.latency_counts[0] = 3;
  MetricsSnapshot b;
  b.statements_analyzed = 5;
  b.latency_counts[2] = 5;
  std::vector<std::pair<std::string, MetricsSnapshot>> tenants = {
      {"evil\"quote", a},
      {"back\\slash,and{braces}", b},
      {"new\nline", a},
  };
  std::ostringstream os;
  ExportTenantText(tenants, os);
  std::string text = os.str();
  ValidateExposition(text);
  EXPECT_NE(text.find("wfit_tenant_stmts_total{tenant=\"evil\\\"quote\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "wfit_tenant_stmts_total{tenant=\"back\\\\slash,and{braces}\"} 5"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("new\\nline"), std::string::npos);
}

TEST(MetricsExportTest, StageHistogramsExportAndValidate) {
  ServiceMetrics metrics;
  // One sample per stage, spread across buckets (5 us, 100 us, 2 ms, 2 s).
  metrics.RecordStage(obs::Stage::kQueueWait, 5'000);
  metrics.RecordStage(obs::Stage::kIbgBuild, 100'000);
  metrics.RecordStage(obs::Stage::kProbe, 2'000'000);
  metrics.RecordStage(obs::Stage::kCheckpointWrite, 2'000'000'000);
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.stage_count(obs::Stage::kQueueWait), 1u);
  EXPECT_NEAR(snapshot.stage_mean_us(obs::Stage::kProbe), 2000.0, 1.0);

  std::string text = ExportText(snapshot);
  Exposition exposition;
  ValidateExposition(text, &exposition);
  ASSERT_EQ(exposition.types.count("wfit_service_stage_latency_us"), 1u);
  EXPECT_EQ(exposition.types.at("wfit_service_stage_latency_us"),
            "histogram");
  // Every stage appears as its own labelled series with a +Inf bucket.
  for (const char* stage :
       {"queue_wait", "ibg_build", "probe", "checkpoint_write"}) {
    EXPECT_NE(
        text.find("wfit_service_stage_latency_us_bucket{stage=\"" +
                  std::string(stage) + "\",le=\"+Inf\"} 1"),
        std::string::npos)
        << "missing stage series " << stage << " in:\n" << text;
  }

  // The per-tenant exporter carries the same families with tenant labels.
  std::ostringstream os;
  ExportTenantText({{"t0", snapshot}}, os);
  std::string tenant_text = os.str();
  ValidateExposition(tenant_text);
  EXPECT_NE(tenant_text.find(
                "wfit_tenant_stage_latency_us_bucket{tenant=\"t0\","
                "stage=\"queue_wait\""),
            std::string::npos)
      << tenant_text;
}

TEST(MetricsExportTest, CountersAreMonotoneAcrossScrapesAndEviction) {
  TestDb db;
  Workload w = BuildWorkload(db, 30);
  auto factory = [&db](const std::string&) {
    TenantTuner made;
    made.tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                        IndexSet{}, FastOptions());
    made.pool = &db.pool();
    return made;
  };
  namespace fs = std::filesystem;
  TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.checkpoint_root =
      (fs::path(::testing::TempDir()) / "wfit_metrics_monotone").string();
  fs::remove_all(options.checkpoint_root);
  options.drain_threads = 0;
  TenantRouter router(factory, options);
  router.Start();

  auto scrape = [&] {
    std::string text = router.ExportText();
    Exposition e;
    // Re-validate and harvest the counter series.
    ValidateExposition(text);
    std::istringstream is(text);
    std::string line, type;
    std::map<std::string, std::string> types;
    std::map<std::string, double> counters;
    while (std::getline(is, line)) {
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream t(line.substr(7));
        std::string family;
        t >> family >> type;
        types[family] = type;
        continue;
      }
      if (line[0] == '#') continue;
      Sample s;
      std::string why;
      if (!ParseSample(line, &s, &why)) {
        ADD_FAILURE() << why;
        continue;
      }
      auto it = types.find(s.name);
      if (it != types.end() && it->second == "counter") {
        counters[s.series] = s.value;
      }
    }
    return counters;
  };

  std::vector<std::map<std::string, double>> scrapes;
  auto run = [&](size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      ASSERT_TRUE(router.Submit("only", w[i]));
    }
    while (!router.DrainOne().empty()) {
    }
  };
  run(0, 10);
  scrapes.push_back(scrape());
  run(10, 20);
  scrapes.push_back(scrape());
  // Evict + re-admit: merged per-tenant counters must not step backwards.
  ASSERT_TRUE(router.Evict("only"));
  scrapes.push_back(scrape());
  run(20, 30);
  scrapes.push_back(scrape());
  router.Shutdown();
  scrapes.push_back(scrape());

  for (size_t i = 1; i < scrapes.size(); ++i) {
    for (const auto& [series, value] : scrapes[i - 1]) {
      auto it = scrapes[i].find(series);
      ASSERT_NE(it, scrapes[i].end())
          << "counter series vanished: " << series;
      EXPECT_GE(it->second, value)
          << "counter went backwards between scrapes " << (i - 1) << " and "
          << i << ": " << series;
    }
  }
  // And the statement counter really advanced.
  EXPECT_EQ(scrapes.back().at("wfit_tenant_stmts_total{tenant=\"only\"}"),
            30.0);
}

TEST(MetricsExportTest, RouterExportValidatesWithMultipleTenants) {
  TestDb db;
  Workload w = BuildWorkload(db, 8);
  auto factory = [&db](const std::string&) {
    TenantTuner made;
    made.tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                        IndexSet{}, FastOptions());
    return made;
  };
  TenantRouterOptions options;
  options.drain_threads = 0;
  TenantRouter router(factory, options);
  router.Start();
  for (const Statement& q : w) {
    ASSERT_TRUE(router.Submit("alpha", q));
    ASSERT_TRUE(router.Submit("beta", q));
  }
  while (!router.DrainOne().empty()) {
  }
  router.Shutdown();
  ValidateExposition(router.ExportText());
}

}  // namespace
}  // namespace wfit::service
