// Journal compaction under the service: once two full checkpoints make a
// journal prefix redundant, the service rewrites the journal without it —
// and a crash at ANY point afterwards (snapshots + a compacted journal
// whose LSN domain no longer starts at zero) still recovers the exact
// recommendation trajectory. Plus the persist-layer race the service
// never creates but an operator's manual compaction could: a checkpoint
// write and a journal compaction running concurrently against the same
// checkpoint directory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/wfit.h"
#include "persist/delta.h"
#include "persist/journal.h"
#include "service/tuner_service.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

constexpr size_t kTotal = 200;
constexpr size_t kCrashAt = 137;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = (fs::path(::testing::TempDir()) /
                     ("wfit_compaction_" + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  return dir;
}

/// Aggressive-compaction durability options: checkpoints every 20
/// statements, a full every other checkpoint, journal rewritten as soon
/// as a prefix is covered.
TunerServiceOptions CompactingOptions(const std::string& dir) {
  TunerServiceOptions options;
  options.queue_capacity = 64;
  options.max_batch = 5;
  options.record_history = true;
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 20;
  options.checkpoint_on_shutdown = false;  // crash-realistic
  options.full_snapshot_every = 2;
  options.journal_compact_min_bytes = 1024;
  return options;
}

std::vector<IndexSet> ReferenceHistory() {
  TestDb db;
  Workload w = BuildWorkload(db, kTotal);
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> history;
  for (size_t i = 0; i < kTotal; ++i) {
    tuner.AnalyzeQuery(w[i]);
    history.push_back(tuner.Recommendation());
  }
  return history;
}

TEST(CompactionTest, RecoveryFromACompactedJournalIsBitIdentical) {
  const std::string dir = FreshDir("recover");
  TunerServiceOptions options = CompactingOptions(dir);

  // "Process 1": analyze kCrashAt statements with compaction churning
  // underneath, then die without a shutdown checkpoint.
  uint64_t compactions = 0;
  {
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                        IndexSet{}, FastOptions());
    auto service = TunerService::Open(std::move(tuner), &db.pool(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    (*service)->Start();
    for (size_t i = 0; i < kCrashAt; ++i) {
      ASSERT_TRUE((*service)->SubmitAt(i, w[i]));
    }
    ASSERT_TRUE((*service)->WaitUntilAnalyzed(kCrashAt));
    (*service)->Shutdown();
    MetricsSnapshot m = (*service)->Metrics();
    compactions = m.journal_compactions;
    // 137 statements / 20 per checkpoint / full every 2nd = enough fulls
    // for the covered horizon to advance repeatedly.
    EXPECT_GE(compactions, 1u) << "compaction never triggered";
    EXPECT_GT(m.journal_compacted_bytes, 0u);
  }

  // The on-disk journal really does start at a shifted LSN base.
  auto read = persist::ReadJournal((fs::path(dir) / "journal.wfj").string());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_GT(read->base_lsn, 0u);

  // "Process 2": recover and finish; the trajectory must equal the
  // uninterrupted reference from the recovery point on.
  TestDb db;
  Workload w = BuildWorkload(db, kTotal);
  auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                      IndexSet{}, FastOptions());
  RecoveryStats stats;
  auto service =
      TunerService::Open(std::move(tuner), &db.pool(), options, &stats);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.analyzed, kCrashAt);
  (*service)->Start();
  for (size_t i = 0; i < kTotal; ++i) {
    (*service)->SubmitAt(i, w[i]);  // recovered prefix is dropped
  }
  (*service)->Shutdown();
  std::vector<IndexSet> recovered = (*service)->History();

  std::vector<IndexSet> reference = ReferenceHistory();
  const uint64_t start = stats.snapshot_analyzed;
  ASSERT_EQ(recovered.size(), kTotal - start);
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[start + i])
        << "trajectory diverged at statement " << (start + i);
  }
}

TEST(CompactionTest, RepeatedCompactionKeepsJournalBounded) {
  const std::string dir = FreshDir("bounded");
  TunerServiceOptions options = CompactingOptions(dir);
  TestDb db;
  Workload w = BuildWorkload(db, kTotal);
  auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                      IndexSet{}, FastOptions());
  auto service = TunerService::Open(std::move(tuner), &db.pool(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  (*service)->Start();
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE((*service)->SubmitAt(i, w[i]));
  }
  ASSERT_TRUE((*service)->WaitUntilAnalyzed(kTotal));
  (*service)->Shutdown();
  MetricsSnapshot m = (*service)->Metrics();
  EXPECT_GE(m.journal_compactions, 2u);
  // Steady state: the live journal holds at most the records since the
  // last covered horizon (a couple of checkpoint intervals), not the
  // whole history. The uncompacted journal for 200 statements is several
  // times larger.
  auto read = persist::ReadJournal((fs::path(dir) / "journal.wfj").string());
  ASSERT_TRUE(read.ok());
  EXPECT_LT(read->records.size(), kTotal);
  EXPECT_GT(read->base_lsn, 0u);
}

TEST(CompactionTest, CompactionRacesConcurrentCheckpointWrite) {
  // The service serializes checkpointing and compaction on the worker
  // thread, but the two touch DIFFERENT files (snapshot tmp+rename vs
  // journal tmp+rename, both fsyncing the same directory) — so a manual
  // compaction racing a checkpoint writer must not corrupt either. Run
  // them concurrently at the persist layer and verify both artifacts
  // recover cleanly.
  const std::string dir = FreshDir("race");
  fs::create_directories(dir);
  const std::string journal_path = (fs::path(dir) / "journal.wfj").string();

  TestDb db;
  Workload w = BuildWorkload(db, 120);
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());

  persist::DeltaCheckpointer::Options copts;
  copts.full_every = 1;  // every checkpoint full: cover advances fastest
  persist::DeltaCheckpointer cp(copts);
  persist::JournalWriter journal;
  ASSERT_TRUE(journal.Open(journal_path, 0, 0).ok());
  uint64_t cover = 0;
  for (size_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(journal.AppendStatement(i, w[i]).ok());
    tuner.AnalyzeQuery(w[i]);
    ASSERT_TRUE(journal.AppendAnalyzed(i).ok());
    if ((i + 1) % 20 == 0) {
      ASSERT_TRUE(journal.Sync().ok());
      persist::SnapshotMeta meta;
      meta.analyzed = i + 1;
      meta.journal_lsn = journal.lsn();
      auto r = cp.Write(dir, tuner, db.pool(), meta);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (r->cover_lsn > 0) cover = r->cover_lsn;
    }
  }
  ASSERT_TRUE(journal.Sync().ok());
  const uint64_t final_lsn = journal.lsn();
  journal.Close();  // compaction requires the writer closed
  ASSERT_GT(cover, 0u);

  // The race: one thread writes the next checkpoint, the other compacts
  // the journal up to the already-covered horizon.
  persist::SnapshotMeta meta;
  meta.analyzed = 120;
  meta.journal_lsn = final_lsn;
  Status write_status = Status::Ok();
  Status compact_status = Status::Ok();
  persist::CompactionResult compaction;
  std::thread writer([&] {
    auto r = cp.Write(dir, tuner, db.pool(), meta);
    write_status = r.status();
  });
  std::thread compactor([&] {
    auto r = persist::CompactJournal(journal_path, cover);
    compact_status = r.status();
    if (r.ok()) compaction = *r;
  });
  writer.join();
  compactor.join();
  ASSERT_TRUE(write_status.ok()) << write_status.ToString();
  ASSERT_TRUE(compact_status.ok()) << compact_status.ToString();
  EXPECT_EQ(compaction.base_lsn, cover);

  // Both artifacts are intact: the newest checkpoint loads, and the
  // compacted journal's domain still covers the snapshot's LSN.
  TestDb db2;
  Workload w2 = BuildWorkload(db2, 120);
  (void)w2;
  Wfit fresh(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  persist::DeltaCheckpointer cp2;
  persist::SnapshotLoadResult loaded =
      persist::LoadLatestCheckpoint(dir, &fresh, &db2.pool(), &cp2);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.analyzed, 120u);
  EXPECT_EQ(loaded.skipped, 0u);
  EXPECT_EQ(fresh.Recommendation(), tuner.Recommendation());
  auto read = persist::ReadJournal(journal_path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->base_lsn, cover);
  EXPECT_GE(loaded.meta.journal_lsn, read->base_lsn);
  EXPECT_LE(loaded.meta.journal_lsn,
            read->base_lsn + read->records.size());
}

TEST(CompactionTest, SnapshotOlderThanJournalBaseIsALsnDomainMismatch) {
  // Compaction dropped history an (externally restored, stale) snapshot
  // still needs: recovery must not replay from the wrong offset — it
  // declares a domain mismatch, trusts the snapshot, and re-stamps.
  const std::string dir = FreshDir("stale");
  TunerServiceOptions options = CompactingOptions(dir);
  {
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                        IndexSet{}, FastOptions());
    auto service = TunerService::Open(std::move(tuner), &db.pool(), options);
    ASSERT_TRUE(service.ok());
    (*service)->Start();
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_TRUE((*service)->SubmitAt(i, w[i]));
    }
    ASSERT_TRUE((*service)->WaitUntilAnalyzed(kTotal));
    (*service)->Shutdown();
    ASSERT_GE((*service)->Metrics().journal_compactions, 1u);
  }
  // "Restore from backup": delete every snapshot, leaving only the
  // compacted journal — its base LSN now references dropped history no
  // snapshot covers.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find("journal") == std::string::npos) fs::remove(entry.path());
  }
  TestDb db;
  auto tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                      IndexSet{}, FastOptions());
  RecoveryStats stats;
  auto service =
      TunerService::Open(std::move(tuner), &db.pool(), options, &stats);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // Cold start (no snapshot), journal base > 0: nothing is replayable.
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed_statements, 0u);
  EXPECT_EQ(stats.analyzed, 0u);
  (*service)->Shutdown();
}

}  // namespace
}  // namespace wfit::service
