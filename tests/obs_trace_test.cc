// Tests for src/obs/: the span ring (overflow drops-oldest, concurrent
// writers collected safely), trace-context propagation, the span-line and
// Chrome trace exporters, NDJSON logging, stage histograms, and the fleet
// health plane (health JSON round trip, scrape merging).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/health.h"
#include "obs/log.h"
#include "obs/stages.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace wfit::obs {
namespace {

#ifndef WFIT_DISABLE_TRACING

/// Every tracing test runs with the runtime switch on and an empty ring,
/// and leaves tracing off so unrelated suites stay uninstrumented.
class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(true);
    ClearTraceForTest();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ClearTraceForTest();
  }
};

TEST_F(TracingTest, SpanGuardRecordsNestedParents) {
  uint64_t outer_trace = 0;
  uint64_t outer_span = 0;
  {
    SpanGuard outer("outer");
    outer.SetDetail("root of the test trace");
    outer_trace = outer.trace_id();
    outer_span = outer.span_id();
    ASSERT_NE(outer_trace, 0u);
    SpanGuard inner("inner");
    EXPECT_EQ(inner.trace_id(), outer_trace);
  }
  std::vector<Span> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Rings store completion order: inner closes first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].trace_id, outer_trace);
  EXPECT_EQ(spans[0].parent_span, outer_span);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span, 0u);
  EXPECT_STREQ(spans[1].detail, "root of the test trace");
}

TEST_F(TracingTest, ScopedTraceContextInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().active());
  {
    ScopedTraceContext ctx(TraceContext{42, 7});
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    EXPECT_EQ(CurrentTraceContext().parent_span, 7u);
    SpanGuard child("child");
    EXPECT_EQ(child.trace_id(), 42u);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  std::vector<Span> spans = CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 42u);
  EXPECT_EQ(spans[0].parent_span, 7u);
}

TEST_F(TracingTest, DisabledGuardRecordsNothing) {
  SetTracingEnabled(false);
  {
    SpanGuard span("ghost");
    span.SetDetail("never recorded");
    EXPECT_EQ(span.trace_id(), 0u);
    RecordInstant("ghost.instant");
  }
  EXPECT_TRUE(CollectSpans().empty());
}

TEST_F(TracingTest, RingOverflowDropsOldestAndCounts) {
  // Well past one ring (4096 spans per thread): only the newest survive.
  constexpr int kPushed = 6000;
  for (int i = 0; i < kPushed; ++i) {
    RecordInstant("overflow", "n" + std::to_string(i));
  }
  std::vector<Span> spans = CollectSpans();
  ASSERT_FALSE(spans.empty());
  ASSERT_LE(spans.size(), 4096u);
  // Drops-oldest: the final span pushed is present, the first is gone.
  EXPECT_STREQ(spans.back().detail, ("n" + std::to_string(kPushed - 1)).c_str());
  for (const Span& s : spans) {
    EXPECT_STRNE(s.detail, "n0");
  }
  TraceCounters counters = CollectTraceCounters();
  EXPECT_EQ(counters.recorded, static_cast<uint64_t>(kPushed));
  EXPECT_EQ(counters.dropped, static_cast<uint64_t>(kPushed) - 4096u);
}

TEST_F(TracingTest, ConcurrentWritersAndCollectorAreClean) {
  // TSan coverage: writer threads push while the main thread collects.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread collector([&] {
    while (!stop.load()) {
      (void)CollectSpans();
      (void)CollectTraceCounters();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SpanGuard span("worker");
        span.SetDetail("t" + std::to_string(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  collector.join();
  // Every span survives (each thread has its own ring, none overflowed
  // within this test's window).
  std::vector<Span> spans = CollectSpans();
  size_t workers = 0;
  for (const Span& s : spans) {
    if (std::string(s.name) == "worker") ++workers;
  }
  EXPECT_EQ(workers, static_cast<size_t>(kThreads) * kPerThread);
}

TEST_F(TracingTest, SpanLineRoundTrip) {
  Span span{};
  span.trace_id = 0xdeadbeefcafef00dull;
  span.span_id = 0x1234567890abcdefull;
  span.parent_span = 17;
  span.start_ns = 1000000;
  span.dur_ns = 2500;
  span.tid = 3;
  std::snprintf(span.name, sizeof(span.name), "%s", "analyze");
  std::snprintf(span.detail, sizeof(span.detail), "%s", "seq 42 extra");
  std::string line = FormatSpanLine(span);
  Span parsed{};
  ASSERT_TRUE(ParseSpanLine(line, &parsed));
  EXPECT_EQ(parsed.trace_id, span.trace_id);
  EXPECT_EQ(parsed.span_id, span.span_id);
  EXPECT_EQ(parsed.parent_span, span.parent_span);
  EXPECT_EQ(parsed.start_ns, span.start_ns);
  EXPECT_EQ(parsed.dur_ns, span.dur_ns);
  EXPECT_EQ(parsed.tid, span.tid);
  EXPECT_STREQ(parsed.name, span.name);
  EXPECT_STREQ(parsed.detail, span.detail);

  // Bulk: bad lines are skipped, good ones parsed.
  std::string text = line + "\nnot a span line\n" + line + "\n";
  EXPECT_EQ(ParseSpanLines(text).size(), 2u);
  EXPECT_TRUE(ParseSpanLine("garbage", &parsed) == false);
}

TEST_F(TracingTest, ChromeTraceJsonSchema) {
  {
    SpanGuard outer("request");
    SpanGuard inner("analyze");
    inner.SetDetail("seq 7");
  }
  std::string json = ChromeTraceJson(CollectSpans(), "node a");
  // The schema Perfetto/chrome://tracing require: a traceEvents array,
  // a process_name metadata event, and "X" duration events with pid/tid/
  // ts/dur members.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("node a"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // Multi-process merge: one pid per node.
  std::vector<std::pair<std::string, std::vector<Span>>> processes;
  processes.emplace_back("node a", CollectSpans());
  processes.emplace_back("node b", CollectSpans());
  std::string multi = ChromeTraceJsonMulti(processes);
  EXPECT_NE(multi.find("node a"), std::string::npos);
  EXPECT_NE(multi.find("node b"), std::string::npos);
}

TEST_F(TracingTest, LogAttachesActiveTraceIds) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  SetLogSink(sink);
  {
    ScopedTraceContext ctx(TraceContext{0xabc, 0xdef});
    Log(LogLevel::kInfo, "unit.traced").Str("key", "value");
  }
  SetLogSink(nullptr);
  std::fflush(sink);
  std::rewind(sink);
  char buf[512] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, sink), 0u);
  std::fclose(sink);
  const std::string line(buf);
  EXPECT_NE(line.find("\"event\":\"unit.traced\""), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"0000000000000abc\""), std::string::npos);
  EXPECT_NE(line.find("\"key\":\"value\""), std::string::npos);
}

#endif  // WFIT_DISABLE_TRACING

TEST(StageTest, NamesAndSinkRecording) {
  EXPECT_STREQ(StageName(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(StageName(Stage::kIbgBuild), "ibg_build");
  EXPECT_STREQ(StageName(Stage::kProbe), "probe");
  EXPECT_STREQ(StageName(Stage::kCheckpointWrite), "checkpoint_write");

  struct CountingSink : StageSink {
    std::atomic<uint64_t> total_ns{0};
    std::atomic<int> calls{0};
    void RecordStage(Stage, uint64_t ns) override {
      total_ns += ns;
      ++calls;
    }
  } sink;

  // No sink installed: recording is a no-op.
  RecordStage(Stage::kProbe, 1000);
  EXPECT_EQ(sink.calls.load(), 0);
  {
    ScopedStageSink install(&sink);
    RecordStage(Stage::kProbe, 1000);
    { StageTimer timer(Stage::kIbgBuild); }
    EXPECT_EQ(CurrentStageSink(), &sink);
  }
  EXPECT_EQ(CurrentStageSink(), nullptr);
  EXPECT_EQ(sink.calls.load(), 2);
  EXPECT_GE(sink.total_ns.load(), 1000u);
}

TEST(LogTest, NdjsonFormatAndLevelFilter) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  SetLogSink(sink);
  SetLogLevel(LogLevel::kInfo);
  Log(LogLevel::kDebug, "unit.suppressed").U64("n", 1);
  Log(LogLevel::kWarn, "unit.kept")
      .Str("tenant", "t\"quoted\"")
      .U64("count", 12)
      .I64("delta", -3)
      .Dbl("ratio", 0.5)
      .Bool("ok", true);
  SetLogSink(nullptr);
  std::fflush(sink);
  std::rewind(sink);
  char buf[1024] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, sink), 0u);
  std::fclose(sink);
  const std::string text(buf);
  EXPECT_EQ(text.find("unit.suppressed"), std::string::npos);
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"unit.kept\""), std::string::npos);
  EXPECT_NE(text.find("\"tenant\":\"t\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":12"), std::string::npos);
  EXPECT_NE(text.find("\"delta\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(text.find("\"ts_ms\":"), std::string::npos);
  // One record per line, newline-terminated.
  EXPECT_EQ(text.back(), '\n');
}

TEST(HealthTest, HealthJsonRoundTrip) {
  NodeHealthReport r;
  r.node_id = "node-a";
  r.config_version = 12;
  r.membership_enabled = true;
  r.acting_coordinator = true;
  r.tenants_known = 8;
  r.tenants_resident = 5;
  r.queue_depth = 17;
  r.statements_analyzed = 90210;
  r.admin_queue_depth = 2;
  r.admin_shed_total = 1;
  r.failovers = 3;
  r.tenants_failed_over = 6;
  r.rebalance_migrations = 4;
  r.decommissions = 1;
  r.last_takeover_ms = 250;
  r.heartbeats_sent = 1000;
  r.heartbeats_received = 990;
  r.tracing_enabled = true;
  r.trace_spans = 4242;
  r.trace_dropped = 7;
  r.peers.push_back({"node-b", "alive", 0, 40});
  r.peers.push_back({"node-c", "dead", 9, 1200});

  NodeHealthReport parsed;
  ASSERT_TRUE(DecodeHealthJson(EncodeHealthJson(r), &parsed));
  EXPECT_EQ(parsed.node_id, r.node_id);
  EXPECT_EQ(parsed.config_version, r.config_version);
  EXPECT_TRUE(parsed.membership_enabled);
  EXPECT_TRUE(parsed.acting_coordinator);
  EXPECT_EQ(parsed.tenants_known, r.tenants_known);
  EXPECT_EQ(parsed.tenants_resident, r.tenants_resident);
  EXPECT_EQ(parsed.queue_depth, r.queue_depth);
  EXPECT_EQ(parsed.statements_analyzed, r.statements_analyzed);
  EXPECT_EQ(parsed.admin_queue_depth, r.admin_queue_depth);
  EXPECT_EQ(parsed.admin_shed_total, r.admin_shed_total);
  EXPECT_EQ(parsed.failovers, r.failovers);
  EXPECT_EQ(parsed.tenants_failed_over, r.tenants_failed_over);
  EXPECT_EQ(parsed.rebalance_migrations, r.rebalance_migrations);
  EXPECT_EQ(parsed.decommissions, r.decommissions);
  EXPECT_EQ(parsed.last_takeover_ms, r.last_takeover_ms);
  EXPECT_EQ(parsed.heartbeats_sent, r.heartbeats_sent);
  EXPECT_EQ(parsed.heartbeats_received, r.heartbeats_received);
  EXPECT_TRUE(parsed.tracing_enabled);
  EXPECT_EQ(parsed.trace_spans, r.trace_spans);
  EXPECT_EQ(parsed.trace_dropped, r.trace_dropped);
  ASSERT_EQ(parsed.peers.size(), 2u);
  EXPECT_EQ(parsed.peers[0].id, "node-b");
  EXPECT_EQ(parsed.peers[0].health, "alive");
  EXPECT_EQ(parsed.peers[1].id, "node-c");
  EXPECT_EQ(parsed.peers[1].health, "dead");
  EXPECT_EQ(parsed.peers[1].consecutive_misses, 9u);
  EXPECT_EQ(parsed.peers[1].silence_ms, 1200u);

  NodeHealthReport junk;
  EXPECT_FALSE(DecodeHealthJson("{\"no\":\"report\"}", &junk));
}

TEST(HealthTest, MergeFleetScrapeInjectsNodeLabels) {
  const std::string scrape_a =
      "# HELP wfit_m statements.\n"
      "# TYPE wfit_m counter\n"
      "wfit_m 10\n"
      "# HELP wfit_lat latency.\n"
      "# TYPE wfit_lat histogram\n"
      "wfit_lat_bucket{le=\"+Inf\"} 4\n"
      "wfit_lat_sum 9.5\n"
      "wfit_lat_count 4\n"
      "wfit_tenant{tenant=\"t0\"} 2\n";
  const std::string scrape_b =
      "# HELP wfit_m statements.\n"
      "# TYPE wfit_m counter\n"
      "wfit_m 20\n";
  std::string merged =
      MergeFleetScrapeText({{"a", scrape_a}, {"b", scrape_b}});

  // Unlabelled samples gain {node="..."}; labelled samples get node first.
  EXPECT_NE(merged.find("wfit_m{node=\"a\"} 10"), std::string::npos);
  EXPECT_NE(merged.find("wfit_m{node=\"b\"} 20"), std::string::npos);
  EXPECT_NE(merged.find("wfit_lat_bucket{node=\"a\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(merged.find("wfit_tenant{node=\"a\",tenant=\"t0\"} 2"),
            std::string::npos);
  // Headers appear exactly once per family, and both nodes' wfit_m samples
  // sit in one contiguous family block under that single header.
  EXPECT_EQ(merged.find("# HELP wfit_m"), merged.rfind("# HELP wfit_m"));
  EXPECT_EQ(merged.find("# TYPE wfit_m"), merged.rfind("# TYPE wfit_m"));
  // Histogram children group under the base family (after its header).
  EXPECT_LT(merged.find("# TYPE wfit_lat"), merged.find("wfit_lat_sum"));
}

}  // namespace
}  // namespace wfit::obs
