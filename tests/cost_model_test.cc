#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(CostModelTest, TablePagesScaleWithRowsAndWidth) {
  TestDb db;
  auto t1 = db.catalog().FindTable("t1");
  auto t3 = db.catalog().FindTable("t3");
  ASSERT_TRUE(t1.ok() && t3.ok());
  EXPECT_GT(db.model().TablePages(*t1), db.model().TablePages(*t3));
  EXPECT_GE(db.model().TablePages(*t3), 1.0);
}

TEST(CostModelTest, ScanCostExceedsPageCost) {
  TestDb db;
  auto t1 = db.catalog().FindTable("t1");
  ASSERT_TRUE(t1.ok());
  EXPECT_GT(db.model().TableScanCost(*t1), db.model().TablePages(*t1));
}

TEST(CostModelTest, CreationDominatesDrop) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  EXPECT_GT(db.model().CreateCost(a), 100 * db.model().DropCost(a));
}

TEST(CostModelTest, WiderIndexCostsMoreToCreate) {
  TestDb db;
  IndexId narrow = db.Ix("t1", {"a"});
  IndexId wide = db.Ix("t1", {"a", "b", "d"});
  EXPECT_GT(db.model().CreateCost(wide), db.model().CreateCost(narrow));
}

TEST(CostModelTest, BiggerTableIndexCostsMore) {
  TestDb db;
  IndexId big = db.Ix("t1", {"a"});
  IndexId small = db.Ix("t3", {"v"});
  EXPECT_GT(db.model().CreateCost(big), db.model().CreateCost(small));
}

TEST(CostModelTest, TransitionCostComposition) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexId b = db.Ix("t1", {"b"});
  const CostModel& m = db.model();
  IndexSet empty;
  IndexSet both{a, b};
  EXPECT_DOUBLE_EQ(m.TransitionCost(empty, both),
                   m.CreateCost(a) + m.CreateCost(b));
  EXPECT_DOUBLE_EQ(m.TransitionCost(both, empty),
                   m.DropCost(a) + m.DropCost(b));
  EXPECT_DOUBLE_EQ(m.TransitionCost(both, both), 0.0);
  EXPECT_DOUBLE_EQ(m.TransitionCost(IndexSet{a}, IndexSet{b}),
                   m.DropCost(a) + m.CreateCost(b));
}

TEST(CostModelTest, DeltaIsAsymmetric) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  IndexSet empty, with_a{a};
  EXPECT_NE(db.model().TransitionCost(empty, with_a),
            db.model().TransitionCost(with_a, empty));
}

TEST(CostModelTest, TriangleInequalityOnRandomSets) {
  // δ(X, Y) ≤ δ(X, Z) + δ(Z, Y) — required by the WFA analysis (Sec. 2).
  TestDb db;
  std::vector<IndexId> ids = {
      db.Ix("t1", {"a"}), db.Ix("t1", {"b"}), db.Ix("t1", {"c"}),
      db.Ix("t2", {"x"}), db.Ix("t2", {"y"}), db.Ix("t3", {"v"}),
  };
  Rng rng(99);
  auto random_set = [&]() {
    IndexSet s;
    for (IndexId id : ids) {
      if (rng.Bernoulli(0.5)) s.Add(id);
    }
    return s;
  };
  for (int trial = 0; trial < 500; ++trial) {
    IndexSet x = random_set(), y = random_set(), z = random_set();
    double direct = db.model().TransitionCost(x, y);
    double via = db.model().TransitionCost(x, z) +
                 db.model().TransitionCost(z, y);
    EXPECT_LE(direct, via + 1e-9);
  }
}

TEST(CostModelTest, MaintenanceScalesWithRows) {
  TestDb db;
  IndexId a = db.Ix("t1", {"a"});
  double small = db.model().MaintenanceCost(a, 10);
  double large = db.model().MaintenanceCost(a, 1000);
  EXPECT_GT(large, small);
  EXPECT_DOUBLE_EQ(db.model().MaintenanceCost(a, 0), 0.0);
}

TEST(CostModelTest, SortCostGrowsSuperlinearly) {
  TestDb db;
  double s1 = db.model().SortCost(1000);
  double s2 = db.model().SortCost(2000);
  EXPECT_GT(s2, 2.0 * s1);
  EXPECT_DOUBLE_EQ(db.model().SortCost(1.0), 0.0);
}

TEST(CostModelTest, OptionsArePluggable) {
  CostModelOptions expensive;
  expensive.random_page_cost = 40.0;
  TestDb cheap_db;
  TestDb pricey_db(expensive);
  IndexId a_cheap = cheap_db.Ix("t1", {"a"});
  IndexId a_pricey = pricey_db.Ix("t1", {"a"});
  // Creation cost is unaffected by random_page_cost...
  EXPECT_DOUBLE_EQ(cheap_db.model().CreateCost(a_cheap),
                   pricey_db.model().CreateCost(a_pricey));
  // ...but fetch-heavy query plans will differ (covered in what_if_test).
  EXPECT_EQ(pricey_db.model().options().random_page_cost, 40.0);
}

}  // namespace
}  // namespace wfit
