#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/benchmark_schemas.h"

namespace wfit {
namespace {

ColumnInfo Col(const std::string& name, uint64_t distinct = 10) {
  ColumnInfo c;
  c.name = name;
  c.distinct_values = distinct;
  c.width_bytes = 8;
  c.min_value = 0;
  c.max_value = 100;
  return c;
}

TableInfo SmallTable(const std::string& dataset, const std::string& name) {
  TableInfo t;
  t.dataset = dataset;
  t.name = name;
  t.row_count = 1000;
  t.columns = {Col("id"), Col("v")};
  return t;
}

TEST(CatalogTest, AddAndFindQualified) {
  Catalog c;
  auto id = c.AddTable(SmallTable("ds", "t"));
  ASSERT_TRUE(id.ok());
  auto found = c.FindTable("ds.t");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);
  EXPECT_EQ(c.table(*found).qualified_name(), "ds.t");
}

TEST(CatalogTest, BareNameWorksWhenUnambiguous) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SmallTable("ds", "t")).ok());
  EXPECT_TRUE(c.FindTable("t").ok());
}

TEST(CatalogTest, BareNameAmbiguousAcrossDatasets) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SmallTable("ds1", "t")).ok());
  ASSERT_TRUE(c.AddTable(SmallTable("ds2", "t")).ok());
  auto found = c.FindTable("t");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.FindTable("ds1.t").ok());
  EXPECT_TRUE(c.FindTable("ds2.t").ok());
}

TEST(CatalogTest, MissingTableIsNotFound) {
  Catalog c;
  EXPECT_EQ(c.FindTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SmallTable("ds", "t")).ok());
  auto again = c.AddTable(SmallTable("ds", "t"));
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsBadTables) {
  Catalog c;
  TableInfo no_cols = SmallTable("ds", "t");
  no_cols.columns.clear();
  EXPECT_EQ(c.AddTable(no_cols).status().code(),
            StatusCode::kInvalidArgument);

  TableInfo dup_cols = SmallTable("ds", "t2");
  dup_cols.columns = {Col("x"), Col("x")};
  EXPECT_EQ(c.AddTable(dup_cols).status().code(),
            StatusCode::kInvalidArgument);

  TableInfo zero_distinct = SmallTable("ds", "t3");
  zero_distinct.columns[0].distinct_values = 0;
  EXPECT_EQ(c.AddTable(zero_distinct).status().code(),
            StatusCode::kInvalidArgument);

  TableInfo bad_domain = SmallTable("ds", "t4");
  bad_domain.columns[0].min_value = 10;
  bad_domain.columns[0].max_value = 5;
  EXPECT_EQ(c.AddTable(bad_domain).status().code(),
            StatusCode::kInvalidArgument);

  TableInfo no_dataset = SmallTable("", "t5");
  EXPECT_EQ(c.AddTable(no_dataset).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, FindColumn) {
  Catalog c;
  auto id = c.AddTable(SmallTable("ds", "t"));
  ASSERT_TRUE(id.ok());
  auto col = c.FindColumn(*id, "v");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, 1u);
  EXPECT_EQ(c.FindColumn(*id, "zz").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RowWidthSumsColumns) {
  TableInfo t = SmallTable("ds", "t");
  EXPECT_EQ(t.RowWidth(), 16u);
}

TEST(CatalogTest, ColumnNameRendering) {
  Catalog c;
  auto id = c.AddTable(SmallTable("ds", "t"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(c.ColumnName(ColumnRef{*id, 1}), "ds.t.v");
}

TEST(BenchmarkSchemaTest, AllFourDatasetsPresent) {
  Catalog c = BuildBenchmarkCatalog();
  for (const std::string& ds : BenchmarkDatasets()) {
    EXPECT_FALSE(c.TablesOfDataset(ds).empty()) << ds;
  }
  EXPECT_EQ(BenchmarkDatasets().size(), 4u);
  // 8 + 7 + 6 + 4 tables.
  EXPECT_EQ(c.num_tables(), 25u);
}

TEST(BenchmarkSchemaTest, PaperExampleTablesExist) {
  // The paper's example query joins these three TPC-E tables.
  Catalog c = BuildBenchmarkCatalog();
  for (const char* name :
       {"tpce.security", "tpce.company", "tpce.daily_market"}) {
    auto id = c.FindTable(name);
    ASSERT_TRUE(id.ok()) << name;
  }
  auto security = c.FindTable("tpce.security");
  EXPECT_TRUE(c.FindColumn(*security, "s_pe").ok());
  EXPECT_TRUE(c.FindColumn(*security, "s_exch_date").ok());
  // And the example update targets tpch.lineitem.l_extendedprice / l_tax.
  auto lineitem = c.FindTable("tpch.lineitem");
  ASSERT_TRUE(lineitem.ok());
  EXPECT_TRUE(c.FindColumn(*lineitem, "l_extendedprice").ok());
  EXPECT_TRUE(c.FindColumn(*lineitem, "l_tax").ok());
}

TEST(BenchmarkSchemaTest, ScaleFactorShrinksRowCounts) {
  Catalog full = BuildBenchmarkCatalog();
  Catalog small = BuildBenchmarkCatalog(BenchmarkScale{0.01});
  auto fl = full.FindTable("tpch.lineitem");
  auto sl = small.FindTable("tpch.lineitem");
  ASSERT_TRUE(fl.ok() && sl.ok());
  EXPECT_GT(full.table(*fl).row_count, 50 * small.table(*sl).row_count);
  EXPECT_GE(small.table(*sl).row_count, 1u);
}

TEST(BenchmarkSchemaTest, DistinctNeverExceedsRows) {
  Catalog c = BuildBenchmarkCatalog(BenchmarkScale{0.05});
  for (TableId id = 0; id < c.num_tables(); ++id) {
    const TableInfo& t = c.table(id);
    for (const ColumnInfo& col : t.columns) {
      EXPECT_LE(col.distinct_values, t.row_count)
          << t.qualified_name() << "." << col.name;
      EXPECT_GE(col.distinct_values, 1u);
      EXPECT_LE(col.min_value, col.max_value);
    }
  }
}

}  // namespace
}  // namespace wfit
