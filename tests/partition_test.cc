#include "core/partition.h"

#include <gtest/gtest.h>

#include <map>

namespace wfit {
namespace {

PartitionOptions opts_default() { return PartitionOptions{}; }

DoiFn TableDoi(std::map<std::pair<IndexId, IndexId>, double> table) {
  return [table = std::move(table)](IndexId a, IndexId b) {
    auto key = std::minmax(a, b);
    auto it = table.find({key.first, key.second});
    return it == table.end() ? 0.0 : it->second;
  };
}

TEST(PartitionLossTest, NoCrossInteractionsMeansZeroLoss) {
  DoiFn doi = TableDoi({{{1, 2}, 5.0}});
  std::vector<IndexSet> parts = {IndexSet{1, 2}, IndexSet{3}};
  EXPECT_DOUBLE_EQ(PartitionLoss(parts, doi), 0.0);
}

TEST(PartitionLossTest, CrossPairsSum) {
  DoiFn doi = TableDoi({{{1, 3}, 5.0}, {{2, 3}, 2.0}, {{1, 2}, 9.0}});
  std::vector<IndexSet> parts = {IndexSet{1, 2}, IndexSet{3}};
  // 1-3 and 2-3 cross; 1-2 does not.
  EXPECT_DOUBLE_EQ(PartitionLoss(parts, doi), 7.0);
}

TEST(PartitionStatesTest, SumsPowersOfTwo) {
  std::vector<IndexSet> parts = {IndexSet{1, 2, 3}, IndexSet{4}, IndexSet{5, 6}};
  EXPECT_EQ(PartitionStates(parts), 8u + 2u + 4u);
}

TEST(CanonicalizeTest, SortsByMinElementAndDropsEmpties) {
  std::vector<IndexSet> parts = {IndexSet{5}, IndexSet{}, IndexSet{1, 9}};
  CanonicalizePartition(&parts);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (IndexSet{1, 9}));
  EXPECT_EQ(parts[1], (IndexSet{5}));
}

TEST(ChoosePartitionTest, MergesInteractingPair) {
  Rng rng(1);
  DoiFn doi = TableDoi({{{1, 2}, 10.0}});
  PartitionOptions opts;
  opts.state_cnt = 100;
  std::vector<IndexSet> result =
      ChoosePartition({1, 2, 3}, {}, doi, opts, &rng);
  // 1 and 2 interact strongly and the budget allows the merge: loss 0.
  EXPECT_DOUBLE_EQ(PartitionLoss(result, doi), 0.0);
  bool merged = false;
  for (const IndexSet& p : result) {
    if (p.Contains(1) && p.Contains(2)) merged = true;
  }
  EXPECT_TRUE(merged);
}

TEST(ChoosePartitionTest, RespectsStateBudget) {
  Rng rng(2);
  // Everything interacts with everything: an unconstrained solution would
  // be one big part of 6 (2^6 = 64 states).
  std::map<std::pair<IndexId, IndexId>, double> table;
  for (IndexId a = 1; a <= 6; ++a) {
    for (IndexId b = a + 1; b <= 6; ++b) table[{a, b}] = 1.0;
  }
  PartitionOptions opts;
  opts.state_cnt = 20;  // forces splitting
  std::vector<IndexSet> result =
      ChoosePartition({1, 2, 3, 4, 5, 6}, {}, TableDoi(table), opts, &rng);
  EXPECT_LE(PartitionStates(result), opts.state_cnt);
  IndexSet covered;
  for (const IndexSet& p : result) covered = covered.Union(p);
  EXPECT_EQ(covered.size(), 6u);
}

TEST(ChoosePartitionTest, PartitionCoversExactlyTheInput) {
  Rng rng(3);
  DoiFn doi = TableDoi({});
  PartitionOptions opts;
  std::vector<IndexSet> result =
      ChoosePartition({4, 8, 15, 16}, {}, doi, opts, &rng);
  IndexSet covered;
  size_t total = 0;
  for (const IndexSet& p : result) {
    covered = covered.Union(p);
    total += p.size();
  }
  EXPECT_EQ(covered, (IndexSet{4, 8, 15, 16}));
  EXPECT_EQ(total, 4u);  // disjoint
}

TEST(ChoosePartitionTest, NoInteractionsYieldsSingletons) {
  Rng rng(4);
  PartitionOptions opts;
  std::vector<IndexSet> result =
      ChoosePartition({1, 2, 3}, {}, TableDoi({}), opts, &rng);
  EXPECT_EQ(result.size(), 3u);
  for (const IndexSet& p : result) EXPECT_EQ(p.size(), 1u);
}

TEST(ChoosePartitionTest, BaselineKeepsCurrentPartitionWhenGood) {
  Rng rng(5);
  DoiFn doi = TableDoi({{{1, 2}, 3.0}});
  std::vector<IndexSet> current = {IndexSet{1, 2}, IndexSet{3}};
  PartitionOptions opts;
  std::vector<IndexSet> result =
      ChoosePartition({1, 2, 3}, current, doi, opts, &rng);
  EXPECT_DOUBLE_EQ(PartitionLoss(result, doi), 0.0);
}

TEST(ChoosePartitionTest, DropsVanishedIndicesFromBaseline) {
  Rng rng(6);
  DoiFn doi = TableDoi({});
  std::vector<IndexSet> current = {IndexSet{1, 2}, IndexSet{3}};
  // 2 is no longer a candidate.
  std::vector<IndexSet> result =
      ChoosePartition({1, 3}, current, doi, opts_default(), &rng);
  IndexSet covered;
  for (const IndexSet& p : result) covered = covered.Union(p);
  EXPECT_EQ(covered, (IndexSet{1, 3}));
}

TEST(ChoosePartitionTest, RespectsMaxPartSize) {
  Rng rng(7);
  std::map<std::pair<IndexId, IndexId>, double> table;
  for (IndexId a = 1; a <= 8; ++a) {
    for (IndexId b = a + 1; b <= 8; ++b) table[{a, b}] = 1.0;
  }
  PartitionOptions opts;
  opts.state_cnt = 100000;
  opts.max_part_size = 3;
  std::vector<IndexSet> result =
      ChoosePartition({1, 2, 3, 4, 5, 6, 7, 8}, {}, TableDoi(table), opts,
                      &rng);
  for (const IndexSet& p : result) EXPECT_LE(p.size(), 3u);
}

TEST(ChoosePartitionTest, DeterministicForSameSeed) {
  std::map<std::pair<IndexId, IndexId>, double> table;
  for (IndexId a = 1; a <= 6; ++a) {
    for (IndexId b = a + 1; b <= 6; ++b) {
      table[{a, b}] = static_cast<double>((a * 7 + b) % 5);
    }
  }
  PartitionOptions opts;
  opts.state_cnt = 24;
  Rng rng1(42), rng2(42);
  auto r1 = ChoosePartition({1, 2, 3, 4, 5, 6}, {}, TableDoi(table), opts,
                            &rng1);
  auto r2 = ChoosePartition({1, 2, 3, 4, 5, 6}, {}, TableDoi(table), opts,
                            &rng2);
  EXPECT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
}

}  // namespace
}  // namespace wfit
