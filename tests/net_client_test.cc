// Transport-failure coverage for net::Client and the wire codec: a hung
// peer, a torn response, a premature close, and chunked delivery on the
// client side; truncation, CRC damage, and version skew on the codec
// side. Every failure must surface as a descriptive Status — never an
// abort, never a hang past the configured timeout.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace wfit::net {
namespace {

// A one-connection scripted server: listens on an ephemeral port,
// accepts exactly one client, and hands the accepted fd to the script.
// The script owns the fd's lifetime up to close; the harness closes it
// afterwards regardless (safe on an already-closed fd only if the
// script leaves it open — scripts here never close it themselves).
class RawServer {
 public:
  explicit RawServer(std::function<void(int fd)> script) {
    auto listen = ListenTcp("127.0.0.1", 0);
    EXPECT_TRUE(listen.ok()) << listen.status().message();
    listen_fd_ = *listen;
    auto port = LocalPort(listen_fd_);
    EXPECT_TRUE(port.ok());
    port_ = *port;
    thread_ = std::thread([this, script = std::move(script)] {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      script(fd);
      CloseFd(fd);
    });
  }

  ~RawServer() {
    CloseFd(listen_fd_);  // unblocks accept if no client ever came
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

// Reads and discards one full frame (request) from the peer so the
// script can then misbehave on the response side.
void DrainOneFrame(int fd) {
  FrameReader reader;
  char buf[4096];
  std::string payload;
  while (true) {
    auto next = reader.Next(&payload);
    if (!next.ok() || *next) return;
    ssize_t n = RecvSome(fd, buf, sizeof(buf));
    if (n <= 0) return;
    reader.Feed(buf, static_cast<size_t>(n));
  }
}

Request PingRequest() {
  Request req;
  req.type = MsgType::kGetAnalyzed;
  req.tenant = "tenant-0";
  return req;
}

TEST(NetClientTest, TimeoutSurfacesCleanly) {
  RawServer server([](int fd) {
    DrainOneFrame(fd);
    // Never reply; hold the socket open until the harness closes it.
    char buf[64];
    while (RecvSome(fd, buf, sizeof(buf)) > 0) {
    }
  });

  Client client;
  Client::Options opts;
  opts.timeout_ms = 100;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), opts).ok());

  auto start = std::chrono::steady_clock::now();
  auto resp = client.Call(PingRequest());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("timed out"), std::string::npos)
      << resp.status().message();
  // Bounded by the timeout, not the kernel's defaults.
  EXPECT_LT(elapsed, 5000);
  // A half-consumed stream cannot be reused.
  EXPECT_FALSE(client.connected());
}

TEST(NetClientTest, TornResponseSurfacesCleanly) {
  RawServer server([](int fd) {
    DrainOneFrame(fd);
    Response resp;
    resp.kind = RespKind::kOk;
    std::string frame = EncodeFrame(EncodeResponse(resp));
    // A strict prefix hits the wire, then the connection dies.
    (void)WriteAll(fd, std::string_view(frame).substr(0, frame.size() / 2));
  });

  Client client;
  Client::Options opts;
  opts.timeout_ms = 2000;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), opts).ok());

  auto resp = client.Call(PingRequest());
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("torn"), std::string::npos)
      << resp.status().message();
  EXPECT_FALSE(client.connected());
}

TEST(NetClientTest, ClosedBeforeResponseSurfacesCleanly) {
  RawServer server([](int fd) {
    DrainOneFrame(fd);
    // Close without sending a single response byte.
  });

  Client client;
  Client::Options opts;
  opts.timeout_ms = 2000;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), opts).ok());

  auto resp = client.Call(PingRequest());
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("closed before the response"),
            std::string::npos)
      << resp.status().message();
  EXPECT_FALSE(client.connected());
}

TEST(NetClientTest, ChunkedResponseDeliverySucceeds) {
  Response canned;
  canned.kind = RespKind::kOk;
  canned.analyzed = 41;
  canned.text = "chunked";
  RawServer server([&canned](int fd) {
    DrainOneFrame(fd);
    std::string frame = EncodeFrame(EncodeResponse(canned));
    // Dribble the frame out a few bytes at a time: the client's frame
    // reader must reassemble across arbitrarily small reads.
    for (size_t off = 0; off < frame.size(); off += 3) {
      size_t n = std::min<size_t>(3, frame.size() - off);
      if (!WriteAll(fd, std::string_view(frame).substr(off, n)).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  Client client;
  Client::Options opts;
  opts.timeout_ms = 5000;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), opts).ok());

  auto resp = client.Call(PingRequest());
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_EQ(resp->kind, RespKind::kOk);
  EXPECT_EQ(resp->analyzed, 41u);
  EXPECT_EQ(resp->text, "chunked");
  EXPECT_TRUE(client.connected());  // clean round trip: reusable
}

TEST(WireCodecTest, MembershipFieldsRoundTrip) {
  Request hb;
  hb.type = MsgType::kHeartbeat;
  hb.node_id = "node-b";
  hb.seq = 77;
  Request decoded_hb;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(hb), &decoded_hb).ok());
  EXPECT_EQ(decoded_hb.type, MsgType::kHeartbeat);
  EXPECT_EQ(decoded_hb.node_id, "node-b");
  EXPECT_EQ(decoded_hb.seq, 77u);

  Request dec;
  dec.type = MsgType::kDecommission;
  dec.target_node = "node-c";
  Request decoded_dec;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(dec), &decoded_dec).ok());
  EXPECT_EQ(decoded_dec.type, MsgType::kDecommission);
  EXPECT_EQ(decoded_dec.target_node, "node-c");
}

TEST(WireCodecTest, TruncatedRequestNeverAborts) {
  Request req;
  req.type = MsgType::kSubmitAt;
  req.tenant = "tenant-7";
  req.seq = 1234;
  req.has_statement = true;
  req.statement.sql = "SELECT * FROM t WHERE a = 1";
  req.statement.tables.emplace_back();
  req.statement.tables.back().table = 3;
  req.f_plus = {1, 2, 3};
  req.f_minus = {4};
  req.node_id = "node-a";
  std::string encoded = EncodeRequest(req);

  Request round;
  ASSERT_TRUE(DecodeRequest(encoded, &round).ok());
  // Every strict prefix must fail with a clean Status — the decoder
  // reads fields sequentially, so missing tail bytes are always caught.
  for (size_t len = 0; len < encoded.size(); ++len) {
    Request out;
    Status s = DecodeRequest(std::string_view(encoded).substr(0, len), &out);
    EXPECT_FALSE(s.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireCodecTest, TruncatedResponseNeverAborts) {
  Response resp;
  resp.kind = RespKind::kNotLeader;
  resp.code = StatusCode::kFailedPrecondition;
  resp.message = "not here";
  resp.owner_id = "node-b";
  resp.owner_host = "127.0.0.1";
  resp.owner_port = 4242;
  resp.tenants = {"tenant-0", "tenant-1"};
  resp.history = {IndexSet{1}, IndexSet{2, 3}};
  resp.history_start = 9;
  resp.count = 1;
  std::string encoded = EncodeResponse(resp);

  Response round;
  ASSERT_TRUE(DecodeResponse(encoded, &round).ok());
  for (size_t len = 0; len < encoded.size(); ++len) {
    Response out;
    Status s = DecodeResponse(std::string_view(encoded).substr(0, len), &out);
    EXPECT_FALSE(s.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireCodecTest, TraceContextRoundTrips) {
  Request req = PingRequest();
  req.trace_id = 0xdeadbeefcafef00dull;
  req.parent_span = 0x12345678ull;
  Request decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(req), &decoded).ok());
  EXPECT_EQ(decoded.trace_id, 0xdeadbeefcafef00dull);
  EXPECT_EQ(decoded.parent_span, 0x12345678ull);

  // The 3-arg overload stamps the context without copying the request.
  Request stamped;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(PingRequest(), 7, 9), &stamped).ok());
  EXPECT_EQ(stamped.trace_id, 7u);
  EXPECT_EQ(stamped.parent_span, 9u);
}

TEST(WireCodecTest, V2RequestDecodesWithZeroedTraceContext) {
  // A v2 peer's payload is the v3 encoding minus the trailing 16-byte
  // trace extension, with the version byte rewritten. The decoder must
  // accept it and fall back to "no trace".
  Request req = PingRequest();
  req.trace_id = 0xdeadbeefull;
  req.parent_span = 42;
  std::string encoded = EncodeRequest(req);
  ASSERT_GT(encoded.size(), 16u);
  encoded.resize(encoded.size() - 16);
  encoded[0] = 2;

  Request decoded;
  Status s = DecodeRequest(encoded, &decoded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(decoded.type, MsgType::kGetAnalyzed);
  EXPECT_EQ(decoded.tenant, "tenant-0");
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.parent_span, 0u);
}

TEST(WireCodecTest, VersionSkewRejectedCleanly) {
  std::string encoded = EncodeRequest(PingRequest());
  ASSERT_FALSE(encoded.empty());
  encoded[0] = static_cast<char>(kWireVersion + 1);  // leading version byte
  Request out;
  Status s = DecodeRequest(encoded, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.message();
}

TEST(WireCodecTest, CrcFlipPoisonsFrameStream) {
  std::string payload = EncodeRequest(PingRequest());
  std::string frame = EncodeFrame(payload);
  // Flip one payload byte: length prefix still parses, CRC must not.
  frame[frame.size() - 1] ^= 0x01;

  FrameReader reader;
  reader.Feed(frame);
  std::string out;
  auto next = reader.Next(&out);
  ASSERT_FALSE(next.ok());
  // Poisoned stream: the error is sticky even after more (valid) bytes.
  reader.Feed(EncodeFrame(payload));
  EXPECT_FALSE(reader.Next(&out).ok());
}

TEST(WireCodecTest, TornFrameWaitsAndAbsurdLengthRejects) {
  std::string frame = EncodeFrame(EncodeRequest(PingRequest()));

  // Feeding a prefix is not an error — the reader just wants more.
  FrameReader torn;
  torn.Feed(std::string_view(frame).substr(0, frame.size() - 1));
  std::string out;
  auto next = torn.Next(&out);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_GT(torn.pending_bytes(), 0u);
  // The remaining byte completes it.
  torn.Feed(std::string_view(frame).substr(frame.size() - 1));
  next = torn.Next(&out);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(*next);
  EXPECT_EQ(out, EncodeRequest(PingRequest()));

  // A garbage length prefix (beyond max_frame_bytes) is structural
  // damage, rejected before any payload arrives.
  FrameReader bounded(/*max_frame_bytes=*/1024);
  std::string huge(kFrameHeaderBytes, '\0');
  huge[0] = '\xff';
  huge[1] = '\xff';
  huge[2] = '\xff';
  huge[3] = '\x7f';
  bounded.Feed(huge);
  EXPECT_FALSE(bounded.Next(&out).ok());
}

}  // namespace
}  // namespace wfit::net
