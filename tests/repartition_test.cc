// Repartitioning semantics (Fig. 5 / Lemma B.1): merging per-part work
// functions with x[X] = Σk w(k)[Ck ∩ X] reproduces — exactly, up to the
// constant the lemma identifies — the work function a joint instance would
// have computed, provided the old partition was stable. These tests drive
// WfaInstance directly with synthetic decomposable cost functions, so the
// equality can be asserted bit for bit.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/work_function.h"

namespace wfit {
namespace {

/// Decomposable two-index task system: cost(S) = ca[S∩{a}] + cb[S∩{b}].
/// With this convention the lemma's correction term vanishes, so the merged
/// work function must equal the joint one exactly.
struct TwoPartSystem {
  std::vector<double> create = {35.0, 50.0};
  std::vector<double> drop = {2.0, 3.0};

  WfaInstance MakeA() const { return WfaInstance({0}, {create[0]}, {drop[0]}, 0); }
  WfaInstance MakeB() const { return WfaInstance({1}, {create[1]}, {drop[1]}, 0); }
  WfaInstance MakeJoint() const {
    return WfaInstance({0, 1}, create, drop, 0);
  }
};

TEST(RepartitionMathTest, MergedWorkFunctionEqualsJointOnStableParts) {
  TwoPartSystem sys;
  WfaInstance a = sys.MakeA();
  WfaInstance b = sys.MakeB();
  WfaInstance joint = sys.MakeJoint();

  Rng rng(404);
  for (int round = 0; round < 30; ++round) {
    double ca0 = static_cast<double>(rng.UniformInt(0, 40));
    double ca1 = static_cast<double>(rng.UniformInt(0, 40));
    double cb0 = static_cast<double>(rng.UniformInt(0, 40));
    double cb1 = static_cast<double>(rng.UniformInt(0, 40));
    a.AnalyzeQuery([&](Mask s) { return s == 0 ? ca0 : ca1; });
    b.AnalyzeQuery([&](Mask s) { return s == 0 ? cb0 : cb1; });
    joint.AnalyzeQuery([&](Mask s) {
      return ((s & 1) ? ca1 : ca0) + ((s & 2) ? cb1 : cb0);
    });

    // Fig. 5 line 6: merge the singleton work functions.
    for (Mask x = 0; x < 4; ++x) {
      double merged = a.work_value(x & 1) + b.work_value((x >> 1) & 1);
      ASSERT_NEAR(merged, joint.work_value(x), 1e-9)
          << "round " << round << " state " << x;
    }
    // And the union of the singleton recommendations equals the joint one
    // (Theorem 4.2 in miniature).
    Mask unioned = a.recommendation() | (b.recommendation() << 1);
    ASSERT_EQ(unioned, joint.recommendation()) << "round " << round;
  }
}

TEST(RepartitionMathTest, MergedInstanceContinuesLikeJointInstance) {
  // Run apart, merge via Fig. 5, then verify the merged instance behaves
  // identically to the joint instance on subsequent statements.
  TwoPartSystem sys;
  WfaInstance a = sys.MakeA();
  WfaInstance b = sys.MakeB();
  WfaInstance joint = sys.MakeJoint();

  Rng rng(505);
  auto step = [&](WfaInstance& ia, WfaInstance& ib, WfaInstance& ij) {
    double ca0 = static_cast<double>(rng.UniformInt(0, 50));
    double ca1 = static_cast<double>(rng.UniformInt(0, 50));
    double cb0 = static_cast<double>(rng.UniformInt(0, 50));
    double cb1 = static_cast<double>(rng.UniformInt(0, 50));
    ia.AnalyzeQuery([&](Mask s) { return s == 0 ? ca0 : ca1; });
    ib.AnalyzeQuery([&](Mask s) { return s == 0 ? cb0 : cb1; });
    ij.AnalyzeQuery([&](Mask s) {
      return ((s & 1) ? ca1 : ca0) + ((s & 2) ? cb1 : cb0);
    });
  };
  for (int i = 0; i < 10; ++i) step(a, b, joint);

  // Merge {a}, {b} -> {a, b} exactly as Wfit::Repartition does.
  std::vector<double> x(4);
  for (Mask m = 0; m < 4; ++m) {
    x[m] = a.work_value(m & 1) + b.work_value((m >> 1) & 1);
  }
  Mask merged_rec = a.recommendation() | (b.recommendation() << 1);
  WfaInstance merged({0, 1}, sys.create, sys.drop, x, merged_rec);
  ASSERT_EQ(merged.recommendation(), joint.recommendation());

  // Continue both on identical joint costs: they must never diverge.
  Rng rng2(606);
  for (int round = 0; round < 25; ++round) {
    std::vector<double> costs(4);
    for (Mask s = 0; s < 4; ++s) {
      costs[s] = static_cast<double>(rng2.UniformInt(0, 60));
    }
    PartCostFn fn = [&costs](Mask s) { return costs[s]; };
    merged.AnalyzeQuery(fn);
    joint.AnalyzeQuery(fn);
    for (Mask s = 0; s < 4; ++s) {
      ASSERT_NEAR(merged.work_value(s), joint.work_value(s), 1e-9);
    }
    ASSERT_EQ(merged.recommendation(), joint.recommendation())
        << "round " << round;
  }
}

TEST(RepartitionMathTest, SplitRecoversSingletonBehaviour) {
  // The reverse direction of the example in Sec. 5.2.1: splitting a joint
  // instance into singletons with w(1)[m] = x[m within part] keeps the
  // recommendations of the parts equal to the joint projections, as long
  // as the indices truly do not interact.
  TwoPartSystem sys;
  WfaInstance joint = sys.MakeJoint();
  Rng rng(707);
  for (int i = 0; i < 12; ++i) {
    double ca0 = static_cast<double>(rng.UniformInt(0, 50));
    double ca1 = static_cast<double>(rng.UniformInt(0, 50));
    double cb0 = static_cast<double>(rng.UniformInt(0, 50));
    double cb1 = static_cast<double>(rng.UniformInt(0, 50));
    joint.AnalyzeQuery([&](Mask s) {
      return ((s & 1) ? ca1 : ca0) + ((s & 2) ? cb1 : cb0);
    });
  }
  // Split per the paper: w(1)[m] = x[{a}-projection], w(2)[m] = x[{b}-...].
  WfaInstance split_a({0}, {sys.create[0]}, {sys.drop[0]},
                      {joint.work_value(0), joint.work_value(1)},
                      joint.recommendation() & 1);
  WfaInstance split_b({1}, {sys.create[1]}, {sys.drop[1]},
                      {joint.work_value(0), joint.work_value(2)},
                      (joint.recommendation() >> 1) & 1);
  Rng rng2(808);
  for (int round = 0; round < 20; ++round) {
    double ca0 = static_cast<double>(rng2.UniformInt(0, 50));
    double ca1 = static_cast<double>(rng2.UniformInt(0, 50));
    double cb0 = static_cast<double>(rng2.UniformInt(0, 50));
    double cb1 = static_cast<double>(rng2.UniformInt(0, 50));
    split_a.AnalyzeQuery([&](Mask s) { return s == 0 ? ca0 : ca1; });
    split_b.AnalyzeQuery([&](Mask s) { return s == 0 ? cb0 : cb1; });
    joint.AnalyzeQuery([&](Mask s) {
      return ((s & 1) ? ca1 : ca0) + ((s & 2) ? cb1 : cb0);
    });
    Mask unioned = split_a.recommendation() | (split_b.recommendation() << 1);
    ASSERT_EQ(unioned, joint.recommendation()) << "round " << round;
  }
}

}  // namespace
}  // namespace wfit
