#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/wfa_plus.h"
#include "harness/reporting.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;
using harness::ExperimentDriver;
using harness::ExperimentOptions;
using harness::ExperimentSeries;

/// A scripted tuner: recommends a fixed schedule regardless of input.
class ScriptedTuner : public Tuner {
 public:
  explicit ScriptedTuner(std::vector<IndexSet> script)
      : script_(std::move(script)) {}

  void AnalyzeQuery(const Statement&) override { ++analyzed_; }
  IndexSet Recommendation() const override {
    if (analyzed_ == 0 || script_.empty()) return IndexSet{};
    size_t i = std::min(analyzed_ - 1, script_.size() - 1);
    return script_[i];
  }
  void Feedback(const IndexSet& f_plus, const IndexSet& f_minus) override {
    feedback_log_.push_back({f_plus, f_minus});
  }
  std::string name() const override { return "scripted"; }

  size_t analyzed_ = 0;
  std::vector<IndexSet> script_;
  std::vector<std::pair<IndexSet, IndexSet>> feedback_log_;
};

TEST(TotalWorkMeterTest, AccumulatesTransitionsAndQueryCosts) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 5");
  TotalWorkMeter meter(&db.optimizer(), IndexSet{});
  double step1 = meter.Step(q, IndexSet{ia});
  double expected1 =
      db.model().CreateCost(ia) + db.optimizer().Cost(q, IndexSet{ia});
  EXPECT_NEAR(step1, expected1, 1e-9);
  double step2 = meter.Step(q, IndexSet{ia});  // no transition now
  EXPECT_NEAR(step2, db.optimizer().Cost(q, IndexSet{ia}), 1e-9);
  EXPECT_NEAR(meter.total(), step1 + step2, 1e-9);
  EXPECT_EQ(meter.cumulative().size(), 2u);
  EXPECT_NEAR(meter.transition_total(), db.model().CreateCost(ia), 1e-9);
}

TEST(ExperimentDriverTest, TotalMatchesManualAccounting) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  Workload w;
  for (int i = 0; i < 6; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 99"));
  }
  std::vector<IndexSet> script(6, IndexSet{ia});
  ScriptedTuner tuner(script);
  ExperimentDriver driver(&w, &db.optimizer());
  ExperimentSeries series = driver.Run(&tuner, IndexSet{}, {});

  TotalWorkMeter meter(&db.optimizer(), IndexSet{});
  for (const Statement& q : w) meter.Step(q, IndexSet{ia});
  EXPECT_NEAR(series.final_total, meter.total(), 1e-9);
  EXPECT_EQ(tuner.analyzed_, 6u);
}

TEST(ExperimentDriverTest, CheckpointsAtRequestedInterval) {
  TestDb db;
  Workload w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t3 WHERE v = 1"));
  }
  ScriptedTuner tuner({});
  ExperimentDriver driver(&w, &db.optimizer());
  ExperimentOptions options;
  options.checkpoint_every = 4;
  ExperimentSeries series = driver.Run(&tuner, IndexSet{}, {}, options);
  ASSERT_EQ(series.checkpoints.size(), 3u);  // 4, 8, 10(final)
  EXPECT_EQ(series.checkpoints[0], 4u);
  EXPECT_EQ(series.checkpoints[1], 8u);
  EXPECT_EQ(series.checkpoints[2], 10u);
  EXPECT_DOUBLE_EQ(series.total_at_checkpoint.back(), series.final_total);
}

TEST(ExperimentDriverTest, FeedbackDeliveredAtRightPositions) {
  TestDb db;
  Workload w;
  for (int i = 0; i < 4; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t3 WHERE v = 1"));
  }
  std::vector<FeedbackEvent> events(2);
  events[0].after_statement = -1;
  events[0].f_plus = IndexSet{7};
  events[1].after_statement = 2;
  events[1].f_minus = IndexSet{7};
  ScriptedTuner tuner({});
  ExperimentDriver driver(&w, &db.optimizer());
  driver.Run(&tuner, IndexSet{}, events);
  ASSERT_EQ(tuner.feedback_log_.size(), 2u);
  EXPECT_EQ(tuner.feedback_log_[0].first, IndexSet{7});
  EXPECT_EQ(tuner.feedback_log_[1].second, IndexSet{7});
}

TEST(ExperimentDriverTest, LagDelaysMaterialization) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  Workload w;
  for (int i = 0; i < 6; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t1 WHERE a = 5"));
  }
  // The scripted tuner wants the index from statement 1 onwards.
  std::vector<IndexSet> script = {IndexSet{}, IndexSet{ia}, IndexSet{ia},
                                  IndexSet{ia}, IndexSet{ia}, IndexSet{ia}};
  ExperimentDriver driver(&w, &db.optimizer());

  ScriptedTuner eager(script);
  double total_lag1 = driver.Run(&eager, IndexSet{}, {}).final_total;

  ScriptedTuner lagged(script);
  ExperimentOptions lag3;
  lag3.lag = 3;
  double total_lag3 = driver.Run(&lagged, IndexSet{}, {}, lag3).final_total;
  // Accept points are statements 0 and 3: the index reaches the physical
  // config only at statement 3, so three statements run unindexed.
  EXPECT_GT(total_lag3, total_lag1);
  // Implicit votes were cast when accepting the change at statement 3.
  ASSERT_EQ(lagged.feedback_log_.size(), 1u);
  EXPECT_EQ(lagged.feedback_log_[0].first, IndexSet{ia});
}

TEST(ExperimentDriverTest, WhatIfCallsAttributedToTuner) {
  TestDb db;
  IndexSet part{db.Ix("t1", {"a"})};
  Workload w;
  for (int i = 0; i < 5; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t1 WHERE a = 5"));
  }
  WfaPlus tuner(&db.pool(), &db.optimizer(), {part}, IndexSet{});
  ExperimentDriver driver(&w, &db.optimizer());
  ExperimentSeries series = driver.Run(&tuner, IndexSet{}, {});
  // The first statement builds one IBG (>= 1 real call); the four repeats
  // are absorbed by the cross-statement template cache. The meter's own
  // calls must not be attributed to the tuner (meter adds 1 per statement).
  EXPECT_GE(series.what_if_calls, 1u);
  EXPECT_GT(series.what_if_cross_hits, 0u)
      << "identical statements must hit the cross-statement tier";
  EXPECT_LT(series.what_if_calls, db.optimizer().num_calls());
}

TEST(ReportingTest, RatioTableRendersAllSeries) {
  ExperimentSeries opt;
  opt.name = "OPT";
  opt.checkpoints = {100, 200};
  opt.total_at_checkpoint = {50.0, 90.0};
  ExperimentSeries algo;
  algo.name = "WFIT";
  algo.checkpoints = {100, 200};
  algo.total_at_checkpoint = {100.0, 100.0};
  std::ostringstream os;
  harness::PrintRatioTable(os, opt, {algo}, "test");
  std::string out = os.str();
  EXPECT_NE(out.find("WFIT"), std::string::npos);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
  EXPECT_NE(out.find("0.9000"), std::string::npos);

  std::ostringstream csv;
  harness::WriteRatioCsv(csv, opt, {algo});
  EXPECT_NE(csv.str().find("query,WFIT"), std::string::npos);
  EXPECT_NE(csv.str().find("100,0.5"), std::string::npos);
}

TEST(ReportingTest, OverheadTable) {
  ExperimentSeries s;
  s.name = "WFIT";
  s.analyze_seconds = 1.0;
  s.what_if_calls = 500;
  std::ostringstream os;
  harness::PrintOverheadTable(os, {s}, 100);
  EXPECT_NE(os.str().find("10.000"), std::string::npos);  // ms/statement
  EXPECT_NE(os.str().find("5.0"), std::string::npos);     // calls/stmt
}

}  // namespace
}  // namespace wfit
