// Wire-framing robustness: fragmented and pipelined feeds, torn frames,
// oversized length prefixes, CRC corruption, and truncated streams must
// all resolve to either "wait for more bytes" or a clean Status — never
// an abort, never a bogus payload.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

namespace wfit::net {
namespace {

TEST(FrameTest, RoundTripsOneFrame) {
  FrameReader reader;
  reader.Feed(EncodeFrame("hello"));
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(payload, "hello");
  next = reader.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  FrameReader reader;
  reader.Feed(EncodeFrame(""));
  std::string payload = "sentinel";
  auto next = reader.Next(&payload);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(*next);
  EXPECT_EQ(payload, "");
}

TEST(FrameTest, ReassemblesByteByByteFragmentation) {
  const std::string wire = EncodeFrame("fragmented payload");
  FrameReader reader;
  std::string payload;
  for (size_t i = 0; i < wire.size(); ++i) {
    reader.Feed(wire.data() + i, 1);
    auto next = reader.Next(&payload);
    ASSERT_TRUE(next.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(*next) << "frame completed early at byte " << i;
    } else {
      EXPECT_TRUE(*next);
    }
  }
  EXPECT_EQ(payload, "fragmented payload");
}

TEST(FrameTest, ExtractsPipelinedFramesInOrder) {
  FrameReader reader;
  std::string wire;
  for (int i = 0; i < 100; ++i) {
    wire += EncodeFrame("frame-" + std::to_string(i));
  }
  // Feed in awkward 7-byte chunks spanning frame boundaries.
  size_t pos = 0;
  int seen = 0;
  while (pos < wire.size() || seen < 100) {
    if (pos < wire.size()) {
      const size_t n = std::min<size_t>(7, wire.size() - pos);
      reader.Feed(wire.data() + pos, n);
      pos += n;
    }
    while (true) {
      std::string payload;
      auto next = reader.Next(&payload);
      ASSERT_TRUE(next.ok());
      if (!*next) break;
      EXPECT_EQ(payload, "frame-" + std::to_string(seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, 100);
}

TEST(FrameTest, RejectsOversizedLengthPrefix) {
  // A length prefix beyond the bound must fail immediately — before the
  // reader ever tries to buffer (or allocate) that much.
  std::string wire = EncodeFrame("x");
  wire[0] = '\xff';
  wire[1] = '\xff';
  wire[2] = '\xff';
  wire[3] = '\xff';
  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  // Poisoned: the same error again, not a retry.
  auto again = reader.Next(&payload);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RespectsCustomFrameBound) {
  FrameReader reader(/*max_frame_bytes=*/16);
  reader.Feed(EncodeFrame(std::string(17, 'a')));
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsCrcMismatch) {
  std::string wire = EncodeFrame("payload under test");
  wire[kFrameHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(next.status().message().find("CRC"), std::string::npos);
}

TEST(FrameTest, CorruptHeaderCrcAlsoRejected) {
  std::string wire = EncodeFrame("another payload");
  wire[5] ^= 0x01;  // flip a bit of the stored CRC itself
  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_FALSE(next.ok());
}

TEST(FrameTest, TruncatedStreamJustWaits) {
  // A frame cut off mid-payload is indistinguishable from a slow sender:
  // Next keeps returning false and pending_bytes exposes the leftover so
  // a connection-close handler can report "torn frame".
  std::string wire = EncodeFrame("truncated mid-payload");
  wire.resize(wire.size() - 5);
  FrameReader reader;
  reader.Feed(wire);
  std::string payload;
  auto next = reader.Next(&payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(*next);
  EXPECT_EQ(reader.pending_bytes(), wire.size());
}

TEST(FrameTest, CompactsConsumedPrefix) {
  // Long-lived connection: many frames through one reader must not grow
  // the buffer without bound (the compaction path covers itself by the
  // frames still decoding correctly after it triggers).
  FrameReader reader;
  const std::string big(70 * 1024, 'b');
  for (int i = 0; i < 8; ++i) {
    reader.Feed(EncodeFrame(big));
    std::string payload;
    auto next = reader.Next(&payload);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(*next);
    EXPECT_EQ(payload.size(), big.size());
  }
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

}  // namespace
}  // namespace wfit::net
