#include "persist/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "persist/codec.h"
#include "tests/test_util.h"

namespace wfit::persist {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("wfit_snapshot_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Interns the indices both runs vote on, in a fixed order, so the fresh
/// pool's interning prefix matches the snapshotted one.
std::vector<IndexId> SeedVoteIndices(TestDb& db) {
  return {db.Ix("t1", {"a"}), db.Ix("t2", {"x"})};
}

TEST(SnapshotTest, WfitRoundTripContinuesIdentically) {
  const std::string dir = FreshDir("wfit_roundtrip");
  const size_t kTotal = 60;
  const size_t kSplit = 31;

  TestDb db1;
  std::vector<IndexId> votes1 = SeedVoteIndices(db1);
  Workload w1 = BuildWorkload(db1, kTotal);
  Wfit original(&db1.pool(), &db1.optimizer(), IndexSet{}, FastOptions());
  for (size_t i = 0; i < kSplit; ++i) {
    original.AnalyzeQuery(w1[i]);
    if (i == 10) original.Feedback(IndexSet{votes1[0]}, IndexSet{});
    if (i == 20) original.Feedback(IndexSet{}, IndexSet{votes1[1]});
  }
  SnapshotMeta meta;
  meta.analyzed = kSplit;
  meta.journal_lsn = 123;
  auto bytes = WriteSnapshot(dir, original, db1.pool(), meta);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(*bytes, 0u);

  // A "restarted process": fresh catalog wiring, same construction order.
  TestDb db2;
  std::vector<IndexId> votes2 = SeedVoteIndices(db2);
  Workload w2 = BuildWorkload(db2, kTotal);
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded = LoadLatestSnapshot(dir, &restored, &db2.pool());
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.analyzed, kSplit);
  EXPECT_EQ(loaded.meta.journal_lsn, 123u);
  EXPECT_EQ(loaded.skipped, 0u);
  EXPECT_EQ(db2.pool().size(), db1.pool().size());

  EXPECT_EQ(restored.Recommendation(), original.Recommendation());
  EXPECT_EQ(restored.RepartitionCount(), original.RepartitionCount());
  EXPECT_EQ(restored.FeedbackCount(), original.FeedbackCount());
  EXPECT_EQ(restored.TotalStates(), original.TotalStates());

  // The decisive property: both runs continue bit-for-bit identically,
  // including further feedback and repartitions.
  for (size_t i = kSplit; i < kTotal; ++i) {
    original.AnalyzeQuery(w1[i]);
    restored.AnalyzeQuery(w2[i]);
    if (i == 40) {
      original.Feedback(IndexSet{votes1[1]}, IndexSet{});
      restored.Feedback(IndexSet{votes2[1]}, IndexSet{});
    }
    ASSERT_EQ(restored.Recommendation(), original.Recommendation())
        << "diverged at statement " << i;
  }
  EXPECT_EQ(restored.RepartitionCount(), original.RepartitionCount());
  EXPECT_EQ(restored.selector().statements_seen(),
            original.selector().statements_seen());
  EXPECT_EQ(restored.selector().universe(), original.selector().universe());
}

TEST(SnapshotTest, OverloadStateRoundTripsThroughSnapshot) {
  const std::string dir = FreshDir("overload_roundtrip");
  TestDb db1;
  Workload w1 = BuildWorkload(db1, 5);
  Wfit original(&db1.pool(), &db1.optimizer(), IndexSet{}, FastOptions());
  for (const Statement& s : w1) original.AnalyzeQuery(s);

  SnapshotMeta meta;
  meta.analyzed = 5;
  meta.overload.mode = 2;
  meta.overload.sample_rate = 0.25;
  meta.overload.sample_seed = 987654321;
  meta.overload.dup_window = {11, 22, 33};
  ASSERT_TRUE(WriteSnapshot(dir, original, db1.pool(), meta).ok());

  TestDb db2;
  BuildWorkload(db2, 5);
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded = LoadLatestSnapshot(dir, &restored, &db2.pool());
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.overload.mode, 2);
  EXPECT_DOUBLE_EQ(loaded.meta.overload.sample_rate, 0.25);
  EXPECT_EQ(loaded.meta.overload.sample_seed, 987654321u);
  EXPECT_EQ(loaded.meta.overload.dup_window,
            (std::vector<uint64_t>{11, 22, 33}));

  // A snapshot written with default (Normal) overload state decodes to
  // the defaults — the trailer is optional, not load-bearing.
  const std::string dir2 = FreshDir("overload_default");
  SnapshotMeta plain;
  plain.analyzed = 5;
  ASSERT_TRUE(WriteSnapshot(dir2, original, db1.pool(), plain).ok());
  TestDb db3;
  BuildWorkload(db3, 5);
  Wfit restored2(&db3.pool(), &db3.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded2 =
      LoadLatestSnapshot(dir2, &restored2, &db3.pool());
  ASSERT_TRUE(loaded2.loaded);
  EXPECT_EQ(loaded2.meta.overload.mode, 0);
  EXPECT_DOUBLE_EQ(loaded2.meta.overload.sample_rate, 1.0);
  EXPECT_TRUE(loaded2.meta.overload.dup_window.empty());
}

TEST(SnapshotTest, WfaPlusRoundTripContinuesIdentically) {
  const std::string dir = FreshDir("wfa_roundtrip");
  const size_t kTotal = 40;
  const size_t kSplit = 17;

  auto make_partition = [](TestDb& db) {
    return std::vector<IndexSet>{
        IndexSet{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})},
        IndexSet{db.Ix("t2", {"x"})},
        IndexSet{db.Ix("t3", {"v"})},
    };
  };

  TestDb db1;
  std::vector<IndexSet> parts1 = make_partition(db1);
  Workload w1 = BuildWorkload(db1, kTotal);
  WfaPlus original(&db1.pool(), &db1.optimizer(), parts1, IndexSet{});
  for (size_t i = 0; i < kSplit; ++i) {
    original.AnalyzeQuery(w1[i]);
    if (i == 8) {
      original.Feedback(IndexSet{db1.Ix("t1", {"a"})},
                        IndexSet{db1.Ix("t2", {"x"})});
    }
  }
  SnapshotMeta meta;
  meta.analyzed = kSplit;
  ASSERT_TRUE(WriteSnapshot(dir, original, db1.pool(), meta).ok());

  TestDb db2;
  std::vector<IndexSet> parts2 = make_partition(db2);
  Workload w2 = BuildWorkload(db2, kTotal);
  WfaPlus restored(&db2.pool(), &db2.optimizer(), parts2, IndexSet{});
  SnapshotLoadResult loaded = LoadLatestSnapshot(dir, &restored, &db2.pool());
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(restored.Recommendation(), original.Recommendation());
  EXPECT_EQ(restored.FeedbackCount(), original.FeedbackCount());

  for (size_t i = kSplit; i < kTotal; ++i) {
    original.AnalyzeQuery(w1[i]);
    restored.AnalyzeQuery(w2[i]);
    ASSERT_EQ(restored.Recommendation(), original.Recommendation())
        << "diverged at statement " << i;
  }
}

TEST(SnapshotTest, CorruptPayloadIsRejected) {
  const std::string dir = FreshDir("corrupt_payload");
  TestDb db;
  Workload w = BuildWorkload(db, 10);
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  for (const Statement& q : w) tuner.AnalyzeQuery(q);
  SnapshotMeta meta;
  meta.analyzed = 10;
  ASSERT_TRUE(WriteSnapshot(dir, tuner, db.pool(), meta).ok());
  std::string path = ListSnapshots(dir)[0];

  std::string contents = ReadFile(path);
  contents[40] ^= 0x01;  // one flipped bit inside the payload
  WriteFile(path, contents);

  TestDb db2;
  Wfit fresh(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotMeta out;
  Status st = ReadSnapshot(path, &fresh, &db2.pool(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  // The rejected snapshot left the fresh tuner untouched.
  EXPECT_EQ(fresh.selector().statements_seen(), 0u);
}

TEST(SnapshotTest, VersionMismatchIsRejected) {
  const std::string dir = FreshDir("version");
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  SnapshotMeta meta;
  ASSERT_TRUE(WriteSnapshot(dir, tuner, db.pool(), meta).ok());
  std::string path = ListSnapshots(dir)[0];

  // Patch the header's version field and recompute the header CRC so only
  // the version check can fire.
  std::string contents = ReadFile(path);
  Encoder patched;
  patched.PutU32(kSnapshotMagic);
  patched.PutU32(kSnapshotVersion + 7);
  std::string header = patched.Release() + contents.substr(8, 12);
  uint32_t header_crc = Crc32(header);
  Encoder crc_enc;
  crc_enc.PutU32(header_crc);
  WriteFile(path, header + crc_enc.data() + contents.substr(24));

  TestDb db2;
  Wfit fresh(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotMeta out;
  Status st = ReadSnapshot(path, &fresh, &db2.pool(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(SnapshotTest, FallsBackToPreviousSnapshotWhenNewestIsCorrupt) {
  const std::string dir = FreshDir("fallback");
  TestDb db;
  Workload w = BuildWorkload(db, 30);
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  for (size_t i = 0; i < 15; ++i) tuner.AnalyzeQuery(w[i]);
  IndexSet rec_at_15 = tuner.Recommendation();
  SnapshotMeta meta;
  meta.analyzed = 15;
  ASSERT_TRUE(WriteSnapshot(dir, tuner, db.pool(), meta).ok());
  for (size_t i = 15; i < 30; ++i) tuner.AnalyzeQuery(w[i]);
  meta.analyzed = 30;
  ASSERT_TRUE(WriteSnapshot(dir, tuner, db.pool(), meta).ok());

  std::vector<std::string> snapshots = ListSnapshots(dir);
  ASSERT_EQ(snapshots.size(), 2u);
  std::string newest = ReadFile(snapshots[0]);
  newest[newest.size() / 2] ^= 0xFF;
  WriteFile(snapshots[0], newest);

  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded = LoadLatestSnapshot(dir, &restored, &db2.pool());
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.skipped, 1u);
  EXPECT_EQ(loaded.meta.analyzed, 15u);
  EXPECT_EQ(restored.Recommendation(), rec_at_15);
}

TEST(SnapshotTest, TunerKindMismatchIsRejected) {
  const std::string dir = FreshDir("kind_mismatch");
  TestDb db;
  Wfit wfit_tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  SnapshotMeta meta;
  ASSERT_TRUE(WriteSnapshot(dir, wfit_tuner, db.pool(), meta).ok());

  TestDb db2;
  std::vector<IndexSet> parts{IndexSet{db2.Ix("t1", {"a"})}};
  WfaPlus wfa(&db2.pool(), &db2.optimizer(), parts, IndexSet{});
  SnapshotMeta out;
  Status st = ReadSnapshot(ListSnapshots(dir)[0], &wfa, &db2.pool(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, UnsupportedTunerIsRefused) {
  class NullTuner : public Tuner {
   public:
    void AnalyzeQuery(const Statement&) override {}
    IndexSet Recommendation() const override { return {}; }
    std::string name() const override { return "null"; }
  };
  TestDb db;
  NullTuner tuner;
  SnapshotMeta meta;
  Status st = WriteSnapshotFile(
      (fs::path(FreshDir("unsupported")) / "s.wfsnap").string(), tuner,
      db.pool(), meta);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, PrunesToKeepCount) {
  const std::string dir = FreshDir("prune");
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  Workload w = BuildWorkload(db, 8);
  SnapshotMeta meta;
  for (size_t i = 0; i < 8; ++i) {
    tuner.AnalyzeQuery(w[i]);
    meta.analyzed = i + 1;
    ASSERT_TRUE(WriteSnapshot(dir, tuner, db.pool(), meta, /*keep=*/2).ok());
  }
  std::vector<std::string> snapshots = ListSnapshots(dir);
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_NE(snapshots[0].find("00000000000000000008"), std::string::npos);
  EXPECT_NE(snapshots[1].find("00000000000000000007"), std::string::npos);
}

TEST(SnapshotTest, EmptyDirectoryLoadsNothing) {
  const std::string dir = FreshDir("empty");
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded = LoadLatestSnapshot(dir, &tuner, &db.pool());
  EXPECT_FALSE(loaded.loaded);
  EXPECT_EQ(loaded.skipped, 0u);
}

}  // namespace
}  // namespace wfit::persist
