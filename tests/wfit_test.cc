#include "core/wfit.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wfa_plus.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

TEST(WfitTest, StartsEmptyAndLearnsCandidates) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  EXPECT_TRUE(tuner.Recommendation().empty());
  EXPECT_TRUE(tuner.candidate_set().empty());
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 120");
  tuner.AnalyzeQuery(q);
  EXPECT_FALSE(tuner.candidate_set().empty());
}

TEST(WfitTest, InitialMaterializedSetSeedsSingletonParts) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{ia, ib}, FastOptions());
  EXPECT_EQ(tuner.partition().size(), 2u);
  EXPECT_EQ(tuner.Recommendation(), (IndexSet{ia, ib}));
}

TEST(WfitTest, RecommendsIndexForRepeatedBeneficialQuery) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150");
  IndexId ia = db.Ix("t1", {"a"});
  for (int i = 0; i < 60 && !tuner.Recommendation().Contains(ia); ++i) {
    tuner.AnalyzeQuery(q);
  }
  EXPECT_TRUE(tuner.Recommendation().Contains(ia));
}

TEST(WfitTest, AdaptsToWorkloadShift) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  Statement phase1 = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 90");
  Statement phase2 = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 9000");
  IndexId ia = db.Ix("t1", {"a"});
  for (int i = 0; i < 60 && !tuner.Recommendation().Contains(ia); ++i) {
    tuner.AnalyzeQuery(phase1);
  }
  ASSERT_TRUE(tuner.Recommendation().Contains(ia));
  // Update-heavy phase: the index must eventually be recommended out.
  for (int i = 0; i < 200 && tuner.Recommendation().Contains(ia); ++i) {
    tuner.AnalyzeQuery(phase2);
  }
  EXPECT_FALSE(tuner.Recommendation().Contains(ia));
}

TEST(WfitTest, FeedbackConsistencyHolds) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100");
  tuner.AnalyzeQuery(q);
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  tuner.Feedback(IndexSet{ia, ib}, IndexSet{});
  IndexSet rec = tuner.Recommendation();
  EXPECT_TRUE(rec.Contains(ia));
  EXPECT_TRUE(rec.Contains(ib));
  tuner.Feedback(IndexSet{}, IndexSet{ib});
  rec = tuner.Recommendation();
  EXPECT_TRUE(rec.Contains(ia));
  EXPECT_FALSE(rec.Contains(ib));
}

TEST(WfitTest, PositiveVoteOnUnknownIndexOpensSingletonPart) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  IndexId alien = db.Ix("t3", {"v"});
  EXPECT_FALSE(tuner.candidate_set().Contains(alien));
  tuner.Feedback(IndexSet{alien}, IndexSet{});
  EXPECT_TRUE(tuner.candidate_set().Contains(alien));
  EXPECT_TRUE(tuner.Recommendation().Contains(alien));
}

TEST(WfitTest, RecoversFromBadFeedback) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  // Vote in an index that the workload then punishes via maintenance.
  IndexId ia = db.Ix("t1", {"a"});
  tuner.Feedback(IndexSet{ia}, IndexSet{});
  ASSERT_TRUE(tuner.Recommendation().Contains(ia));
  Statement hostile =
      db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 9000");
  int n = 0;
  for (; n < 300 && tuner.Recommendation().Contains(ia); ++n) {
    tuner.AnalyzeQuery(hostile);
  }
  EXPECT_LT(n, 300) << "never recovered from bad feedback";
}

TEST(WfitTest, RepartitionHappensAndCountsAreTracked) {
  TestDb db;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<std::string> queries = {
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 150 AND b BETWEEN 0 AND 70",
      "SELECT count(*) FROM t2 WHERE x = 3",
      "SELECT count(*) FROM t1 WHERE c = 9",
  };
  for (int round = 0; round < 5; ++round) {
    for (const std::string& sql : queries) {
      Statement q = db.Bind(sql);
      tuner.AnalyzeQuery(q);
    }
  }
  EXPECT_GT(tuner.RepartitionCount(), 0u);
  EXPECT_LE(tuner.TotalStates(), FastOptions().candidates.state_cnt);
}

TEST(WfitTest, AutoTunerTracksFixedTunerOnStablePartitionWorkload) {
  // When the workload's interaction structure fits comfortably within the
  // budgets, the AUTO tuner should converge to materializing the same key
  // index as a fixed-partition WFA+ given that index up front.
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  WfaPlus fixed(&db.pool(), &db.optimizer(), {IndexSet{ia}}, IndexSet{});
  Wfit auto_tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200");
  bool fixed_adopted = false, auto_adopted = false;
  for (int i = 0; i < 80; ++i) {
    fixed.AnalyzeQuery(q);
    auto_tuner.AnalyzeQuery(q);
    fixed_adopted = fixed.Recommendation().Contains(ia);
    auto_adopted = auto_tuner.Recommendation().Contains(ia);
    if (fixed_adopted && auto_adopted) break;
  }
  EXPECT_TRUE(fixed_adopted);
  EXPECT_TRUE(auto_adopted);
}

TEST(WfitTest, StateBudgetHoldsThroughoutRandomWorkload) {
  TestDb db;
  WfitOptions options = FastOptions();
  options.candidates.state_cnt = 32;
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, options);
  Rng rng(5);
  std::vector<std::string> pool = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200",
      "SELECT d FROM t1 WHERE b BETWEEN 0 AND 90 AND a = 4",
      "SELECT count(*) FROM t2 WHERE x = 2",
      "UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 500",
      "SELECT count(*) FROM t2 WHERE fk BETWEEN 0 AND 5000",
      "SELECT count(*) FROM t3 WHERE v = 1",
  };
  for (int i = 0; i < 60; ++i) {
    Statement q =
        db.Bind(pool[static_cast<size_t>(rng.UniformInt(0, 5))]);
    tuner.AnalyzeQuery(q);
    EXPECT_LE(tuner.TotalStates(), options.candidates.state_cnt + 2u)
        << "statement " << i;
  }
}

}  // namespace
}  // namespace wfit
