// Cold-tenant archival: ArchiveStore's segment format survives reopen,
// tombstones, re-staging, and byte-level corruption; and the router's
// archival tier is lossless end-to-end — a tenant archived cold and
// lazily unarchived on its next touch follows the exact trajectory of a
// dedicated uninterrupted run, carried future votes included.
#include "persist/archive.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/wfit.h"
#include "persist/tenant_tree.h"
#include "service/tenant_router.h"
#include "tests/test_util.h"

namespace wfit::persist {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

std::string TempRoot(const std::string& tag) {
  std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_archive_" + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ArchiveStore OpenOrDie(const std::string& root) {
  auto opened = ArchiveStore::Open(root);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

TEST(ArchiveStoreTest, RoundTripSurvivesReopen) {
  const std::string root = TempRoot("roundtrip");
  const std::string pack_a(2000, 'a');
  const std::string pack_b = "tenant-b bytes \x00\xff with binary";
  {
    ArchiveStore store = OpenOrDie(root);
    ASSERT_TRUE(store.Stage("a", pack_a).ok());
    ASSERT_TRUE(store.Stage("b", pack_b).ok());
    // Staged but unflushed entries are already visible to this instance.
    EXPECT_TRUE(store.Contains("a"));
    ASSERT_TRUE(store.Flush().ok());
  }
  ArchiveStore store = OpenOrDie(root);
  EXPECT_EQ(store.Tenants(), (std::vector<std::string>{"a", "b"}));
  auto got_a = store.Fetch("a");
  auto got_b = store.Fetch("b");
  ASSERT_TRUE(got_a.ok());
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(*got_a, pack_a);
  EXPECT_EQ(*got_b, pack_b);
  EXPECT_FALSE(store.Fetch("missing").ok());
  ArchiveStats stats = store.GetStats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.live_tenants, 2u);
  EXPECT_EQ(stats.corrupt_segments, 0u);
}

TEST(ArchiveStoreTest, TombstonesPersistAcrossReopen) {
  const std::string root = TempRoot("tombstone");
  {
    ArchiveStore store = OpenOrDie(root);
    ASSERT_TRUE(store.Stage("a", "aaaa").ok());
    ASSERT_TRUE(store.Stage("b", "bbbb").ok());
    ASSERT_TRUE(store.Flush().ok());
    ASSERT_TRUE(store.Drop("a").ok());
    EXPECT_FALSE(store.Contains("a"));
    EXPECT_TRUE(store.Contains("b"));
    // Dropping a never-archived tenant is Ok (idempotent admission path).
    EXPECT_TRUE(store.Drop("never-there").ok());
  }
  ArchiveStore store = OpenOrDie(root);
  EXPECT_FALSE(store.Contains("a")) << "tombstone lost across reopen";
  EXPECT_TRUE(store.Contains("b"));
  EXPECT_EQ(store.Tenants(), std::vector<std::string>{"b"});
}

TEST(ArchiveStoreTest, NewestStageWinsAfterRearchival) {
  const std::string root = TempRoot("reseq");
  {
    ArchiveStore store = OpenOrDie(root);
    ASSERT_TRUE(store.Stage("t", "old-incarnation").ok());
    ASSERT_TRUE(store.Flush().ok());
    // Unarchive (Drop) then archive again with newer state — two segments
    // now hold entries for "t"; the newest sequence must win.
    ASSERT_TRUE(store.Drop("t").ok());
    ASSERT_TRUE(store.Stage("t", "new-incarnation").ok());
    ASSERT_TRUE(store.Flush().ok());
  }
  ArchiveStore store = OpenOrDie(root);
  auto got = store.Fetch("t");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "new-incarnation");
}

void FlipByteAt(const fs::path& path, std::streamoff off) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  char c = 0;
  f.seekg(off);
  f.get(c);
  f.seekp(off);
  f.put(static_cast<char>(c ^ 0x5a));
}

std::vector<fs::path> SegmentFiles(const std::string& root) {
  std::vector<fs::path> segments;
  for (const auto& entry :
       fs::directory_iterator((fs::path(root) / "_archive"))) {
    if (entry.path().extension() == ".wfseg") {
      segments.push_back(entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

TEST(ArchiveStoreTest, CorruptFooterSkipsTheWholeSegment) {
  const std::string root = TempRoot("corrupt_footer");
  const std::string keep(512, 'k');
  {
    ArchiveStore store = OpenOrDie(root);
    ASSERT_TRUE(store.Stage("victim", std::string(512, 'v')).ok());
    ASSERT_TRUE(store.Flush().ok());
    ASSERT_TRUE(store.Stage("keeper", keep).ok());
    ASSERT_TRUE(store.Flush().ok());
  }
  std::vector<fs::path> segments = SegmentFiles(root);
  ASSERT_EQ(segments.size(), 2u);
  // Flip a footer byte of the FIRST segment (the footer sits just before
  // the 16-byte trailer): the footer CRC no longer matches, so the whole
  // segment is skipped at Open — its entries never served from a
  // directory that cannot be trusted.
  FlipByteAt(segments[0],
             static_cast<std::streamoff>(fs::file_size(segments[0])) - 18);
  ArchiveStore store = OpenOrDie(root);
  ArchiveStats stats = store.GetStats();
  EXPECT_EQ(stats.corrupt_segments, 1u);
  EXPECT_FALSE(store.Contains("victim"))
      << "entry served from a damaged segment";
  auto got = store.Fetch("keeper");
  ASSERT_TRUE(got.ok()) << "undamaged segment must still serve";
  EXPECT_EQ(*got, keep);
}

TEST(ArchiveStoreTest, CorruptPayloadFailsFetchButNotTheSegment) {
  const std::string root = TempRoot("corrupt_payload");
  {
    ArchiveStore store = OpenOrDie(root);
    ASSERT_TRUE(store.Stage("a", std::string(512, 'a')).ok());
    ASSERT_TRUE(store.Stage("b", std::string(512, 'b')).ok());
    ASSERT_TRUE(store.Flush().ok());
  }
  std::vector<fs::path> segments = SegmentFiles(root);
  ASSERT_EQ(segments.size(), 1u);
  // Flip a byte inside "a"'s pack payload (the first entry, right after
  // the 8-byte header). The footer is intact, so the directory still
  // loads — but Fetch must catch the per-entry CRC mismatch instead of
  // unpacking a damaged tree.
  FlipByteAt(segments[0], 8 + 100);
  ArchiveStore store = OpenOrDie(root);
  EXPECT_EQ(store.GetStats().corrupt_segments, 0u);
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_FALSE(store.Fetch("a").ok())
      << "damaged payload served without CRC verification";
  auto got = store.Fetch("b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::string(512, 'b'));
}

TEST(ArchiveStoreTest, CompactReclaimsDeadEntries) {
  const std::string root = TempRoot("compact");
  ArchiveStore store = OpenOrDie(root);
  ASSERT_TRUE(store.Stage("dead", std::string(4096, 'd')).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.Stage("live", std::string(256, 'l')).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.Drop("dead").ok());
  const uint64_t before = store.GetStats().segment_bytes;
  ASSERT_TRUE(store.Compact().ok());
  ArchiveStats stats = store.GetStats();
  EXPECT_LT(stats.segment_bytes, before);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.live_tenants, 1u);
  auto got = store.Fetch("live");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 256u);
  // And the compacted store reopens cleanly.
  ArchiveStore reopened = OpenOrDie(root);
  EXPECT_TRUE(reopened.Contains("live"));
  EXPECT_FALSE(reopened.Contains("dead"));
}

}  // namespace
}  // namespace wfit::persist

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

std::vector<IndexId> SeedIds(TestDb& db) {
  return {db.Ix("t1", {"a"}), db.Ix("t2", {"x"}), db.Ix("t1", {"b"})};
}

TEST(ArchiveRouterTest, ArchivalRoundTripCarriesFutureVotes) {
  // The eviction-losslessness invariant, extended through the cold tier:
  // evict → archive (directory replaced by a segment entry) → lazy
  // unarchive on the next touch → finish. Trajectory must equal the
  // dedicated uninterrupted run, including a vote registered before
  // archival that fires after unarchival.
  constexpr size_t kStatements = 60;
  constexpr size_t kEvictAt = 40;
  const std::string root =
      (fs::path(::testing::TempDir()) /
       ("wfit_archive_router_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(root);

  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  Workload w = BuildWorkload(db, kStatements);
  const std::string id = "db-0";

  TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 5;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = 1000;  // only eviction seals
  options.checkpoint_root = root;
  options.drain_threads = 0;
  options.archive_cold_tenants = true;
  TenantRouter router(
      [&db](const std::string&) {
        TenantTuner made;
        made.tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                            IndexSet{}, FastOptions());
        made.pool = &db.pool();
        return made;
      },
      options);
  router.Start();

  // A vote keyed past the archival point: it must survive eviction AND
  // archival un-applied, then fire at its boundary after unarchival.
  router.FeedbackAfter(id, 7, IndexSet{ids[0]}, IndexSet{});
  router.FeedbackAfter(id, kEvictAt + 9, IndexSet{ids[2]},
                       IndexSet{ids[0]});

  for (size_t i = 0; i < kEvictAt; ++i) {
    ASSERT_TRUE(router.Submit(id, w[i]));
  }
  while (!router.DrainOne().empty()) {
  }
  ASSERT_EQ(router.analyzed(id), kEvictAt);
  ASSERT_TRUE(router.Evict(id));

  // Archive the cold tenant: the live directory is replaced by an archive
  // segment entry, and PersistedTenants still reports it.
  auto archived = router.ArchiveColdTenants();
  ASSERT_TRUE(archived.ok()) << archived.status().ToString();
  EXPECT_EQ(*archived, 1u);
  const std::string dir = persist::TenantCheckpointDir(root, id);
  EXPECT_FALSE(fs::exists(dir)) << "directory must be gone once archived";
  ASSERT_NE(router.archive(), nullptr);
  EXPECT_TRUE(router.archive()->Contains(id));
  EXPECT_EQ(router.PersistedTenants(), std::vector<std::string>{id});
  // Archiving again is a no-op: nothing cold is left unarchived.
  auto again = router.ArchiveColdTenants();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // The next touch materializes the tree from the archive transparently
  // and resumes at the eviction checkpoint — replaying nothing.
  for (size_t i = kEvictAt; i < kStatements; ++i) {
    ASSERT_TRUE(router.Submit(id, w[i]));
  }
  while (!router.DrainOne().empty()) {
  }
  ASSERT_EQ(router.analyzed(id), kStatements);
  RecoveryStats recovery = router.LastRecovery(id);
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_analyzed, kEvictAt);
  EXPECT_EQ(recovery.replayed_statements, 0u);
  // The unarchived entry was dropped from the cold tier (the directory is
  // live again and authoritative).
  EXPECT_FALSE(router.archive()->Contains(id));
  router.Shutdown();

  std::vector<IndexSet> routed = router.History(id);
  TestDb ref_db;
  std::vector<IndexId> ref_ids = SeedIds(ref_db);
  Workload ref_w = BuildWorkload(ref_db, kStatements);
  Wfit ref(&ref_db.pool(), &ref_db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> dedicated;
  for (size_t i = 0; i < kStatements; ++i) {
    ref.AnalyzeQuery(ref_w[i]);
    if (i == 7) ref.Feedback(IndexSet{ref_ids[0]}, IndexSet{});
    if (i == kEvictAt + 9) {
      ref.Feedback(IndexSet{ref_ids[2]}, IndexSet{ref_ids[0]});
    }
    dedicated.push_back(ref.Recommendation());
  }
  ASSERT_EQ(routed.size(), dedicated.size());
  for (size_t i = 0; i < dedicated.size(); ++i) {
    ASSERT_EQ(routed[i], dedicated[i])
        << "trajectory diverged across archival at statement " << i;
  }

  RouterMetricsSnapshot metrics = router.Metrics();
  EXPECT_EQ(metrics.tenants_archived, 1u);
  EXPECT_EQ(metrics.tenants_unarchived, 1u);
  EXPECT_EQ(metrics.evictions, 1u);
  EXPECT_EQ(metrics.admissions, 2u);
}

}  // namespace
}  // namespace wfit::service
