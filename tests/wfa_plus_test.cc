#include "core/wfa_plus.h"

#include <gtest/gtest.h>

#include "baselines/opt.h"
#include "common/rng.h"
#include "harness/experiment.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

std::vector<Statement> MixedWorkload(TestDb& db, uint64_t seed, int n) {
  // Single-table statements over t1 / t2 / t3: indices on different tables
  // cannot interact, so {indices(t1)}, {indices(t2)}, ... is stable.
  std::vector<std::string> pool = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 120",
      "SELECT count(*) FROM t1 WHERE a = 7 AND b BETWEEN 0 AND 60",
      "SELECT d FROM t1 WHERE b BETWEEN 0 AND 40",
      "UPDATE t1 SET a = a + 1 WHERE b BETWEEN 0 AND 4",
      "SELECT count(*) FROM t2 WHERE x = 11",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 0 AND 30",
      "DELETE FROM t2 WHERE x = 3",
      "SELECT count(*) FROM t3 WHERE v = 5",
  };
  Rng rng(seed);
  std::vector<Statement> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(db.Bind(
        pool[static_cast<size_t>(rng.UniformInt(0, 7))]));
  }
  return out;
}

TEST(WfaPlusTest, RelevantCandidatesFiltersByTable) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  std::vector<IndexId> universe = {db.Ix("t1", {"a"}), db.Ix("t2", {"x"}),
                                   db.Ix("t1", {"b"})};
  std::vector<IndexId> relevant = RelevantCandidates(q, db.pool(), universe);
  EXPECT_EQ(relevant.size(), 2u);
  for (IndexId id : relevant) {
    EXPECT_EQ(db.pool().def(id).table, 0u);
  }
}

TEST(WfaPlusTest, RelevantCandidatesHonorsCap) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  std::vector<IndexId> universe;
  for (const char* col : {"k", "a", "b", "c", "d"}) {
    universe.push_back(db.Ix("t1", {col}));
  }
  EXPECT_EQ(RelevantCandidates(q, db.pool(), universe, 3).size(), 3u);
}

TEST(WfaPlusTest, Theorem42PartitionedEqualsMonolithic) {
  // WFA+ on the stable partition {t1-indices}, {t2-indices}, {t3-indices}
  // must recommend exactly what a single monolithic WFA over all indices
  // recommends, statement by statement (Theorem 4.2).
  TestDb db;
  IndexSet t1_part{db.Ix("t1", {"a"}), db.Ix("t1", {"b"}),
                   db.Ix("t1", {"a", "b"})};
  IndexSet t2_part{db.Ix("t2", {"x"})};
  IndexSet t3_part{db.Ix("t3", {"v"})};
  IndexSet all = t1_part.Union(t2_part).Union(t3_part);

  WfaPlus partitioned(&db.pool(), &db.optimizer(),
                      {t1_part, t2_part, t3_part}, IndexSet{});
  WfaPlus monolithic(&db.pool(), &db.optimizer(), {all}, IndexSet{});

  for (const Statement& q : MixedWorkload(db, 31337, 60)) {
    partitioned.AnalyzeQuery(q);
    monolithic.AnalyzeQuery(q);
    ASSERT_EQ(partitioned.Recommendation(), monolithic.Recommendation())
        << "diverged on: " << q.sql;
  }
}

TEST(WfaPlusTest, Theorem42HoldsWithNonEmptyInitialConfig) {
  TestDb db;
  IndexSet t1_part{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  IndexSet t2_part{db.Ix("t2", {"x"})};
  IndexSet initial{db.Ix("t1", {"a"}), db.Ix("t2", {"x"})};
  IndexSet all = t1_part.Union(t2_part);

  WfaPlus partitioned(&db.pool(), &db.optimizer(), {t1_part, t2_part},
                      initial);
  WfaPlus monolithic(&db.pool(), &db.optimizer(), {all}, initial);
  EXPECT_EQ(partitioned.Recommendation(), initial);
  EXPECT_EQ(monolithic.Recommendation(), initial);

  for (const Statement& q : MixedWorkload(db, 555, 40)) {
    partitioned.AnalyzeQuery(q);
    monolithic.AnalyzeQuery(q);
    ASSERT_EQ(partitioned.Recommendation(), monolithic.Recommendation())
        << "diverged on: " << q.sql;
  }
}

TEST(WfaPlusTest, TotalStatesSumsParts) {
  TestDb db;
  IndexSet p1{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  IndexSet p2{db.Ix("t2", {"x"})};
  WfaPlus tuner(&db.pool(), &db.optimizer(), {p1, p2}, IndexSet{});
  EXPECT_EQ(tuner.TotalStates(), 4u + 2u);
}

TEST(WfaPlusTest, RecommendsBeneficialIndexUnderRepeatedQueries) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  WfaPlus tuner(&db.pool(), &db.optimizer(), {IndexSet{ia}}, IndexSet{});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 42");
  // The index pays for itself after enough repetitions.
  for (int i = 0; i < 100 && !tuner.Recommendation().Contains(ia); ++i) {
    tuner.AnalyzeQuery(q);
  }
  EXPECT_TRUE(tuner.Recommendation().Contains(ia));
}

TEST(WfaPlusTest, DropsIndexUnderUpdateHeavyWorkload) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  WfaPlus tuner(&db.pool(), &db.optimizer(), {IndexSet{ia}}, IndexSet{ia});
  Statement u = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 5000");
  for (int i = 0; i < 200 && tuner.Recommendation().Contains(ia); ++i) {
    tuner.AnalyzeQuery(u);
  }
  EXPECT_FALSE(tuner.Recommendation().Contains(ia));
}

TEST(WfaPlusTest, FeedbackForcesConsistency) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  WfaPlus tuner(&db.pool(), &db.optimizer(), {IndexSet{ia, ib}},
                IndexSet{ib});
  tuner.Feedback(IndexSet{ia}, IndexSet{ib});
  IndexSet rec = tuner.Recommendation();
  EXPECT_TRUE(rec.Contains(ia));
  EXPECT_FALSE(rec.Contains(ib));
}

TEST(WfaPlusTest, CompetitiveRatioBoundHolds) {
  // Theorem 4.1 sanity check: totWork(WFA) ≤ (2^{|C|+1} − 1) · totWork(OPT)
  // + α on a small exactly-solvable instance. α is bounded by the maximum
  // transition cost times the ratio (cf. Appendix A's μ term).
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  IndexSet part{ia, ib};

  Workload workload;
  Rng rng(2024);
  std::vector<std::string> pool = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 90",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 0 AND 45",
      "UPDATE t1 SET a = a + 1, b = b + 1 WHERE k BETWEEN 0 AND 2000",
      "SELECT d FROM t1 WHERE a = 5 AND b BETWEEN 0 AND 70",
  };
  for (int i = 0; i < 40; ++i) {
    workload.push_back(
        db.Bind(pool[static_cast<size_t>(rng.UniformInt(0, 3))]));
  }

  harness::ExperimentDriver driver(&workload, &db.optimizer());
  WfaPlus wfa(&db.pool(), &db.optimizer(), {part}, IndexSet{}, "WFA");
  harness::ExperimentSeries wfa_series =
      driver.Run(&wfa, IndexSet{}, {});

  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule opt = planner.Solve(workload, {part}, IndexSet{});
  harness::ExperimentSeries opt_series =
      driver.Replay(opt.configs, IndexSet{}, "OPT");

  double ratio_bound = std::pow(2.0, 3) - 1;  // 2^{|C|+1} − 1 with |C| = 2
  double alpha = ratio_bound * (db.model().CreateCost(ia) +
                                db.model().CreateCost(ib));
  EXPECT_LE(wfa_series.final_total,
            ratio_bound * opt_series.final_total + alpha);
  // And OPT is really no worse than WFA.
  EXPECT_LE(opt_series.final_total, wfa_series.final_total + 1e-6);
}

TEST(WfaPlusDeathTest, OverlappingPartsAbort) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  EXPECT_DEATH(
      {
        WfaPlus tuner(&db.pool(), &db.optimizer(),
                      {IndexSet{ia}, IndexSet{ia}}, IndexSet{});
      },
      "disjoint");
}

}  // namespace
}  // namespace wfit
