// The adaptive overload controller's contract: deterministic three-state
// degradation and recovery driven by queue fill (Normal → Shedding →
// Sampling with hysteresis), duplicate-template shedding that never drops
// novel evidence, seeded uniform sampling whose decisions — and the
// 1/rate "honest sampling" benefit rescale — replay bit-identically after
// a crash mid-Sampling, from the epoch journal alone or from a snapshot
// carrying the controller state.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/wfit.h"
#include "service/tuner_service.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

std::unique_ptr<Tuner> MakeTuner(TestDb& db) {
  return std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                                FastOptions());
}

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_overload_" + name + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

TEST(OverloadTest, ControllerDegradesAndRecoversWithHysteresis) {
  TestDb db;
  Workload w = BuildWorkload(db, 8);
  TunerServiceOptions options;
  options.queue_capacity = 8;
  options.max_batch = 1;
  options.analysis_threads = 1;
  options.record_history = true;
  options.overload.enabled = true;
  options.overload.high_watermark = 0.75;
  options.overload.low_watermark = 0.25;
  options.overload.sample_floor = 0.25;
  options.overload.sample_seed = 7;
  TunerService service(MakeTuner(db), options);
  service.StartDetached(nullptr);

  for (size_t i = 0; i < 8; ++i) ASSERT_TRUE(service.SubmitAt(i, w[i]));

  // One statement per batch, controller evaluated on the post-pop fill:
  // fills run 7/8, 6/8, ..., 0. The walk is Normal -> Shedding (.875) ->
  // Sampling at 0.5 (.75) -> steady -> recover to rate 1.0 = Shedding
  // (.25) -> Normal (.125): four journaled transitions, full round trip.
  struct Step {
    uint64_t mode;
    double rate;
  };
  const std::vector<Step> expected = {
      {1, 1.0}, {2, 0.5}, {2, 0.5}, {2, 0.5},
      {2, 0.5}, {1, 1.0}, {0, 1.0}, {0, 1.0},
  };
  for (const Step& step : expected) {
    ASSERT_EQ(service.ProcessBatch(), 1u);
    MetricsSnapshot m = service.Metrics();
    EXPECT_EQ(m.overload_mode, step.mode);
    EXPECT_DOUBLE_EQ(m.sample_rate, step.rate);
  }
  EXPECT_EQ(service.ProcessBatch(), 0u);

  MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.overload_transitions, 4u);
  EXPECT_EQ(m.overload_mode, 0u);
  EXPECT_DOUBLE_EQ(m.sample_rate, 1.0);
  // Dropped or kept, every statement is marked analyzed and published —
  // sequence contiguity and the exactly-once contract are overload-proof.
  EXPECT_TRUE(service.WaitUntilAnalyzed(8));
  service.Shutdown();
  EXPECT_EQ(service.History().size(), 8u);
}

TEST(OverloadTest, SheddingDropsOnlyDuplicateTemplates) {
  TestDb db;
  Statement unique = db.Bind("SELECT count(*) FROM t3 WHERE v = 9");
  Statement dup = db.Bind("SELECT count(*) FROM t3 WHERE v = 9");
  ASSERT_EQ(unique.Fingerprint(), dup.Fingerprint());

  TunerServiceOptions options;
  options.queue_capacity = 4;
  options.max_batch = 1;
  options.analysis_threads = 1;
  options.record_history = true;
  options.overload.enabled = true;
  options.overload.high_watermark = 0.6;
  options.overload.low_watermark = 0.01;
  options.overload.sample_floor = 0.25;
  TunerService service(MakeTuner(db), options);
  service.StartDetached(nullptr);

  // Four copies of one template. Post-pop fills: .75 (enter Shedding —
  // the first copy is novel, kept, and remembered), .5 and .25 (still
  // Shedding: both duplicates shed), 0 (back to Normal before the last
  // copy is decided: kept even though it duplicates the window).
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.SubmitAt(i, db.Bind("SELECT count(*) FROM t3"
                                            " WHERE v = 9")));
  }
  while (service.ProcessBatch() > 0) {
  }
  MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.overload_shed, 2u);
  EXPECT_EQ(m.overload_sampled_out, 0u);
  EXPECT_EQ(m.overload_mode, 0u);
  EXPECT_TRUE(service.WaitUntilAnalyzed(4));
  service.Shutdown();
  EXPECT_EQ(service.History().size(), 4u);
}

TEST(OverloadTest, EnabledControllerAtRateOneIsBitIdentical) {
  // With the controller armed but never tripped (capacity far above the
  // backlog), the trajectory must be bit-for-bit the no-controller one:
  // the rate-1.0 weight path multiplies every benefit by exactly 1.0.
  constexpr size_t kTotal = 40;
  std::vector<IndexSet> histories[2];
  for (int enabled = 0; enabled < 2; ++enabled) {
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    TunerServiceOptions options;
    options.queue_capacity = 1024;
    options.max_batch = 4;
    options.analysis_threads = 1;
    options.record_history = true;
    options.overload.enabled = enabled == 1;
    TunerService service(MakeTuner(db), options);
    service.StartDetached(nullptr);
    for (size_t i = 0; i < kTotal; ++i) ASSERT_TRUE(service.SubmitAt(i, w[i]));
    while (service.ProcessBatch() > 0) {
    }
    service.Shutdown();
    histories[enabled] = service.History();
    EXPECT_EQ(service.Metrics().overload_transitions, 0u);
  }
  ASSERT_EQ(histories[0].size(), kTotal);
  ASSERT_EQ(histories[1].size(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(histories[0][i], histories[1][i])
        << "controller-at-rest diverged at statement " << i;
  }
}

/// Drives `rounds` bursts of 8: fill the queue, then drain it one
/// single-statement batch at a time — a deterministic pressure schedule,
/// so the controller's walk is identical on every run.
void RunRounds(TunerService& service, const Workload& w, size_t from_round,
               size_t to_round) {
  for (size_t r = from_round; r < to_round; ++r) {
    for (size_t i = 8 * r; i < 8 * (r + 1); ++i) {
      service.SubmitAt(i, w[i]);  // duplicates of recovered seqs drop
    }
    while (service.ProcessBatch() > 0) {
    }
  }
}

TunerServiceOptions SamplingOptions(const std::string& dir) {
  TunerServiceOptions options;
  options.queue_capacity = 8;
  options.max_batch = 1;
  options.analysis_threads = 1;
  options.record_history = true;
  options.checkpoint_dir = dir;
  options.checkpoint_every_statements = 1u << 30;  // journal-only
  options.checkpoint_on_shutdown = false;          // crash-realistic
  options.overload.enabled = true;
  options.overload.high_watermark = 0.75;
  options.overload.low_watermark = 0.01;
  options.overload.sample_floor = 0.25;
  options.overload.sample_seed = 42;
  return options;
}

void CheckMidSamplingRecovery(bool snapshots) {
  constexpr size_t kRounds = 4;
  constexpr size_t kTotal = 8 * kRounds;
  constexpr size_t kCrashRound = 2;  // queue empty, controller mid-Sampling
  const std::string tag = snapshots ? "snap" : "journal";

  // Reference: the uninterrupted run.
  std::vector<IndexSet> reference;
  MetricsSnapshot ref_end;
  {
    const std::string dir = FreshDir("ref_" + tag);
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    TunerServiceOptions options = SamplingOptions(dir);
    if (snapshots) options.checkpoint_every_statements = 10;
    auto service = TunerService::Open(MakeTuner(db), &db.pool(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    (*service)->StartDetached(nullptr);
    RunRounds(**service, w, 0, kRounds);
    (*service)->Shutdown();
    reference = (*service)->History();
    ref_end = (*service)->Metrics();
  }
  ASSERT_EQ(reference.size(), kTotal);
  EXPECT_EQ(ref_end.overload_mode, 2u);
  EXPECT_DOUBLE_EQ(ref_end.sample_rate, 0.5);
  EXPECT_GE(ref_end.overload_sampled_out, 1u) << "sampling never dropped "
                                                 "anything; the schedule "
                                                 "is not exercising it";

  const std::string dir = FreshDir("crash_" + tag);
  TunerServiceOptions options = SamplingOptions(dir);
  if (snapshots) options.checkpoint_every_statements = 10;

  // "Process 1": two rounds, die mid-Sampling without a parting snapshot.
  {
    TestDb db;
    Workload w = BuildWorkload(db, kTotal);
    auto service = TunerService::Open(MakeTuner(db), &db.pool(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    (*service)->StartDetached(nullptr);
    RunRounds(**service, w, 0, kCrashRound);
    MetricsSnapshot m = (*service)->Metrics();
    EXPECT_EQ(m.overload_mode, 2u) << "crash point is not mid-Sampling";
    EXPECT_DOUBLE_EQ(m.sample_rate, 0.5);
    (*service)->Shutdown();
  }

  // "Process 2": recover, then replay the whole workload — the recovered
  // controller must re-derive every shed/sample decision from the epoch
  // journal (and snapshot, when present), continuing bit-identically.
  TestDb db;
  Workload w = BuildWorkload(db, kTotal);
  RecoveryStats stats;
  auto service = TunerService::Open(MakeTuner(db), &db.pool(), options, &stats);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(stats.analyzed, 8 * kCrashRound);
  EXPECT_EQ(stats.snapshot_loaded, snapshots);
  (*service)->StartDetached(nullptr);
  RunRounds(**service, w, 0, kRounds);
  (*service)->Shutdown();
  std::vector<IndexSet> recovered = (*service)->History();
  MetricsSnapshot end = (*service)->Metrics();

  const size_t start = stats.snapshot_loaded ? stats.snapshot_analyzed : 0;
  ASSERT_EQ(recovered.size(), kTotal - start);
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i], reference[start + i])
        << "sampled trajectory diverged at statement " << (start + i);
  }
  EXPECT_EQ(end.overload_mode, ref_end.overload_mode);
  EXPECT_DOUBLE_EQ(end.sample_rate, ref_end.sample_rate);
  EXPECT_EQ((*service)->Recommendation()->configuration, reference.back());
}

TEST(OverloadTest, CrashMidSamplingRecoversBitIdenticalFromJournal) {
  CheckMidSamplingRecovery(/*snapshots=*/false);
}

TEST(OverloadTest, CrashMidSamplingRecoversBitIdenticalFromSnapshot) {
  CheckMidSamplingRecovery(/*snapshots=*/true);
}

}  // namespace
}  // namespace wfit::service
