#include "baselines/opt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/experiment.h"
#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

/// Brute force: enumerate every configuration sequence over the part's
/// subsets and return the minimum total work.
double BruteForceOptimum(TestDb& db, const Workload& workload,
                         const std::vector<IndexId>& members,
                         const IndexSet& initial) {
  const size_t n = size_t{1} << members.size();
  auto to_set = [&](size_t mask) {
    IndexSet s;
    for (size_t i = 0; i < members.size(); ++i) {
      if (mask & (size_t{1} << i)) s.Add(members[i]);
    }
    return s;
  };
  std::vector<double> dp(n, std::numeric_limits<double>::infinity());
  size_t init_mask = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (initial.Contains(members[i])) init_mask |= size_t{1} << i;
  }
  dp[init_mask] = 0.0;
  for (const Statement& q : workload) {
    std::vector<double> next(n, std::numeric_limits<double>::infinity());
    for (size_t to = 0; to < n; ++to) {
      IndexSet to_set_value = to_set(to);
      double query_cost = db.optimizer().Cost(q, to_set_value);
      for (size_t from = 0; from < n; ++from) {
        double transition =
            db.model().TransitionCost(to_set(from), to_set_value);
        next[to] = std::min(next[to], dp[from] + transition + query_cost);
      }
    }
    dp = std::move(next);
  }
  return *std::min_element(dp.begin(), dp.end());
}

Workload SmallWorkload(TestDb& db, uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<std::string> pool = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 0 AND 40",
      "UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 3000",
      "SELECT d FROM t1 WHERE a = 5 AND b BETWEEN 0 AND 60",
      "UPDATE t1 SET b = b + 1 WHERE k BETWEEN 0 AND 3000",
  };
  Workload w;
  for (int i = 0; i < n; ++i) {
    w.push_back(db.Bind(pool[static_cast<size_t>(rng.UniformInt(0, 4))]));
  }
  return w;
}

TEST(OptTest, MatchesBruteForceOnSinglePart) {
  TestDb db;
  std::vector<IndexId> members = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  IndexSet part = IndexSet::FromVector(members);
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Workload w = SmallWorkload(db, seed, 8);
    OptimalPlanner planner(&db.pool(), &db.optimizer());
    OptimalSchedule schedule = planner.Solve(w, {part}, IndexSet{});
    harness::ExperimentDriver driver(&w, &db.optimizer());
    harness::ExperimentSeries replay =
        driver.Replay(schedule.configs, IndexSet{}, "OPT");
    double brute = BruteForceOptimum(db, w, members, IndexSet{});
    EXPECT_NEAR(replay.final_total, brute, 1e-6 * std::max(1.0, brute))
        << "seed " << seed;
    EXPECT_NEAR(schedule.total_work, brute, 1e-6 * std::max(1.0, brute))
        << "seed " << seed;
  }
}

TEST(OptTest, MultiPartDecomposesCorrectly) {
  // With single-table statements, the per-table partition is stable and
  // the DP's reported total must equal the replayed (true) total work.
  TestDb db;
  IndexSet p1{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  IndexSet p2{db.Ix("t2", {"x"})};
  Workload w;
  Rng rng(77);
  std::vector<std::string> pool = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 100",
      "SELECT count(*) FROM t2 WHERE x = 4",
      "UPDATE t1 SET b = b + 1 WHERE k BETWEEN 0 AND 1000",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 0 AND 25",
  };
  for (int i = 0; i < 12; ++i) {
    w.push_back(db.Bind(pool[static_cast<size_t>(rng.UniformInt(0, 3))]));
  }
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule = planner.Solve(w, {p1, p2}, IndexSet{});
  harness::ExperimentDriver driver(&w, &db.optimizer());
  harness::ExperimentSeries replay =
      driver.Replay(schedule.configs, IndexSet{}, "OPT");
  EXPECT_NEAR(schedule.total_work, replay.final_total,
              1e-6 * std::max(1.0, replay.final_total));
}

TEST(OptTest, NeverWorseThanStaticConfigurations) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  IndexSet part{ia, ib};
  Workload w = SmallWorkload(db, 9, 15);
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule = planner.Solve(w, {part}, IndexSet{});
  harness::ExperimentDriver driver(&w, &db.optimizer());
  double opt_total =
      driver.Replay(schedule.configs, IndexSet{}, "OPT").final_total;
  for (const IndexSet& fixed :
       {IndexSet{}, IndexSet{ia}, IndexSet{ib}, IndexSet{ia, ib}}) {
    std::vector<IndexSet> static_schedule(w.size(), fixed);
    double static_total =
        driver.Replay(static_schedule, IndexSet{}, "static").final_total;
    EXPECT_LE(opt_total, static_total + 1e-6);
  }
}

TEST(OptTest, RespectsInitialConfiguration) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexSet part{ia};
  // A workload that never references t1.a: OPT should keep (not rebuild)
  // the index only if dropping costs more; with drop cost > 0 and zero
  // benefit, dropping once is optimal over a long horizon of updates.
  Workload w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 4000"));
  }
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule = planner.Solve(w, {part}, IndexSet{ia});
  EXPECT_FALSE(schedule.configs.back().Contains(ia));
}

TEST(OptTest, PrefixOptimumIsConsistent) {
  TestDb db;
  std::vector<IndexId> members = {db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  IndexSet part = IndexSet::FromVector(members);
  Workload w = SmallWorkload(db, 21, 10);
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule = planner.Solve(w, {part}, IndexSet{});
  ASSERT_EQ(schedule.prefix_optimum.size(), w.size());
  // The last prefix optimum is the whole-workload optimum.
  EXPECT_NEAR(schedule.prefix_optimum.back(), schedule.total_work,
              1e-6 * std::max(1.0, schedule.total_work));
  // Prefix optima are non-decreasing (costs are non-negative).
  for (size_t n = 1; n < schedule.prefix_optimum.size(); ++n) {
    EXPECT_GE(schedule.prefix_optimum[n] + 1e-9,
              schedule.prefix_optimum[n - 1]);
  }
  // Each prefix optimum must equal Solve() on the truncated workload.
  for (size_t len : {size_t{3}, size_t{7}}) {
    Workload prefix(w.begin(), w.begin() + static_cast<ptrdiff_t>(len));
    OptimalSchedule sub = planner.Solve(prefix, {part}, IndexSet{});
    EXPECT_NEAR(schedule.prefix_optimum[len - 1], sub.total_work,
                1e-6 * std::max(1.0, sub.total_work));
  }
  // And no online run over the same space can beat any prefix optimum.
  harness::ExperimentDriver driver(&w, &db.optimizer());
  harness::ExperimentSeries opt_series =
      harness::SeriesFromPrefixOptimum(schedule.prefix_optimum, "OPT");
  EXPECT_EQ(opt_series.final_total, schedule.prefix_optimum.back());
}

TEST(OptTest, ScheduleLengthMatchesWorkload) {
  TestDb db;
  Workload w = SmallWorkload(db, 3, 5);
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule =
      planner.Solve(w, {IndexSet{db.Ix("t1", {"a"})}}, IndexSet{});
  EXPECT_EQ(schedule.configs.size(), w.size());
}

TEST(OptTest, EmptyWorkloadYieldsZeroWork) {
  TestDb db;
  Workload w;
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule schedule =
      planner.Solve(w, {IndexSet{db.Ix("t1", {"a"})}}, IndexSet{});
  EXPECT_TRUE(schedule.configs.empty());
  EXPECT_DOUBLE_EQ(schedule.total_work, 0.0);
}

}  // namespace
}  // namespace wfit
