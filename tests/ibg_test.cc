#include "ibg/ibg.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

std::vector<IndexId> Candidates(TestDb& db) {
  return {db.Ix("t1", {"a"}), db.Ix("t1", {"b"}), db.Ix("t1", {"a", "b"}),
          db.Ix("t1", {"c"})};
}

TEST(IbgTest, CostMatchesDirectWhatIfForAllSubsets) {
  // The defining IBG property: CostOf(X) == cost(q, X) for every subset,
  // while only a fraction of the 2^n nodes were what-if optimized.
  TestDb db;
  std::vector<Statement> queries = {
      db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200 "
              "AND b BETWEEN 0 AND 100"),
      db.Bind("SELECT count(*) FROM t1 WHERE a = 3 AND b = 4"),
      db.Bind("SELECT d FROM t1 WHERE c = 9 ORDER BY a"),
      db.Bind("UPDATE t1 SET a = a + 1 WHERE b BETWEEN 0 AND 5"),
      db.Bind("DELETE FROM t1 WHERE a = 12"),
  };
  for (const Statement& q : queries) {
    std::vector<IndexId> cands = Candidates(db);
    IndexBenefitGraph ibg(q, db.optimizer(), cands);
    const Mask full = static_cast<Mask>((1u << cands.size()) - 1);
    for (Mask m = 0; m <= full; ++m) {
      double direct = db.optimizer().Cost(q, ibg.ToSet(m));
      EXPECT_NEAR(ibg.CostOf(m), direct, 1e-9 * std::max(1.0, direct))
          << q.sql << " mask=" << m;
    }
  }
}

TEST(IbgTest, BuildUsesFewerCallsThanExhaustive) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 3");
  std::vector<IndexId> cands = Candidates(db);
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  EXPECT_LT(ibg.build_calls(), 1u << cands.size());
  EXPECT_GE(ibg.build_calls(), 1u);
  EXPECT_EQ(ibg.build_calls(), ibg.num_nodes());
}

TEST(IbgTest, UsedAtIsSubsetOfQuery) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 200 AND b = 5");
  std::vector<IndexId> cands = Candidates(db);
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  const Mask full = static_cast<Mask>((1u << cands.size()) - 1);
  for (Mask m = 0; m <= full; ++m) {
    EXPECT_TRUE(IsSubset(ibg.UsedAt(m), m));
  }
}

TEST(IbgTest, EmptyCandidateListWorks) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t3 WHERE v = 1");
  IndexBenefitGraph ibg(q, db.optimizer(), {});
  EXPECT_DOUBLE_EQ(ibg.CostOf(0), db.optimizer().Cost(q, IndexSet{}));
  EXPECT_EQ(ibg.num_nodes(), 1u);
}

TEST(IbgTest, IrrelevantCandidatesDoNotGrowTheGraph) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 3");
  std::vector<IndexId> cands = {db.Ix("t1", {"a"}), db.Ix("t2", {"x"}),
                                db.Ix("t2", {"y"})};
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  // Only the t1 index can appear in plans.
  EXPECT_EQ(ibg.relevant_used(), Mask{1} << ibg.BitOf(db.Ix("t1", {"a"})));
}

TEST(IbgTest, MaxBenefitIsNonNegativeForQueries) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 300 AND b = 9");
  std::vector<IndexId> cands = Candidates(db);
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  for (size_t bit = 0; bit < cands.size(); ++bit) {
    EXPECT_GE(ibg.MaxBenefit(static_cast<int>(bit)), 0.0);
  }
}

TEST(IbgTest, MaxBenefitNegativeForPureMaintenanceIndex) {
  TestDb db;
  Statement u = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 100");
  IndexId ia = db.Ix("t1", {"a"});
  IndexBenefitGraph ibg(u, db.optimizer(), {ia});
  int bit = ibg.BitOf(ia);
  ASSERT_GE(bit, 0);
  EXPECT_LT(ibg.MaxBenefit(bit), 0.0);
}

TEST(IbgTest, MaxBenefitDominatesSampledContexts) {
  TestDb db;
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND b BETWEEN 0 "
      "AND 80");
  std::vector<IndexId> cands = Candidates(db);
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  for (size_t bit = 0; bit < cands.size(); ++bit) {
    double max_benefit = ibg.MaxBenefit(static_cast<int>(bit));
    const Mask full = static_cast<Mask>((1u << cands.size()) - 1);
    for (Mask ctx = 0; ctx <= full; ++ctx) {
      EXPECT_GE(max_benefit + 1e-7,
                ibg.BenefitOf(static_cast<int>(bit), ctx))
          << "bit=" << bit << " ctx=" << ctx;
    }
  }
}

TEST(IbgTest, ToMaskToSetRoundTrip) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  std::vector<IndexId> cands = Candidates(db);
  IndexBenefitGraph ibg(q, db.optimizer(), cands);
  for (Mask m = 0; m < (1u << cands.size()); ++m) {
    EXPECT_EQ(ibg.ToMask(ibg.ToSet(m)), m);
  }
  // Unknown ids are ignored by ToMask.
  IndexSet with_alien = ibg.ToSet(0b101);
  with_alien.Add(db.Ix("t3", {"v"}));
  EXPECT_EQ(ibg.ToMask(with_alien), 0b101u);
}

TEST(IbgDeathTest, TooManyCandidatesAborts) {
  TestDb db;
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a = 1");
  std::vector<IndexId> too_many(26, db.Ix("t1", {"a"}));
  EXPECT_DEATH({ IndexBenefitGraph ibg(q, db.optimizer(), too_many); },
               "too many candidates");
}

}  // namespace
}  // namespace wfit
