#include "common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace wfit {
namespace {

TEST(WorkerPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(WorkerPool::DefaultThreads(), 1u);
}

TEST(WorkerPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, ParallelForHandlesEdgeSizes) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  pool.ParallelFor(1, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  // More iterations than threads.
  pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 65);
}

TEST(WorkerPoolTest, ParallelForIsReusableAcrossCalls) {
  WorkerPool pool(3);
  uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(17, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 50u * (16u * 17u / 2u));
}

TEST(WorkerPoolTest, ParallelForPropagatesException) {
  WorkerPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(32,
                       [&](size_t i) {
                         if (i == 7) throw std::runtime_error("boom");
                         completed.fetch_add(1, std::memory_order_relaxed);
                       }),
      std::runtime_error);
  // Every other iteration still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 31);
}

TEST(WorkerPoolTest, NestedParallelForCompletes) {
  WorkerPool pool(2);
  std::atomic<int> inner_runs{0};
  // A ParallelFor issued from inside a pool task must not deadlock even
  // when every worker is busy: the issuing task runs the loop itself.
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(WorkerPoolTest, SubmitRunsTasksAsynchronously) {
  WorkerPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == 20; });
  EXPECT_EQ(done, 20);
}

TEST(WorkerPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<int> done{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace wfit
