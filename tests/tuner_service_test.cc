#include "service/tuner_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wfit.h"
#include "service/metrics.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

/// A deterministic mixed workload over the shared test catalog: selects of
/// varying selectivity, a join, and update statements, repeated to the
/// requested length so WFIT changes its mind several times along the way.
Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

/// Serial reference: the recommendation after each statement, with optional
/// feedback applied right after its keyed statement — exactly the service's
/// determinism contract.
std::vector<IndexSet> SerialHistory(
    TestDb& db, const Workload& w,
    const std::vector<std::pair<uint64_t, std::pair<IndexSet, IndexSet>>>&
        feedback = {}) {
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<IndexSet> history;
  for (size_t i = 0; i < w.size(); ++i) {
    tuner.AnalyzeQuery(w[i]);
    for (const auto& [after, votes] : feedback) {
      if (after == i) tuner.Feedback(votes.first, votes.second);
    }
    history.push_back(tuner.Recommendation());
  }
  return history;
}

/// Replays `w` through a service from `threads` producers, each submitting
/// its strided share with explicit sequence numbers.
std::vector<IndexSet> ConcurrentHistory(TestDb& db, const Workload& w,
                                        int threads, size_t queue_capacity) {
  TunerServiceOptions options;
  options.queue_capacity = queue_capacity;
  options.max_batch = 5;
  options.record_history = true;
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  service.Start();
  std::vector<std::thread> producers;
  for (int p = 0; p < threads; ++p) {
    producers.emplace_back([&service, &w, p, threads] {
      for (size_t seq = p; seq < w.size(); seq += threads) {
        ASSERT_TRUE(service.SubmitAt(seq, w[seq]));
      }
    });
  }
  for (auto& t : producers) t.join();
  service.Shutdown();
  return service.History();
}

TEST(TunerServiceTest, ConcurrentIngestionMatchesSerialReplay) {
  TestDb db;
  Workload w = BuildWorkload(db, 96);
  std::vector<IndexSet> serial = SerialHistory(db, w);
  for (int threads : {1, 4}) {
    std::vector<IndexSet> concurrent =
        ConcurrentHistory(db, w, threads, /*queue_capacity=*/16);
    ASSERT_EQ(concurrent.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(concurrent[i], serial[i])
          << "divergence at statement " << i << " with " << threads
          << " producers";
    }
  }
}

TEST(TunerServiceTest, DeterministicFeedbackInterleaving) {
  TestDb db;
  Workload w = BuildWorkload(db, 64);
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  std::vector<std::pair<uint64_t, std::pair<IndexSet, IndexSet>>> feedback = {
      {10, {IndexSet{ib}, IndexSet{}}},   // vote b in after statement 10
      {30, {IndexSet{}, IndexSet{ia}}},   // veto a after statement 30
  };
  std::vector<IndexSet> serial = SerialHistory(db, w, feedback);

  TunerServiceOptions options;
  options.queue_capacity = 8;
  options.record_history = true;
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  // Votes registered before any statement is analyzed: interleaving is
  // fully determined by the sequence keys, not by registration time.
  service.FeedbackAfter(10, IndexSet{ib}, IndexSet{});
  service.FeedbackAfter(30, IndexSet{}, IndexSet{ia});
  service.Start();
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&service, &w, p] {
      for (size_t seq = p; seq < w.size(); seq += 3) {
        ASSERT_TRUE(service.SubmitAt(seq, w[seq]));
      }
    });
  }
  for (auto& t : producers) t.join();
  service.Shutdown();
  std::vector<IndexSet> concurrent = service.History();
  ASSERT_EQ(concurrent.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(concurrent[i], serial[i]) << "divergence at statement " << i;
  }
  EXPECT_EQ(service.Metrics().feedback_applied, 2u);
}

TEST(TunerServiceTest, SnapshotReadsAreVersionedAndMonotone) {
  TestDb db;
  Workload w = BuildWorkload(db, 48);
  TunerServiceOptions options;
  options.record_history = false;
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  service.Start();
  auto initial = service.Recommendation();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->analyzed, 0u);
  EXPECT_TRUE(initial->configuration.empty());

  std::atomic<bool> done{false};
  std::atomic<bool> ok{true};
  std::thread reader([&] {
    uint64_t last_version = 0;
    uint64_t last_analyzed = 0;
    while (!done.load()) {
      auto snap = service.Recommendation();
      if (snap->version < last_version || snap->analyzed < last_analyzed) {
        ok.store(false);
        return;
      }
      last_version = snap->version;
      last_analyzed = snap->analyzed;
    }
  });
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  ASSERT_TRUE(service.WaitUntilAnalyzed(w.size()));
  done.store(true);
  reader.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(service.Recommendation()->analyzed, w.size());
  service.Shutdown();
}

TEST(TunerServiceTest, BackpressureBoundsQueueAndRejectsTrySubmit) {
  TestDb db;
  Workload w = BuildWorkload(db, 40);
  TunerServiceOptions options;
  options.queue_capacity = 8;
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  // Not started yet: nothing drains, so TrySubmit must hit the bound.
  size_t accepted = 0;
  size_t rejected = 0;
  for (const Statement& q : w) {
    if (service.TrySubmit(q)) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, w.size() - 8u);
  MetricsSnapshot before = service.Metrics();
  EXPECT_EQ(before.queue_depth, 8u);
  EXPECT_EQ(before.queue_high_water, 8u);
  EXPECT_EQ(before.submit_rejected, rejected);

  service.Start();
  ASSERT_TRUE(service.WaitUntilAnalyzed(accepted));
  // Blocking submissions now make progress and stay within the bound.
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  service.Shutdown();
  MetricsSnapshot after = service.Metrics();
  EXPECT_EQ(after.statements_analyzed, accepted + w.size());
  EXPECT_LE(after.queue_high_water, 8u);
  EXPECT_EQ(after.queue_depth, 0u);
}

TEST(TunerServiceTest, MetricsCountersAndTextExport) {
  TestDb db;
  // Interned before the worker starts: the pool is not synchronized, so
  // voting threads must not intern concurrently with analysis.
  IndexId voted = db.Ix("t1", {"a"});
  Workload w = BuildWorkload(db, 32);
  TunerServiceOptions options;
  options.max_batch = 4;
  TunerService service(
      std::make_unique<Wfit>(&db.pool(), &db.optimizer(), IndexSet{},
                             FastOptions()),
      options);
  service.Start();
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  service.Feedback(IndexSet{voted}, IndexSet{});
  service.Shutdown();

  MetricsSnapshot m = service.Metrics();
  EXPECT_EQ(m.statements_submitted, w.size());
  EXPECT_EQ(m.statements_analyzed, w.size());
  EXPECT_GE(m.batches, w.size() / 4);
  EXPECT_LE(m.max_batch, 4u);
  EXPECT_EQ(m.latency_count(), w.size());
  EXPECT_GT(m.latency_total_us, 0.0);
  EXPECT_EQ(m.feedback_applied, 1u);
  EXPECT_EQ(m.repartitions, service.tuner().RepartitionCount());
  EXPECT_GE(m.snapshot_version, w.size());

  std::string text = ExportText(m);
  EXPECT_NE(text.find("wfit_service_statements_analyzed_total 32"),
            std::string::npos);
  EXPECT_NE(text.find("wfit_service_analysis_latency_us_count 32"),
            std::string::npos);
  EXPECT_NE(text.find("wfit_service_feedback_applied_total 1"),
            std::string::npos);
}

TEST(TunerServiceTest, WaitUntilAnalyzedReturnsFalseAfterShutdown) {
  TestDb db;
  Workload w = BuildWorkload(db, 4);
  TunerService service(std::make_unique<Wfit>(
      &db.pool(), &db.optimizer(), IndexSet{}, FastOptions()));
  service.Start();
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  service.Shutdown();
  // The stream ended at 4 statements: a waiter asking for more must not
  // hang, it must observe the stop.
  EXPECT_FALSE(service.WaitUntilAnalyzed(w.size() + 1));
  EXPECT_TRUE(service.WaitUntilAnalyzed(w.size()));
  EXPECT_FALSE(service.Submit(w[0]));  // intake is closed
}

TEST(TunerServiceTest, LateFeedbackAppliesBeforeShutdownCompletes) {
  TestDb db;
  Workload w = BuildWorkload(db, 48);
  TunerService service(std::make_unique<Wfit>(
      &db.pool(), &db.optimizer(), IndexSet{}, FastOptions()));
  service.Start();
  for (const Statement& q : w) ASSERT_TRUE(service.Submit(q));
  ASSERT_TRUE(service.WaitUntilAnalyzed(w.size()));
  IndexSet rec = service.Recommendation()->configuration;
  ASSERT_FALSE(rec.empty()) << "workload should have earned an index";
  IndexId vetoed = *rec.begin();
  service.Feedback(IndexSet{}, IndexSet{vetoed});  // DBA veto after the fact
  service.Shutdown();
  EXPECT_FALSE(service.Recommendation()->configuration.Contains(vetoed));
  EXPECT_EQ(service.Metrics().feedback_applied, 1u);
}

}  // namespace
}  // namespace wfit::service
