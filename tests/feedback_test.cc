#include "harness/feedback_gen.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

OptimalSchedule MakeSchedule(std::vector<IndexSet> configs) {
  OptimalSchedule s;
  s.configs = std::move(configs);
  return s;
}

TEST(FeedbackGenTest, VotesMirrorScheduleTransitions) {
  OptimalSchedule opt = MakeSchedule({
      IndexSet{1},        // created before statement 0
      IndexSet{1},        // unchanged
      IndexSet{2},        // drop 1, create 2 before statement 2
      IndexSet{2},
  });
  std::vector<FeedbackEvent> good = GoodFeedback(opt, IndexSet{});
  ASSERT_EQ(good.size(), 2u);
  EXPECT_EQ(good[0].after_statement, -1);
  EXPECT_EQ(good[0].f_plus, IndexSet{1});
  EXPECT_TRUE(good[0].f_minus.empty());
  EXPECT_EQ(good[1].after_statement, 1);
  EXPECT_EQ(good[1].f_plus, IndexSet{2});
  EXPECT_EQ(good[1].f_minus, IndexSet{1});
}

TEST(FeedbackGenTest, BadFeedbackSwapsVotes) {
  OptimalSchedule opt = MakeSchedule({IndexSet{1}, IndexSet{}});
  std::vector<FeedbackEvent> good = GoodFeedback(opt, IndexSet{});
  std::vector<FeedbackEvent> bad = BadFeedback(opt, IndexSet{});
  ASSERT_EQ(good.size(), bad.size());
  for (size_t i = 0; i < good.size(); ++i) {
    EXPECT_EQ(good[i].after_statement, bad[i].after_statement);
    EXPECT_EQ(good[i].f_plus, bad[i].f_minus);
    EXPECT_EQ(good[i].f_minus, bad[i].f_plus);
  }
}

TEST(FeedbackGenTest, InitialConfigSuppressesSpuriousFirstEvent) {
  OptimalSchedule opt = MakeSchedule({IndexSet{1}, IndexSet{1}});
  std::vector<FeedbackEvent> good = GoodFeedback(opt, IndexSet{1});
  EXPECT_TRUE(good.empty());
}

TEST(FeedbackGenTest, StableScheduleProducesNoVotes) {
  OptimalSchedule opt =
      MakeSchedule({IndexSet{3, 4}, IndexSet{3, 4}, IndexSet{3, 4}});
  EXPECT_TRUE(GoodFeedback(opt, IndexSet{3, 4}).empty());
}

TEST(FeedbackGenTest, EventsAreOrderedByPosition) {
  OptimalSchedule opt = MakeSchedule(
      {IndexSet{}, IndexSet{1}, IndexSet{1, 2}, IndexSet{2}, IndexSet{2}});
  std::vector<FeedbackEvent> good = GoodFeedback(opt, IndexSet{});
  ASSERT_EQ(good.size(), 3u);
  for (size_t i = 1; i < good.size(); ++i) {
    EXPECT_LT(good[i - 1].after_statement, good[i].after_statement);
  }
}

TEST(FeedbackGenTest, EndToEndGoodVotesFromRealOpt) {
  // Derive VGOOD from an actual OPT schedule: every event's votes must be
  // disjoint and reference only partition indices.
  TestDb db;
  IndexSet part{db.Ix("t1", {"a"}), db.Ix("t1", {"b"})};
  Workload w;
  for (int i = 0; i < 10; ++i) {
    w.push_back(db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150"));
  }
  for (int i = 0; i < 10; ++i) {
    w.push_back(db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 9000"));
  }
  OptimalPlanner planner(&db.pool(), &db.optimizer());
  OptimalSchedule opt = planner.Solve(w, {part}, IndexSet{});
  std::vector<FeedbackEvent> good = GoodFeedback(opt, IndexSet{});
  EXPECT_FALSE(good.empty());
  IndexSet universe;
  for (const IndexSet& p : std::vector<IndexSet>{part}) {
    universe = universe.Union(p);
  }
  for (const FeedbackEvent& e : good) {
    EXPECT_TRUE(e.f_plus.Intersect(e.f_minus).empty());
    EXPECT_TRUE(e.f_plus.IsSubsetOf(universe));
    EXPECT_TRUE(e.f_minus.IsSubsetOf(universe));
    EXPECT_GE(e.after_statement, -1);
    EXPECT_LT(e.after_statement, static_cast<int64_t>(w.size()));
  }
}

}  // namespace
}  // namespace wfit
