#include "baselines/bc.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wfit {
namespace {

using testing::TestDb;

TEST(BcTest, StartsWithInitialConfig) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{ia});
  EXPECT_EQ(bc.Recommendation(), IndexSet{ia});
  EXPECT_EQ(bc.name(), "BC");
}

TEST(BcTest, InitialConfigClampedToCandidates) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{ia, ib});
  EXPECT_EQ(bc.Recommendation(), IndexSet{ia});
}

TEST(BcTest, AccumulatesBenefitThenCreates) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 120");
  bc.AnalyzeQuery(q);
  // One query is not enough to pay the build cost, but the signal is live.
  EXPECT_FALSE(bc.Recommendation().Contains(ia));
  EXPECT_GT(bc.LastGain(ia), 0.0);
  int n = 1;
  for (; n < 200 && !bc.Recommendation().Contains(ia); ++n) {
    bc.AnalyzeQuery(q);
  }
  EXPECT_TRUE(bc.Recommendation().Contains(ia));
  EXPECT_GT(n, 1);  // hysteresis: not instant
}

TEST(BcTest, DropsIndexAfterSustainedLosses) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{ia});
  Statement u = db.Bind("UPDATE t1 SET a = a + 1 WHERE k BETWEEN 0 AND 9000");
  int n = 0;
  for (; n < 500 && bc.Recommendation().Contains(ia); ++n) {
    bc.AnalyzeQuery(u);
    EXPECT_LT(bc.LastGain(ia), 0.0);  // maintenance always counts
  }
  EXPECT_LT(n, 500) << "BC never dropped a hurtful index";
  EXPECT_GT(n, 1) << "BC dropped without hysteresis";
}

TEST(BcTest, IdealPlanGateBlocksLosingAlternatives) {
  // ix(a) and ix(c,a) both serve the predicate pair, but only the plan
  // winner receives credit (BC's heuristic interaction adjustment).
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ica = db.Ix("t1", {"c", "a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia, ica}, IndexSet{});
  Statement q = db.Bind(
      "SELECT count(*) FROM t1 WHERE c = 5 AND a BETWEEN 0 AND 1000");
  bc.AnalyzeQuery(q);
  // Exactly one of the two alternatives gets the (positive) credit.
  int credited = (bc.LastGain(ia) > 0.0 ? 1 : 0) +
                 (bc.LastGain(ica) > 0.0 ? 1 : 0);
  EXPECT_EQ(credited, 1);
}

TEST(BcTest, IndependenceAssumptionMisestimatesInteractingPair) {
  // Two medium-selectivity predicates whose indexes interact (they serve
  // the same query and intersect). BC's independence assumption credits
  // each index its full isolated benefit, so the claims add up to far more
  // than the jointly attainable improvement — the over-crediting that makes
  // BC build redundant indexes where one (or a targeted pair) suffices.
  // WFIT's exact per-configuration costs cannot make this error.
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  IndexId ib = db.Ix("t1", {"b"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia, ib}, IndexSet{});
  Statement q = db.Bind(
      "SELECT d FROM t1 WHERE a BETWEEN 0 AND 400 AND b BETWEEN 0 AND 200");
  double joint = db.optimizer().Cost(q, IndexSet{}) -
                 db.optimizer().Cost(q, IndexSet{ia, ib});
  ASSERT_GT(joint, 0.0);
  bc.AnalyzeQuery(q);
  double claimed = bc.LastGain(ia) + bc.LastGain(ib);
  EXPECT_GT(claimed, 1.2 * joint);
}

TEST(BcTest, IgnoresFeedbackSilently) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{});
  bc.Feedback(IndexSet{ia}, IndexSet{});  // must be a harmless no-op
  EXPECT_FALSE(bc.Recommendation().Contains(ia));
}

TEST(BcTest, BenefitScaleControlsEagerness) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  Statement q = db.Bind("SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 120");
  BcOptions eager;
  eager.benefit_scale = 3.0;
  BcOptions lazy;
  lazy.benefit_scale = 0.3;
  BcTuner bc_eager(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{},
                   eager);
  BcTuner bc_lazy(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{},
                  lazy);
  int eager_steps = 0, lazy_steps = 0;
  for (; eager_steps < 600 && !bc_eager.Recommendation().Contains(ia);
       ++eager_steps) {
    bc_eager.AnalyzeQuery(q);
  }
  for (; lazy_steps < 600 && !bc_lazy.Recommendation().Contains(ia);
       ++lazy_steps) {
    bc_lazy.AnalyzeQuery(q);
  }
  EXPECT_LT(eager_steps, lazy_steps);
}

TEST(BcTest, UnknownIndexHasZeroLastGain) {
  TestDb db;
  IndexId ia = db.Ix("t1", {"a"});
  BcTuner bc(&db.pool(), &db.optimizer(), IndexSet{ia}, IndexSet{});
  EXPECT_DOUBLE_EQ(bc.LastGain(db.Ix("t2", {"x"})), 0.0);
}

}  // namespace
}  // namespace wfit
