#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace wfit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 50 && !any_diff; ++i) {
    any_diff = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformRealWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RngTest, PickWeightedRespectsZeroWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.PickWeighted(weights), 1u);
  }
}

TEST(RngTest, PickWeightedRoughlyProportional) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.PickWeighted(weights)];
  double frac = static_cast<double>(counts[1]) / n;
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.UniformInt(0, 1 << 20), fb.UniformInt(0, 1 << 20));
  }
}

TEST(RngTest, SaveAndLoadStateResumesStreamExactly) {
  Rng a(20120402);
  for (int i = 0; i < 1000; ++i) (void)a.UniformInt(0, 1 << 30);
  std::string state = a.SaveState();
  // Drain more draws from `a`, then rewind a fresh engine to the saved
  // position: the streams must coincide from there on.
  std::vector<int64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(a.UniformInt(0, 1 << 30));
  Rng b(1);
  ASSERT_TRUE(b.LoadState(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.UniformInt(0, 1 << 30), expected[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, LoadStateRejectsGarbage) {
  Rng a(7);
  int64_t before = a.UniformInt(0, 100);
  (void)before;
  EXPECT_FALSE(a.LoadState("not an engine state"));
}

TEST(RngDeathTest, EmptyRangeAborts) {
  Rng rng(1);
  EXPECT_DEATH({ (void)rng.UniformInt(2, 1); }, "empty range");
}

TEST(RngDeathTest, AllZeroWeightsAborts) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_DEATH({ (void)rng.PickWeighted(weights); }, "all weights zero");
}

}  // namespace
}  // namespace wfit
