// Placement: rendezvous hashing must be deterministic across observers,
// spread tenants roughly evenly, move only the affected tenants when
// membership changes, honor overrides, and round-trip through the config
// codec (redirects ship encoded configs).
#include "cluster/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace wfit::cluster {
namespace {

ClusterConfig ThreeNodes() {
  ClusterConfig config;
  config.version = 7;
  config.nodes = {{"a", "10.0.0.1", 7601},
                  {"b", "10.0.0.2", 7601},
                  {"c", "10.0.0.3", 7601}};
  config.Normalize();
  return config;
}

TEST(PlacementTest, OwnerIsDeterministic) {
  ClusterConfig config = ThreeNodes();
  for (int t = 0; t < 50; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const NodeInfo* first = OwnerOf(config, tenant);
    ASSERT_NE(first, nullptr);
    // Same answer every time, and independent of node declaration order.
    ClusterConfig shuffled = config;
    std::swap(shuffled.nodes[0], shuffled.nodes[2]);
    shuffled.Normalize();
    EXPECT_EQ(OwnerOf(shuffled, tenant)->id, first->id);
  }
}

TEST(PlacementTest, SpreadsTenantsAcrossNodes) {
  ClusterConfig config = ThreeNodes();
  std::map<std::string, int> per_node;
  const int kTenants = 600;
  for (int t = 0; t < kTenants; ++t) {
    per_node[OwnerOf(config, "tenant-" + std::to_string(t))->id]++;
  }
  EXPECT_EQ(per_node.size(), 3u);
  for (const auto& [id, count] : per_node) {
    // Even-ish split: each node within a factor of 2 of fair share.
    EXPECT_GT(count, kTenants / 6) << id;
    EXPECT_LT(count, kTenants / 3 * 2) << id;
  }
}

TEST(PlacementTest, NodeRemovalOnlyMovesItsTenants) {
  ClusterConfig three = ThreeNodes();
  ClusterConfig two = three;
  two.nodes.erase(two.nodes.begin() + 1);  // drop "b"
  int moved_from_survivors = 0;
  for (int t = 0; t < 400; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const std::string before = OwnerOf(three, tenant)->id;
    const std::string after = OwnerOf(two, tenant)->id;
    if (before == "b") {
      EXPECT_NE(after, "b");  // b's tenants must land elsewhere
    } else if (before != after) {
      ++moved_from_survivors;  // rendezvous guarantees this is zero
    }
  }
  EXPECT_EQ(moved_from_survivors, 0);
}

TEST(PlacementTest, OverridesBeatTheHash) {
  ClusterConfig config = ThreeNodes();
  // Find a tenant NOT hashed to "c", then pin it there.
  std::string tenant;
  for (int t = 0;; ++t) {
    tenant = "tenant-" + std::to_string(t);
    if (OwnerOf(config, tenant)->id != "c") break;
  }
  config.overrides[tenant] = "c";
  EXPECT_EQ(OwnerOf(config, tenant)->id, "c");
  // An override naming an unknown node falls back to the hash instead of
  // stranding the tenant.
  config.overrides[tenant] = "never-joined";
  EXPECT_NE(OwnerOf(config, tenant), nullptr);
  EXPECT_NE(OwnerOf(config, tenant)->id, "never-joined");
}

TEST(PlacementTest, EmptyConfigHasNoOwner) {
  ClusterConfig config;
  EXPECT_EQ(OwnerOf(config, "tenant-0"), nullptr);
}

TEST(PlacementTest, ConfigCodecRoundTrips) {
  ClusterConfig config = ThreeNodes();
  config.overrides["tenant-9"] = "a";
  config.overrides["tenant with spaces / slashes"] = "b";
  ClusterConfig decoded;
  ASSERT_TRUE(
      DecodeClusterConfig(EncodeClusterConfig(config), &decoded).ok());
  EXPECT_EQ(decoded.version, config.version);
  ASSERT_EQ(decoded.nodes.size(), config.nodes.size());
  for (size_t i = 0; i < config.nodes.size(); ++i) {
    EXPECT_EQ(decoded.nodes[i].id, config.nodes[i].id);
    EXPECT_EQ(decoded.nodes[i].host, config.nodes[i].host);
    EXPECT_EQ(decoded.nodes[i].port, config.nodes[i].port);
  }
  EXPECT_EQ(decoded.overrides, config.overrides);
}

TEST(PlacementTest, ConfigCodecRejectsTruncation) {
  std::string blob = EncodeClusterConfig(ThreeNodes());
  for (size_t cut : {size_t{0}, blob.size() / 2, blob.size() - 1}) {
    ClusterConfig decoded;
    EXPECT_FALSE(
        DecodeClusterConfig(std::string_view(blob).substr(0, cut), &decoded)
            .ok())
        << "cut at " << cut;
  }
}

TEST(PlacementTest, ParsesNodeListSpec) {
  auto config = ParseNodeList("b=127.0.0.1:7602,a=localhost:7601");
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->nodes.size(), 2u);
  EXPECT_EQ(config->nodes[0].id, "a");  // normalized order
  EXPECT_EQ(config->nodes[0].host, "localhost");
  EXPECT_EQ(config->nodes[0].port, 7601);
  EXPECT_EQ(config->nodes[1].id, "b");

  EXPECT_FALSE(ParseNodeList("").ok());
  EXPECT_FALSE(ParseNodeList("a=hostonly").ok());
  EXPECT_FALSE(ParseNodeList("a=h:99999").ok());
  EXPECT_FALSE(ParseNodeList("a=h:1,a=h:2").ok());
}

}  // namespace
}  // namespace wfit::cluster
