// Shared fixtures: a small deterministic catalog with three tables plus
// fully wired cost model / what-if optimizer / binder. Kept intentionally
// tiny so exhaustive property checks (all subsets, all schedules) stay fast.
#ifndef WFIT_TESTS_TEST_UTIL_H_
#define WFIT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/index.h"
#include "optimizer/cost_model.h"
#include "optimizer/what_if.h"
#include "workload/binder.h"
#include "workload/statement.h"

namespace wfit::testing {

/// A self-contained database environment. Non-movable: internal components
/// hold pointers to each other.
class TestDb {
 public:
  TestDb() : TestDb(CostModelOptions{}) {}

  explicit TestDb(const CostModelOptions& cost_options) {
    TableInfo t1;
    t1.dataset = "test";
    t1.name = "t1";
    t1.row_count = 1000000;
    t1.columns = {
        MakeCol("k", 1000000, 8, 1, 1000000),
        MakeCol("a", 10000, 8, 0, 10000),
        MakeCol("b", 5000, 8, 0, 5000),
        MakeCol("c", 100, 4, 0, 99),
        MakeCol("d", 1000000, 8, 0, 1000000),
    };
    WFIT_CHECK(catalog_.AddTable(std::move(t1)).ok());

    TableInfo t2;
    t2.dataset = "test";
    t2.name = "t2";
    t2.row_count = 100000;
    t2.columns = {
        MakeCol("fk", 100000, 8, 1, 1000000),
        MakeCol("x", 1000, 8, 0, 1000),
        MakeCol("y", 50, 4, 0, 49),
    };
    WFIT_CHECK(catalog_.AddTable(std::move(t2)).ok());

    TableInfo t3;
    t3.dataset = "test";
    t3.name = "t3";
    t3.row_count = 500;
    t3.columns = {
        MakeCol("id", 500, 8, 1, 500),
        MakeCol("v", 100, 8, 0, 100),
    };
    WFIT_CHECK(catalog_.AddTable(std::move(t3)).ok());

    pool_ = std::make_unique<IndexPool>(&catalog_);
    model_ = std::make_unique<CostModel>(&catalog_, pool_.get(), cost_options);
    optimizer_ = std::make_unique<WhatIfOptimizer>(model_.get());
    binder_ = std::make_unique<Binder>(&catalog_);
  }

  TestDb(const TestDb&) = delete;
  TestDb& operator=(const TestDb&) = delete;

  Catalog& catalog() { return catalog_; }
  IndexPool& pool() { return *pool_; }
  CostModel& model() { return *model_; }
  WhatIfOptimizer& optimizer() { return *optimizer_; }
  Binder& binder() { return *binder_; }

  /// Parses + binds, aborting on error (tests supply valid SQL).
  Statement Bind(const std::string& sql) {
    auto bound = binder_->BindSql(sql);
    WFIT_CHECK(bound.ok(), bound.status().ToString());
    return std::move(bound).value();
  }

  /// Interns an index like Ix("t1", {"a", "b"}).
  IndexId Ix(const std::string& table, const std::vector<std::string>& cols) {
    auto tid = catalog_.FindTable(table);
    WFIT_CHECK(tid.ok(), tid.status().ToString());
    IndexDef def;
    def.table = *tid;
    for (const std::string& c : cols) {
      auto col = catalog_.FindColumn(*tid, c);
      WFIT_CHECK(col.ok(), col.status().ToString());
      def.columns.push_back(*col);
    }
    return pool_->Intern(def);
  }

 private:
  static ColumnInfo MakeCol(std::string name, uint64_t distinct,
                            uint32_t width, double lo, double hi) {
    ColumnInfo c;
    c.name = std::move(name);
    c.distinct_values = distinct;
    c.width_bytes = width;
    c.min_value = lo;
    c.max_value = hi;
    return c;
  }

  Catalog catalog_;
  std::unique_ptr<IndexPool> pool_;
  std::unique_ptr<CostModel> model_;
  std::unique_ptr<WhatIfOptimizer> optimizer_;
  std::unique_ptr<Binder> binder_;
};

}  // namespace wfit::testing

#endif  // WFIT_TESTS_TEST_UTIL_H_
