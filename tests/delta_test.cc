#include "persist/delta.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "core/wfit.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "tests/test_util.h"

namespace wfit::persist {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

Workload BuildWorkload(TestDb& db, size_t n) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[i % (sizeof(shapes) / sizeof(shapes[0]))]));
  }
  return w;
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) /
                 ("wfit_delta_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

void FlipByte(const std::string& path, size_t offset_from_mid) {
  std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), offset_from_mid + 32);
  contents[contents.size() / 2 + offset_from_mid] ^= 0x5A;
  WriteFile(path, contents);
}

SnapshotMeta MetaAt(uint64_t analyzed, uint64_t lsn) {
  SnapshotMeta meta;
  meta.analyzed = analyzed;
  meta.journal_lsn = lsn;
  return meta;
}

/// Fixture state for a chain-building run: one tuner advanced through a
/// deterministic workload, checkpointed at chosen points. Chain tests
/// checkpoint past statement ~100: by then this workload's candidate set
/// and part layout are stable, so checkpoints diff as deltas instead of
/// being (correctly) forced full by structural change. The early churny
/// region is what FullForcedEveryKDeltas-style tests would trip over.
struct ChainRun {
  ChainRun() : tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions()) {
    workload = BuildWorkload(db, 220);
  }
  void AdvanceTo(size_t n) {
    while (at < n) tuner.AnalyzeQuery(workload[at++]);
  }
  TestDb db;
  Workload workload;
  Wfit tuner;
  size_t at = 0;
};

// --- the chain rule, pinned before deltas exist --------------------------

// A corrupt *full* snapshot must invalidate every delta chained to it: the
// loader falls back to the previous full snapshot (or a cold start), never
// to a delta whose base is gone. This is the PR 3 fallback fix extended to
// chains — without it, a delta applied onto the wrong base would decode
// garbage or, worse, a plausible-but-divergent trajectory.
TEST(DeltaChainTest, CorruptFullSnapshotInvalidatesChainedDeltas) {
  const std::string dir = FreshDir("corrupt_base");
  ChainRun run;

  DeltaCheckpointer::Options copts;
  copts.full_every = 100;  // never force a full mid-test
  DeltaCheckpointer cp(copts);

  // Chain 0: a full snapshot at 104 (the fallback target).
  run.AdvanceTo(104);
  auto r0 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(104, 104));
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_TRUE(r0->wrote_full);

  // Chain 1: full at 112, deltas at 118 and 124.
  cp.Reset();
  run.AdvanceTo(112);
  auto r1 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(112, 112));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->wrote_full);
  run.AdvanceTo(118);
  auto r2 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(118, 118));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2->wrote_full);
  run.AdvanceTo(124);
  auto r3 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(124, 124));
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_FALSE(r3->wrote_full);

  // Damage chain 1's full snapshot (payload byte flip).
  std::vector<std::string> fulls = ListSnapshots(dir);
  ASSERT_EQ(fulls.size(), 2u);  // newest first: 112, 104
  FlipByte(fulls[0], 0);

  // The loader must land on the chain-0 full at 104 — NOT on a delta of
  // the damaged chain, even though those files are newer and intact.
  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded =
      LoadLatestCheckpoint(dir, &restored, &db2.pool(), nullptr);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.analyzed, 104u);
  EXPECT_EQ(loaded.deltas_applied, 0u);
  EXPECT_GE(loaded.skipped, 1u);

  // And the restored state really is the statement-104 state: a reference
  // run advanced to 104 continues bit-identically with it.
  ChainRun ref;
  ref.AdvanceTo(104);
  EXPECT_EQ(restored.Recommendation(), ref.tuner.Recommendation());
  Workload w2 = BuildWorkload(db2, 220);
  for (size_t i = 104; i < 180; ++i) {
    ref.tuner.AnalyzeQuery(ref.workload[i]);
    restored.AnalyzeQuery(w2[i]);
  }
  EXPECT_EQ(restored.Recommendation(), ref.tuner.Recommendation());
  EXPECT_EQ(restored.TotalStates(), ref.tuner.TotalStates());
}

// --- chain round trips ---------------------------------------------------

TEST(DeltaChainTest, FullPlusDeltasRestoreTheChainTailExactly) {
  const std::string dir = FreshDir("roundtrip");
  ChainRun run;

  DeltaCheckpointer cp;
  run.AdvanceTo(104);
  auto rf = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(104, 104));
  ASSERT_TRUE(rf.ok());
  EXPECT_TRUE(rf->wrote_full);
  const uint64_t full_bytes = rf->bytes;

  run.AdvanceTo(110);
  auto rd1 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(110, 110));
  ASSERT_TRUE(rd1.ok());
  EXPECT_FALSE(rd1->wrote_full);
  // Deltas must pay for themselves: a 6-statement gap in this fixture
  // still churns every selector window, so this bound is what the
  // ring-shift patch ops buy.
  EXPECT_LT(rd1->bytes, full_bytes / 2);

  run.AdvanceTo(116);
  auto rd2 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(116, 116));
  ASSERT_TRUE(rd2.ok());
  EXPECT_FALSE(rd2->wrote_full);

  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded =
      LoadLatestCheckpoint(dir, &restored, &db2.pool(), nullptr);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.analyzed, 116u);
  EXPECT_EQ(loaded.meta.journal_lsn, 116u);
  EXPECT_EQ(loaded.deltas_applied, 2u);
  EXPECT_EQ(loaded.skipped, 0u);

  // Bit-for-bit: the reconstructed chain tail continues identically.
  EXPECT_EQ(restored.Recommendation(), run.tuner.Recommendation());
  EXPECT_EQ(restored.FeedbackCount(), run.tuner.FeedbackCount());
  Workload w2 = BuildWorkload(db2, 220);
  for (size_t i = 116; i < 200; ++i) {
    run.tuner.AnalyzeQuery(run.workload[i]);
    restored.AnalyzeQuery(w2[i]);
  }
  EXPECT_EQ(restored.Recommendation(), run.tuner.Recommendation());
  EXPECT_EQ(restored.RepartitionCount(), run.tuner.RepartitionCount());
  EXPECT_EQ(restored.TotalStates(), run.tuner.TotalStates());
}

TEST(DeltaChainTest, CorruptDeltaTruncatesTheChainThere) {
  const std::string dir = FreshDir("corrupt_delta");
  ChainRun run;

  DeltaCheckpointer cp;
  run.AdvanceTo(104);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(104, 104)).ok());
  run.AdvanceTo(110);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(110, 110)).ok());
  run.AdvanceTo(116);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(116, 116)).ok());

  // Damage the *newest* delta: the chain prefix (full@104 + delta@110)
  // must still restore.
  std::vector<std::string> deltas = ListDeltas(dir);
  ASSERT_EQ(deltas.size(), 2u);
  FlipByte(deltas.back(), 1);

  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded =
      LoadLatestCheckpoint(dir, &restored, &db2.pool(), nullptr);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.meta.analyzed, 110u);
  EXPECT_EQ(loaded.deltas_applied, 1u);
  EXPECT_GE(loaded.skipped, 1u);

  ChainRun ref;
  ref.AdvanceTo(110);
  EXPECT_EQ(restored.Recommendation(), ref.tuner.Recommendation());
}

TEST(DeltaChainTest, FullForcedEveryKDeltas) {
  const std::string dir = FreshDir("full_every");
  ChainRun run;

  DeltaCheckpointer::Options copts;
  copts.full_every = 2;
  DeltaCheckpointer cp(copts);
  size_t fulls = 0;
  for (size_t n = 100; n <= 124; n += 4) {
    run.AdvanceTo(n);
    auto r = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(n, n));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->wrote_full) ++fulls;
  }
  // 7 writes with full_every=2: full, d, d, full, d, d, full.
  EXPECT_EQ(fulls, 3u);
}

TEST(DeltaChainTest, SeededCheckpointerContinuesTheChainAcrossRestart) {
  const std::string dir = FreshDir("seeded");
  ChainRun run;

  DeltaCheckpointer cp;
  run.AdvanceTo(104);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(104, 104)).ok());
  run.AdvanceTo(110);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(110, 110)).ok());

  // "Restart": load with a fresh checkpointer, advance, checkpoint again —
  // the new checkpoint must be a delta on the restored chain, not a full.
  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  DeltaCheckpointer cp2;
  SnapshotLoadResult loaded =
      LoadLatestCheckpoint(dir, &restored, &db2.pool(), &cp2);
  ASSERT_TRUE(loaded.loaded);
  ASSERT_TRUE(cp2.seeded());
  EXPECT_EQ(cp2.deltas_in_chain(), 1u);

  Workload w2 = BuildWorkload(db2, 220);
  for (size_t i = 110; i < 116; ++i) restored.AnalyzeQuery(w2[i]);
  auto r = cp2.Write(dir, restored, db2.pool(), MetaAt(116, 116));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->wrote_full);

  // The extended chain still restores to the exact statement-116 state.
  run.AdvanceTo(116);
  TestDb db3;
  Wfit again(&db3.pool(), &db3.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult l3 = LoadLatestCheckpoint(dir, &again, &db3.pool(),
                                               nullptr);
  ASSERT_TRUE(l3.loaded);
  EXPECT_EQ(l3.meta.analyzed, 116u);
  EXPECT_EQ(l3.deltas_applied, 2u);
  EXPECT_EQ(again.Recommendation(), run.tuner.Recommendation());
  EXPECT_EQ(again.TotalStates(), run.tuner.TotalStates());
}

TEST(DeltaChainTest, PruneDropsOrphanedDeltasWithTheirChain) {
  const std::string dir = FreshDir("prune");
  ChainRun run;

  DeltaCheckpointer::Options copts;
  copts.full_every = 1;  // every other write is a full
  copts.keep_chains = 2;
  DeltaCheckpointer cp(copts);
  for (size_t n = 10; n <= 80; n += 10) {
    run.AdvanceTo(n);
    ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(n, n)).ok());
  }
  // Only the 2 newest fulls survive, and every remaining delta's root is
  // one of them.
  std::vector<std::string> fulls = ListSnapshots(dir);
  EXPECT_EQ(fulls.size(), 2u);
  for (const std::string& path : ListDeltas(dir)) {
    uint64_t root = 0, analyzed = 0;
    ASSERT_TRUE(ParseDeltaName(fs::path(path).filename().string(), &root,
                               &analyzed));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(root));
    bool retained = false;
    for (const std::string& f : fulls) {
      if (f.find(buf) != std::string::npos) retained = true;
    }
    EXPECT_TRUE(retained) << path << " orphaned";
  }
}

TEST(DeltaChainTest, CoverLsnRequiresTwoDurableFulls) {
  const std::string dir = FreshDir("cover");
  ChainRun run;

  DeltaCheckpointer::Options copts;
  copts.full_every = 1;
  DeltaCheckpointer cp(copts);
  run.AdvanceTo(104);
  auto r1 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(104, 100));
  ASSERT_TRUE(r1.ok());
  // One full: nothing compactable yet (a lone snapshot's failure would
  // otherwise orphan the journal prefix).
  EXPECT_EQ(r1->cover_lsn, 0u);

  run.AdvanceTo(108);
  auto r2 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(108, 150));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->wrote_full);  // first delta of the chain
  EXPECT_EQ(r2->cover_lsn, 0u);  // deltas never advance the horizon
  run.AdvanceTo(112);
  auto r3 = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(112, 200));
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->wrote_full);
  // Retained full snapshots are now lsn 100 and lsn 200: records below
  // 100 are reflected in both, so that prefix is safely compactable.
  EXPECT_EQ(r3->cover_lsn, 100u);
}

// --- chunker -------------------------------------------------------------

TEST(DeltaChainTest, ChunkerCoversEveryPayloadByteContiguously) {
  ChainRun run;
  run.AdvanceTo(45);
  auto payload = EncodeSnapshotPayload(run.tuner, run.db.pool(),
                                       MetaAt(45, 45));
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto units = ChunkSnapshotPayload(*payload);
  ASSERT_TRUE(units.ok()) << units.status().ToString();
  ASSERT_FALSE(units->empty());
  uint64_t pos = 0;
  for (const SnapshotUnit& u : *units) {
    EXPECT_EQ(u.offset, pos) << "gap before section "
                             << static_cast<int>(u.section);
    pos += u.len;
  }
  EXPECT_EQ(pos, payload->size());
  EXPECT_EQ((*units)[0].section, kSectionMeta);
  EXPECT_EQ((*units)[0].len, 16u);
}

TEST(DeltaChainTest, PoolGrowthShipsOnlyAppendedDefinitions) {
  const std::string dir = FreshDir("pool_append");
  ChainRun run;

  DeltaCheckpointer cp;
  run.AdvanceTo(30);
  ASSERT_TRUE(cp.Write(dir, run.tuner, run.db.pool(), MetaAt(30, 30)).ok());
  const size_t pool_before = run.db.pool().size();
  // Advance through statements that intern new candidate indexes.
  run.AdvanceTo(60);
  auto r = cp.Write(dir, run.tuner, run.db.pool(), MetaAt(60, 60));
  ASSERT_TRUE(r.ok());

  TestDb db2;
  Wfit restored(&db2.pool(), &db2.optimizer(), IndexSet{}, FastOptions());
  SnapshotLoadResult loaded =
      LoadLatestCheckpoint(dir, &restored, &db2.pool(), nullptr);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(db2.pool().size(), run.db.pool().size());
  EXPECT_GE(run.db.pool().size(), pool_before);
  EXPECT_EQ(restored.Recommendation(), run.tuner.Recommendation());
}

}  // namespace
}  // namespace wfit::persist
