// End-to-end mini-reproduction: a scaled-down benchmark trace, the offline
// fixed partition, and all tuners (WFA+/WFIT, WFIT-IND, BC) measured
// against OPT — the same pipeline the Fig. 8 bench runs at full scale.
#include <gtest/gtest.h>

#include "baselines/bc.h"
#include "baselines/opt.h"
#include "catalog/benchmark_schemas.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "harness/experiment.h"
#include "harness/offline_tuning.h"
#include "workload/benchmark_trace.h"

namespace wfit {
namespace {

using harness::ExperimentDriver;
using harness::ExperimentSeries;

struct MiniBench {
  /// Shared across tests: construction runs the offline tuning pipeline,
  /// which is the expensive part.
  static MiniBench& Shared() {
    static MiniBench bench;
    return bench;
  }

  MiniBench() {
    catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
    pool = std::make_unique<IndexPool>(&catalog);
    model = std::make_unique<CostModel>(&catalog, pool.get());
    optimizer = std::make_unique<WhatIfOptimizer>(model.get());

    TraceOptions trace_options;
    trace_options.num_phases = 4;
    trace_options.statements_per_phase = 40;
    trace_options.seed = 99;
    workload = ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));

    harness::OfflineTuningOptions offline;
    offline.idx_cnt = 12;
    offline.state_cnt = 128;
    fixed = harness::ComputeFixedPartition(workload, pool.get(),
                                           optimizer.get(), offline);
  }

  Catalog catalog;
  std::unique_ptr<IndexPool> pool;
  std::unique_ptr<CostModel> model;
  std::unique_ptr<WhatIfOptimizer> optimizer;
  Workload workload;
  harness::OfflinePartitionResult fixed;
};

TEST(IntegrationTest, OfflinePartitionIsWellFormed) {
  MiniBench& bench = MiniBench::Shared();
  EXPECT_GT(bench.fixed.universe_size, bench.fixed.candidates.size());
  EXPECT_LE(bench.fixed.candidates.size(), 12u);
  EXPECT_GT(bench.fixed.candidates.size(), 0u);
  EXPECT_LE(PartitionStates(bench.fixed.partition), 128u);
  IndexSet covered;
  for (const IndexSet& p : bench.fixed.partition) {
    covered = covered.Union(p);
  }
  EXPECT_EQ(covered, bench.fixed.candidates);
  EXPECT_EQ(bench.fixed.singleton_partition.size(),
            bench.fixed.candidates.size());
}

TEST(IntegrationTest, FullPipelineOrdering) {
  MiniBench& bench = MiniBench::Shared();
  ExperimentDriver driver(&bench.workload, bench.optimizer.get());

  OptimalPlanner planner(bench.pool.get(), bench.optimizer.get());
  OptimalSchedule opt =
      planner.Solve(bench.workload, bench.fixed.partition, IndexSet{});
  ExperimentSeries opt_series =
      driver.Replay(opt.configs, IndexSet{}, "OPT");

  WfaPlus wfit_fixed(bench.pool.get(), bench.optimizer.get(),
                     bench.fixed.partition, IndexSet{}, "WFIT");
  ExperimentSeries wfit_series = driver.Run(&wfit_fixed, IndexSet{}, {});

  WfaPlus wfit_ind(bench.pool.get(), bench.optimizer.get(),
                   bench.fixed.singleton_partition, IndexSet{}, "WFIT-IND");
  ExperimentSeries ind_series = driver.Run(&wfit_ind, IndexSet{}, {});

  BcTuner bc(bench.pool.get(), bench.optimizer.get(),
             bench.fixed.candidates, IndexSet{});
  ExperimentSeries bc_series = driver.Run(&bc, IndexSet{}, {});

  // OPT is optimal over this configuration space (the partition is built
  // from measured interactions, so cross-part effects are negligible).
  EXPECT_LE(opt_series.final_total, wfit_series.final_total * 1.02);
  EXPECT_LE(opt_series.final_total, ind_series.final_total * 1.02);
  EXPECT_LE(opt_series.final_total, bc_series.final_total * 1.02);

  // WFIT must land in OPT's ballpark (paper: > 90%; slack for the mini
  // trace) and must not lose to BC.
  EXPECT_GT(opt_series.final_total / wfit_series.final_total, 0.6);
  EXPECT_LE(wfit_series.final_total, bc_series.final_total * 1.10);
}

TEST(IntegrationTest, AutoWfitRunsTheWholeTrace) {
  MiniBench& bench = MiniBench::Shared();
  ExperimentDriver driver(&bench.workload, bench.optimizer.get());
  WfitOptions options;
  options.candidates.idx_cnt = 12;
  options.candidates.state_cnt = 128;
  options.candidates.creation_penalty_factor = 0.01;
  Wfit auto_tuner(bench.pool.get(), bench.optimizer.get(), IndexSet{},
                  options);
  ExperimentSeries series = driver.Run(&auto_tuner, IndexSet{}, {});
  EXPECT_EQ(series.cumulative.size(), bench.workload.size());
  EXPECT_GT(series.final_total, 0.0);
  EXPECT_GT(auto_tuner.RepartitionCount(), 0u);
  // The tuner must keep its self-imposed budgets.
  EXPECT_LE(auto_tuner.TotalStates(), 128u);
  size_t total_candidates = 0;
  for (const IndexSet& p : auto_tuner.partition()) {
    total_candidates += p.size();
  }
  EXPECT_LE(total_candidates, 12u);
}

TEST(IntegrationTest, GoodFeedbackNeverHurtsMuchBadFeedbackRecovers) {
  MiniBench& bench = MiniBench::Shared();
  ExperimentDriver driver(&bench.workload, bench.optimizer.get());
  OptimalPlanner planner(bench.pool.get(), bench.optimizer.get());
  OptimalSchedule opt =
      planner.Solve(bench.workload, bench.fixed.partition, IndexSet{});
  ExperimentSeries opt_series =
      driver.Replay(opt.configs, IndexSet{}, "OPT");

  auto run_with = [&](const std::vector<FeedbackEvent>& feedback,
                      const std::string& name) {
    WfaPlus tuner(bench.pool.get(), bench.optimizer.get(),
                  bench.fixed.partition, IndexSet{}, name);
    return driver.Run(&tuner, IndexSet{}, feedback);
  };

  ExperimentSeries none = run_with({}, "WFIT");
  ExperimentSeries good =
      run_with(GoodFeedback(opt, IndexSet{}), "GOOD");
  ExperimentSeries bad = run_with(BadFeedback(opt, IndexSet{}), "BAD");

  // Good votes should help (or at worst be neutral within noise).
  EXPECT_LE(good.final_total, none.final_total * 1.05);
  // Bad votes cost something but may not be catastrophic.
  EXPECT_GE(bad.final_total, good.final_total * 0.999);
  EXPECT_LE(opt_series.final_total, bad.final_total * 1.02);
  // Recovery: still within a small factor of optimal by the end.
  EXPECT_GT(opt_series.final_total / bad.final_total, 0.5);
}

}  // namespace
}  // namespace wfit
