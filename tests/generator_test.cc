#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "catalog/benchmark_schemas.h"
#include "workload/benchmark_trace.h"

namespace wfit {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator g1(&catalog, {}, 42);
  StatementGenerator g2(&catalog, {}, 42);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(g1.GenerateQuery("tpch").sql, g2.GenerateQuery("tpch").sql);
    EXPECT_EQ(g1.GenerateUpdate("tpcc").sql, g2.GenerateUpdate("tpcc").sql);
  }
}

TEST(GeneratorTest, QueriesStayWithinDataset) {
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator gen(&catalog, {}, 7);
  for (int i = 0; i < 50; ++i) {
    Statement q = gen.GenerateQuery("tpce");
    EXPECT_EQ(q.kind, StatementKind::kSelect);
    for (const StatementTable& t : q.tables) {
      EXPECT_EQ(catalog.table(t.table).dataset, "tpce");
    }
  }
}

TEST(GeneratorTest, QueriesHaveAtLeastOnePredicate) {
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator gen(&catalog, {}, 11);
  for (int i = 0; i < 50; ++i) {
    Statement q = gen.GenerateQuery("nref");
    size_t total_preds = 0;
    for (const StatementTable& t : q.tables) {
      total_preds += t.predicates.size();
    }
    EXPECT_GE(total_preds, 1u) << q.sql;
  }
}

TEST(GeneratorTest, JoinsAreConnectedAndBounded) {
  Catalog catalog = BuildBenchmarkCatalog();
  GeneratorOptions opts;
  opts.join_extend_prob = 1.0;  // force maximal join chains
  StatementGenerator gen(&catalog, opts, 13);
  for (int i = 0; i < 50; ++i) {
    Statement q = gen.GenerateQuery("tpch");
    EXPECT_LE(q.joins.size(), static_cast<size_t>(opts.max_joins));
    // #tables == #joins + 1 for a connected acyclic join chain.
    EXPECT_EQ(q.tables.size(), q.joins.size() + 1);
  }
}

TEST(GeneratorTest, UpdatesProduceAllThreeKinds) {
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator gen(&catalog, {}, 17);
  std::set<StatementKind> kinds;
  for (int i = 0; i < 200; ++i) {
    kinds.insert(gen.GenerateUpdate("tpch").kind);
  }
  EXPECT_TRUE(kinds.count(StatementKind::kUpdate));
  EXPECT_TRUE(kinds.count(StatementKind::kDelete));
  EXPECT_TRUE(kinds.count(StatementKind::kInsert));
  EXPECT_FALSE(kinds.count(StatementKind::kSelect));
}

TEST(GeneratorTest, UpdatesHaveLowSelectivity) {
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator gen(&catalog, {}, 19);
  for (int i = 0; i < 100; ++i) {
    Statement u = gen.GenerateUpdate("tpce");
    if (u.kind == StatementKind::kInsert) continue;
    double sel = Statement::CombinedSelectivity(u.tables[0]);
    EXPECT_LE(sel, 0.11) << u.sql;  // equality on enum columns can reach ~0.1
  }
}

TEST(GeneratorTest, GeneratedSqlRoundTripsThroughParser) {
  // Finish() already parses; this asserts the SQL text is non-empty and
  // carries the dataset name.
  Catalog catalog = BuildBenchmarkCatalog();
  StatementGenerator gen(&catalog, {}, 23);
  for (int i = 0; i < 20; ++i) {
    Statement q = gen.GenerateQuery("tpcc");
    EXPECT_NE(q.sql.find("tpcc."), std::string::npos) << q.sql;
  }
}

TEST(TraceTest, PhaseStructure) {
  Catalog catalog = BuildBenchmarkCatalog();
  TraceOptions opts;
  opts.num_phases = 4;
  opts.statements_per_phase = 50;
  std::vector<TraceEntry> trace = GenerateBenchmarkTrace(catalog, opts);
  ASSERT_EQ(trace.size(), 200u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].phase, static_cast<int>(i / 50));
  }
}

TEST(TraceTest, PhasesFocusOnTwoDatasets) {
  Catalog catalog = BuildBenchmarkCatalog();
  TraceOptions opts;
  opts.num_phases = 8;
  opts.statements_per_phase = 100;
  std::vector<TraceEntry> trace = GenerateBenchmarkTrace(catalog, opts);
  for (int phase = 0; phase < 8; ++phase) {
    std::set<std::string> datasets;
    int primary_count = 0;
    const std::string primary = BenchmarkDatasets()[phase % 4];
    for (const TraceEntry& e : trace) {
      if (e.phase != phase) continue;
      datasets.insert(e.dataset);
      if (e.dataset == primary) ++primary_count;
    }
    EXPECT_LE(datasets.size(), 2u);
    EXPECT_GT(primary_count, 50);  // focus_weight = 0.75 of 100
  }
}

TEST(TraceTest, UpdateFractionsVaryByPhase) {
  Catalog catalog = BuildBenchmarkCatalog();
  TraceOptions opts;
  opts.num_phases = 2;
  opts.statements_per_phase = 300;
  opts.update_fractions = {0.0, 0.5};
  std::vector<TraceEntry> trace = GenerateBenchmarkTrace(catalog, opts);
  int updates_phase0 = 0, updates_phase1 = 0;
  for (const TraceEntry& e : trace) {
    if (e.statement.IsUpdateStatement()) {
      (e.phase == 0 ? updates_phase0 : updates_phase1)++;
    }
  }
  EXPECT_EQ(updates_phase0, 0);
  EXPECT_NEAR(updates_phase1, 150, 45);
}

TEST(TraceTest, DeterministicInSeed) {
  Catalog catalog = BuildBenchmarkCatalog();
  TraceOptions opts;
  opts.num_phases = 2;
  opts.statements_per_phase = 30;
  auto t1 = GenerateBenchmarkTrace(catalog, opts);
  auto t2 = GenerateBenchmarkTrace(catalog, opts);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].statement.sql, t2[i].statement.sql);
  }
}

TEST(TraceTest, ToWorkloadStripsMetadata) {
  Catalog catalog = BuildBenchmarkCatalog();
  TraceOptions opts;
  opts.num_phases = 1;
  opts.statements_per_phase = 10;
  auto trace = GenerateBenchmarkTrace(catalog, opts);
  Workload w = ToWorkload(trace);
  ASSERT_EQ(w.size(), 10u);
  EXPECT_EQ(w[3].sql, trace[3].statement.sql);
}

}  // namespace
}  // namespace wfit
