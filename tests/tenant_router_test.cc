// The multi-tenant headline invariant: every tenant's recommendation
// trajectory through the router — under interleaved concurrent traffic,
// after idle eviction + re-admission, and after crash recovery from a
// multi-tenant checkpoint tree — is bit-for-bit identical to running that
// tenant alone on a dedicated TunerService. Plus the scheduler's
// starvation-freedom (deterministic round-robin proof via DrainOne) and
// the labelled metrics rollup.
#include "service/tenant_router.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/wfit.h"
#include "persist/tenant_tree.h"
#include "tests/test_util.h"

namespace wfit::service {
namespace {

namespace fs = std::filesystem;
using wfit::testing::TestDb;

WfitOptions FastOptions() {
  WfitOptions options;
  options.candidates.idx_cnt = 8;
  options.candidates.state_cnt = 64;
  options.candidates.hist_size = 50;
  options.candidates.creation_penalty_factor = 1e-6;
  return options;
}

/// Deterministic per-tenant workload: the shared shape set rotated by
/// `offset`, so tenants see different statement streams over their own
/// catalogs.
Workload BuildWorkload(TestDb& db, size_t n, size_t offset) {
  const char* shapes[] = {
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150",
      "SELECT count(*) FROM t1 WHERE b BETWEEN 100 AND 220",
      "SELECT count(*) FROM t1, t2 WHERE t1.k = t2.fk AND t1.a = 5",
      "SELECT count(*) FROM t2 WHERE x BETWEEN 10 AND 40",
      "UPDATE t1 SET d = 1 WHERE a = 77",
      "SELECT count(*) FROM t1 WHERE a BETWEEN 0 AND 150 AND c = 3",
      "SELECT count(*) FROM t3 WHERE v = 9",
      "UPDATE t2 SET y = 2 WHERE x = 17",
  };
  constexpr size_t kShapes = sizeof(shapes) / sizeof(shapes[0]);
  Workload w;
  for (size_t i = 0; i < n; ++i) {
    w.push_back(db.Bind(shapes[(i + offset) % kShapes]));
  }
  return w;
}

struct Vote {
  uint64_t after;
  IndexSet plus;
  IndexSet minus;
};

/// Vote targets interned in a fixed order so ids agree across "processes"
/// (fresh TestDb instances for the same tenant).
std::vector<IndexId> SeedIds(TestDb& db) {
  return {db.Ix("t1", {"a"}), db.Ix("t2", {"x"}), db.Ix("t1", {"b"})};
}

std::vector<Vote> MakeVotes(const std::vector<IndexId>& ids, size_t tenant) {
  // Different boundaries per tenant, so the interleave across tenants is
  // non-trivial; the last vote lands past the crash/eviction points below,
  // exercising carried / re-pinned votes.
  uint64_t base = 7 + 5 * tenant;
  return {
      {base, IndexSet{ids[tenant % 3]}, IndexSet{}},
      {base + 23, IndexSet{}, IndexSet{ids[(tenant + 1) % 3]}},
      {base + 51, IndexSet{ids[(tenant + 2) % 3]}, IndexSet{ids[tenant % 3]}},
  };
}

/// The dedicated single-tenant reference: a serial tuner fed the same
/// workload with votes applied right after their keyed statements.
std::vector<IndexSet> DedicatedHistory(size_t tenant, size_t n) {
  TestDb db;
  std::vector<IndexId> ids = SeedIds(db);
  Workload w = BuildWorkload(db, n, tenant);
  Wfit tuner(&db.pool(), &db.optimizer(), IndexSet{}, FastOptions());
  std::vector<Vote> votes = MakeVotes(ids, tenant);
  std::vector<IndexSet> history;
  for (size_t i = 0; i < n; ++i) {
    tuner.AnalyzeQuery(w[i]);
    for (const Vote& v : votes) {
      if (v.after == i) tuner.Feedback(v.plus, v.minus);
    }
    history.push_back(tuner.Recommendation());
  }
  return history;
}

std::string TenantName(size_t tenant) {
  return "db-" + std::to_string(tenant);
}

/// A routed environment of `n` tenants, each with its own TestDb. The
/// factory hands out Wfit instances over the tenant's private pool, so the
/// router's shards are fully independent — exactly one database per
/// tenant.
struct MultiDb {
  explicit MultiDb(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      dbs.push_back(std::make_unique<TestDb>());
      SeedIds(*dbs.back());  // fixed interning prefix per tenant
    }
  }

  TunerFactory Factory() {
    return [this](const std::string& id) {
      TestDb& db = *dbs[Index(id)];
      TenantTuner made;
      made.tuner = std::make_unique<Wfit>(&db.pool(), &db.optimizer(),
                                          IndexSet{}, FastOptions());
      made.pool = &db.pool();
      return made;
    };
  }

  static size_t Index(const std::string& id) {
    return static_cast<size_t>(std::stoul(id.substr(3)));
  }

  std::vector<std::unique_ptr<TestDb>> dbs;
};

std::string TempRoot(const std::string& tag) {
  std::string dir =
      (fs::path(::testing::TempDir()) /
       ("wfit_router_" + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

TEST(TenantRouterTest, InterleavedTrafficMatchesDedicatedRuns) {
  constexpr size_t kTenants = 3;
  constexpr size_t kStatements = 60;
  MultiDb env(kTenants);
  std::vector<Workload> workloads;
  for (size_t t = 0; t < kTenants; ++t) {
    workloads.push_back(BuildWorkload(*env.dbs[t], kStatements, t));
  }

  TenantRouterOptions options;
  options.shard.queue_capacity = 16;
  options.shard.max_batch = 5;
  options.shard.record_history = true;
  options.analysis_threads = 2;
  options.drain_threads = 2;
  TenantRouter router(env.Factory(), options);
  router.Start();

  // Votes registered before any traffic: the interleave is pinned by
  // sequence keys, not registration time.
  for (size_t t = 0; t < kTenants; ++t) {
    for (const Vote& v : MakeVotes(SeedIds(*env.dbs[t]), t)) {
      router.FeedbackAfter(TenantName(t), v.after, v.plus, v.minus);
    }
  }

  // 2 producers per tenant, each submitting a strided share of every
  // tenant's workload — fully interleaved multi-producer traffic.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (size_t seq = static_cast<size_t>(p); seq < kStatements;
           seq += 2) {
        for (size_t t = 0; t < kTenants; ++t) {
          ASSERT_TRUE(
              router.SubmitAt(TenantName(t), seq, workloads[t][seq]));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(t), kStatements));
  }
  router.Shutdown();

  for (size_t t = 0; t < kTenants; ++t) {
    std::vector<IndexSet> dedicated = DedicatedHistory(t, kStatements);
    std::vector<IndexSet> routed = router.History(TenantName(t));
    ASSERT_EQ(routed.size(), dedicated.size()) << "tenant " << t;
    for (size_t i = 0; i < dedicated.size(); ++i) {
      ASSERT_EQ(routed[i], dedicated[i])
          << "tenant " << t << " diverged at statement " << i;
    }
  }
}

TEST(TenantRouterTest, RoundRobinDrainingIsStarvationFree) {
  MultiDb env(3);
  const std::string hot = TenantName(0);
  const std::string b = TenantName(1);
  const std::string c = TenantName(2);
  Workload hot_w = BuildWorkload(*env.dbs[0], 60, 0);
  Workload b_w = BuildWorkload(*env.dbs[1], 10, 1);
  Workload c_w = BuildWorkload(*env.dbs[2], 10, 2);

  TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 4;
  options.drain_threads = 0;  // deterministic manual stepping
  TenantRouter router(env.Factory(), options);
  router.Start();

  // The hot tenant floods first; b and c trickle in afterwards.
  for (const Statement& q : hot_w) ASSERT_TRUE(router.Submit(hot, q));
  for (const Statement& q : b_w) ASSERT_TRUE(router.Submit(b, q));
  for (const Statement& q : c_w) ASSERT_TRUE(router.Submit(c, q));

  // One batch per turn, re-queue at the tail: strict round-robin while all
  // three have backlog. b and c (10 statements, batch 4) need 3 turns each
  // and must get them within the first 9 turns despite hot's 60-statement
  // backlog — the starvation-freedom proof.
  std::vector<std::string> turns;
  for (int i = 0; i < 9; ++i) turns.push_back(router.DrainOne());
  std::vector<std::string> expected = {hot, b, c, hot, b, c, hot, b, c};
  EXPECT_EQ(turns, expected);
  EXPECT_EQ(router.analyzed(b), 10u);
  EXPECT_EQ(router.analyzed(c), 10u);
  EXPECT_EQ(router.analyzed(hot), 12u) << "hot proceeded, bounded per turn";

  // Only the hot backlog remains; it drains to completion.
  while (!router.DrainOne().empty()) {
  }
  EXPECT_EQ(router.analyzed(hot), 60u);
  router.Shutdown();
}

TEST(TenantRouterTest, DeficitRoundRobinHonorsWeights) {
  MultiDb env(4);
  const std::string heavy = TenantName(0);   // weight 2.0: 8/turn
  const std::string light1 = TenantName(1);  // weight 1.0: 4/turn
  const std::string light2 = TenantName(2);  // weight 0.5: 2/turn
  const std::string light3 = TenantName(3);  // default (1.0): 4/turn
  Workload heavy_w = BuildWorkload(*env.dbs[0], 24, 0);
  Workload l1_w = BuildWorkload(*env.dbs[1], 8, 1);
  Workload l2_w = BuildWorkload(*env.dbs[2], 8, 2);
  Workload l3_w = BuildWorkload(*env.dbs[3], 8, 3);

  TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 4;
  options.drain_threads = 0;  // deterministic manual stepping
  options.tenant_qos[heavy] = TenantQos{.weight = 2.0};
  options.tenant_qos[light2] = TenantQos{.weight = 0.5};
  TenantRouter router(env.Factory(), options);
  router.Start();

  for (const Statement& q : heavy_w) ASSERT_TRUE(router.Submit(heavy, q));
  for (const Statement& q : l1_w) ASSERT_TRUE(router.Submit(light1, q));
  for (const Statement& q : l2_w) ASSERT_TRUE(router.Submit(light2, q));
  for (const Statement& q : l3_w) ASSERT_TRUE(router.Submit(light3, q));

  // Ring order is admission order. Per DRR turn a backlogged tenant
  // drains round(weight * max_batch) statements (split into max_batch
  // batches); a tenant that empties goes idle inside its turn and leaves
  // the ring. Expected drain order, with per-turn deficits computed by
  // hand:
  //   heavy  8, l1 4, l2 2, l3 4   (cycle 1: 8/4/2/4 analyzed)
  //   heavy  8, l1 4, l2 2, l3 4   (l1, l3 empty -> idle; cycle 2)
  //   heavy  8                     (heavy empty -> idle)
  //   l2 2, l2 2                   (l2 alone until its 8 are done)
  std::vector<std::string> turns;
  for (std::string t = router.DrainOne(); !t.empty(); t = router.DrainOne()) {
    turns.push_back(t);
  }
  std::vector<std::string> expected = {heavy, light1, light2, light3,
                                       heavy, light1, light2, light3,
                                       heavy, light2, light2};
  EXPECT_EQ(turns, expected);
  EXPECT_EQ(router.analyzed(heavy), 24u);
  EXPECT_EQ(router.analyzed(light1), 8u);
  EXPECT_EQ(router.analyzed(light2), 8u);
  EXPECT_EQ(router.analyzed(light3), 8u);

  RouterMetricsSnapshot m = router.Metrics();
  EXPECT_EQ(m.empty_turns, 0u) << "emptied tenants go idle in-turn";
  for (const TenantMetricsEntry& e : m.tenants) {
    if (e.id == heavy) EXPECT_DOUBLE_EQ(e.qos_weight, 2.0);
    if (e.id == light2) EXPECT_DOUBLE_EQ(e.qos_weight, 0.5);
    if (e.id == light1) EXPECT_DOUBLE_EQ(e.qos_weight, 1.0);
    EXPECT_DOUBLE_EQ(e.drr_deficit, 0.0) << e.id << " drained dry";
  }
  router.Shutdown();
}

TEST(TenantRouterTest, EvictionIsLosslessAndCarriesFutureVotes) {
  constexpr size_t kStatements = 60;
  constexpr size_t kEvictAt = 40;
  const std::string root = TempRoot("evict");
  MultiDb env(1);
  Workload w = BuildWorkload(*env.dbs[0], kStatements, 0);
  const std::string id = TenantName(0);

  TenantRouterOptions options;
  options.shard.queue_capacity = 64;
  options.shard.max_batch = 5;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = 1000;  // only eviction seals
  options.checkpoint_root = root;
  options.drain_threads = 0;
  TenantRouter router(env.Factory(), options);
  router.Start();

  for (const Vote& v : MakeVotes(SeedIds(*env.dbs[0]), 0)) {
    router.FeedbackAfter(id, v.after, v.plus, v.minus);
  }
  // A vote keyed past the eviction point: it must survive the eviction
  // un-applied and fire at its exact boundary in the next incarnation.
  std::vector<IndexId> ids = SeedIds(*env.dbs[0]);
  router.FeedbackAfter(id, kEvictAt + 9, IndexSet{ids[2]},
                       IndexSet{ids[0]});

  for (size_t i = 0; i < kEvictAt; ++i) {
    ASSERT_TRUE(router.Submit(id, w[i]));
  }
  while (!router.DrainOne().empty()) {
  }
  ASSERT_EQ(router.analyzed(id), kEvictAt);

  ASSERT_TRUE(router.Evict(id));
  EXPECT_TRUE(router.ResidentTenants().empty());
  EXPECT_FALSE(router.Evict(id)) << "already evicted";
  // The checkpoint-then-close left a recoverable tree on disk.
  EXPECT_EQ(router.PersistedTenants(), std::vector<std::string>{id});

  // Re-admission happens lazily on the next touch and resumes at the
  // checkpoint — a clean eviction replays nothing.
  for (size_t i = kEvictAt; i < kStatements; ++i) {
    ASSERT_TRUE(router.Submit(id, w[i]));
  }
  while (!router.DrainOne().empty()) {
  }
  ASSERT_EQ(router.analyzed(id), kStatements);
  RecoveryStats recovery = router.LastRecovery(id);
  EXPECT_TRUE(recovery.snapshot_loaded);
  EXPECT_EQ(recovery.snapshot_analyzed, kEvictAt);
  EXPECT_EQ(recovery.replayed_statements, 0u);
  router.Shutdown();

  // Full trajectory across the eviction == the dedicated uninterrupted
  // run, including the carried vote at kEvictAt + 9.
  TestDb ref_db;
  std::vector<IndexId> ref_ids = SeedIds(ref_db);
  Workload ref_w = BuildWorkload(ref_db, kStatements, 0);
  Wfit ref(&ref_db.pool(), &ref_db.optimizer(), IndexSet{}, FastOptions());
  std::vector<Vote> votes = MakeVotes(ref_ids, 0);
  votes.push_back(
      {kEvictAt + 9, IndexSet{ref_ids[2]}, IndexSet{ref_ids[0]}});
  std::vector<IndexSet> dedicated;
  for (size_t i = 0; i < kStatements; ++i) {
    ref.AnalyzeQuery(ref_w[i]);
    for (const Vote& v : votes) {
      if (v.after == i) ref.Feedback(v.plus, v.minus);
    }
    dedicated.push_back(ref.Recommendation());
  }
  std::vector<IndexSet> routed = router.History(id);
  ASSERT_EQ(routed.size(), dedicated.size());
  for (size_t i = 0; i < dedicated.size(); ++i) {
    ASSERT_EQ(routed[i], dedicated[i])
        << "trajectory diverged across eviction at statement " << i;
  }

  RouterMetricsSnapshot metrics = router.Metrics();
  EXPECT_EQ(metrics.evictions, 1u);
  EXPECT_EQ(metrics.admissions, 2u);
  ASSERT_EQ(metrics.tenants.size(), 1u);
  EXPECT_EQ(metrics.tenants[0].evictions, 1u);
  // Counters merged across incarnations stay complete: every statement is
  // accounted for exactly once.
  EXPECT_EQ(metrics.tenants[0].service.statements_analyzed, kStatements);
}

TEST(TenantRouterTest, ResidencyBoundEvictsLeastRecentlyActive) {
  const std::string root = TempRoot("lru");
  MultiDb env(3);
  std::vector<Workload> workloads;
  for (size_t t = 0; t < 3; ++t) {
    workloads.push_back(BuildWorkload(*env.dbs[t], 8, t));
  }

  TenantRouterOptions options;
  options.shard.queue_capacity = 16;
  options.checkpoint_root = root;
  options.drain_threads = 0;
  options.max_resident_tenants = 2;
  TenantRouter router(env.Factory(), options);
  router.Start();

  for (const Statement& q : workloads[0]) {
    ASSERT_TRUE(router.Submit(TenantName(0), q));
  }
  while (!router.DrainOne().empty()) {
  }
  for (const Statement& q : workloads[1]) {
    ASSERT_TRUE(router.Submit(TenantName(1), q));
  }
  while (!router.DrainOne().empty()) {
  }
  ASSERT_EQ(router.ResidentTenants().size(), 2u);

  // Admitting a third tenant exceeds the bound: the least recently active
  // idle shard (tenant 0) is checkpointed and closed.
  ASSERT_NE(router.Recommendation(TenantName(2)), nullptr);
  std::vector<std::string> resident = router.ResidentTenants();
  EXPECT_EQ(resident,
            (std::vector<std::string>{TenantName(1), TenantName(2)}));
  EXPECT_EQ(router.Metrics().evictions, 1u);

  // The evicted tenant transparently re-admits with its state intact
  // (evicting someone else to stay under the bound).
  EXPECT_EQ(router.analyzed(TenantName(0)), 8u);
  EXPECT_LE(router.ResidentTenants().size(), 2u);
  router.Shutdown();
}

TEST(TenantRouterTest, CrashRecoveryOfMultiTenantCheckpointTree) {
  constexpr size_t kTenants = 3;
  constexpr size_t kTotal = 80;
  constexpr size_t kCrashAt = 53;
  const std::string root = TempRoot("crash");

  TenantRouterOptions options;
  options.shard.queue_capacity = 32;
  options.shard.max_batch = 5;
  options.shard.record_history = true;
  options.shard.checkpoint_every_statements = 20;
  // Simulate the crash: no shutdown snapshot, so recovery must replay each
  // tenant's journal suffix past its last periodic snapshot.
  options.shard.checkpoint_on_shutdown = false;
  options.checkpoint_root = root;
  options.drain_threads = 2;

  // "Process 1": every tenant analyzes its first kCrashAt statements, then
  // the process dies (no final checkpoint).
  {
    MultiDb env(kTenants);
    TenantRouter router(env.Factory(), options);
    router.Start();
    for (size_t t = 0; t < kTenants; ++t) {
      for (const Vote& v : MakeVotes(SeedIds(*env.dbs[t]), t)) {
        if (v.after < kCrashAt) {
          router.FeedbackAfter(TenantName(t), v.after, v.plus, v.minus);
        }
      }
      Workload w = BuildWorkload(*env.dbs[t], kCrashAt, t);
      for (size_t i = 0; i < kCrashAt; ++i) {
        ASSERT_TRUE(router.SubmitAt(TenantName(t), i, w[i]));
      }
    }
    for (size_t t = 0; t < kTenants; ++t) {
      ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(t), kCrashAt));
    }
    router.Shutdown();
  }

  // "Process 2": fresh everything; each tenant recovers from its own
  // subtree, producers replay the whole workload (recovered sequences are
  // dropped — exactly-once per tenant), votes re-pin at boundaries the
  // recovered state has not passed.
  MultiDb env(kTenants);
  TenantRouter router(env.Factory(), options);
  router.Start();
  EXPECT_EQ(router.PersistedTenants().size(), kTenants);
  std::vector<RecoveryStats> recoveries(kTenants);
  for (size_t t = 0; t < kTenants; ++t) {
    recoveries[t] = router.LastRecovery(TenantName(t));  // admits + recovers
    EXPECT_TRUE(recoveries[t].snapshot_loaded) << "tenant " << t;
    EXPECT_EQ(recoveries[t].analyzed, kCrashAt) << "tenant " << t;
    for (const Vote& v : MakeVotes(SeedIds(*env.dbs[t]), t)) {
      if (v.after >= kCrashAt) {
        router.FeedbackAfter(TenantName(t), v.after, v.plus, v.minus);
      }
    }
  }
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kTenants; ++t) {
    producers.emplace_back([&, t] {
      Workload w = BuildWorkload(*env.dbs[t], kTotal, t);
      for (size_t i = 0; i < kTotal; ++i) {
        router.SubmitAt(TenantName(t), i, w[i]);
      }
    });
  }
  for (auto& p : producers) p.join();
  for (size_t t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(t), kTotal));
  }
  router.Shutdown();

  for (size_t t = 0; t < kTenants; ++t) {
    std::vector<IndexSet> dedicated = DedicatedHistory(t, kTotal);
    std::vector<IndexSet> recovered = router.History(TenantName(t));
    // The recovered run records history from its tenant's snapshot point.
    const uint64_t start = recoveries[t].snapshot_analyzed;
    ASSERT_EQ(recovered.size(), kTotal - start) << "tenant " << t;
    for (size_t i = 0; i < recovered.size(); ++i) {
      ASSERT_EQ(recovered[i], dedicated[start + i])
          << "tenant " << t << " diverged at statement " << (start + i);
    }
  }
}

TEST(TenantRouterTest, LabelledMetricsRollUpAcrossTenants) {
  MultiDb env(2);
  TenantRouterOptions options;
  options.shard.queue_capacity = 16;
  options.drain_threads = 1;
  TenantRouter router(env.Factory(), options);
  router.Start();
  Workload w0 = BuildWorkload(*env.dbs[0], 12, 0);
  Workload w1 = BuildWorkload(*env.dbs[1], 7, 1);
  for (const Statement& q : w0) ASSERT_TRUE(router.Submit(TenantName(0), q));
  for (const Statement& q : w1) ASSERT_TRUE(router.Submit(TenantName(1), q));
  ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(0), 12));
  ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(1), 7));
  router.Shutdown();

  RouterMetricsSnapshot m = router.Metrics();
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants[0].service.statements_analyzed, 12u);
  EXPECT_EQ(m.tenants[1].service.statements_analyzed, 7u);
  EXPECT_EQ(m.aggregate.statements_analyzed, 19u);
  EXPECT_EQ(m.aggregate.latency_count(), 19u);
  EXPECT_EQ(m.tenants_known, 2u);
  EXPECT_EQ(m.tenants_resident, 2u);

  std::string text = router.ExportText();
  EXPECT_NE(text.find("wfit_tenant_stmts_total{tenant=\"db-0\"} 12"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wfit_tenant_stmts_total{tenant=\"db-1\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("wfit_service_statements_analyzed_total 19"),
            std::string::npos);
  EXPECT_NE(text.find("wfit_router_tenants_resident 2"), std::string::npos);
}

TEST(TenantRouterTest, ShutdownFlushesCarriedVotesOfEvictedTenants) {
  const std::string root = TempRoot("flush");
  MultiDb env(1);
  const std::string id = TenantName(0);
  Workload w = BuildWorkload(*env.dbs[0], 10, 0);
  std::vector<IndexId> ids = SeedIds(*env.dbs[0]);

  TenantRouterOptions options;
  options.shard.queue_capacity = 16;
  options.checkpoint_root = root;
  options.drain_threads = 0;
  TenantRouter router(env.Factory(), options);
  router.Start();
  for (const Statement& q : w) ASSERT_TRUE(router.Submit(id, q));
  while (!router.DrainOne().empty()) {
  }
  // A vote keyed far past the stream, then eviction: the vote rides along
  // as carried state. Shutdown must still apply it — a dedicated
  // TunerService's Shutdown applies ALL pending feedback.
  router.FeedbackAfter(id, 50, IndexSet{ids[0]}, IndexSet{ids[1]});
  ASSERT_TRUE(router.Evict(id));
  router.Shutdown();
  RouterMetricsSnapshot m = router.Metrics();
  ASSERT_EQ(m.tenants.size(), 1u);
  EXPECT_EQ(m.tenants[0].service.feedback_applied, 1u)
      << "carried vote was dropped at shutdown";

  // The dedicated-service reference for the final configuration.
  TestDb ref_db;
  std::vector<IndexId> ref_ids = SeedIds(ref_db);
  Workload ref_w = BuildWorkload(ref_db, 10, 0);
  Wfit ref(&ref_db.pool(), &ref_db.optimizer(), IndexSet{}, FastOptions());
  for (const Statement& q : ref_w) ref.AnalyzeQuery(q);
  ref.Feedback(IndexSet{ref_ids[0]}, IndexSet{ref_ids[1]});
  EXPECT_EQ(router.Recommendation(id)->configuration, ref.Recommendation());
}

TEST(TenantRouterTest, RoutedOpsAfterShutdownFailFast) {
  MultiDb env(2);
  TenantRouterOptions options;
  options.drain_threads = 1;
  TenantRouter router(env.Factory(), options);
  router.Start();
  Workload w = BuildWorkload(*env.dbs[0], 4, 0);
  for (const Statement& q : w) ASSERT_TRUE(router.Submit(TenantName(0), q));
  ASSERT_TRUE(router.WaitUntilAnalyzed(TenantName(0), 4));
  router.Shutdown();
  // Known resident tenants stay readable...
  EXPECT_NE(router.Recommendation(TenantName(0)), nullptr);
  EXPECT_EQ(router.analyzed(TenantName(0)), 4u);
  // ...but nothing can be admitted or submitted anymore — and a waiter on
  // a never-admitted tenant must fail fast, not hang.
  EXPECT_FALSE(router.Submit(TenantName(0), w[0]));
  EXPECT_FALSE(router.Submit(TenantName(1), w[0]));
  EXPECT_EQ(router.Recommendation(TenantName(1)), nullptr);
  EXPECT_FALSE(router.WaitUntilAnalyzed(TenantName(1), 1));
  EXPECT_EQ(router.analyzed(TenantName(1)), 0u);
}

TEST(TenantRouterTest, TenantDirEncodingIsSafeAndReversible) {
  for (const std::string& id :
       {std::string("plain"), std::string("Tenant_0.9-x"), std::string(""),
        std::string("."), std::string(".."), std::string("a/b\\c"),
        std::string("sp ace%41\"quote\nnl")}) {
    std::string dir = persist::EncodeTenantDir(id);
    EXPECT_EQ(persist::DecodeTenantDir(dir), id) << "id=" << id;
    EXPECT_EQ(dir.find('/'), std::string::npos);
    EXPECT_NE(dir, ".");
    EXPECT_NE(dir, "..");
    EXPECT_FALSE(dir.empty());
  }
  // Distinct ids must map to distinct directories (the '%' escape).
  EXPECT_NE(persist::EncodeTenantDir("a%41"), persist::EncodeTenantDir("aA"));
}

}  // namespace
}  // namespace wfit::service
