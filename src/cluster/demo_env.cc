#include "cluster/demo_env.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>

namespace wfit::cluster {

DemoVote VoteForStage(size_t stage, const std::vector<IndexId>& candidates) {
  DemoVote v;
  v.plus.Add(candidates[stage % candidates.size()]);
  v.minus.Add(candidates[(stage + 1) % candidates.size()]);
  return v;
}

TenantEnv::TenantEnv(size_t tenant, size_t statements) {
  catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
  pool = std::make_unique<IndexPool>(&catalog);
  cost_model = std::make_unique<CostModel>(&catalog, pool.get());
  optimizer = std::make_unique<WhatIfOptimizer>(cost_model.get());
  TraceOptions trace_options;
  trace_options.seed += 31 * static_cast<uint64_t>(tenant);
  trace_options.num_phases = 4;
  trace_options.statements_per_phase = (statements + 3) / 4;
  workload = ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));
  workload.resize(statements);
  // Vote candidates interned before anything else, in a fixed order, so
  // their ids agree between every process that builds this tenant.
  auto intern = [&](const char* table, std::vector<const char*> cols) {
    IndexDef def;
    def.table = *catalog.FindTable(table);
    for (const char* c : cols) {
      def.columns.push_back(*catalog.FindColumn(def.table, c));
    }
    return pool->Intern(def);
  };
  vote_candidates = {
      intern("tpch.lineitem", {"l_shipdate"}),
      intern("tpch.lineitem", {"l_partkey"}),
      intern("tpch.orders", {"o_orderdate"}),
  };
}

size_t DemoFleetEnv::TenantIndex(const std::string& id) {
  return static_cast<size_t>(
      std::strtoull(id.substr(7).c_str(), nullptr, 10));
}

TenantEnv& DemoFleetEnv::Env(size_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = envs_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TenantEnv>(tenant, statements_);
  }
  return *slot;
}

service::TunerFactory DemoFleetEnv::MakeTunerFactory() {
  return [this](const std::string& id) {
    TenantEnv& env = Env(TenantIndex(id));
    WfitOptions wfit_options;
    wfit_options.candidates.idx_cnt = 16;
    wfit_options.candidates.state_cnt = 256;
    service::TenantTuner made;
    made.tuner = std::make_unique<Wfit>(env.pool.get(), env.optimizer.get(),
                                        IndexSet{}, wfit_options);
    made.pool = env.pool.get();
    return made;
  };
}

service::VoteRepinner DemoFleetEnv::MakeRepinner() {
  return [this](const std::string& id,
                const service::RecoveryStats& recovery) {
    return PinnedVotesFor(TenantIndex(id), recovery.analyzed);
  };
}

std::vector<service::PinnedVote> DemoFleetEnv::PinnedVotesFor(
    size_t tenant, uint64_t from_seq) {
  TenantEnv& env = Env(tenant);
  std::vector<service::PinnedVote> votes;
  for (size_t stage_start = kDemoStage; stage_start < env.workload.size();
       stage_start += kDemoStage) {
    const uint64_t vote_at = stage_start + kDemoVoteOffset - 1;
    if (from_seq <= vote_at && vote_at + 1 < env.workload.size()) {
      DemoVote vote = VoteForStage(stage_start / kDemoStage + tenant,
                                   env.vote_candidates);
      votes.push_back({vote_at, vote.plus, vote.minus});
    }
  }
  return votes;
}

int WriteAndVerifyTrajectory(const std::vector<IndexSet>& history,
                             uint64_t history_start,
                             const std::string& out_path,
                             const std::string& ref_path,
                             const std::string& label) {
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    for (size_t i = 0; i < history.size(); ++i) {
      out << (history_start + i) << " " << history[i].ToString() << "\n";
    }
    std::cout << "[trajectory] " << label << "wrote " << history.size()
              << " entries to " << out_path << "\n";
  }
  if (ref_path.empty()) return 0;
  std::ifstream ref(ref_path);
  if (!ref) {
    std::cerr << "cannot read reference " << ref_path << "\n";
    return 1;
  }
  std::unordered_map<uint64_t, std::string> expected;
  std::string line;
  while (std::getline(ref, line)) {
    std::istringstream is(line);
    uint64_t seq = 0;
    is >> seq;
    std::string rest;
    std::getline(is, rest);
    expected[seq] = rest;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const uint64_t seq = history_start + i;
    auto it = expected.find(seq);
    std::string got = " ";
    got += history[i].ToString();
    if (it == expected.end() || it->second != got) {
      if (++mismatches <= 5) {
        std::cerr << "[verify] " << label << "statement " << seq << ": got"
                  << got << ", reference"
                  << (it == expected.end() ? std::string(" <missing>")
                                           : it->second)
                  << "\n";
      }
    }
  }
  if (mismatches > 0) {
    std::cerr << "[verify] " << label << "FAILED: " << mismatches << " of "
              << history.size()
              << " recommendations diverge from the reference\n";
    return 2;
  }
  std::cout << "[verify] " << label << "OK: " << history.size()
            << " recommendations match the reference trajectory"
            << " (statements " << history_start << ".."
            << (history_start + history.size()) << ")\n";
  return 0;
}

}  // namespace wfit::cluster
