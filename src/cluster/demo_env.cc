#include "cluster/demo_env.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_map>

namespace wfit::cluster {

DemoVote VoteForStage(size_t stage, const std::vector<IndexId>& candidates) {
  DemoVote v;
  v.plus.Add(candidates[stage % candidates.size()]);
  v.minus.Add(candidates[(stage + 1) % candidates.size()]);
  return v;
}

TenantEnv::TenantEnv(size_t tenant, size_t statements) {
  catalog = BuildBenchmarkCatalog(BenchmarkScale{0.2});
  pool = std::make_unique<IndexPool>(&catalog);
  cost_model = std::make_unique<CostModel>(&catalog, pool.get());
  optimizer = std::make_unique<WhatIfOptimizer>(cost_model.get());
  TraceOptions trace_options;
  trace_options.seed += 31 * static_cast<uint64_t>(tenant);
  trace_options.num_phases = 4;
  trace_options.statements_per_phase = (statements + 3) / 4;
  workload = ToWorkload(GenerateBenchmarkTrace(catalog, trace_options));
  workload.resize(statements);
  // Vote candidates interned before anything else, in a fixed order, so
  // their ids agree between every process that builds this tenant.
  auto intern = [&](const char* table, std::vector<const char*> cols) {
    IndexDef def;
    def.table = *catalog.FindTable(table);
    for (const char* c : cols) {
      def.columns.push_back(*catalog.FindColumn(def.table, c));
    }
    return pool->Intern(def);
  };
  vote_candidates = {
      intern("tpch.lineitem", {"l_shipdate"}),
      intern("tpch.lineitem", {"l_partkey"}),
      intern("tpch.orders", {"o_orderdate"}),
  };
}

size_t DemoFleetEnv::TenantIndex(const std::string& id) {
  return static_cast<size_t>(
      std::strtoull(id.substr(7).c_str(), nullptr, 10));
}

TenantEnv& DemoFleetEnv::Env(size_t tenant) {
  return EnvScoped(0, tenant);
}

TenantEnv& DemoFleetEnv::EnvScoped(size_t scope, size_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = envs_[{scope, tenant}];
  if (slot == nullptr) {
    slot = std::make_unique<TenantEnv>(tenant, statements_);
  }
  return *slot;
}

service::TunerFactory DemoFleetEnv::MakeTunerFactory() {
  size_t scope = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    scope = next_scope_++;
  }
  return [this, scope](const std::string& id) {
    TenantEnv& env = EnvScoped(scope, TenantIndex(id));
    WfitOptions wfit_options;
    wfit_options.candidates.idx_cnt = 16;
    wfit_options.candidates.state_cnt = 256;
    service::TenantTuner made;
    made.tuner = std::make_unique<Wfit>(env.pool.get(), env.optimizer.get(),
                                        IndexSet{}, wfit_options);
    made.pool = env.pool.get();
    return made;
  };
}

service::VoteRepinner DemoFleetEnv::MakeRepinner() {
  return [this](const std::string& id,
                const service::RecoveryStats& recovery) {
    return PinnedVotesFor(TenantIndex(id), recovery.analyzed);
  };
}

std::vector<service::PinnedVote> DemoFleetEnv::PinnedVotesFor(
    size_t tenant, uint64_t from_seq) {
  TenantEnv& env = Env(tenant);
  std::vector<service::PinnedVote> votes;
  for (size_t stage_start = kDemoStage; stage_start < env.workload.size();
       stage_start += kDemoStage) {
    const uint64_t vote_at = stage_start + kDemoVoteOffset - 1;
    if (from_seq <= vote_at && vote_at + 1 < env.workload.size()) {
      DemoVote vote = VoteForStage(stage_start / kDemoStage + tenant,
                                   env.vote_candidates);
      votes.push_back({vote_at, vote.plus, vote.minus});
    }
  }
  return votes;
}

namespace {

/// Deterministic nonzero trace id for statement `pos` of `tenant`. A
/// crash-rewind resubmission reuses the id, so the retried RPC's spans
/// join the original statement's trace instead of starting a fresh one.
uint64_t SubmitTraceId(const std::string& tenant, uint64_t pos) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the tenant name
  for (char c : tenant) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  }
  h ^= pos + 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;  // SplitMix64 finalizer
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h | 1;  // zero means "no trace" on the wire
}

}  // namespace

bool ReplayTenantWorkload(ClusterClient& client, DemoFleetEnv& env,
                          size_t tenant, bool register_votes,
                          int overall_deadline_ms) {
  const std::string id = DemoFleetEnv::TenantName(tenant);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(overall_deadline_ms);
  auto expired = [&] { return std::chrono::steady_clock::now() >= deadline; };
  const Workload& workload = env.Env(tenant).workload;
  const size_t total = workload.size();

  if (register_votes) {
    for (const service::PinnedVote& vote :
         env.PinnedVotesFor(tenant, 0)) {
      for (;;) {
        if (expired()) return false;
        net::Request req;
        req.type = net::MsgType::kFeedbackAfter;
        req.seq = vote.after_seq;
        req.f_plus = vote.f_plus;
        req.f_minus = vote.f_minus;
        auto resp = client.Call(id, std::move(req));
        if (resp.ok() && resp->kind == net::RespKind::kOk) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
  }

  // The tenant's analyzed watermark, or -1 while the fleet is
  // unreachable (mid-takeover).
  auto analyzed_now = [&]() -> int64_t {
    net::Request probe;
    probe.type = net::MsgType::kGetAnalyzed;
    auto resp = client.Call(id, probe);
    if (!resp.ok() || resp->kind != net::RespKind::kOk) return -1;
    return static_cast<int64_t>(resp->analyzed);
  };

  size_t pos = 0;
  int64_t last_analyzed = -1;
  auto last_progress = std::chrono::steady_clock::now();
  constexpr auto kStall = std::chrono::milliseconds(500);
  while (!expired()) {
    if (pos < total) {
      net::Request req;
      req.type = net::MsgType::kSubmitAt;
      req.seq = pos;
      req.has_statement = true;
      req.statement = workload[pos];
      // Root the distributed trace at the submitting client: the node's
      // srv.submit_at span and the analysis spans of this statement all
      // inherit this id through the wire context.
      req.trace_id = SubmitTraceId(id, pos);
      req.parent_span = 0;
      auto resp = client.Call(id, std::move(req));
      if (resp.ok() && resp->kind == net::RespKind::kOk) {
        ++pos;
        continue;
      }
      // Unreachable or rejected: the owner may have just died, or the
      // adopted replacement recovered to a watermark below `pos` and its
      // ring cannot accept a sequence that far ahead. Fall through to
      // the stall logic, which rewinds to the recovered watermark.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const int64_t analyzed = analyzed_now();
    if (analyzed >= static_cast<int64_t>(total)) return true;
    const auto now = std::chrono::steady_clock::now();
    if (analyzed > last_analyzed) {
      last_analyzed = analyzed;
      last_progress = now;
    } else if (analyzed >= 0 && now - last_progress >= kStall) {
      // No analysis progress: statements the dead node accepted but
      // never journaled are gone. Resubmit from the recovered watermark;
      // exactly-once dedup absorbs the already-covered prefix.
      if (static_cast<size_t>(analyzed) < pos) {
        pos = static_cast<size_t>(analyzed);
      }
      last_progress = now;
    }
    if (pos >= total) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return false;
}

int WriteAndVerifyTrajectory(const std::vector<IndexSet>& history,
                             uint64_t history_start,
                             const std::string& out_path,
                             const std::string& ref_path,
                             const std::string& label) {
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    for (size_t i = 0; i < history.size(); ++i) {
      out << (history_start + i) << " " << history[i].ToString() << "\n";
    }
    std::cout << "[trajectory] " << label << "wrote " << history.size()
              << " entries to " << out_path << "\n";
  }
  if (ref_path.empty()) return 0;
  std::ifstream ref(ref_path);
  if (!ref) {
    std::cerr << "cannot read reference " << ref_path << "\n";
    return 1;
  }
  std::unordered_map<uint64_t, std::string> expected;
  std::string line;
  while (std::getline(ref, line)) {
    std::istringstream is(line);
    uint64_t seq = 0;
    is >> seq;
    std::string rest;
    std::getline(is, rest);
    expected[seq] = rest;
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const uint64_t seq = history_start + i;
    auto it = expected.find(seq);
    std::string got = " ";
    got += history[i].ToString();
    if (it == expected.end() || it->second != got) {
      if (++mismatches <= 5) {
        std::cerr << "[verify] " << label << "statement " << seq << ": got"
                  << got << ", reference"
                  << (it == expected.end() ? std::string(" <missing>")
                                           : it->second)
                  << "\n";
      }
    }
  }
  if (mismatches > 0) {
    std::cerr << "[verify] " << label << "FAILED: " << mismatches << " of "
              << history.size()
              << " recommendations diverge from the reference\n";
    return 2;
  }
  std::cout << "[verify] " << label << "OK: " << history.size()
            << " recommendations match the reference trajectory"
            << " (statements " << history_start << ".."
            << (history_start + history.size()) << ")\n";
  return 0;
}

}  // namespace wfit::cluster
