#include "cluster/node.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "net/client.h"
#include "obs/health.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "persist/tenant_tree.h"

namespace wfit::cluster {

namespace fs = std::filesystem;
using net::MsgType;
using net::Request;
using net::RespKind;
using net::Response;

namespace {

/// RPCs that run checkpoint I/O or block on shard drains; everything
/// else must stay on the event loop.
bool IsSlowType(MsgType type) {
  return type == MsgType::kMigrate || type == MsgType::kMigrateIn ||
         type == MsgType::kDrain || type == MsgType::kDecommission ||
         type == MsgType::kDumpTrace;
}

void NodeCounter(std::ostream& os, const char* name, uint64_t v,
                 const char* help) {
  os << "# HELP wfit_node_" << name << " " << help << "\n"
     << "# TYPE wfit_node_" << name << " counter\n"
     << "wfit_node_" << name << " " << v << "\n";
}

}  // namespace

TunerNode::TunerNode(service::TunerFactory factory, TunerNodeOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
  WFIT_CHECK(!options_.node_id.empty(), "TunerNode requires a node id");
  config_ = options_.config;
  config_.Normalize();
  WFIT_CHECK(config_.FindNode(options_.node_id) != nullptr,
             "TunerNode: node id is not in the cluster config");
  if (!options_.fleet_root.empty()) {
    if (options_.router.checkpoint_root.empty()) {
      options_.router.checkpoint_root =
          options_.fleet_root + "/" + options_.node_id;
    }
    options_.membership.fleet_root = options_.fleet_root;
  }
}

TunerNode::~TunerNode() { Shutdown(); }

Status TunerNode::Start() {
  WFIT_CHECK(!started_, "TunerNode::Start called twice");
  started_ = true;
  router_ = std::make_unique<service::TenantRouter>(factory_,
                                                    options_.router);
  router_->Start();
  net::ServerOptions server_options;
  server_options.host = options_.host;
  server_options.port = options_.port;
  server_options.max_admin_queue = options_.max_admin_queue;
  server_ = std::make_unique<net::Server>(
      [this](const Request& req) { return HandleFast(req); },
      [this](const Request& req) { return HandleSlow(req); },
      IsSlowType, server_options);
  WFIT_RETURN_IF_ERROR(server_->Start());
  {
    // An ephemeral bind (port 0) only becomes addressable now; patch our
    // own config entry so redirects and encoded configs carry it.
    std::lock_guard<std::mutex> lock(config_mu_);
    for (NodeInfo& n : config_.nodes) {
      if (n.id == options_.node_id && n.port == 0) n.port = server_->port();
    }
  }
  if (options_.enable_membership) {
    membership_ = std::make_unique<Membership>(this, options_.membership);
    membership_->Start();
  }
  return Status::Ok();
}

void TunerNode::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  // Membership first (stop probing and orchestrating against a node
  // that's tearing itself down), then the server so no new requests race
  // the router teardown; the router shutdown then takes every shard's
  // final checkpoint + journal seal.
  if (membership_ != nullptr) membership_->Shutdown();
  server_->Shutdown();
  router_->Shutdown();
}

ClusterConfig TunerNode::Config() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return config_;
}

void TunerNode::InstallConfig(ClusterConfig config) {
  std::map<std::string, service::TenantQos> qos_updates;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    if (config.version <= config_.version) return;
    config_ = std::move(config);
    qos_updates = config_.tenant_qos;
  }
  // QoS classes ride the config so every node schedules a tenant the
  // same way wherever it lands; applied outside config_mu_ (the router
  // has its own lock and never calls back into the node).
  for (const auto& [tenant, qos] : qos_updates) {
    router_->SetTenantQos(tenant, qos);
  }
}

bool TunerNode::CheckOwnership(const std::string& tenant,
                               Response* redirect) {
  std::lock_guard<std::mutex> lock(config_mu_);
  const NodeInfo* owner = OwnerOf(config_, tenant);
  if (owner == nullptr) {
    *redirect = net::ErrResp(
        Status::FailedPrecondition("cluster config has no nodes"));
    return false;
  }
  if (owner->id == options_.node_id) return true;
  redirect->kind = RespKind::kNotLeader;
  redirect->owner_id = owner->id;
  redirect->owner_host = owner->host;
  redirect->owner_port = owner->port;
  redirect->config_version = config_.version;
  redirects_sent_.fetch_add(1);
  return false;
}

std::string TunerNode::ScrapeText() {
  std::ostringstream os;
  os << router_->ExportText();
  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    version = config_.version;
  }
  os << "# HELP wfit_node_config_version Cluster config version this node"
        " acts on\n"
     << "# TYPE wfit_node_config_version gauge\n"
     << "wfit_node_config_version " << version << "\n";
  NodeCounter(os, "requests_total", server_->requests_served(),
              "RPC requests answered by this node");
  NodeCounter(os, "redirects_total", redirects_sent_.load(),
              "NotLeaderForTenant redirects sent");
  NodeCounter(os, "migrations_out_total", migrations_out_.load(),
              "Tenants handed off to another node");
  NodeCounter(os, "migrations_in_total", migrations_in_.load(),
              "Tenants received from another node");
  os << "# HELP wfit_node_admin_queue_depth Admin (slow-path) jobs queued\n"
     << "# TYPE wfit_node_admin_queue_depth gauge\n"
     << "wfit_node_admin_queue_depth " << server_->admin_queue_depth()
     << "\n";
  NodeCounter(os, "admin_shed_total", server_->admin_shed_total(),
              "Admin RPCs shed with kBusy (queue at capacity)");
  {
    const obs::TraceCounters tc = obs::CollectTraceCounters();
    os << "# HELP wfit_node_tracing_enabled 1 when span recording is on\n"
       << "# TYPE wfit_node_tracing_enabled gauge\n"
       << "wfit_node_tracing_enabled " << (obs::TracingEnabled() ? 1 : 0)
       << "\n";
    NodeCounter(os, "trace_spans_total", tc.recorded,
                "Spans recorded into this node's trace rings");
    NodeCounter(os, "trace_dropped_total", tc.dropped,
                "Spans overwritten before any collection");
  }
  if (membership_ != nullptr) {
    const MembershipCounters mc = membership_->Counters();
    NodeCounter(os, "heartbeats_sent_total", mc.heartbeats_sent,
                "Membership probes sent");
    NodeCounter(os, "heartbeats_received_total", mc.heartbeats_received,
                "Membership heartbeats received from peers");
    NodeCounter(os, "probe_misses_total", mc.probe_misses,
                "Membership probes that failed or timed out");
    NodeCounter(os, "failovers_total", mc.failovers,
                "Dead-node takeovers executed by this node");
    NodeCounter(os, "tenants_failed_over_total", mc.tenants_failed_over,
                "Tenants re-placed by failover");
    NodeCounter(os, "rebalance_migrations_total", mc.rebalance_migrations,
                "Tenants moved by the rebalancer");
    NodeCounter(os, "failover_errors_total", mc.failover_errors,
                "Failover steps that failed and were retried or skipped");
    NodeCounter(os, "decommissions_total", mc.decommissions,
                "Planned node drains executed by this node");
    os << "# HELP wfit_node_last_takeover_ms Wall-clock cost of the most"
          " recent failover takeover\n"
       << "# TYPE wfit_node_last_takeover_ms gauge\n"
       << "wfit_node_last_takeover_ms " << mc.last_takeover_ms << "\n";
    os << "# HELP wfit_node_peer_health Peer health (0=alive 1=suspect"
          " 2=dead)\n"
       << "# TYPE wfit_node_peer_health gauge\n";
    for (const PeerView& peer : membership_->Peers()) {
      os << "wfit_node_peer_health{peer=\"" << peer.id << "\"} "
         << static_cast<int>(peer.health) << "\n";
    }
  }
  return os.str();
}

obs::NodeHealthReport TunerNode::BuildHealthReport() {
  obs::NodeHealthReport report;
  report.node_id = options_.node_id;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    report.config_version = config_.version;
  }
  const service::RouterMetricsSnapshot metrics = router_->Metrics();
  report.tenants_known = metrics.tenants_known;
  report.tenants_resident = metrics.tenants_resident;
  report.queue_depth = metrics.aggregate.queue_depth;
  report.statements_analyzed = metrics.aggregate.statements_analyzed;
  report.admin_queue_depth = server_->admin_queue_depth();
  report.admin_shed_total = server_->admin_shed_total();
  if (membership_ != nullptr) {
    report.membership_enabled = true;
    report.acting_coordinator = membership_->IsActingCoordinator();
    const MembershipCounters mc = membership_->Counters();
    report.failovers = mc.failovers;
    report.tenants_failed_over = mc.tenants_failed_over;
    report.rebalance_migrations = mc.rebalance_migrations;
    report.decommissions = mc.decommissions;
    report.last_takeover_ms = mc.last_takeover_ms;
    report.heartbeats_sent = mc.heartbeats_sent;
    report.heartbeats_received = mc.heartbeats_received;
    for (const PeerView& peer : membership_->Peers()) {
      obs::PeerHealthEntry entry;
      entry.id = peer.id;
      entry.health = NodeHealthName(peer.health);
      entry.consecutive_misses = peer.consecutive_misses;
      entry.silence_ms = peer.silence_ms;
      report.peers.push_back(std::move(entry));
    }
  }
  report.tracing_enabled = obs::TracingEnabled();
  const obs::TraceCounters tc = obs::CollectTraceCounters();
  report.trace_spans = tc.recorded;
  report.trace_dropped = tc.dropped;
  return report;
}

Response TunerNode::HandleFast(const Request& req) {
  Response resp;
  switch (req.type) {
    case MsgType::kPing:
      resp.text = "pong";
      return resp;
    case MsgType::kSubmit: {
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      if (!req.has_statement) {
        return net::ErrResp(
            Status::InvalidArgument("kSubmit without a statement"));
      }
      if (options_.submit_deadline_ms > 0) {
        // Bounded wait for queue space; a full tenant costs at most the
        // deadline before the client hears kBusy — the server never wedges.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.submit_deadline_ms);
        switch (router_->SubmitWithDeadline(req.tenant, req.statement,
                                            deadline)) {
          case service::PushAtResult::kAccepted:
          case service::PushAtResult::kDuplicate:
            return resp;
          case service::PushAtResult::kWouldBlock:
            resp.kind = RespKind::kBusy;
            return resp;
          case service::PushAtResult::kClosed:
            return net::ErrResp(
                Status::FailedPrecondition("node is shutting down"));
        }
        return resp;
      }
      if (!router_->TrySubmit(req.tenant, req.statement)) {
        resp.kind = RespKind::kBusy;
      }
      return resp;
    }
    case MsgType::kSubmitAt: {
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      if (!req.has_statement) {
        return net::ErrResp(
            Status::InvalidArgument("kSubmitAt without a statement"));
      }
      if (options_.submit_deadline_ms > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.submit_deadline_ms);
        switch (router_->SubmitAtWithDeadline(req.tenant, req.seq,
                                              req.statement, deadline)) {
          case service::PushAtResult::kAccepted:
            return resp;
          case service::PushAtResult::kDuplicate:
            resp.count = 1;  // exactly-once success; already covered
            return resp;
          case service::PushAtResult::kWouldBlock:
            resp.kind = RespKind::kBusy;
            return resp;
          case service::PushAtResult::kClosed:
            return net::ErrResp(
                Status::FailedPrecondition("node is shutting down"));
        }
        return resp;
      }
      switch (router_->TrySubmitAt(req.tenant, req.seq, req.statement)) {
        case service::PushAtResult::kAccepted:
          return resp;
        case service::PushAtResult::kDuplicate:
          resp.count = 1;  // exactly-once success; already covered
          return resp;
        case service::PushAtResult::kWouldBlock:
          resp.kind = RespKind::kBusy;
          return resp;
        case service::PushAtResult::kClosed:
          return net::ErrResp(
              Status::FailedPrecondition("node is shutting down"));
      }
      return resp;
    }
    case MsgType::kFeedback:
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      router_->Feedback(req.tenant, req.f_plus, req.f_minus);
      return resp;
    case MsgType::kFeedbackAfter:
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      router_->FeedbackAfter(req.tenant, req.seq, req.f_plus, req.f_minus);
      return resp;
    case MsgType::kGetRecommendation: {
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      auto snapshot = router_->Recommendation(req.tenant);
      if (snapshot == nullptr) {
        return net::ErrResp(
            Status::Internal("tenant admission failed: " + req.tenant));
      }
      resp.configuration = snapshot->configuration;
      resp.analyzed = snapshot->analyzed;
      resp.version = snapshot->version;
      return resp;
    }
    case MsgType::kGetAnalyzed:
      if (!CheckOwnership(req.tenant, &resp)) return resp;
      resp.analyzed = router_->analyzed(req.tenant);
      return resp;
    case MsgType::kScrapeMetrics:
      resp.text = ScrapeText();
      return resp;
    case MsgType::kListTenants:
      // Union of live and persisted: resident tenants first (sorted),
      // persisted-only after (sorted), with `count` = the resident
      // prefix so the rebalancer reads load from one RPC.
      resp.tenants = router_->ResidentTenants();
      std::sort(resp.tenants.begin(), resp.tenants.end());
      resp.count = resp.tenants.size();
      {
        std::vector<std::string> persisted_only;
        for (std::string& id : router_->PersistedTenants()) {
          bool known = false;
          for (const std::string& have : resp.tenants) {
            if (have == id) {
              known = true;
              break;
            }
          }
          if (!known) persisted_only.push_back(std::move(id));
        }
        std::sort(persisted_only.begin(), persisted_only.end());
        for (std::string& id : persisted_only) {
          resp.tenants.push_back(std::move(id));
        }
      }
      return resp;
    case MsgType::kGetHistory:
      // Deliberately NOT ownership-checked: after a migration the source
      // keeps the retired prefix of the trajectory, and clients stitch
      // per-node segments together.
      resp.history = router_->History(req.tenant);
      resp.history_start = router_->HistoryStart(req.tenant);
      return resp;
    case MsgType::kGetConfig: {
      std::lock_guard<std::mutex> lock(config_mu_);
      resp.text = EncodeClusterConfig(config_);
      resp.config_version = config_.version;
      return resp;
    }
    case MsgType::kSetConfig: {
      ClusterConfig incoming;
      Status st = DecodeClusterConfig(req.config_blob, &incoming);
      if (!st.ok()) return net::ErrResp(st);
      InstallConfig(std::move(incoming));
      std::lock_guard<std::mutex> lock(config_mu_);
      resp.config_version = config_.version;
      return resp;
    }
    case MsgType::kShutdownNode:
      shutdown_requested_.store(true);
      return resp;
    case MsgType::kHeartbeat: {
      // Answer with who we are and how fresh our config is; the sender's
      // lease refresh (passive liveness) happens in ObserveHeartbeat.
      if (membership_ != nullptr) {
        membership_->ObserveHeartbeat(req.node_id, req.seq);
      }
      resp.owner_id = options_.node_id;
      std::lock_guard<std::mutex> lock(config_mu_);
      resp.config_version = config_.version;
      return resp;
    }
    case MsgType::kGetHealth:
      resp.text = obs::EncodeHealthJson(BuildHealthReport());
      return resp;
    case MsgType::kMigrate:
    case MsgType::kMigrateIn:
    case MsgType::kDrain:
    case MsgType::kDecommission:
    case MsgType::kDumpTrace:
      // Routed to HandleSlow by the server; reaching here is a bug.
      return net::ErrResp(
          Status::Internal("admin RPC dispatched to the fast path"));
  }
  return net::ErrResp(Status::InvalidArgument("unhandled request type"));
}

Response TunerNode::HandleSlow(const Request& req) {
  switch (req.type) {
    case MsgType::kDrain: {
      Response resp;
      resp.count = router_->EvictIdle();
      return resp;
    }
    case MsgType::kMigrate: {
      uint64_t handoff_ms = 0;
      Status st = MigrateTenant(req.tenant, req.target_node, &handoff_ms);
      if (!st.ok()) return net::ErrResp(st);
      Response resp;
      resp.count = handoff_ms;
      return resp;
    }
    case MsgType::kMigrateIn:
      return HandleMigrateIn(req);
    case MsgType::kDumpTrace: {
      // Span-line text (one span per line) — cheap to merge and re-parse
      // on the collecting side without a JSON parser; the final writer
      // renders Chrome/Perfetto JSON.
      Response resp;
      resp.text = obs::FormatSpanLines(obs::CollectSpans());
      return resp;
    }
    case MsgType::kDecommission: {
      if (membership_ == nullptr) {
        return net::ErrResp(Status::FailedPrecondition(
            "decommission requires membership to be enabled"));
      }
      Status st = membership_->Decommission(req.target_node);
      if (!st.ok()) return net::ErrResp(st);
      return Response{};
    }
    default:
      return HandleFast(req);  // backlog drain funnels fast types here
  }
}

Response TunerNode::HandleMigrateIn(const Request& req) {
  obs::SpanGuard span("migrate.in");
  span.SetDetail(req.tenant + " " + std::to_string(req.pack.size()) + "B");
  if (options_.router.checkpoint_root.empty()) {
    return net::ErrResp(Status::FailedPrecondition(
        "migration target has no checkpoint root"));
  }
  // An empty config blob means "tree only": failover lands every
  // recovered tenant first and fans the successor config out afterwards,
  // so there is nothing to adopt here. Migration always ships a config.
  ClusterConfig incoming;
  const bool has_config = !req.config_blob.empty();
  Status st = has_config ? DecodeClusterConfig(req.config_blob, &incoming)
                         : Status::Ok();
  if (!st.ok()) return net::ErrResp(st);
  // Land the tree and the carried votes BEFORE adopting the config that
  // names us as owner. Until the install, redirected clients bounce
  // between source and target (both still redirect away — their retry
  // backoff absorbs the window); the moment we adopt the override, the
  // first data-plane touch lazily admits the tenant, so everything its
  // recovery needs must already be in place. Adopting first is a real
  // race: a redirected submit can admit the tenant mid-unpack, and
  // SeedCarriedVotes would then (correctly) refuse a resident tenant.
  const std::string dir = persist::TenantCheckpointDir(
      options_.router.checkpoint_root, req.tenant);
  st = persist::UnpackCheckpointDir(req.pack, dir);
  if (!st.ok()) return net::ErrResp(st);
  service::TunerService::PendingVotes votes;
  for (const net::VoteWire& v : req.votes) {
    votes.emplace(v.after_seq, std::make_pair(v.plus, v.minus));
  }
  st = router_->SeedCarriedVotes(req.tenant, std::move(votes));
  if (!st.ok()) return net::ErrResp(st);
  const uint64_t incoming_version = incoming.version;
  if (has_config) InstallConfig(std::move(incoming));
  migrations_in_.fetch_add(1);
  obs::Log(obs::LogLevel::kInfo, "migrate.landed")
      .Str("tenant", req.tenant)
      .U64("votes", req.votes.size())
      .U64("config_version", incoming_version);
  return Response{};
}

Status TunerNode::MigrateTenant(const std::string& tenant,
                                const std::string& target_node_id,
                                uint64_t* handoff_ms) {
  const auto t_start = std::chrono::steady_clock::now();
  obs::SpanGuard mig_span("migrate.out");
  mig_span.SetDetail(tenant + "->" + target_node_id);
  if (target_node_id == options_.node_id) {
    return Status::InvalidArgument("migration target is this node");
  }
  // Install the override up front: from this moment new requests for the
  // tenant redirect toward the target, quiescing our shard so the evict
  // loop below converges.
  NodeInfo target;
  ClusterConfig rollback;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    const NodeInfo* found = config_.FindNode(target_node_id);
    if (found == nullptr) {
      return Status::NotFound("unknown migration target node " +
                              target_node_id);
    }
    target = *found;
    rollback = config_;
    config_.overrides[tenant] = target_node_id;
    ++config_.version;
    obs::RecordInstant("migrate.override",
                       "cfg v" + std::to_string(config_.version));
  }
  auto revert = [&] {
    std::lock_guard<std::mutex> lock(config_mu_);
    // Roll placements back but keep the version moving forward, so the
    // revert also wins against any copy of the aborted config.
    uint64_t next_version = config_.version + 1;
    config_ = rollback;
    config_.version = next_version;
  };

  // Checkpoint-then-close. Evict refuses while the shard is mid-drain or
  // has buffered statements; in-flight work drains in milliseconds, so
  // retry on a short leash.
  {
    obs::SpanGuard evict_span("migrate.evict");
    evict_span.SetDetail(tenant);
    const auto deadline = t_start + std::chrono::seconds(15);
    while (router_->IsResident(tenant)) {
      if (router_->Evict(tenant)) break;
      if (std::chrono::steady_clock::now() > deadline) {
        revert();
        obs::Log(obs::LogLevel::kWarn, "migrate.evict_timeout")
            .Str("tenant", tenant)
            .Str("target", target_node_id);
        return Status::Internal("migration: tenant " + tenant +
                                " would not go idle within 15s");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  auto votes = router_->TakeCarriedVotes(tenant);
  if (!votes.ok()) {
    revert();
    return votes.status();
  }
  auto reseed = [&] {
    (void)router_->SeedCarriedVotes(tenant, std::move(*votes));
  };

  if (options_.router.checkpoint_root.empty()) {
    reseed();
    revert();
    return Status::FailedPrecondition(
        "migration source has no checkpoint root");
  }
  // A cold-archived tenant has no directory; bring the tree back out of
  // the archive tier before packing it for the wire.
  Status materialized = router_->EnsureTenantMaterialized(tenant);
  if (!materialized.ok()) {
    reseed();
    revert();
    return materialized;
  }
  const std::string dir = persist::TenantCheckpointDir(
      options_.router.checkpoint_root, tenant);
  StatusOr<std::string> pack = [&] {
    obs::SpanGuard pack_span("migrate.pack");
    pack_span.SetDetail(tenant);
    return persist::PackCheckpointDir(dir);
  }();
  if (!pack.ok()) {
    reseed();
    revert();
    return pack.status();
  }

  Request ship;
  ship.type = MsgType::kMigrateIn;
  ship.tenant = tenant;
  ship.pack = std::move(*pack);
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    ship.config_blob = EncodeClusterConfig(config_);
  }
  for (const auto& [after_seq, vote] : *votes) {
    net::VoteWire v;
    v.after_seq = after_seq;
    v.plus = vote.first;
    v.minus = vote.second;
    ship.votes.push_back(std::move(v));
  }

  Status st;
  {
    obs::SpanGuard ship_span("migrate.ship");
    ship_span.SetDetail(tenant + " " + std::to_string(ship.pack.size()) +
                        "B");
    net::Client client;
    st = client.Connect(target.host, target.port);
    if (st.ok()) {
      auto called = client.Call(ship);
      if (!called.ok()) {
        st = called.status();
      } else if (called->kind != RespKind::kOk) {
        st = Status::Internal("migration target refused: " +
                              called->message);
      }
    }
  }
  if (!st.ok()) {
    reseed();
    revert();
    obs::Log(obs::LogLevel::kWarn, "migrate.aborted")
        .Str("tenant", tenant)
        .Str("target", target_node_id)
        .Str("error", st.ToString());
    return st;
  }

  // The tenant now lives on the target; the local tree is a stale copy
  // that must not resurrect the tenant here after a restart.
  std::error_code ec;
  fs::remove_all(dir, ec);
  migrations_out_.fetch_add(1);

  // Best-effort config fan-out so the rest of the fleet redirects
  // straight to the target instead of bouncing through us. Stragglers
  // self-heal via the version carried on redirects.
  Request set;
  set.type = MsgType::kSetConfig;
  set.config_blob = ship.config_blob;
  ClusterConfig snapshot;
  {
    std::lock_guard<std::mutex> lock(config_mu_);
    snapshot = config_;
  }
  {
    obs::SpanGuard fanout_span("migrate.fanout");
    fanout_span.SetDetail("cfg v" + std::to_string(snapshot.version));
    for (const NodeInfo& n : snapshot.nodes) {
      if (n.id == options_.node_id || n.id == target_node_id) continue;
      net::Client peer;
      if (peer.Connect(n.host, n.port).ok()) (void)peer.Call(set);
    }
  }

  const uint64_t elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t_start)
          .count());
  if (handoff_ms != nullptr) *handoff_ms = elapsed_ms;
  obs::Log(obs::LogLevel::kInfo, "migrate.done")
      .Str("tenant", tenant)
      .Str("target", target_node_id)
      .U64("handoff_ms", elapsed_ms)
      .U64("config_version", snapshot.version);
  return Status::Ok();
}

}  // namespace wfit::cluster
