#include "cluster/placement.h"

#include <algorithm>

#include "persist/codec.h"

namespace wfit::cluster {

const NodeInfo* ClusterConfig::FindNode(const std::string& id) const {
  for (const NodeInfo& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

void ClusterConfig::Normalize() {
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
}

uint64_t PlacementHash(const std::string& node_id,
                       const std::string& tenant) {
  // FNV-1a over "node \xff tenant" (the separator keeps ("ab","c") and
  // ("a","bc") distinct), then a splitmix64 finalizer to spread FNV's
  // weak low bits before the max comparison.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  mix(node_id);
  h ^= 0xff;
  h *= 1099511628211ull;
  mix(tenant);
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

const NodeInfo* OwnerOf(const ClusterConfig& config,
                        const std::string& tenant) {
  if (config.nodes.empty()) return nullptr;
  auto it = config.overrides.find(tenant);
  if (it != config.overrides.end()) {
    if (const NodeInfo* pinned = config.FindNode(it->second)) return pinned;
  }
  const NodeInfo* best = nullptr;
  uint64_t best_weight = 0;
  for (const NodeInfo& n : config.nodes) {
    const uint64_t w = PlacementHash(n.id, tenant);
    if (best == nullptr || w > best_weight ||
        (w == best_weight && n.id < best->id)) {
      best = &n;
      best_weight = w;
    }
  }
  return best;
}

std::string EncodeClusterConfig(const ClusterConfig& config) {
  persist::Encoder e;
  e.PutU64(config.version);
  e.PutU32(static_cast<uint32_t>(config.nodes.size()));
  for (const NodeInfo& n : config.nodes) {
    e.PutString(n.id);
    e.PutString(n.host);
    e.PutU32(n.port);
  }
  e.PutU32(static_cast<uint32_t>(config.overrides.size()));
  for (const auto& [tenant, node] : config.overrides) {
    e.PutString(tenant);
    e.PutString(node);
  }
  // QoS trailer, emitted only when present so configs without QoS stay
  // byte-identical to the pre-QoS encoding (version compares rely on it).
  if (!config.tenant_qos.empty()) {
    e.PutU32(static_cast<uint32_t>(config.tenant_qos.size()));
    for (const auto& [tenant, qos] : config.tenant_qos) {
      e.PutString(tenant);
      e.PutDouble(qos.weight);
      e.PutU64(qos.byte_budget);
      e.PutDouble(qos.p99_budget_ms);
      e.PutDouble(qos.sample_floor);
    }
  }
  return e.Release();
}

Status DecodeClusterConfig(std::string_view blob, ClusterConfig* out) {
  persist::Decoder d(blob);
  WFIT_RETURN_IF_ERROR(d.GetU64(&out->version));
  uint32_t node_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&node_count));
  out->nodes.clear();
  for (uint32_t i = 0; i < node_count; ++i) {
    NodeInfo n;
    uint32_t port = 0;
    WFIT_RETURN_IF_ERROR(d.GetString(&n.id));
    WFIT_RETURN_IF_ERROR(d.GetString(&n.host));
    WFIT_RETURN_IF_ERROR(d.GetU32(&port));
    if (port > 65535) {
      return Status::InvalidArgument("cluster config: port out of range");
    }
    n.port = static_cast<uint16_t>(port);
    out->nodes.push_back(std::move(n));
  }
  uint32_t override_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&override_count));
  out->overrides.clear();
  for (uint32_t i = 0; i < override_count; ++i) {
    std::string tenant, node;
    WFIT_RETURN_IF_ERROR(d.GetString(&tenant));
    WFIT_RETURN_IF_ERROR(d.GetString(&node));
    out->overrides.emplace(std::move(tenant), std::move(node));
  }
  out->tenant_qos.clear();
  if (!d.done()) {
    uint32_t qos_count = 0;
    WFIT_RETURN_IF_ERROR(d.GetU32(&qos_count));
    for (uint32_t i = 0; i < qos_count; ++i) {
      std::string tenant;
      service::TenantQos qos;
      uint64_t byte_budget = 0;
      WFIT_RETURN_IF_ERROR(d.GetString(&tenant));
      WFIT_RETURN_IF_ERROR(d.GetDouble(&qos.weight));
      WFIT_RETURN_IF_ERROR(d.GetU64(&byte_budget));
      WFIT_RETURN_IF_ERROR(d.GetDouble(&qos.p99_budget_ms));
      WFIT_RETURN_IF_ERROR(d.GetDouble(&qos.sample_floor));
      if (!(qos.weight > 0.0)) {
        return Status::InvalidArgument("cluster config: qos weight <= 0");
      }
      qos.byte_budget = static_cast<size_t>(byte_budget);
      out->tenant_qos.emplace(std::move(tenant), qos);
    }
  }
  if (!d.done()) {
    return Status::InvalidArgument("cluster config: trailing bytes");
  }
  out->Normalize();
  return Status::Ok();
}

StatusOr<ClusterConfig> ParseNodeList(const std::string& spec) {
  ClusterConfig config;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    const size_t colon = entry.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos ||
        colon < eq + 2 || eq == 0 || colon + 1 >= entry.size()) {
      return Status::InvalidArgument("node list entry \"" + entry +
                                     "\" is not id=host:port");
    }
    NodeInfo n;
    n.id = entry.substr(0, eq);
    n.host = entry.substr(eq + 1, colon - eq - 1);
    const std::string port_str = entry.substr(colon + 1);
    unsigned long port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("node list entry \"" + entry +
                                       "\": bad port");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) {
        return Status::InvalidArgument("node list entry \"" + entry +
                                       "\": port out of range");
      }
    }
    n.port = static_cast<uint16_t>(port);
    if (config.FindNode(n.id) != nullptr) {
      return Status::InvalidArgument("node list: duplicate id " + n.id);
    }
    config.nodes.push_back(std::move(n));
  }
  if (config.nodes.empty()) {
    return Status::InvalidArgument("node list: no nodes");
  }
  config.Normalize();
  return config;
}

}  // namespace wfit::cluster
