// One router node of the tuning fleet: a TenantRouter fronted by the
// net/ RPC server, plus the placement logic that decides which tenants
// this node answers for and the migration orchestration that moves a
// tenant to another node without losing a single statement or vote.
//
// Ownership protocol: every data-plane RPC is checked against the
// current ClusterConfig; a request for a tenant this node does not own
// gets kNotLeader with the owner's address and the config version, so
// clients self-repair their routing tables (no coordination service).
//
// Live migration (source side, runs on the server's admin thread):
//   1. install a placement override tenant->target (version bump) — new
//      requests start redirecting while the handoff runs;
//   2. evict the tenant via the checkpoint-then-close path (retrying
//      until its shard goes idle), which seals a final snapshot and
//      returns the future-keyed votes;
//   3. pack the checkpoint tree, ship it with the votes and the new
//      config in one kMigrateIn RPC;
//   4. on success drop the local tree and fan the config out; on ANY
//      failure revert the override and re-seed the votes locally — the
//      tenant keeps running here as if nothing happened.
// The target unpacks into its own checkpoint root, seeds the carried
// votes, and lazily re-admits on first touch — recovery then replays
// the identical deterministic path a dedicated node would have taken,
// which is what makes the migrated trajectory bit-for-bit identical.
#ifndef WFIT_CLUSTER_NODE_H_
#define WFIT_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/membership.h"
#include "cluster/placement.h"
#include "common/status.h"
#include "net/server.h"
#include "obs/health.h"
#include "service/tenant_router.h"

namespace wfit::cluster {

struct TunerNodeOptions {
  /// Must name an entry of `config`.
  std::string node_id;
  /// Initial cluster layout. Our own entry's port may be 0 (ephemeral);
  /// Start() patches the actually-bound port in.
  ClusterConfig config;
  /// Router template; checkpoint_root is required for migration.
  service::TenantRouterOptions router;
  /// Listen address.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Shared checkpoint tree root: this node persists under
  /// <fleet_root>/<node_id> (overrides router.checkpoint_root when that
  /// is empty) and failover recovers dead nodes' tenants from their
  /// slices. Leave empty to manage checkpoint_root directly.
  std::string fleet_root;
  /// Runs the lease/heartbeat membership layer (see membership.h).
  bool enable_membership = false;
  MembershipOptions membership;
  /// Bounds the server's admin queue (kBusy shed beyond it).
  size_t max_admin_queue = 128;
  /// When > 0, kSubmit/kSubmitAt wait up to this long for queue space
  /// before answering kBusy, instead of shedding instantly. Bounded by
  /// construction: the server thread can never wedge on a full tenant.
  uint32_t submit_deadline_ms = 0;
};

class TunerNode {
 public:
  TunerNode(service::TunerFactory factory, TunerNodeOptions options);
  ~TunerNode();

  TunerNode(const TunerNode&) = delete;
  TunerNode& operator=(const TunerNode&) = delete;

  Status Start();
  /// Drains and closes the router (final checkpoints + journal seal) and
  /// stops the server. Idempotent.
  void Shutdown();

  /// Abrupt stop for failure drills: tears the node down without the
  /// graceful niceties Shutdown() narrates. True SIGKILL semantics (no
  /// destructors at all) are exercised by the two-process CI smoke; in
  /// process, crash realism comes from running the router with
  /// checkpoint_on_shutdown=false so only journaled state survives.
  void Crash() { Shutdown(); }

  const std::string& node_id() const { return options_.node_id; }
  uint16_t port() const { return server_ == nullptr ? 0 : server_->port(); }
  service::TenantRouter& router() { return *router_; }
  /// Null unless enable_membership (and only after Start()).
  Membership* membership() { return membership_.get(); }
  const std::string& checkpoint_root() const {
    return options_.router.checkpoint_root;
  }

  ClusterConfig Config() const;
  /// Adopts `config` iff its version is higher than the current one.
  void InstallConfig(ClusterConfig config);

  /// Orchestrates the live handoff of `tenant` to `target_node_id` (see
  /// file comment). Also reachable remotely via the kMigrate RPC. On
  /// success *handoff_ms (optional) receives the wall-clock cost.
  Status MigrateTenant(const std::string& tenant,
                       const std::string& target_node_id,
                       uint64_t* handoff_ms = nullptr);

  /// True once a kShutdownNode RPC arrived (the embedder decides when to
  /// actually call Shutdown, typically from its main loop).
  bool ShutdownRequested() const { return shutdown_requested_.load(); }

  uint64_t requests_served() const {
    return server_ == nullptr ? 0 : server_->requests_served();
  }

 private:
  net::Response HandleFast(const net::Request& req);
  obs::NodeHealthReport BuildHealthReport();
  net::Response HandleSlow(const net::Request& req);
  net::Response HandleMigrateIn(const net::Request& req);
  /// Ok-kind response when this node owns `tenant`; kNotLeader (with the
  /// owner's address) or kError otherwise.
  bool CheckOwnership(const std::string& tenant, net::Response* redirect);
  std::string ScrapeText();

  service::TunerFactory factory_;
  TunerNodeOptions options_;
  std::unique_ptr<service::TenantRouter> router_;
  std::unique_ptr<net::Server> server_;
  std::unique_ptr<Membership> membership_;

  mutable std::mutex config_mu_;
  ClusterConfig config_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<uint64_t> migrations_out_{0};
  std::atomic<uint64_t> migrations_in_{0};
  std::atomic<uint64_t> redirects_sent_{0};
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace wfit::cluster

#endif  // WFIT_CLUSTER_NODE_H_
