// Fleet-aware client: routes each tenant's RPCs to the owning node
// computed from its local copy of the ClusterConfig, and self-repairs
// when the fleet disagrees. A kNotLeader redirect carries the owner's
// address and config version — the client follows it, refreshes its
// config from the node that knows better, and retries; kBusy
// (backpressure) retries with a small delay. Both are bounded by a
// deadline so a wedged fleet surfaces as a Status, not a hang.
//
// During a migration handoff there is a window where the source
// redirects to the target while the target still bounces back (its
// config catches up when kMigrateIn lands); the retry loop rides that
// ping-pong out. NOT thread-safe: one ClusterClient per producer thread.
#ifndef WFIT_CLUSTER_CLUSTER_CLIENT_H_
#define WFIT_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>

#include "cluster/placement.h"
#include "common/status.h"
#include "net/client.h"
#include "net/wire.h"
#include "obs/health.h"

namespace wfit::cluster {

/// One kGetHealth sweep across the fleet: a report per answering node,
/// plus the ids that could not be reached (known-dead nodes are skipped
/// entirely — they are expected to be silent).
struct FleetHealth {
  std::vector<obs::NodeHealthReport> nodes;
  std::vector<std::string> unreachable;
};

struct ClusterClientOptions {
  net::Client::Options rpc;
  /// Budget for redirect chasing + busy retries per Call.
  int retry_deadline_ms = 30000;
  /// Retry pacing: capped exponential backoff with decorrelated jitter
  /// (sleep ~ uniform[initial, 3 * previous], clamped to the cap), so a
  /// fleet of producers retrying into the same failover window spreads
  /// out instead of thundering in lockstep.
  int backoff_initial_ms = 2;
  int backoff_cap_ms = 200;
  /// 0 seeds the jitter from std::random_device; tests pin it. Jitter
  /// shapes retry TIMING only — it never touches what is submitted, so
  /// trajectories stay deterministic either way.
  uint64_t jitter_seed = 0;
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterConfig config,
                         ClusterClientOptions options = {});
  /// Routes by tenant ownership, following redirects and riding out
  /// kBusy backpressure. Returns the first kOk/kError response.
  StatusOr<net::Response> Call(const std::string& tenant,
                               net::Request request);
  /// Sends to one specific node, no routing (admin RPCs, scrapes).
  /// Fails fast with NotFound once the node is known-dead: a node seen
  /// in an older config but absent from a newer one was removed by
  /// failover/decommission and will never answer again.
  StatusOr<net::Response> CallNode(const std::string& node_id,
                                   net::Request request);
  /// Polls kGetHealth on every live node in the current config. Never
  /// fails: nodes that do not answer land in `unreachable`.
  FleetHealth FetchFleetHealth();
  /// Aggregated Prometheus exposition across the live fleet: every
  /// node's kScrapeMetrics output merged with a node="<id>" label
  /// injected on each sample (obs::MergeFleetScrapeText).
  std::string ScrapeFleet();
  const ClusterConfig& config() const { return config_; }
  /// True once membership removed `node_id` from a config this client
  /// has adopted.
  bool IsKnownDead(const std::string& node_id) const {
    return dead_nodes_.count(node_id) != 0;
  }

 private:
  StatusOr<net::Response> CallAddr(const std::string& node_id,
                                   const std::string& host, uint16_t port,
                                   const net::Request& request);
  /// Pulls the full config from a node that advertised a newer version.
  void RefreshConfigFrom(const std::string& host, uint16_t port);
  /// Asks every node except `skip` for a fresher config (first success
  /// wins) — the self-repair path when the presumed owner goes dark.
  void RefreshConfigFromAnyBut(const std::string& skip);
  /// Adopts `fresh` when newer, recording nodes that vanished as dead.
  void AdoptConfig(ClusterConfig fresh);
  /// Decorrelated-jitter backoff; advances *prev_ms.
  int NextBackoffMs(int* prev_ms);

  ClusterConfig config_;
  ClusterClientOptions options_;
  /// Connection per node, reused across calls; dropped on RPC failure.
  std::map<std::string, std::unique_ptr<net::Client>> conns_;
  /// Nodes that a newer config no longer contains.
  std::set<std::string> dead_nodes_;
  std::mt19937_64 jitter_;
};

}  // namespace wfit::cluster

#endif  // WFIT_CLUSTER_CLUSTER_CLIENT_H_
