#include "cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace wfit::cluster {

using net::RespKind;
using net::Response;

ClusterClient::ClusterClient(ClusterConfig config,
                             ClusterClientOptions options)
    : config_(std::move(config)),
      options_(options),
      jitter_(options.jitter_seed != 0 ? options.jitter_seed
                                       : std::random_device{}()) {
  config_.Normalize();
}

int ClusterClient::NextBackoffMs(int* prev_ms) {
  // Decorrelated jitter (Brooker): sleep ~ U[initial, 3 * previous],
  // clamped. Grows roughly exponentially but desynchronizes retriers.
  const int lo = options_.backoff_initial_ms;
  const int hi = std::max(lo + 1, *prev_ms * 3);
  std::uniform_int_distribution<int> dist(lo, hi);
  *prev_ms = std::min(options_.backoff_cap_ms, dist(jitter_));
  return *prev_ms;
}

void ClusterClient::AdoptConfig(ClusterConfig fresh) {
  if (fresh.version <= config_.version) return;
  fresh.Normalize();
  for (const NodeInfo& n : config_.nodes) {
    if (fresh.FindNode(n.id) == nullptr) {
      // Present before, gone now: membership removed it. Its connection
      // is useless and further attempts at it should fail fast.
      dead_nodes_.insert(n.id);
      conns_.erase(n.id);
    }
  }
  for (const NodeInfo& n : fresh.nodes) dead_nodes_.erase(n.id);  // rejoin
  config_ = std::move(fresh);
}

StatusOr<Response> ClusterClient::CallAddr(const std::string& node_id,
                                           const std::string& host,
                                           uint16_t port,
                                           const net::Request& request) {
  auto& conn = conns_[node_id];
  if (conn == nullptr) conn = std::make_unique<net::Client>();
  if (!conn->connected()) {
    Status st = conn->Connect(host, port, options_.rpc);
    if (!st.ok()) {
      conns_.erase(node_id);
      return st;
    }
  }
  auto result = conn->Call(request);
  if (!result.ok()) conns_.erase(node_id);  // stale conn; reconnect next time
  return result;
}

void ClusterClient::RefreshConfigFrom(const std::string& host,
                                      uint16_t port) {
  net::Client probe;
  if (!probe.Connect(host, port, options_.rpc).ok()) return;
  net::Request req;
  req.type = net::MsgType::kGetConfig;
  auto resp = probe.Call(req);
  if (!resp.ok() || resp->kind != RespKind::kOk) return;
  ClusterConfig fresh;
  if (DecodeClusterConfig(resp->text, &fresh).ok()) {
    AdoptConfig(std::move(fresh));
  }
}

void ClusterClient::RefreshConfigFromAnyBut(const std::string& skip) {
  // Snapshot the node list: AdoptConfig rewrites config_ mid-loop.
  const std::vector<NodeInfo> nodes = config_.nodes;
  const uint64_t before = config_.version;
  for (const NodeInfo& n : nodes) {
    if (n.id == skip || dead_nodes_.count(n.id) != 0) continue;
    RefreshConfigFrom(n.host, n.port);
    if (config_.version > before) return;
  }
}

StatusOr<Response> ClusterClient::Call(const std::string& tenant,
                                       net::Request request) {
  request.tenant = tenant;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.retry_deadline_ms);
  // Where to aim first; redirects override this below.
  const NodeInfo* owner = OwnerOf(config_, tenant);
  if (owner == nullptr) {
    return Status::FailedPrecondition("cluster client: empty config");
  }
  std::string node_id = owner->id;
  std::string host = owner->host;
  uint16_t port = owner->port;
  int backoff_ms = options_.backoff_initial_ms;
  Status last = Status::Internal("cluster client: no attempt made");
  while (std::chrono::steady_clock::now() < deadline) {
    auto result = CallAddr(node_id, host, port, request);
    if (!result.ok()) {
      // Transport failure. The target may be mid-restart (retry it) or
      // dead (a survivor's config no longer lists it — re-aim at the
      // tenant's new owner immediately, no backoff: failover already
      // paid the wait).
      last = result.status();
      RefreshConfigFromAnyBut(node_id);
      const bool known_dead = dead_nodes_.count(node_id) != 0;
      if (!known_dead) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(NextBackoffMs(&backoff_ms)));
      }
      const NodeInfo* again = OwnerOf(config_, tenant);
      if (again == nullptr) {
        return Status::FailedPrecondition(
            "cluster client: config went empty for tenant " + tenant);
      }
      if (known_dead && again->id == node_id) {
        return Status::Internal(
            "cluster client: owner " + node_id + " of tenant " + tenant +
            " is dead and no newer config re-places it (" +
            last.ToString() + ")");
      }
      node_id = again->id;
      host = again->host;
      port = again->port;
      continue;
    }
    switch (result->kind) {
      case RespKind::kOk:
      case RespKind::kError:
        return result;
      case RespKind::kNotLeader:
        // Self-repair: aim at the advertised owner; when it advertises a
        // newer config, pull the whole thing so FUTURE calls route right
        // on the first try. A stale redirect can still point at a node
        // we know is dead — recompute from our (newer) config instead of
        // chasing the ghost.
        if (result->config_version > config_.version) {
          RefreshConfigFrom(result->owner_host,
                            static_cast<uint16_t>(result->owner_port));
        }
        if (dead_nodes_.count(result->owner_id) != 0) {
          if (const NodeInfo* again = OwnerOf(config_, tenant)) {
            node_id = again->id;
            host = again->host;
            port = again->port;
          }
        } else {
          node_id = result->owner_id;
          host = result->owner_host;
          port = static_cast<uint16_t>(result->owner_port);
        }
        // A redirect ping-pong during the handoff window resolves once
        // kMigrateIn installs the target's config; give it a moment.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(NextBackoffMs(&backoff_ms)));
        last = Status::Internal("cluster client: redirected to " + node_id);
        continue;
      case RespKind::kBusy:
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        last = Status::Internal("cluster client: backpressure at " +
                                node_id);
        continue;
    }
  }
  return Status::Internal("cluster client: deadline exhausted for tenant " +
                          tenant + " (" + last.ToString() + ")");
}

FleetHealth ClusterClient::FetchFleetHealth() {
  FleetHealth fleet;
  // Snapshot: CallNode can adopt a fresher config mid-sweep.
  const std::vector<NodeInfo> nodes = config_.nodes;
  for (const NodeInfo& n : nodes) {
    if (dead_nodes_.count(n.id) != 0) continue;
    net::Request req;
    req.type = net::MsgType::kGetHealth;
    auto resp = CallNode(n.id, req);
    obs::NodeHealthReport report;
    if (resp.ok() && resp->kind == RespKind::kOk &&
        obs::DecodeHealthJson(resp->text, &report)) {
      fleet.nodes.push_back(std::move(report));
    } else {
      fleet.unreachable.push_back(n.id);
    }
  }
  return fleet;
}

std::string ClusterClient::ScrapeFleet() {
  std::vector<std::pair<std::string, std::string>> scrapes;
  const std::vector<NodeInfo> nodes = config_.nodes;
  for (const NodeInfo& n : nodes) {
    if (dead_nodes_.count(n.id) != 0) continue;
    net::Request req;
    req.type = net::MsgType::kScrapeMetrics;
    auto resp = CallNode(n.id, req);
    if (resp.ok() && resp->kind == RespKind::kOk) {
      scrapes.emplace_back(n.id, std::move(resp->text));
    }
  }
  return obs::MergeFleetScrapeText(scrapes);
}

StatusOr<Response> ClusterClient::CallNode(const std::string& node_id,
                                           net::Request request) {
  if (dead_nodes_.count(node_id) != 0) {
    return Status::NotFound("cluster client: node " + node_id +
                            " was removed from the cluster (dead); "
                            "refusing to retry against it");
  }
  const NodeInfo* node = config_.FindNode(node_id);
  if (node == nullptr) {
    return Status::NotFound("cluster client: unknown node " + node_id);
  }
  return CallAddr(node_id, node->host, node->port, request);
}

}  // namespace wfit::cluster
