#include "cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace wfit::cluster {

using net::RespKind;
using net::Response;

ClusterClient::ClusterClient(ClusterConfig config,
                             ClusterClientOptions options)
    : config_(std::move(config)), options_(options) {
  config_.Normalize();
}

StatusOr<Response> ClusterClient::CallAddr(const std::string& node_id,
                                           const std::string& host,
                                           uint16_t port,
                                           const net::Request& request) {
  auto& conn = conns_[node_id];
  if (conn == nullptr) conn = std::make_unique<net::Client>();
  if (!conn->connected()) {
    Status st = conn->Connect(host, port, options_.rpc);
    if (!st.ok()) return st;
  }
  auto result = conn->Call(request);
  if (!result.ok()) conns_.erase(node_id);  // stale conn; reconnect next time
  return result;
}

void ClusterClient::RefreshConfigFrom(const std::string& host,
                                      uint16_t port) {
  net::Client probe;
  if (!probe.Connect(host, port, options_.rpc).ok()) return;
  net::Request req;
  req.type = net::MsgType::kGetConfig;
  auto resp = probe.Call(req);
  if (!resp.ok() || resp->kind != RespKind::kOk) return;
  ClusterConfig fresh;
  if (DecodeClusterConfig(resp->text, &fresh).ok() &&
      fresh.version > config_.version) {
    config_ = std::move(fresh);
  }
}

StatusOr<Response> ClusterClient::Call(const std::string& tenant,
                                       net::Request request) {
  request.tenant = tenant;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.retry_deadline_ms);
  // Where to aim first; redirects override this below.
  const NodeInfo* owner = OwnerOf(config_, tenant);
  if (owner == nullptr) {
    return Status::FailedPrecondition("cluster client: empty config");
  }
  std::string node_id = owner->id;
  std::string host = owner->host;
  uint16_t port = owner->port;
  int backoff_ms = 1;
  Status last = Status::Internal("cluster client: no attempt made");
  while (std::chrono::steady_clock::now() < deadline) {
    auto result = CallAddr(node_id, host, port, request);
    if (!result.ok()) {
      // Transport failure (node restarting, handoff window): recompute
      // the owner from the freshest config and retry after a pause.
      last = result.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 100);
      if (const NodeInfo* again = OwnerOf(config_, tenant)) {
        node_id = again->id;
        host = again->host;
        port = again->port;
      }
      continue;
    }
    switch (result->kind) {
      case RespKind::kOk:
      case RespKind::kError:
        return result;
      case RespKind::kNotLeader:
        // Self-repair: aim at the advertised owner; when it advertises a
        // newer config, pull the whole thing so FUTURE calls route right
        // on the first try.
        node_id = result->owner_id;
        host = result->owner_host;
        port = static_cast<uint16_t>(result->owner_port);
        if (result->config_version > config_.version) {
          RefreshConfigFrom(host, port);
        }
        // A redirect ping-pong during the handoff window resolves once
        // kMigrateIn installs the target's config; give it a moment.
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 100);
        last = Status::Internal("cluster client: redirected to " + node_id);
        continue;
      case RespKind::kBusy:
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        last = Status::Internal("cluster client: backpressure at " +
                                node_id);
        continue;
    }
  }
  return Status::Internal("cluster client: deadline exhausted for tenant " +
                          tenant + " (" + last.ToString() + ")");
}

StatusOr<Response> ClusterClient::CallNode(const std::string& node_id,
                                           net::Request request) {
  const NodeInfo* node = config_.FindNode(node_id);
  if (node == nullptr) {
    return Status::NotFound("cluster client: unknown node " + node_id);
  }
  return CallAddr(node_id, node->host, node->port, request);
}

}  // namespace wfit::cluster
