// Tenant placement across router nodes: rendezvous (highest-random-
// weight) hashing, so every node computes the same owner for a tenant
// from the config alone — no coordination service — and adding or
// removing a node only moves the tenants that hash to it (~1/N of the
// keyspace), never reshuffling the rest like modulo hashing would.
//
// The config is versioned: migrations install a per-tenant override and
// bump the version, and nodes/clients adopt whichever config carries the
// higher version (NotLeaderForTenant redirects ship it). Overrides make
// placement explicit where it matters — a migrated tenant stays put even
// though the hash says otherwise — while the hash handles the anonymous
// masses.
#ifndef WFIT_CLUSTER_PLACEMENT_H_
#define WFIT_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/tenant_router.h"

namespace wfit::cluster {

struct NodeInfo {
  std::string id;
  std::string host;
  uint16_t port = 0;
};

struct ClusterConfig {
  /// Monotone; higher version wins everywhere.
  uint64_t version = 0;
  /// Sorted by id (Normalize enforces it; codec preserves order).
  std::vector<NodeInfo> nodes;
  /// tenant id -> node id, consulted before the hash. Installed by
  /// migrations; an override naming an unknown node is ignored (falls
  /// back to the hash) so a stale override cannot strand a tenant.
  std::map<std::string, std::string> overrides;
  /// tenant id -> QoS class (DRR weight, byte budget, latency budget,
  /// sampling floor), distributed with the config so every node schedules
  /// a migrated tenant identically. Encoded as an optional trailer: a
  /// config without QoS entries round-trips byte-identically with the
  /// pre-QoS codec.
  std::map<std::string, service::TenantQos> tenant_qos;

  const NodeInfo* FindNode(const std::string& id) const;
  void Normalize();  // sort nodes by id
};

/// The rendezvous weight of (node, tenant); exposed for tests.
uint64_t PlacementHash(const std::string& node_id,
                       const std::string& tenant);

/// The owning node: override if present and known, else the node with
/// the maximal PlacementHash (ties broken by smaller id — total order,
/// so every observer agrees). Null only when the config has no nodes.
const NodeInfo* OwnerOf(const ClusterConfig& config,
                        const std::string& tenant);

std::string EncodeClusterConfig(const ClusterConfig& config);
Status DecodeClusterConfig(std::string_view blob, ClusterConfig* out);

/// Parses "id=host:port,id=host:port,..." (the --nodes flag format) into
/// a version-0 config.
StatusOr<ClusterConfig> ParseNodeList(const std::string& spec);

}  // namespace wfit::cluster

#endif  // WFIT_CLUSTER_PLACEMENT_H_
