// The deterministic demo fleet environment shared by the tuning-service
// demo, the wfit_server / wfit_client examples, the cluster bench and
// the migration tests. Each tenant gets a fully private database world
// (catalog, index pool, optimizer, seeded workload) derived ONLY from
// its tenant index — so any process that agrees on (tenant index,
// statement count) regenerates the identical workload, vote candidates
// and vote schedule. That is what lets a trajectory produced by a
// two-node cluster with a mid-workload migration be compared bit-for-bit
// against a reference produced by a single dedicated process.
//
// The environment, vote rotation (VoteForStage) and vote schedule
// (stage length 100, boundary at stage_start + 49) are lifted verbatim
// from examples/tuning_service_demo.cpp's multi-tenant flow and must
// stay in lockstep with nothing — this IS the single definition now.
#ifndef WFIT_CLUSTER_DEMO_ENV_H_
#define WFIT_CLUSTER_DEMO_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/benchmark_schemas.h"
#include "cluster/cluster_client.h"
#include "core/wfit.h"
#include "optimizer/what_if.h"
#include "service/tenant_router.h"
#include "workload/benchmark_trace.h"

namespace wfit::cluster {

/// Deterministic DBA votes, recomputable anywhere: each stage endorses
/// one pre-interned index and vetoes another, rotating through the list.
struct DemoVote {
  IndexSet plus;
  IndexSet minus;
};

DemoVote VoteForStage(size_t stage, const std::vector<IndexId>& candidates);

/// One tenant's fully private environment: catalog, pool, optimizer and
/// a seeded workload — tenants are independent databases.
struct TenantEnv {
  TenantEnv(size_t tenant, size_t statements);

  Catalog catalog;
  std::unique_ptr<IndexPool> pool;
  std::unique_ptr<CostModel> cost_model;
  std::unique_ptr<WhatIfOptimizer> optimizer;
  Workload workload;
  std::vector<IndexId> vote_candidates;
};

/// Stage length of the demo's vote schedule: one vote per 100-statement
/// stage, its boundary pinned after statement stage_start + 49.
inline constexpr size_t kDemoStage = 100;
inline constexpr uint64_t kDemoVoteOffset = 50;

/// Lazily materializes TenantEnvs on demand, thread-safe (the tuner
/// factory runs under the router lock while producer threads read
/// workloads concurrently).
class DemoFleetEnv {
 public:
  explicit DemoFleetEnv(size_t statements) : statements_(statements) {}

  static std::string TenantName(size_t t) {
    return "tenant-" + std::to_string(t);
  }
  /// Inverse of TenantName ("tenant-3" -> 3).
  static size_t TenantIndex(const std::string& id);

  size_t statements() const { return statements_; }
  /// The shared-scope env: workload + vote-candidate reads (producers,
  /// reference runs). Tuners never touch this instance — see
  /// MakeTunerFactory.
  TenantEnv& Env(size_t tenant);

  /// The demo's per-tenant tuner (WFIT, idx_cnt=16, state_cnt=256) —
  /// identical construction on every (re-)admission, as the recovery
  /// determinism contract requires. Every call returns a factory with
  /// its own private scope of TenantEnvs: in-process fleet nodes must
  /// NOT share a tenant's IndexPool/optimizer, because a crashing
  /// node's final drain interns concurrently with the survivor's
  /// recovery replay (a real fleet has per-process pools; failover
  /// already proves ids re-intern identically across them). One node =
  /// one factory = one scope.
  service::TunerFactory MakeTunerFactory();

  /// The demo's crash-safe vote re-registration hook: pins every vote
  /// whose boundary the recovered state has not passed.
  service::VoteRepinner MakeRepinner();

  /// The votes of tenant `t` with boundaries >= from_seq — what a fresh
  /// client registers up front (from_seq = 0 pins the whole schedule).
  std::vector<service::PinnedVote> PinnedVotesFor(size_t tenant,
                                                  uint64_t from_seq);

 private:
  /// Scope 0 is the shared read-only-ish scope Env() exposes; each
  /// factory allocates the next scope id.
  TenantEnv& EnvScoped(size_t scope, size_t tenant);

  size_t statements_;
  std::mutex mu_;
  std::map<std::pair<size_t, size_t>, std::unique_ptr<TenantEnv>> envs_;
  size_t next_scope_ = 1;
};

/// Replays tenant `tenant`'s full demo workload through `client` with
/// crash-tolerant, exactly-once semantics: registers the vote schedule
/// up front (when `register_votes` — recovery re-pins votes server-side
/// via the repinner, so one registration suffices), submits every
/// statement via kSubmitAt, and rides out failovers. Statements the dead
/// node accepted but never journaled die with it; when analysis stalls,
/// the replay rewinds to the survivor's recovered watermark and
/// resubmits — kSubmitAt dedup absorbs the overlap, so the trajectory
/// stays bit-for-bit deterministic. Returns true once the whole
/// workload is analyzed, false on `overall_deadline_ms`.
///
/// The caller's `client` should use a retry_deadline_ms of a few
/// seconds: a wedged submit (sequence beyond the recovered ring window)
/// surfaces as a Call failure, which is what triggers the rewind.
bool ReplayTenantWorkload(ClusterClient& client, DemoFleetEnv& env,
                          size_t tenant, bool register_votes,
                          int overall_deadline_ms = 120000);

/// Writes "<seq> {ids}" trajectory lines (when out_path is nonempty) and
/// verifies them against a reference file (when ref_path is nonempty);
/// `label` prefixes report lines. Returns 0 when consistent, 1 on an
/// unreadable reference, 2 on divergence — the demo's exit-code
/// convention, shared by every trajectory-verifying binary.
int WriteAndVerifyTrajectory(const std::vector<IndexSet>& history,
                             uint64_t history_start,
                             const std::string& out_path,
                             const std::string& ref_path,
                             const std::string& label);

}  // namespace wfit::cluster

#endif  // WFIT_CLUSTER_DEMO_ENV_H_
