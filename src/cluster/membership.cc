#include "cluster/membership.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "cluster/node.h"
#include "common/check.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "persist/archive.h"
#include "persist/tenant_tree.h"

namespace wfit::cluster {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using net::MsgType;
using net::Request;
using net::RespKind;
using net::Response;

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
  }
  return "unknown";
}

Membership::Membership(TunerNode* node, MembershipOptions options)
    : node_(node), options_(std::move(options)) {
  WFIT_CHECK(node_ != nullptr, "Membership requires a node");
  WFIT_CHECK(options_.heartbeat_interval_ms > 0, "heartbeat interval");
  WFIT_CHECK(options_.lease_ms > 0, "lease");
}

Membership::~Membership() { Shutdown(); }

void Membership::Start() {
  WFIT_CHECK(!started_, "Membership::Start called twice");
  started_ = true;
  hb_thread_ = std::thread([this] { HeartbeatLoop(); });
  orch_thread_ = std::thread([this] { OrchestratorLoop(); });
}

void Membership::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  hb_thread_.join();
  orch_thread_.join();
}

void Membership::ObserveHeartbeat(const std::string& from_node_id,
                                  uint64_t config_version) {
  const bool fresher = config_version > node_->Config().version;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.heartbeats_received;
  auto it = peers_.find(from_node_id);
  if (it != peers_.end()) it->second.last_heard = Clock::now();
  if (fresher) pull_config_from_ = from_node_id;
}

bool Membership::IsActingCoordinator() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : peers_) {
    if (state.health != NodeHealth::kDead && id < node_->node_id()) {
      return false;
    }
  }
  return true;
}

std::vector<PeerView> Membership::Peers() {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PeerView> views;
  for (const auto& [id, state] : peers_) {
    PeerView v;
    v.id = id;
    v.health = state.health;
    v.consecutive_misses = state.misses;
    v.silence_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - state.last_heard)
            .count());
    views.push_back(std::move(v));
  }
  return views;
}

MembershipCounters Membership::Counters() {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

StatusOr<Response> Membership::CallPeer(const NodeInfo& peer,
                                        const Request& request,
                                        int timeout_ms) {
  net::Client client;
  net::Client::Options copts;
  copts.timeout_ms = timeout_ms;
  Status st = client.Connect(peer.host, peer.port, copts);
  if (!st.ok()) return st;
  return client.Call(request);
}

void Membership::HeartbeatLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return;
    }
    ProbeAndEvaluate();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock,
                 std::chrono::milliseconds(options_.heartbeat_interval_ms),
                 [&] { return stop_; });
    if (stop_) return;
  }
}

void Membership::ProbeAndEvaluate() {
  const ClusterConfig config = node_->Config();
  std::vector<NodeInfo> targets;
  std::string pull_from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The peer set IS the config (minus self): nodes removed by failover
    // or decommission stop being probed, new nodes get a fresh lease.
    for (auto it = peers_.begin(); it != peers_.end();) {
      if (config.FindNode(it->first) == nullptr) {
        it = peers_.erase(it);
      } else {
        ++it;
      }
    }
    for (const NodeInfo& n : config.nodes) {
      if (n.id == node_->node_id()) continue;
      if (peers_.find(n.id) == peers_.end()) {
        PeerState fresh;
        fresh.last_heard = Clock::now();  // full lease of grace
        peers_.emplace(n.id, fresh);
      }
      targets.push_back(n);
    }
    pull_from = pull_config_from_;
    pull_config_from_.clear();
  }

  Request hb;
  hb.type = MsgType::kHeartbeat;
  hb.node_id = node_->node_id();
  hb.seq = config.version;
  for (const NodeInfo& target : targets) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      ++counters_.heartbeats_sent;
    }
    auto result = CallPeer(target, hb, options_.rpc_timeout_ms);
    const bool ok = result.ok() && result->kind == RespKind::kOk;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(target.id);
    if (it == peers_.end()) continue;
    if (ok) {
      it->second.last_heard = Clock::now();
      it->second.misses = 0;
      if (result->config_version > config.version) pull_from = target.id;
    } else {
      ++it->second.misses;
      ++counters_.probe_misses;
    }
  }

  if (!pull_from.empty()) {
    if (const NodeInfo* from = config.FindNode(pull_from)) {
      Request get;
      get.type = MsgType::kGetConfig;
      auto resp = CallPeer(*from, get, options_.rpc_timeout_ms);
      if (resp.ok() && resp->kind == RespKind::kOk) {
        ClusterConfig fresh;
        if (DecodeClusterConfig(resp->text, &fresh).ok()) {
          const uint64_t pulled_version = fresh.version;
          node_->InstallConfig(std::move(fresh));
          obs::RecordInstant("config.pull",
                             pull_from + " v" +
                                 std::to_string(pulled_version));
        }
      }
    }
  }

  // Lease evaluation. Health is recomputed from scratch: a peer that
  // spoke to us again (either direction) drops back from suspect/dead
  // on its own.
  const auto now = Clock::now();
  const auto lease = std::chrono::milliseconds(options_.lease_ms);
  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : peers_) {
      const NodeHealth before = state.health;
      if (now - state.last_heard > lease) {
        state.health = NodeHealth::kDead;
      } else if (state.misses >=
                 static_cast<uint64_t>(options_.suspect_after_misses)) {
        state.health = NodeHealth::kSuspect;
      } else {
        state.health = NodeHealth::kAlive;
        state.failover_enqueued = false;
      }
      if (state.health != before) {
        obs::RecordInstant("peer.health",
                           id + ": " + NodeHealthName(before) + "->" +
                               NodeHealthName(state.health));
        obs::Log(state.health == NodeHealth::kDead ? obs::LogLevel::kWarn
                                                   : obs::LogLevel::kInfo,
                 "membership.transition")
            .Str("peer", id)
            .Str("from", NodeHealthName(before))
            .Str("to", NodeHealthName(state.health))
            .U64("misses", state.misses);
      }
    }
    if (options_.auto_failover) {
      // Acting coordinator = lowest id not dead (inline: Peers holds mu_).
      bool coordinator = true;
      for (const auto& [id, state] : peers_) {
        if (state.health != NodeHealth::kDead && id < node_->node_id()) {
          coordinator = false;
          break;
        }
      }
      if (coordinator) {
        for (auto& [id, state] : peers_) {
          if (state.health == NodeHealth::kDead &&
              !state.failover_enqueued) {
            state.failover_enqueued = true;
            failover_queue_.push_back(id);
            enqueued = true;
          }
        }
      }
    }
  }
  if (enqueued) cv_.notify_all();
}

void Membership::OrchestratorLoop() {
  auto last_rebalance = Clock::now();
  const auto rebalance_every =
      std::chrono::milliseconds(options_.rebalance_interval_ms > 0
                                    ? options_.rebalance_interval_ms
                                    : 250);
  while (true) {
    std::string dead;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, rebalance_every,
                   [&] { return stop_ || !failover_queue_.empty(); });
      if (stop_) return;
      if (!failover_queue_.empty()) {
        dead = std::move(failover_queue_.front());
        failover_queue_.pop_front();
      }
    }
    if (!dead.empty()) {
      FailOverDeadNode(dead);
      continue;
    }
    if (options_.rebalance_interval_ms > 0 && !rebalance_paused_ &&
        Clock::now() - last_rebalance >= rebalance_every &&
        IsActingCoordinator()) {
      last_rebalance = Clock::now();
      RebalanceOnce();
    }
  }
}

void Membership::FailOverDeadNode(const std::string& dead_id) {
  const auto t0 = Clock::now();
  obs::SpanGuard span("failover");
  span.SetDetail(dead_id);
  obs::Log(obs::LogLevel::kWarn, "failover.start").Str("dead", dead_id);
  uint64_t moved = 0;
  uint64_t errors = 0;
  std::vector<std::string> adopted;
  bool recovered_trees = false;
  // Up to 3 attempts: a concurrent migration can bump the config version
  // between our snapshot and install, making the install a no-op.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const ClusterConfig cur = node_->Config();
    if (cur.FindNode(dead_id) == nullptr) break;  // already handled
    ClusterConfig next = cur;
    next.nodes.erase(
        std::remove_if(next.nodes.begin(), next.nodes.end(),
                       [&](const NodeInfo& n) { return n.id == dead_id; }),
        next.nodes.end());
    for (auto it = next.overrides.begin(); it != next.overrides.end();) {
      if (it->second == dead_id) {
        it = next.overrides.erase(it);
      } else {
        ++it;
      }
    }
    ++next.version;
    if (next.nodes.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.failover_errors;
      return;  // sole survivor of itself — nothing to take over onto
    }

    // Land every recovered tenant's tree at its new owner BEFORE any
    // node adopts the successor config (same ordering as kMigrateIn).
    if (!recovered_trees && !options_.fleet_root.empty()) {
      recovered_trees = true;
      const std::string dead_root = options_.fleet_root + "/" + dead_id;
      auto listed = persist::ListTenantIds(dead_root);
      // The dead node may hold cold tenants only in its archive tier —
      // no per-tenant directory. Fetch() returns the same pack bytes
      // PackCheckpointDir would, so archived tenants fail over too. A
      // live directory wins over an archive entry (archival packs
      // durably before removing the directory, so the directory is
      // never the stale copy).
      std::unique_ptr<persist::ArchiveStore> dead_archive;
      {
        auto opened = persist::ArchiveStore::Open(dead_root);
        if (opened.ok()) {
          dead_archive = std::make_unique<persist::ArchiveStore>(
              std::move(opened).value());
        } else {
          ++errors;
        }
      }
      if (!listed.ok()) {
        ++errors;
      } else {
        std::vector<std::string> tenants = *listed;
        if (dead_archive != nullptr) {
          std::vector<std::string> archived = dead_archive->Tenants();
          tenants.insert(tenants.end(), archived.begin(), archived.end());
          std::sort(tenants.begin(), tenants.end());
          tenants.erase(std::unique(tenants.begin(), tenants.end()),
                        tenants.end());
        }
        for (const std::string& tenant : tenants) {
          const NodeInfo* owner = OwnerOf(next, tenant);
          const std::string src =
              persist::TenantCheckpointDir(dead_root, tenant);
          std::error_code exists_ec;
          auto pack = std::filesystem::exists(src, exists_ec)
                          ? persist::PackCheckpointDir(src)
                          : (dead_archive != nullptr
                                 ? dead_archive->Fetch(tenant)
                                 : StatusOr<std::string>(Status::NotFound(
                                       "tenant tree lost with node")));
          if (!pack.ok()) {
            ++errors;
            continue;
          }
          if (owner->id == node_->node_id()) {
            if (!node_->router().IsResident(tenant)) {
              Status st = persist::UnpackCheckpointDir(
                  *pack, persist::TenantCheckpointDir(
                             node_->checkpoint_root(), tenant));
              if (!st.ok()) {
                ++errors;
                continue;
              }
              obs::RecordInstant("failover.adopt", tenant);
              adopted.push_back(tenant);
            }
          } else {
            Request ship;
            ship.type = MsgType::kMigrateIn;
            ship.tenant = tenant;
            ship.pack = std::move(*pack);
            // Empty config_blob: the successor config is fanned out only
            // after every tree has landed.
            auto called =
                CallPeer(*owner, ship,
                         std::max(5000, options_.rpc_timeout_ms * 20));
            if (!called.ok() || called->kind != RespKind::kOk) {
              ++errors;
              continue;
            }
          }
          ++moved;
          std::error_code ec;
          fs::remove_all(src, ec);
        }
        std::error_code ec;
        fs::remove(dead_root, ec);  // only succeeds once empty
      }
    }

    node_->InstallConfig(next);
    if (node_->Config().FindNode(dead_id) == nullptr) break;
  }

  const uint64_t final_version = node_->Config().version;
  FanOutConfig(node_->Config());
  // Eager admission: adopted tenants start recovering now, not on first
  // client touch — takeover latency is paid here, once.
  {
    obs::SpanGuard recover_span("failover.recover");
    recover_span.SetDetail(std::to_string(adopted.size()) + " tenants");
    for (const std::string& tenant : adopted) {
      (void)node_->router().Recommendation(tenant);
    }
  }
  const uint64_t takeover_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t0)
          .count());
  obs::Log(obs::LogLevel::kWarn, "failover.done")
      .Str("dead", dead_id)
      .U64("tenants_moved", moved)
      .U64("errors", errors)
      .U64("takeover_ms", takeover_ms)
      .U64("config_version", final_version);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.failovers;
  counters_.tenants_failed_over += moved;
  counters_.failover_errors += errors;
  counters_.last_takeover_ms = takeover_ms;
}

void Membership::FanOutConfig(const ClusterConfig& config) {
  Request set;
  set.type = MsgType::kSetConfig;
  set.config_blob = EncodeClusterConfig(config);
  for (const NodeInfo& n : config.nodes) {
    if (n.id == node_->node_id()) continue;
    (void)CallPeer(n, set, options_.rpc_timeout_ms);
  }
}

void Membership::RebalanceOnce() {
  const ClusterConfig config = node_->Config();
  if (config.nodes.size() < 2) return;
  // Load = resident PLUS persisted tenants. A tenant migrated in but not
  // yet touched is persisted-only at its new home; counting residents
  // alone would keep reading the target as empty and overdrain the hot
  // node. Any unreachable node skips the round (the heartbeat path, not
  // the rebalancer, decides who is dead).
  struct Load {
    NodeInfo node;
    std::vector<std::string> tenants;
  };
  std::vector<Load> loads;
  for (const NodeInfo& n : config.nodes) {
    Load load;
    load.node = n;
    if (n.id == node_->node_id()) {
      load.tenants = node_->router().ResidentTenants();
      for (std::string& t : node_->router().PersistedTenants()) {
        if (std::find(load.tenants.begin(), load.tenants.end(), t) ==
            load.tenants.end()) {
          load.tenants.push_back(std::move(t));
        }
      }
      std::sort(load.tenants.begin(), load.tenants.end());
    } else {
      Request list;
      list.type = MsgType::kListTenants;
      auto resp = CallPeer(n, list, options_.rpc_timeout_ms);
      if (!resp.ok() || resp->kind != RespKind::kOk) return;
      load.tenants = resp->tenants;  // resident + persisted, both halves
    }
    loads.push_back(std::move(load));
  }
  auto hottest = std::max_element(
      loads.begin(), loads.end(), [](const Load& a, const Load& b) {
        return a.tenants.size() < b.tenants.size();
      });
  auto coldest = std::min_element(
      loads.begin(), loads.end(), [](const Load& a, const Load& b) {
        return a.tenants.size() < b.tenants.size();
      });
  const uint64_t spread = static_cast<uint64_t>(hottest->tenants.size() -
                                                coldest->tenants.size());
  if (spread <= options_.rebalance_min_spread) return;
  // Never move past the balance point, and never more than the per-round
  // budget: draining a hot node is a throttled background activity.
  // MigrateTenant handles persisted-only tenants too (no eviction step,
  // the packed tree simply changes homes).
  uint64_t budget = std::min<uint64_t>(options_.migration_budget_per_round,
                                       std::max<uint64_t>(spread / 2, 1));
  for (const std::string& tenant : hottest->tenants) {
    if (budget == 0) break;
    Request migrate;
    migrate.type = MsgType::kMigrate;
    migrate.tenant = tenant;
    migrate.target_node = coldest->node.id;
    Status st;
    if (hottest->node.id == node_->node_id()) {
      st = node_->MigrateTenant(tenant, coldest->node.id);
    } else {
      auto resp = CallPeer(hottest->node, migrate,
                           std::max(20000, options_.rpc_timeout_ms * 20));
      st = !resp.ok() ? resp.status()
           : resp->kind == RespKind::kOk
               ? Status::Ok()
               : Status::Internal("migrate refused: " + resp->message);
    }
    if (!st.ok()) return;  // try again next round
    --budget;
    obs::Log(obs::LogLevel::kInfo, "rebalance.moved")
        .Str("tenant", tenant)
        .Str("from", hottest->node.id)
        .Str("to", coldest->node.id)
        .U64("spread", spread);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.rebalance_migrations;
  }
}

Status Membership::Decommission(const std::string& node_id) {
  obs::SpanGuard span("decommission");
  span.SetDetail(node_id);
  const ClusterConfig config = node_->Config();
  const NodeInfo* leaving = config.FindNode(node_id);
  if (leaving == nullptr) {
    return Status::NotFound("decommission: unknown node " + node_id);
  }
  if (config.nodes.size() < 2) {
    return Status::FailedPrecondition(
        "decommission: cannot remove the last node");
  }
  // Placement probe: where every tenant WILL live once the node is gone.
  // Rendezvous hashing guarantees only the leaving node's tenants move.
  ClusterConfig probe = config;
  probe.nodes.erase(
      std::remove_if(probe.nodes.begin(), probe.nodes.end(),
                     [&](const NodeInfo& n) { return n.id == node_id; }),
      probe.nodes.end());
  for (auto it = probe.overrides.begin(); it != probe.overrides.end();) {
    if (it->second == node_id) {
      it = probe.overrides.erase(it);
    } else {
      ++it;
    }
  }

  // Everything the node serves or could re-admit from disk must move.
  std::vector<std::string> tenants;
  if (node_id == node_->node_id()) {
    tenants = node_->router().ResidentTenants();
    for (std::string& t : node_->router().PersistedTenants()) {
      if (std::find(tenants.begin(), tenants.end(), t) == tenants.end()) {
        tenants.push_back(std::move(t));
      }
    }
  } else {
    Request list;
    list.type = MsgType::kListTenants;
    auto resp = CallPeer(*leaving, list, options_.rpc_timeout_ms);
    if (!resp.ok()) return resp.status();
    if (resp->kind != RespKind::kOk) {
      return Status::Internal("decommission: list tenants: " +
                              resp->message);
    }
    tenants = resp->tenants;
  }
  std::sort(tenants.begin(), tenants.end());

  for (const std::string& tenant : tenants) {
    const NodeInfo* dest = OwnerOf(probe, tenant);
    Status st;
    if (node_id == node_->node_id()) {
      st = node_->MigrateTenant(tenant, dest->id);
    } else {
      Request migrate;
      migrate.type = MsgType::kMigrate;
      migrate.tenant = tenant;
      migrate.target_node = dest->id;
      auto resp = CallPeer(*leaving, migrate,
                           std::max(20000, options_.rpc_timeout_ms * 20));
      st = !resp.ok() ? resp.status()
           : resp->kind == RespKind::kOk
               ? Status::Ok()
               : Status::Internal("migrate refused: " + resp->message);
    }
    if (!st.ok()) {
      // Partial decommission is safe to retry: moved tenants stay moved
      // (their overrides are installed), the rest stayed put.
      return Status::Internal("decommission: migrating " + tenant +
                              " off " + node_id + ": " + st.ToString());
    }
  }

  // Drop the node. Migration version bumps landed in the meantime, so
  // re-snapshot and remove.
  ClusterConfig next = node_->Config();
  if (next.FindNode(node_id) != nullptr) {
    next.nodes.erase(
        std::remove_if(next.nodes.begin(), next.nodes.end(),
                       [&](const NodeInfo& n) { return n.id == node_id; }),
        next.nodes.end());
    for (auto it = next.overrides.begin(); it != next.overrides.end();) {
      if (it->second == node_id) {
        it = next.overrides.erase(it);
      } else {
        ++it;
      }
    }
    ++next.version;
    node_->InstallConfig(next);
  }
  FanOutConfig(node_->Config());
  // Tell the leaving node too (it is no longer in the config): it keeps
  // running, empty, until the operator shuts it down.
  {
    Request set;
    set.type = MsgType::kSetConfig;
    set.config_blob = EncodeClusterConfig(node_->Config());
    (void)CallPeer(*leaving, set, options_.rpc_timeout_ms);
  }
  obs::Log(obs::LogLevel::kInfo, "decommission.done")
      .Str("node", node_id)
      .U64("tenants_moved", tenants.size())
      .U64("config_version", node_->Config().version);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.decommissions;
  return Status::Ok();
}

}  // namespace wfit::cluster
