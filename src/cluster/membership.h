// Lease-based cluster membership and self-healing for the tuning fleet.
//
// Every membership-enabled node runs two background threads:
//
//   * a HEARTBEAT thread that probes every peer in the current
//     ClusterConfig each interval (kHeartbeat RPC). A peer that misses L
//     consecutive probes is SUSPECT; a peer from which nothing has been
//     heard — no probe answer AND no incoming heartbeat — for a full
//     lease is DEAD. Incoming heartbeats refresh the sender's lease
//     (passive liveness), so a one-way partition makes a peer suspect
//     but never falsely dead: as long as the peer can still reach us, it
//     stays in the cluster.
//
//   * an ORCHESTRATOR thread that executes failover and rebalancing, so
//     multi-second checkpoint I/O never stalls the probe cadence (a
//     stalled prober would age every peer's lease at once).
//
// There is no elected leader: the ACTING COORDINATOR is simply the
// lowest node id not currently considered dead — every node computes it
// locally, and only the coordinator fails over, rebalances, or
// decommissions. Heartbeats carry config versions both ways, so a node
// that fell behind pulls the newer config on the next tick.
//
// FAILOVER: when a peer's lease expires, the coordinator builds the
// successor config (dead node removed, its overrides dropped, version
// bumped), re-places every tenant found under the dead node's slice of
// the shared checkpoint tree by rendezvous hash onto the survivors,
// lands each tenant's packed tree at its new owner (kMigrateIn with an
// empty config blob), and only THEN installs + fans out the successor
// config — the same land-before-adopt ordering the migration path uses,
// so a redirected client can never admit a tenant mid-unpack. Recovery
// replays from the last durable boundary; statements that died in the
// dead node's ingest queue were never journaled, which is why producers
// re-submit from the analyzed watermark (exactly-once dedup drops what
// did survive). The result is the paper-level invariant: the resumed
// trajectory is bit-for-bit what an uninterrupted run would have
// produced from that boundary.
//
// Split brain: with no quorum, a full symmetric partition can make both
// halves act as coordinator. Configs are versioned and higher-version-
// wins on heal, and the DBA stays in the loop (semi-automatic tuning's
// premise) — this layer targets crash failures, not Byzantine ones.
#ifndef WFIT_CLUSTER_MEMBERSHIP_H_
#define WFIT_CLUSTER_MEMBERSHIP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "common/status.h"
#include "net/client.h"

namespace wfit::cluster {

class TunerNode;

enum class NodeHealth : uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

const char* NodeHealthName(NodeHealth health);

struct MembershipOptions {
  int heartbeat_interval_ms = 50;
  /// Consecutive missed probes before a peer is SUSPECT.
  int suspect_after_misses = 3;
  /// Silence (no probe answer, no incoming heartbeat) before DEAD.
  int lease_ms = 600;
  /// Per-probe RPC budget; also bounds the connect.
  int rpc_timeout_ms = 250;
  /// When false the view updates but nobody acts on a death (observers).
  bool auto_failover = true;
  /// Root of the shared checkpoint tree; node `n` persists under
  /// <fleet_root>/<n>. Required for failover to recover tenants.
  std::string fleet_root;
  /// 0 disables the rebalancer.
  int rebalance_interval_ms = 0;
  /// Rebalance only when max - min resident count exceeds this.
  uint64_t rebalance_min_spread = 1;
  /// Live migrations per rebalance round (drain rate limit).
  uint64_t migration_budget_per_round = 1;
};

struct PeerView {
  std::string id;
  NodeHealth health = NodeHealth::kAlive;
  uint64_t consecutive_misses = 0;
  /// Milliseconds since we last heard from the peer, either way.
  uint64_t silence_ms = 0;
};

struct MembershipCounters {
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeats_received = 0;
  uint64_t probe_misses = 0;
  uint64_t failovers = 0;
  uint64_t tenants_failed_over = 0;
  uint64_t failover_errors = 0;
  uint64_t rebalance_migrations = 0;
  uint64_t decommissions = 0;
  /// Wall-clock of the most recent failover, lease expiry -> config live.
  uint64_t last_takeover_ms = 0;
};

class Membership {
 public:
  Membership(TunerNode* node, MembershipOptions options);
  ~Membership();

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  void Start();
  void Shutdown();

  /// Called by the node's kHeartbeat handler: refreshes the sender's
  /// lease and notes a fresher config version to pull.
  void ObserveHeartbeat(const std::string& from_node_id,
                        uint64_t config_version);

  /// Drains `node_id` (live-migrating each of its tenants to the tenant's
  /// rendezvous owner among the remaining nodes) and installs a config
  /// without it. Moves ONLY that node's tenants. Runs synchronously on
  /// the caller's thread (the server admin thread for kDecommission).
  Status Decommission(const std::string& node_id);

  /// True when this node is the lowest-id node not considered dead.
  bool IsActingCoordinator();

  /// Pauses / resumes the background rebalancer (maintenance windows,
  /// bulk loads). Failure detection and failover keep running; only
  /// load-driven migrations stop. Running when rebalance_interval_ms > 0.
  void SetRebalancePaused(bool paused) { rebalance_paused_ = paused; }

  std::vector<PeerView> Peers();
  MembershipCounters Counters();

 private:
  struct PeerState {
    NodeHealth health = NodeHealth::kAlive;
    uint64_t misses = 0;
    std::chrono::steady_clock::time_point last_heard;
    /// Set once a failover for this peer has been handed to the
    /// orchestrator; a peer is failed over at most once per config.
    bool failover_enqueued = false;
  };

  void HeartbeatLoop();
  void OrchestratorLoop();
  void ProbeAndEvaluate();
  /// Executes the takeover of a dead node (orchestrator thread).
  void FailOverDeadNode(const std::string& dead_id);
  void RebalanceOnce();
  /// Fans `config` out to every node in it except self (best effort).
  void FanOutConfig(const ClusterConfig& config);
  StatusOr<net::Response> CallPeer(const NodeInfo& peer,
                                   const net::Request& request,
                                   int timeout_ms);

  TunerNode* node_;
  MembershipOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<std::string, PeerState> peers_;
  /// Node id advertising a config newer than ours (pull next tick).
  std::string pull_config_from_;
  std::deque<std::string> failover_queue_;
  MembershipCounters counters_;

  std::atomic<bool> rebalance_paused_{false};

  std::thread hb_thread_;
  std::thread orch_thread_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace wfit::cluster

#endif  // WFIT_CLUSTER_MEMBERSHIP_H_
