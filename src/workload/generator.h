// Random statement generator over the benchmark catalog. Reproduces the
// statement shapes of the paper's workload (Sec. 6.1): join queries with
// mixed-selectivity predicates (the paper's example joins tpce.security,
// tpce.company and tpce.daily_market) and low-selectivity UPDATE statements.
// Generated statements go through the SQL printer, parser and binder, so the
// whole front end is exercised on every generated statement.
#ifndef WFIT_WORKLOAD_GENERATOR_H_
#define WFIT_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "workload/binder.h"
#include "workload/statement.h"

namespace wfit {

/// Knobs for statement generation; defaults match the benchmark's mix.
struct GeneratorOptions {
  /// Probability of extending the join chain by one more table.
  double join_extend_prob = 0.55;
  int max_joins = 2;
  double order_by_prob = 0.25;
  /// Probability that a joined table receives a predicate of its own.
  double joined_table_pred_prob = 0.6;
  /// Probability that the seed table receives a second predicate. The
  /// benchmark stresses index interactions (Sec. 6.1), so two-predicate
  /// tables — where index intersections and composites matter — are common.
  double second_pred_prob = 0.7;
  /// log10 selectivity range for query range predicates. Medium
  /// selectivities are where single-index plans become fetch-bound and
  /// multi-index plans pay off, i.e. where interactions live.
  double query_sel_exp_min = -3.8;
  double query_sel_exp_max = -1.0;
  /// log10 selectivity range for update/delete WHERE predicates.
  double update_sel_exp_min = -4.5;
  double update_sel_exp_max = -2.0;
  /// Within update statements: fraction that are DELETE / INSERT
  /// (remainder are UPDATE).
  double delete_fraction = 0.15;
  double insert_fraction = 0.10;
  double count_star_prob = 0.35;
};

/// Deterministic, seeded generator. One instance per experiment.
class StatementGenerator {
 public:
  StatementGenerator(const Catalog* catalog, const GeneratorOptions& options,
                     uint64_t seed);

  /// Generates a read-only query over tables of `dataset`.
  Statement GenerateQuery(const std::string& dataset);

  /// Generates an UPDATE/DELETE/INSERT over a table of `dataset`.
  Statement GenerateUpdate(const std::string& dataset);

  const GeneratorOptions& options() const { return options_; }

 private:
  struct JoinEdge {
    ColumnRef left;
    ColumnRef right;
  };

  void BuildJoinGraph();
  void AddEdge(const std::string& lt, const std::string& lc,
               const std::string& rt, const std::string& rc);
  std::vector<const JoinEdge*> EdgesTouching(TableId t) const;
  TableId PickTable(const std::string& dataset, bool weight_by_size);
  /// Builds one predicate on `table` and renders it into `where`. With
  /// `require_selective`, enum-like columns are avoided so the predicate
  /// stays low-selectivity (update statements must touch few rows).
  void AddPredicate(TableId table, double sel_exp_min, double sel_exp_max,
                    bool require_selective,
                    std::vector<sql::Predicate>* where);
  Statement Finish(const sql::SqlStatement& ast);

  const Catalog* catalog_;
  GeneratorOptions options_;
  Rng rng_;
  Binder binder_;
  std::vector<JoinEdge> edges_;
};

}  // namespace wfit

#endif  // WFIT_WORKLOAD_GENERATOR_H_
