// Binds SQL ASTs against a catalog: resolves tables/columns, estimates
// predicate selectivities and produces the logical Statement the optimizer
// costs.
#ifndef WFIT_WORKLOAD_BINDER_H_
#define WFIT_WORKLOAD_BINDER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "workload/statement.h"

namespace wfit {

/// Stateless binder over one catalog.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {
    WFIT_CHECK(catalog != nullptr, "Binder requires a catalog");
  }

  /// Binds a parsed statement. Fails with NotFound / InvalidArgument on
  /// unresolvable names or ambiguous references.
  StatusOr<Statement> Bind(const sql::SqlStatement& stmt) const;

  /// Convenience: parse + bind; keeps the original text in Statement::sql.
  StatusOr<Statement> BindSql(const std::string& text) const;

 private:
  const Catalog* catalog_;
};

}  // namespace wfit

#endif  // WFIT_WORKLOAD_BINDER_H_
