#include "workload/benchmark_trace.h"

#include "catalog/benchmark_schemas.h"

namespace wfit {

std::vector<TraceEntry> GenerateBenchmarkTrace(const Catalog& catalog,
                                               const TraceOptions& options) {
  WFIT_CHECK(options.num_phases > 0 && options.statements_per_phase > 0,
             "empty trace requested");
  WFIT_CHECK(!options.update_fractions.empty(),
             "update_fractions must be non-empty");
  // Datasets actually present in the catalog, in benchmark order.
  std::vector<std::string> datasets;
  for (const std::string& d : BenchmarkDatasets()) {
    if (!catalog.TablesOfDataset(d).empty()) datasets.push_back(d);
  }
  WFIT_CHECK(!datasets.empty(), "catalog has no benchmark datasets");

  StatementGenerator generator(&catalog, options.generator, options.seed);
  Rng rng(options.seed ^ 0x5eed5eedull);

  std::vector<TraceEntry> trace;
  trace.reserve(static_cast<size_t>(options.num_phases) *
                static_cast<size_t>(options.statements_per_phase));
  for (int phase = 0; phase < options.num_phases; ++phase) {
    const std::string& primary = datasets[phase % datasets.size()];
    const std::string& secondary = datasets[(phase + 1) % datasets.size()];
    double update_fraction =
        options.update_fractions[phase % options.update_fractions.size()];
    for (int i = 0; i < options.statements_per_phase; ++i) {
      TraceEntry entry;
      entry.phase = phase;
      entry.dataset =
          rng.Bernoulli(options.focus_weight) ? primary : secondary;
      if (rng.Bernoulli(update_fraction)) {
        entry.statement = generator.GenerateUpdate(entry.dataset);
      } else {
        entry.statement = generator.GenerateQuery(entry.dataset);
      }
      trace.push_back(std::move(entry));
    }
  }
  return trace;
}

Workload ToWorkload(const std::vector<TraceEntry>& trace) {
  Workload out;
  out.reserve(trace.size());
  for (const TraceEntry& e : trace) out.push_back(e.statement);
  return out;
}

}  // namespace wfit
