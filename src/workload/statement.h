// Logical (bound) statement model: what the what-if optimizer costs.
// Produced from SQL by workload/binder or directly by the generator.
#ifndef WFIT_WORKLOAD_STATEMENT_H_
#define WFIT_WORKLOAD_STATEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace wfit {

/// A sargable conjunct on a single column of one table, with its estimated
/// selectivity already resolved against column statistics.
struct ScanPredicate {
  ColumnRef column;
  /// Equality predicates can be fully consumed by a B-tree key prefix;
  /// a range predicate terminates prefix matching.
  bool equality = false;
  /// Non-sargable conjuncts (e.g. '<>') filter rows but cannot be served by
  /// an index.
  bool sargable = true;
  double selectivity = 1.0;
};

/// An equality join between two tables' columns.
struct JoinClause {
  ColumnRef left;
  ColumnRef right;
};

/// Per-table slice of a statement.
struct StatementTable {
  TableId table = 0;
  std::vector<ScanPredicate> predicates;
  /// Every column of this table the statement touches (select list, WHERE,
  /// joins, ORDER/GROUP BY). Determines when an index-only plan is possible.
  std::vector<uint32_t> referenced_columns;
};

enum class StatementKind { kSelect, kUpdate, kDelete, kInsert };

/// A bound workload statement. `Statement` is the `q` of the paper: the unit
/// the what-if optimizer costs and WFIT analyzes.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::vector<StatementTable> tables;  // >=1 for select; exactly 1 otherwise
  std::vector<JoinClause> joins;       // select only
  std::vector<ColumnRef> order_by;     // select only
  std::vector<ColumnRef> group_by;     // select only
  std::vector<uint32_t> set_columns;   // update only: ordinals in tables[0]
  uint64_t insert_rows = 0;            // insert only
  /// Original SQL (for logging / examples); may be empty.
  std::string sql;

  bool IsUpdateStatement() const { return kind != StatementKind::kSelect; }

  /// Structural fingerprint over every cost-relevant field (everything but
  /// `sql`): two statements with equal fingerprints are the same template
  /// with the same bound parameters, so the optimizer's answer for any
  /// configuration is interchangeable between them. Computed lazily and
  /// cached (statements are immutable once bound). Collisions are possible
  /// (it is a hash); exact users must confirm with SameCostShape().
  uint64_t Fingerprint() const;

  /// The table slice for `id`, or nullptr if the statement doesn't touch it.
  const StatementTable* FindTable(TableId id) const {
    for (const StatementTable& t : tables) {
      if (t.table == id) return &t;
    }
    return nullptr;
  }

  /// Combined selectivity of all predicates on one table slice.
  static double CombinedSelectivity(const StatementTable& t) {
    double s = 1.0;
    for (const ScanPredicate& p : t.predicates) s *= p.selectivity;
    return s;
  }

 private:
  /// Fingerprint() memo; 0 = not yet computed (the hash is salted so no
  /// statement hashes to 0).
  mutable uint64_t fingerprint_cache_ = 0;
};

/// True when `a` and `b` are structurally identical in every cost-relevant
/// field — the exact relation Fingerprint() approximates. The cross-statement
/// what-if cache verifies candidates with this before serving a memoized
/// plan, so a fingerprint collision can never surface a wrong cost.
bool SameCostShape(const Statement& a, const Statement& b);

/// A workload: the paper's stream Q, materialized as a vector.
using Workload = std::vector<Statement>;

/// Debug rendering, e.g. "SELECT{tpch.lineitem(l_shipdate~0.02)}".
std::string ToString(const Statement& stmt, const Catalog& catalog);

}  // namespace wfit

#endif  // WFIT_WORKLOAD_STATEMENT_H_
