#include "workload/binder.h"

#include <algorithm>
#include <map>

#include "optimizer/selectivity.h"
#include "sql/parser.h"

namespace wfit {

namespace {

/// Column resolution scope: the FROM-clause tables with their aliases.
class Scope {
 public:
  explicit Scope(const Catalog* catalog) : catalog_(catalog) {}

  Status AddTable(const std::string& name, const std::string& alias) {
    auto id = catalog_->FindTable(name);
    if (!id.ok()) return id.status();
    if (!alias.empty()) {
      if (!aliases_.emplace(alias, *id).second) {
        return Status::InvalidArgument("duplicate alias " + alias);
      }
    }
    // Also register the table's own names for unaliased qualification.
    aliases_.emplace(name, *id);
    aliases_.emplace(catalog_->table(*id).name, *id);
    tables_.push_back(*id);
    return Status::Ok();
  }

  const std::vector<TableId>& tables() const { return tables_; }

  StatusOr<ColumnRef> Resolve(const sql::ColumnName& name) const {
    if (!name.qualifier.empty()) {
      auto it = aliases_.find(name.qualifier);
      if (it == aliases_.end()) {
        return Status::NotFound("unknown table qualifier " + name.qualifier);
      }
      auto col = catalog_->FindColumn(it->second, name.column);
      if (!col.ok()) return col.status();
      return ColumnRef{it->second, *col};
    }
    // Unqualified: must be unique across the FROM tables.
    bool found = false;
    ColumnRef ref;
    for (TableId t : tables_) {
      auto col = catalog_->FindColumn(t, name.column);
      if (col.ok()) {
        if (found) {
          return Status::InvalidArgument("ambiguous column " + name.column);
        }
        found = true;
        ref = ColumnRef{t, *col};
      }
    }
    if (!found) return Status::NotFound("unknown column " + name.column);
    return ref;
  }

 private:
  const Catalog* catalog_;
  std::map<std::string, TableId> aliases_;
  std::vector<TableId> tables_;
};

double LiteralValue(const ColumnInfo& col, const sql::Literal& lit) {
  if (lit.is_string) return MapStringToDomain(col, lit.text);
  return lit.number;
}

/// Appends `column` to the table slice's referenced set (deduplicated).
void Reference(Statement* stmt, const ColumnRef& ref) {
  for (StatementTable& t : stmt->tables) {
    if (t.table != ref.table) continue;
    auto& cols = t.referenced_columns;
    if (std::find(cols.begin(), cols.end(), ref.column) == cols.end()) {
      cols.push_back(ref.column);
    }
    return;
  }
}

StatementTable* SliceFor(Statement* stmt, TableId table) {
  for (StatementTable& t : stmt->tables) {
    if (t.table == table) return &t;
  }
  return nullptr;
}

}  // namespace

StatusOr<Statement> Binder::Bind(const sql::SqlStatement& sql_stmt) const {
  Statement out;

  auto bind_scan_predicates = [&](const Scope& scope,
                                  const std::vector<sql::Predicate>& where)
      -> Status {
    for (const sql::Predicate& p : where) {
      auto lhs = scope.Resolve(p.lhs);
      if (!lhs.ok()) return lhs.status();
      const ColumnInfo& col = catalog_->column(*lhs);
      if (p.kind == sql::Predicate::Kind::kJoin) {
        auto rhs = scope.Resolve(p.rhs);
        if (!rhs.ok()) return rhs.status();
        if (lhs->table == rhs->table) {
          return Status::InvalidArgument(
              "self-join predicates within one table are not supported");
        }
        out.joins.push_back(JoinClause{*lhs, *rhs});
        Reference(&out, *lhs);
        Reference(&out, *rhs);
        continue;
      }
      ScanPredicate sp;
      sp.column = *lhs;
      if (p.kind == sql::Predicate::Kind::kBetween) {
        double lo = LiteralValue(col, p.low);
        double hi = LiteralValue(col, p.high);
        if (hi < lo) std::swap(lo, hi);
        sp.equality = false;
        sp.sargable = true;
        sp.selectivity = RangeSelectivity(col, lo, hi);
      } else {
        double v = LiteralValue(col, p.value);
        sp.equality = (p.op == sql::CompareOp::kEq);
        sp.sargable = (p.op != sql::CompareOp::kNe);
        sp.selectivity = CompareSelectivity(col, p.op, v);
      }
      StatementTable* slice = SliceFor(&out, lhs->table);
      WFIT_CHECK(slice != nullptr, "predicate on table outside FROM");
      slice->predicates.push_back(sp);
      Reference(&out, *lhs);
    }
    return Status::Ok();
  };

  if (const auto* sel = std::get_if<sql::SelectStmt>(&sql_stmt)) {
    out.kind = StatementKind::kSelect;
    Scope scope(catalog_);
    if (sel->from.empty()) {
      return Status::InvalidArgument("SELECT requires a FROM clause");
    }
    for (const sql::TableRef& ref : sel->from) {
      WFIT_RETURN_IF_ERROR(scope.AddTable(ref.name, ref.alias));
    }
    for (TableId t : scope.tables()) {
      // A table may legitimately appear once only; duplicates would make
      // column references ambiguous anyway.
      if (SliceFor(&out, t) != nullptr) {
        return Status::InvalidArgument("table repeated in FROM");
      }
      StatementTable st;
      st.table = t;
      out.tables.push_back(std::move(st));
    }
    if (sel->select_list.empty() && !sel->count_star) {
      // SELECT *: every column of every table is referenced.
      for (StatementTable& t : out.tables) {
        const TableInfo& info = catalog_->table(t.table);
        for (uint32_t c = 0; c < info.columns.size(); ++c) {
          t.referenced_columns.push_back(c);
        }
      }
    }
    for (const sql::ColumnName& c : sel->select_list) {
      auto ref = scope.Resolve(c);
      if (!ref.ok()) return ref.status();
      Reference(&out, *ref);
    }
    WFIT_RETURN_IF_ERROR(bind_scan_predicates(scope, sel->where));
    for (const sql::ColumnName& c : sel->group_by) {
      auto ref = scope.Resolve(c);
      if (!ref.ok()) return ref.status();
      out.group_by.push_back(*ref);
      Reference(&out, *ref);
    }
    for (const sql::ColumnName& c : sel->order_by) {
      auto ref = scope.Resolve(c);
      if (!ref.ok()) return ref.status();
      out.order_by.push_back(*ref);
      Reference(&out, *ref);
    }
    return out;
  }

  if (const auto* upd = std::get_if<sql::UpdateStmt>(&sql_stmt)) {
    out.kind = StatementKind::kUpdate;
    Scope scope(catalog_);
    WFIT_RETURN_IF_ERROR(scope.AddTable(upd->table, ""));
    StatementTable st;
    st.table = scope.tables()[0];
    out.tables.push_back(std::move(st));
    for (const std::string& col_name : upd->set_columns) {
      auto col = catalog_->FindColumn(out.tables[0].table, col_name);
      if (!col.ok()) return col.status();
      out.set_columns.push_back(*col);
      Reference(&out, ColumnRef{out.tables[0].table, *col});
    }
    if (out.set_columns.empty()) {
      return Status::InvalidArgument("UPDATE with empty SET list");
    }
    WFIT_RETURN_IF_ERROR(bind_scan_predicates(scope, upd->where));
    return out;
  }

  if (const auto* del = std::get_if<sql::DeleteStmt>(&sql_stmt)) {
    out.kind = StatementKind::kDelete;
    Scope scope(catalog_);
    WFIT_RETURN_IF_ERROR(scope.AddTable(del->table, ""));
    StatementTable st;
    st.table = scope.tables()[0];
    out.tables.push_back(std::move(st));
    WFIT_RETURN_IF_ERROR(bind_scan_predicates(scope, del->where));
    return out;
  }

  const auto& ins = std::get<sql::InsertStmt>(sql_stmt);
  out.kind = StatementKind::kInsert;
  Scope scope(catalog_);
  WFIT_RETURN_IF_ERROR(scope.AddTable(ins.table, ""));
  StatementTable st;
  st.table = scope.tables()[0];
  out.tables.push_back(std::move(st));
  if (ins.num_rows == 0) {
    return Status::InvalidArgument("INSERT with no VALUES tuples");
  }
  out.insert_rows = ins.num_rows;
  return out;
}

StatusOr<Statement> Binder::BindSql(const std::string& text) const {
  auto parsed = sql::ParseStatement(text);
  if (!parsed.ok()) return parsed.status();
  auto bound = Bind(*parsed);
  if (!bound.ok()) return bound.status();
  bound->sql = text;
  return bound;
}

}  // namespace wfit
