#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sql/printer.h"

namespace wfit {

namespace {

/// Columns with few distinct values only make sense as equality predicates.
constexpr uint64_t kEnumDistinctThreshold = 64;

sql::ColumnName Qualified(const Catalog& catalog, const ColumnRef& ref) {
  sql::ColumnName name;
  name.qualifier = catalog.table(ref.table).qualified_name();
  name.column = catalog.column(ref).name;
  return name;
}

}  // namespace

StatementGenerator::StatementGenerator(const Catalog* catalog,
                                       const GeneratorOptions& options,
                                       uint64_t seed)
    : catalog_(catalog), options_(options), rng_(seed), binder_(catalog) {
  WFIT_CHECK(catalog != nullptr, "generator requires a catalog");
  BuildJoinGraph();
}

void StatementGenerator::AddEdge(const std::string& lt, const std::string& lc,
                                 const std::string& rt,
                                 const std::string& rc) {
  auto ltid = catalog_->FindTable(lt);
  auto rtid = catalog_->FindTable(rt);
  if (!ltid.ok() || !rtid.ok()) return;  // schema not loaded; skip
  auto lcol = catalog_->FindColumn(*ltid, lc);
  auto rcol = catalog_->FindColumn(*rtid, rc);
  if (!lcol.ok() || !rcol.ok()) return;
  edges_.push_back(JoinEdge{ColumnRef{*ltid, *lcol}, ColumnRef{*rtid, *rcol}});
}

void StatementGenerator::BuildJoinGraph() {
  // Foreign-key style equi-join edges, per dataset. Missing datasets are
  // skipped so the generator also works on partial catalogs.
  // TPC-H
  AddEdge("tpch.lineitem", "l_orderkey", "tpch.orders", "o_orderkey");
  AddEdge("tpch.orders", "o_custkey", "tpch.customer", "c_custkey");
  AddEdge("tpch.lineitem", "l_partkey", "tpch.part", "p_partkey");
  AddEdge("tpch.lineitem", "l_suppkey", "tpch.supplier", "s_suppkey");
  AddEdge("tpch.partsupp", "ps_partkey", "tpch.part", "p_partkey");
  AddEdge("tpch.partsupp", "ps_suppkey", "tpch.supplier", "s_suppkey");
  AddEdge("tpch.customer", "c_nationkey", "tpch.nation", "n_nationkey");
  AddEdge("tpch.supplier", "s_nationkey", "tpch.nation", "n_nationkey");
  AddEdge("tpch.nation", "n_regionkey", "tpch.region", "r_regionkey");
  // TPC-C
  AddEdge("tpcc.district", "d_w_id", "tpcc.warehouse", "w_id");
  AddEdge("tpcc.customer", "c_w_id", "tpcc.warehouse", "w_id");
  AddEdge("tpcc.orders", "o_c_id", "tpcc.customer", "c_id");
  AddEdge("tpcc.order_line", "ol_o_id", "tpcc.orders", "o_id");
  AddEdge("tpcc.order_line", "ol_i_id", "tpcc.item", "i_id");
  AddEdge("tpcc.stock", "s_i_id", "tpcc.item", "i_id");
  AddEdge("tpcc.stock", "s_w_id", "tpcc.warehouse", "w_id");
  // TPC-E
  AddEdge("tpce.security", "s_co_id", "tpce.company", "co_id");
  AddEdge("tpce.daily_market", "dm_s_symb", "tpce.security", "s_symb");
  AddEdge("tpce.trade", "t_s_symb", "tpce.security", "s_symb");
  AddEdge("tpce.trade", "t_ca_id", "tpce.customer_account", "ca_id");
  AddEdge("tpce.holding", "h_ca_id", "tpce.customer_account", "ca_id");
  AddEdge("tpce.holding", "h_s_symb", "tpce.security", "s_symb");
  // NREF
  AddEdge("nref.neighboring_seq", "n_p_id", "nref.protein", "p_id");
  AddEdge("nref.annotation", "a_p_id", "nref.protein", "p_id");
  AddEdge("nref.protein", "p_species", "nref.taxonomy", "tax_id");
}

std::vector<const StatementGenerator::JoinEdge*>
StatementGenerator::EdgesTouching(TableId t) const {
  std::vector<const JoinEdge*> out;
  for (const JoinEdge& e : edges_) {
    if (e.left.table == t || e.right.table == t) out.push_back(&e);
  }
  return out;
}

TableId StatementGenerator::PickTable(const std::string& dataset,
                                      bool weight_by_size) {
  std::vector<TableId> tables = catalog_->TablesOfDataset(dataset);
  WFIT_CHECK(!tables.empty(), "unknown dataset " + dataset);
  std::vector<double> weights;
  weights.reserve(tables.size());
  for (TableId t : tables) {
    double rows = static_cast<double>(catalog_->table(t).row_count);
    weights.push_back(weight_by_size ? std::log2(rows + 2.0) : 1.0);
  }
  return tables[rng_.PickWeighted(weights)];
}

void StatementGenerator::AddPredicate(TableId table, double sel_exp_min,
                                      double sel_exp_max,
                                      bool require_selective,
                                      std::vector<sql::Predicate>* where) {
  const TableInfo& info = catalog_->table(table);
  std::vector<uint32_t> eligible;
  for (uint32_t i = 0; i < info.columns.size(); ++i) {
    if (!require_selective ||
        info.columns[i].distinct_values > kEnumDistinctThreshold) {
      eligible.push_back(i);
    }
  }
  if (eligible.empty()) {
    for (uint32_t i = 0; i < info.columns.size(); ++i) eligible.push_back(i);
  }
  uint32_t col = eligible[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
  const ColumnInfo& c = info.columns[col];
  sql::Predicate p;
  p.lhs = Qualified(*catalog_, ColumnRef{table, col});
  if (c.distinct_values <= kEnumDistinctThreshold || rng_.Bernoulli(0.25)) {
    // Equality on an enum-ish or occasionally any column.
    p.kind = sql::Predicate::Kind::kCompare;
    p.op = sql::CompareOp::kEq;
    p.value.is_string = false;
    double v = c.min_value +
               std::floor(rng_.Uniform(0.0, 1.0) *
                          static_cast<double>(c.distinct_values)) *
                   (c.max_value - c.min_value) /
                   static_cast<double>(std::max<uint64_t>(1, c.distinct_values));
    p.value.number = v;
  } else {
    // Range with log-uniform selectivity.
    double sel = std::pow(10.0, rng_.Uniform(sel_exp_min, sel_exp_max));
    double width = (c.max_value - c.min_value) * sel;
    double center = rng_.Uniform(c.min_value, c.max_value);
    p.kind = sql::Predicate::Kind::kBetween;
    p.low.is_string = false;
    p.low.number = std::max(c.min_value, center - width / 2);
    p.high.is_string = false;
    p.high.number = std::min(c.max_value, p.low.number + width);
  }
  where->push_back(std::move(p));
}

Statement StatementGenerator::Finish(const sql::SqlStatement& ast) {
  std::string text = sql::Print(ast);
  auto bound = binder_.BindSql(text);
  WFIT_CHECK(bound.ok(), "generator produced unbindable SQL: " +
                             bound.status().ToString() + " [" + text + "]");
  return std::move(bound).value();
}

Statement StatementGenerator::GenerateQuery(const std::string& dataset) {
  sql::SelectStmt sel;
  TableId seed_table = PickTable(dataset, /*weight_by_size=*/true);
  std::set<TableId> in_query = {seed_table};
  std::vector<TableId> frontier = {seed_table};

  // Random walk over the join graph.
  int joins = 0;
  while (joins < options_.max_joins &&
         rng_.Bernoulli(options_.join_extend_prob)) {
    // Collect edges that connect the query to a new table.
    std::vector<const JoinEdge*> expanding;
    for (TableId t : in_query) {
      for (const JoinEdge* e : EdgesTouching(t)) {
        TableId other = (e->left.table == t) ? e->right.table : e->left.table;
        if (in_query.count(other) == 0) expanding.push_back(e);
      }
    }
    if (expanding.empty()) break;
    const JoinEdge* e = expanding[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(expanding.size()) - 1))];
    sql::Predicate join;
    join.kind = sql::Predicate::Kind::kJoin;
    join.op = sql::CompareOp::kEq;
    join.lhs = Qualified(*catalog_, e->left);
    join.rhs = Qualified(*catalog_, e->right);
    sel.where.push_back(std::move(join));
    in_query.insert(e->left.table);
    in_query.insert(e->right.table);
    ++joins;
  }

  for (TableId t : in_query) {
    sql::TableRef ref;
    ref.name = catalog_->table(t).qualified_name();
    sel.from.push_back(std::move(ref));
  }

  // Predicates: at least one on the seed table.
  AddPredicate(seed_table, options_.query_sel_exp_min,
               options_.query_sel_exp_max, /*require_selective=*/false,
               &sel.where);
  if (rng_.Bernoulli(options_.second_pred_prob)) {
    AddPredicate(seed_table, options_.query_sel_exp_min,
                 options_.query_sel_exp_max, /*require_selective=*/false,
                 &sel.where);
  }
  for (TableId t : in_query) {
    if (t == seed_table) continue;
    if (rng_.Bernoulli(options_.joined_table_pred_prob)) {
      AddPredicate(t, options_.query_sel_exp_min, options_.query_sel_exp_max,
                   /*require_selective=*/false, &sel.where);
    }
  }

  // Select list.
  if (rng_.Bernoulli(options_.count_star_prob)) {
    sel.count_star = true;
  } else {
    const TableInfo& info = catalog_->table(seed_table);
    int ncols = static_cast<int>(rng_.UniformInt(1, 2));
    for (int i = 0; i < ncols; ++i) {
      uint32_t col = static_cast<uint32_t>(
          rng_.UniformInt(0, static_cast<int64_t>(info.columns.size()) - 1));
      sel.select_list.push_back(
          Qualified(*catalog_, ColumnRef{seed_table, col}));
    }
  }

  if (rng_.Bernoulli(options_.order_by_prob)) {
    const TableInfo& info = catalog_->table(seed_table);
    uint32_t col = static_cast<uint32_t>(
        rng_.UniformInt(0, static_cast<int64_t>(info.columns.size()) - 1));
    sel.order_by.push_back(Qualified(*catalog_, ColumnRef{seed_table, col}));
  }

  return Finish(sel);
}

Statement StatementGenerator::GenerateUpdate(const std::string& dataset) {
  double r = rng_.Uniform(0.0, 1.0);
  TableId table = PickTable(dataset, /*weight_by_size=*/true);
  const TableInfo& info = catalog_->table(table);
  const std::string qualified = info.qualified_name();

  if (r < options_.insert_fraction) {
    sql::InsertStmt ins;
    ins.table = qualified;
    ins.num_rows = static_cast<uint64_t>(rng_.UniformInt(1, 20));
    return Finish(ins);
  }
  if (r < options_.insert_fraction + options_.delete_fraction) {
    sql::DeleteStmt del;
    del.table = qualified;
    AddPredicate(table, options_.update_sel_exp_min,
                 options_.update_sel_exp_max, /*require_selective=*/true,
                 &del.where);
    return Finish(del);
  }
  sql::UpdateStmt upd;
  upd.table = qualified;
  int nset = static_cast<int>(rng_.UniformInt(1, 2));
  std::set<std::string> chosen;
  for (int i = 0; i < nset; ++i) {
    uint32_t col = static_cast<uint32_t>(
        rng_.UniformInt(0, static_cast<int64_t>(info.columns.size()) - 1));
    chosen.insert(info.columns[col].name);
  }
  upd.set_columns.assign(chosen.begin(), chosen.end());
  AddPredicate(table, options_.update_sel_exp_min,
               options_.update_sel_exp_max, /*require_selective=*/true,
               &upd.where);
  return Finish(upd);
}

}  // namespace wfit
