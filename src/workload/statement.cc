#include "workload/statement.h"

#include <sstream>

namespace wfit {

std::string ToString(const Statement& stmt, const Catalog& catalog) {
  std::ostringstream os;
  switch (stmt.kind) {
    case StatementKind::kSelect: os << "SELECT"; break;
    case StatementKind::kUpdate: os << "UPDATE"; break;
    case StatementKind::kDelete: os << "DELETE"; break;
    case StatementKind::kInsert: os << "INSERT"; break;
  }
  os << "{";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i > 0) os << ", ";
    const StatementTable& t = stmt.tables[i];
    os << catalog.table(t.table).qualified_name() << "(";
    for (size_t j = 0; j < t.predicates.size(); ++j) {
      if (j > 0) os << ",";
      const ScanPredicate& p = t.predicates[j];
      os << catalog.column(p.column).name << (p.equality ? "=" : "~")
         << p.selectivity;
    }
    os << ")";
  }
  if (!stmt.joins.empty()) {
    os << " joins=" << stmt.joins.size();
  }
  os << "}";
  return os.str();
}

}  // namespace wfit
