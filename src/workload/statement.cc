#include "workload/statement.h"

#include <bit>
#include <sstream>

namespace wfit {

namespace {

/// FNV-1a accumulation over 64-bit words.
inline void Mix(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= 0x100000001B3ull;
}

inline void Mix(uint64_t* h, double v) {
  // +0.0 and -0.0 compare equal but differ bitwise; selectivities are
  // products of positive factors, so normalizing zero is enough.
  Mix(h, std::bit_cast<uint64_t>(v == 0.0 ? 0.0 : v));
}

inline void Mix(uint64_t* h, const ColumnRef& c) {
  Mix(h, (static_cast<uint64_t>(c.table) << 32) | c.column);
}

}  // namespace

uint64_t Statement::Fingerprint() const {
  if (fingerprint_cache_ != 0) return fingerprint_cache_;
  uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis = the salt
  Mix(&h, static_cast<uint64_t>(kind));
  Mix(&h, tables.size());
  for (const StatementTable& t : tables) {
    Mix(&h, static_cast<uint64_t>(t.table));
    Mix(&h, t.predicates.size());
    for (const ScanPredicate& p : t.predicates) {
      Mix(&h, p.column);
      Mix(&h, (static_cast<uint64_t>(p.equality) << 1) |
                  static_cast<uint64_t>(p.sargable));
      Mix(&h, p.selectivity);
    }
    Mix(&h, t.referenced_columns.size());
    for (uint32_t c : t.referenced_columns) Mix(&h, static_cast<uint64_t>(c));
  }
  Mix(&h, joins.size());
  for (const JoinClause& j : joins) {
    Mix(&h, j.left);
    Mix(&h, j.right);
  }
  Mix(&h, order_by.size());
  for (const ColumnRef& c : order_by) Mix(&h, c);
  Mix(&h, group_by.size());
  for (const ColumnRef& c : group_by) Mix(&h, c);
  Mix(&h, set_columns.size());
  for (uint32_t c : set_columns) Mix(&h, static_cast<uint64_t>(c));
  Mix(&h, insert_rows);
  if (h == 0) h = 1;  // keep 0 as the "not computed" sentinel
  fingerprint_cache_ = h;
  return h;
}

bool SameCostShape(const Statement& a, const Statement& b) {
  auto same_pred = [](const ScanPredicate& x, const ScanPredicate& y) {
    return x.column == y.column && x.equality == y.equality &&
           x.sargable == y.sargable && x.selectivity == y.selectivity;
  };
  if (a.kind != b.kind || a.tables.size() != b.tables.size() ||
      a.joins.size() != b.joins.size() ||
      a.order_by.size() != b.order_by.size() ||
      a.group_by.size() != b.group_by.size() ||
      a.set_columns != b.set_columns || a.insert_rows != b.insert_rows) {
    return false;
  }
  for (size_t i = 0; i < a.tables.size(); ++i) {
    const StatementTable& ta = a.tables[i];
    const StatementTable& tb = b.tables[i];
    if (ta.table != tb.table ||
        ta.referenced_columns != tb.referenced_columns ||
        ta.predicates.size() != tb.predicates.size()) {
      return false;
    }
    for (size_t j = 0; j < ta.predicates.size(); ++j) {
      if (!same_pred(ta.predicates[j], tb.predicates[j])) return false;
    }
  }
  for (size_t i = 0; i < a.joins.size(); ++i) {
    if (a.joins[i].left != b.joins[i].left ||
        a.joins[i].right != b.joins[i].right) {
      return false;
    }
  }
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i] != b.order_by[i]) return false;
  }
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    if (a.group_by[i] != b.group_by[i]) return false;
  }
  return true;
}

std::string ToString(const Statement& stmt, const Catalog& catalog) {
  std::ostringstream os;
  switch (stmt.kind) {
    case StatementKind::kSelect: os << "SELECT"; break;
    case StatementKind::kUpdate: os << "UPDATE"; break;
    case StatementKind::kDelete: os << "DELETE"; break;
    case StatementKind::kInsert: os << "INSERT"; break;
  }
  os << "{";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i > 0) os << ", ";
    const StatementTable& t = stmt.tables[i];
    os << catalog.table(t.table).qualified_name() << "(";
    for (size_t j = 0; j < t.predicates.size(); ++j) {
      if (j > 0) os << ",";
      const ScanPredicate& p = t.predicates[j];
      os << catalog.column(p.column).name << (p.equality ? "=" : "~")
         << p.selectivity;
    }
    os << ")";
  }
  if (!stmt.joins.empty()) {
    os << " joins=" << stmt.joins.size();
  }
  os << "}";
  return os.str();
}

}  // namespace wfit
