// The paper's evaluation workload (Sec. 6.1): eight consecutive phases of
// 200 statements each; every phase favors specific datasets, adjacent phases
// overlap in their focus, and phases alternate in query/update mix. This is
// the "stress test" workload of the online-tuning benchmark [15].
#ifndef WFIT_WORKLOAD_BENCHMARK_TRACE_H_
#define WFIT_WORKLOAD_BENCHMARK_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "workload/generator.h"
#include "workload/statement.h"

namespace wfit {

struct TraceOptions {
  int num_phases = 8;
  int statements_per_phase = 200;
  uint64_t seed = 20120402;
  /// Probability a statement targets the phase's primary dataset (the
  /// remainder goes to the secondary, which becomes primary next phase —
  /// "adjacent phases overlap in the focused data sets").
  double focus_weight = 0.75;
  /// Per-phase fraction of update statements; cycled if shorter than
  /// num_phases. Early phases are read-mostly (the paper notes the earlier
  /// queries are "mostly read-only statements").
  std::vector<double> update_fractions = {0.02, 0.08, 0.20, 0.38,
                                          0.15, 0.42, 0.25, 0.45};
  GeneratorOptions generator;
};

struct TraceEntry {
  Statement statement;
  int phase = 0;
  std::string dataset;
};

/// Generates the full trace; deterministic in TraceOptions::seed.
std::vector<TraceEntry> GenerateBenchmarkTrace(const Catalog& catalog,
                                               const TraceOptions& options);

/// Strips trace metadata, leaving the plain workload stream Q.
Workload ToWorkload(const std::vector<TraceEntry>& trace);

}  // namespace wfit

#endif  // WFIT_WORKLOAD_BENCHMARK_TRACE_H_
