// Schema catalog: tables, columns and their statistics. The cost model is
// purely statistics-driven (as is the paper's evaluation, which measures
// optimizer-estimated cost), so the catalog stores cardinalities and column
// domains but no base data.
#ifndef WFIT_CATALOG_CATALOG_H_
#define WFIT_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wfit {

/// Dense table identifier: index into Catalog's table vector.
using TableId = uint32_t;

/// A column inside a specific table.
struct ColumnRef {
  TableId table = 0;
  uint32_t column = 0;

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.table == b.table && a.column == b.column;
  }
  friend bool operator!=(const ColumnRef& a, const ColumnRef& b) {
    return !(a == b);
  }
  friend bool operator<(const ColumnRef& a, const ColumnRef& b) {
    return a.table != b.table ? a.table < b.table : a.column < b.column;
  }
};

/// Per-column statistics. All columns are modeled with a numeric domain
/// [min_value, max_value]; string-typed columns in the real benchmarks are
/// mapped onto dictionary codes, which preserves selectivity arithmetic.
struct ColumnInfo {
  std::string name;
  /// Number of distinct values; drives equality selectivity (1/distinct).
  uint64_t distinct_values = 1;
  /// Storage width in bytes; drives row width, index size and build cost.
  uint32_t width_bytes = 8;
  double min_value = 0.0;
  double max_value = 1.0;
};

/// A base table with statistics.
struct TableInfo {
  /// Dataset tag, e.g. "tpch"; tables are addressed as "dataset.name".
  std::string dataset;
  std::string name;
  uint64_t row_count = 0;
  std::vector<ColumnInfo> columns;

  std::string qualified_name() const { return dataset + "." + name; }

  /// Sum of column widths: bytes per row, used for scan and build costs.
  uint32_t RowWidth() const;
};

/// The schema catalog. Tables are registered once (AddTable) and then only
/// read; TableId values remain stable for the catalog's lifetime.
class Catalog {
 public:
  /// Registers a table. Fails with AlreadyExists if the qualified name is
  /// taken, or InvalidArgument for empty/duplicate column lists.
  StatusOr<TableId> AddTable(TableInfo table);

  /// Looks up "dataset.name" (or a bare name if unambiguous).
  StatusOr<TableId> FindTable(const std::string& name) const;

  /// Looks up a column by name within a table.
  StatusOr<uint32_t> FindColumn(TableId table, const std::string& name) const;

  const TableInfo& table(TableId id) const {
    WFIT_CHECK(id < tables_.size(), "bad TableId");
    return tables_[id];
  }
  const ColumnInfo& column(const ColumnRef& ref) const {
    const TableInfo& t = table(ref.table);
    WFIT_CHECK(ref.column < t.columns.size(), "bad ColumnRef");
    return t.columns[ref.column];
  }
  size_t num_tables() const { return tables_.size(); }

  /// All tables belonging to a dataset tag.
  std::vector<TableId> TablesOfDataset(const std::string& dataset) const;

  /// Human-readable "dataset.table.column".
  std::string ColumnName(const ColumnRef& ref) const;

 private:
  std::vector<TableInfo> tables_;
  std::unordered_map<std::string, TableId> by_qualified_name_;
  // Bare-name index; value is the table id, or kAmbiguous if several
  // datasets reuse the name.
  static constexpr TableId kAmbiguous = static_cast<TableId>(-1);
  std::unordered_map<std::string, TableId> by_bare_name_;
};

}  // namespace wfit

#endif  // WFIT_CATALOG_CATALOG_H_
