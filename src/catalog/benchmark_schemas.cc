#include "catalog/benchmark_schemas.h"

#include <algorithm>
#include <cmath>

namespace wfit {

namespace {

// Days are encoded as integers (days since 1990-01-01); dictionary-coded
// strings use their code range as the numeric domain.
ColumnInfo Col(std::string name, uint64_t distinct, uint32_t width,
               double min_value, double max_value) {
  ColumnInfo c;
  c.name = std::move(name);
  c.distinct_values = distinct;
  c.width_bytes = width;
  c.min_value = min_value;
  c.max_value = max_value;
  return c;
}

uint64_t Scaled(uint64_t rows, const BenchmarkScale& scale) {
  double r = static_cast<double>(rows) * scale.factor;
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(r)));
}

// Distinct counts of key-like columns scale with the table; enums do not.
uint64_t ScaledDistinct(uint64_t distinct, uint64_t scaled_rows) {
  return std::max<uint64_t>(1, std::min<uint64_t>(distinct, scaled_rows));
}

Status AddTable(Catalog* catalog, const BenchmarkScale& scale,
                std::string dataset, std::string name, uint64_t rows,
                std::vector<ColumnInfo> columns) {
  TableInfo t;
  t.dataset = std::move(dataset);
  t.name = std::move(name);
  t.row_count = Scaled(rows, scale);
  for (ColumnInfo& c : columns) {
    c.distinct_values = ScaledDistinct(c.distinct_values, t.row_count);
  }
  t.columns = std::move(columns);
  return catalog->AddTable(std::move(t)).status();
}

}  // namespace

Status AddTpchSchema(Catalog* catalog, const BenchmarkScale& scale) {
  // Cardinalities follow TPC-H at SF 0.5 (the benchmark hosts four
  // databases; each contributes roughly 0.7 GB).
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "lineitem", 3000000,
      {Col("l_orderkey", 750000, 8, 1, 3000000),
       Col("l_partkey", 100000, 8, 1, 100000),
       Col("l_suppkey", 5000, 8, 1, 5000),
       Col("l_quantity", 50, 8, 1, 50),
       Col("l_extendedprice", 500000, 8, 900, 105000),
       Col("l_discount", 11, 8, 0.0, 0.10),
       Col("l_tax", 9, 8, 0.0, 0.08),
       Col("l_returnflag", 3, 4, 0, 2),
       Col("l_shipdate", 2526, 8, 8036, 10562),
       Col("l_receiptdate", 2555, 8, 8037, 10592)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "orders", 750000,
      {Col("o_orderkey", 750000, 8, 1, 3000000),
       Col("o_custkey", 50000, 8, 1, 75000),
       Col("o_orderstatus", 3, 4, 0, 2),
       Col("o_totalprice", 700000, 8, 850, 560000),
       Col("o_orderdate", 2406, 8, 8036, 10441),
       Col("o_orderpriority", 5, 4, 0, 4)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "customer", 75000,
      {Col("c_custkey", 75000, 8, 1, 75000),
       Col("c_nationkey", 25, 4, 0, 24),
       Col("c_acctbal", 70000, 8, -1000, 10000),
       Col("c_mktsegment", 5, 4, 0, 4)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "part", 100000,
      {Col("p_partkey", 100000, 8, 1, 100000),
       Col("p_brand", 25, 4, 0, 24),
       Col("p_type", 150, 4, 0, 149),
       Col("p_size", 50, 4, 1, 50),
       Col("p_retailprice", 60000, 8, 900, 2100)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "supplier", 5000,
      {Col("s_suppkey", 5000, 8, 1, 5000),
       Col("s_nationkey", 25, 4, 0, 24),
       Col("s_acctbal", 5000, 8, -1000, 10000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpch", "partsupp", 400000,
      {Col("ps_partkey", 100000, 8, 1, 100000),
       Col("ps_suppkey", 5000, 8, 1, 5000),
       Col("ps_availqty", 10000, 8, 1, 10000),
       Col("ps_supplycost", 100000, 8, 1, 1000)}));
  WFIT_RETURN_IF_ERROR(AddTable(catalog, scale, "tpch", "nation", 25,
                                {Col("n_nationkey", 25, 4, 0, 24),
                                 Col("n_regionkey", 5, 4, 0, 4)}));
  WFIT_RETURN_IF_ERROR(AddTable(catalog, scale, "tpch", "region", 5,
                                {Col("r_regionkey", 5, 4, 0, 4),
                                 Col("r_name", 5, 20, 0, 4)}));
  return Status::Ok();
}

Status AddTpccSchema(Catalog* catalog, const BenchmarkScale& scale) {
  // 50-warehouse TPC-C.
  WFIT_RETURN_IF_ERROR(AddTable(catalog, scale, "tpcc", "warehouse", 50,
                                {Col("w_id", 50, 4, 1, 50),
                                 Col("w_tax", 40, 8, 0.0, 0.2),
                                 Col("w_ytd", 50, 8, 0, 1e7)}));
  WFIT_RETURN_IF_ERROR(AddTable(catalog, scale, "tpcc", "district", 500,
                                {Col("d_w_id", 50, 4, 1, 50),
                                 Col("d_id", 10, 4, 1, 10),
                                 Col("d_tax", 100, 8, 0.0, 0.2),
                                 Col("d_next_o_id", 500, 8, 1, 100000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpcc", "customer", 1500000,
      {Col("c_w_id", 50, 4, 1, 50),
       Col("c_d_id", 10, 4, 1, 10),
       Col("c_id", 3000, 8, 1, 3000),
       Col("c_last", 1000, 20, 0, 999),
       Col("c_credit", 2, 4, 0, 1),
       Col("c_balance", 100000, 8, -10000, 50000),
       Col("c_since", 1500, 8, 9000, 10500)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpcc", "orders", 1500000,
      {Col("o_w_id", 50, 4, 1, 50),
       Col("o_d_id", 10, 4, 1, 10),
       Col("o_id", 100000, 8, 1, 100000),
       Col("o_c_id", 3000, 8, 1, 3000),
       Col("o_entry_d", 1500, 8, 9000, 10500),
       Col("o_carrier_id", 10, 4, 1, 10)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpcc", "order_line", 15000000,
      {Col("ol_w_id", 50, 4, 1, 50),
       Col("ol_d_id", 10, 4, 1, 10),
       Col("ol_o_id", 100000, 8, 1, 100000),
       Col("ol_number", 15, 4, 1, 15),
       Col("ol_i_id", 100000, 8, 1, 100000),
       Col("ol_amount", 500000, 8, 0, 10000),
       Col("ol_delivery_d", 1500, 8, 9000, 10500)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpcc", "stock", 5000000,
      {Col("s_w_id", 50, 4, 1, 50),
       Col("s_i_id", 100000, 8, 1, 100000),
       Col("s_quantity", 100, 4, 0, 100),
       Col("s_ytd", 100000, 8, 0, 100000),
       Col("s_order_cnt", 1000, 4, 0, 1000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpcc", "item", 100000,
      {Col("i_id", 100000, 8, 1, 100000),
       Col("i_im_id", 10000, 8, 1, 10000),
       Col("i_price", 9000, 8, 1, 100),
       Col("i_name", 99000, 20, 0, 98999)}));
  return Status::Ok();
}

Status AddTpceSchema(Catalog* catalog, const BenchmarkScale& scale) {
  // 5000-customer TPC-E slice; the tables referenced by the paper's example
  // query (security, company, daily_market) plus the trading core.
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "security", 34250,
      {Col("s_symb", 34250, 16, 0, 34249),
       Col("s_co_id", 25000, 8, 1, 25000),
       Col("s_pe", 20000, 8, 1.0, 120.0),
       Col("s_exch_date", 9000, 8, 2000, 11000),
       Col("s_52wk_high", 30000, 8, 1, 5000),
       Col("s_dividend", 8000, 8, 0, 50)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "company", 25000,
      {Col("co_id", 25000, 8, 1, 25000),
       Col("co_name", 25000, 24, 0, 24999),
       Col("co_open_date", 20000, 8, -60000, 10000),
       Col("co_rate", 30, 4, 0, 29),
       Col("co_country", 90, 4, 0, 89)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "daily_market", 2250000,
      {Col("dm_date", 1305, 8, 9000, 10305),
       Col("dm_s_symb", 34250, 16, 0, 34249),
       Col("dm_close", 400000, 8, 1, 5000),
       Col("dm_high", 400000, 8, 1, 5100),
       Col("dm_low", 400000, 8, 0.5, 5000),
       Col("dm_vol", 900000, 8, 0, 1e7)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "trade", 4000000,
      {Col("t_id", 4000000, 8, 1, 4000000),
       Col("t_dts", 1400000, 8, 9000, 10305),
       Col("t_s_symb", 34250, 16, 0, 34249),
       Col("t_ca_id", 25000, 8, 1, 25000),
       Col("t_qty", 800, 4, 1, 800),
       Col("t_trade_price", 500000, 8, 1, 5000),
       Col("t_tax", 90000, 8, 0, 500)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "holding", 450000,
      {Col("h_t_id", 450000, 8, 1, 4000000),
       Col("h_ca_id", 25000, 8, 1, 25000),
       Col("h_s_symb", 34250, 16, 0, 34249),
       Col("h_dts", 400000, 8, 9000, 10305),
       Col("h_qty", 800, 4, 1, 800),
       Col("h_price", 400000, 8, 1, 5000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "tpce", "customer_account", 25000,
      {Col("ca_id", 25000, 8, 1, 25000),
       Col("ca_c_id", 5000, 8, 1, 5000),
       Col("ca_bal", 24000, 8, -100000, 1e6),
       Col("ca_tax_st", 3, 4, 0, 2)}));
  return Status::Ok();
}

Status AddNrefSchema(Catalog* catalog, const BenchmarkScale& scale) {
  // The PIR non-redundant reference protein database, as modeled by the
  // online-tuning benchmark.
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "nref", "protein", 1000000,
      {Col("p_id", 1000000, 8, 1, 1000000),
       Col("p_seq_length", 8000, 4, 10, 36000),
       Col("p_mol_weight", 700000, 8, 1000, 4000000),
       Col("p_species", 50000, 4, 0, 49999),
       Col("p_created", 5000, 8, 0, 5000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "nref", "neighboring_seq", 5000000,
      {Col("n_p_id", 1000000, 8, 1, 1000000),
       Col("n_neighbor_id", 1000000, 8, 1, 1000000),
       Col("n_score", 10000, 8, 0, 1000),
       Col("n_align_len", 5000, 4, 10, 36000)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "nref", "annotation", 3000000,
      {Col("a_p_id", 1000000, 8, 1, 1000000),
       Col("a_type", 500, 4, 0, 499),
       Col("a_date", 5000, 8, 0, 5000),
       Col("a_source", 10000, 4, 0, 9999)}));
  WFIT_RETURN_IF_ERROR(AddTable(
      catalog, scale, "nref", "taxonomy", 50000,
      {Col("tax_id", 50000, 8, 0, 49999),
       Col("tax_parent", 20000, 8, 0, 49999),
       Col("tax_rank", 30, 4, 0, 29)}));
  return Status::Ok();
}

Catalog BuildBenchmarkCatalog(const BenchmarkScale& scale) {
  Catalog catalog;
  Status st = AddTpchSchema(&catalog, scale);
  WFIT_CHECK(st.ok(), st.ToString());
  st = AddTpccSchema(&catalog, scale);
  WFIT_CHECK(st.ok(), st.ToString());
  st = AddTpceSchema(&catalog, scale);
  WFIT_CHECK(st.ok(), st.ToString());
  st = AddNrefSchema(&catalog, scale);
  WFIT_CHECK(st.ok(), st.ToString());
  return catalog;
}

const std::vector<std::string>& BenchmarkDatasets() {
  static const std::vector<std::string> kDatasets = {"tpch", "tpcc", "tpce",
                                                     "nref"};
  return kDatasets;
}

}  // namespace wfit
