#include "catalog/catalog.h"

#include <unordered_set>

namespace wfit {

uint32_t TableInfo::RowWidth() const {
  uint32_t width = 0;
  for (const ColumnInfo& c : columns) width += c.width_bytes;
  return width;
}

StatusOr<TableId> Catalog::AddTable(TableInfo table) {
  if (table.name.empty() || table.dataset.empty()) {
    return Status::InvalidArgument("table requires dataset and name");
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("table " + table.qualified_name() +
                                   " has no columns");
  }
  std::unordered_set<std::string> seen;
  for (const ColumnInfo& c : table.columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("unnamed column in " +
                                     table.qualified_name());
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column " + c.name + " in " +
                                     table.qualified_name());
    }
    if (c.distinct_values == 0) {
      return Status::InvalidArgument("column " + c.name +
                                     " has zero distinct values");
    }
    if (c.max_value < c.min_value) {
      return Status::InvalidArgument("column " + c.name +
                                     " has empty domain");
    }
  }
  std::string qualified = table.qualified_name();
  if (by_qualified_name_.count(qualified) != 0) {
    return Status::AlreadyExists("table " + qualified);
  }
  TableId id = static_cast<TableId>(tables_.size());
  by_qualified_name_[qualified] = id;
  auto [it, inserted] = by_bare_name_.emplace(table.name, id);
  if (!inserted) it->second = kAmbiguous;
  tables_.push_back(std::move(table));
  return id;
}

StatusOr<TableId> Catalog::FindTable(const std::string& name) const {
  if (auto it = by_qualified_name_.find(name);
      it != by_qualified_name_.end()) {
    return it->second;
  }
  if (auto it = by_bare_name_.find(name); it != by_bare_name_.end()) {
    if (it->second == kAmbiguous) {
      return Status::InvalidArgument("table name " + name +
                                     " is ambiguous; qualify with dataset");
    }
    return it->second;
  }
  return Status::NotFound("table " + name);
}

StatusOr<uint32_t> Catalog::FindColumn(TableId table,
                                       const std::string& name) const {
  const TableInfo& t = this->table(table);
  for (uint32_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == name) return i;
  }
  return Status::NotFound("column " + name + " in " + t.qualified_name());
}

std::vector<TableId> Catalog::TablesOfDataset(
    const std::string& dataset) const {
  std::vector<TableId> out;
  for (TableId id = 0; id < tables_.size(); ++id) {
    if (tables_[id].dataset == dataset) out.push_back(id);
  }
  return out;
}

std::string Catalog::ColumnName(const ColumnRef& ref) const {
  const TableInfo& t = table(ref.table);
  return t.qualified_name() + "." + t.columns[ref.column].name;
}

}  // namespace wfit
