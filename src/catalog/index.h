// Secondary index definitions and the interning pool that assigns stable
// IndexId values. An IndexId names one element of the paper's universe `I`
// of possible indices; configurations are sets of IndexIds.
#ifndef WFIT_CATALOG_INDEX_H_
#define WFIT_CATALOG_INDEX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace wfit {

/// Dense identifier for an interned index definition.
using IndexId = uint32_t;

/// A (possibly multi-column) B-tree index over one table. Column order is
/// significant: a prefix of the key columns can serve equality/range
/// predicates, and the full key serves ORDER BY.
struct IndexDef {
  TableId table = 0;
  std::vector<uint32_t> columns;  // ordinals within `table`, non-empty

  friend bool operator==(const IndexDef& a, const IndexDef& b) {
    return a.table == b.table && a.columns == b.columns;
  }
};

struct IndexDefHash {
  size_t operator()(const IndexDef& d) const {
    size_t h = std::hash<uint64_t>()(d.table);
    for (uint32_t c : d.columns) h = h * 1315423911u + c + 0x9e3779b9;
    return h;
  }
};

/// Interns IndexDefs so every distinct index has exactly one IndexId.
/// Append-only; ids remain valid for the pool's lifetime.
class IndexPool {
 public:
  explicit IndexPool(const Catalog* catalog) : catalog_(catalog) {
    WFIT_CHECK(catalog != nullptr, "IndexPool requires a catalog");
  }

  /// Returns the id for `def`, interning it on first sight.
  IndexId Intern(const IndexDef& def);

  const IndexDef& def(IndexId id) const {
    WFIT_CHECK(id < defs_.size(), "bad IndexId");
    return defs_[id];
  }
  size_t size() const { return defs_.size(); }
  const Catalog& catalog() const { return *catalog_; }

  /// Canonical display name, e.g. "ix_tpch.lineitem(l_shipdate,l_tax)".
  std::string Name(IndexId id) const;

  /// Width in bytes of one index entry (key columns + row pointer).
  uint32_t EntryWidth(IndexId id) const;

  /// All interned indices over `table`.
  std::vector<IndexId> IndicesOnTable(TableId table) const;

 private:
  const Catalog* catalog_;
  std::vector<IndexDef> defs_;
  std::unordered_map<IndexDef, IndexId, IndexDefHash> interned_;
};

}  // namespace wfit

#endif  // WFIT_CATALOG_INDEX_H_
