// The four datasets of the online index-tuning benchmark (Schnaitter &
// Polyzotis, SMDB'09) that the paper's evaluation runs on: TPC-H, TPC-C,
// TPC-E and the real-life NREF protein database. Only statistics are
// materialized (see DESIGN.md, substitution table).
#ifndef WFIT_CATALOG_BENCHMARK_SCHEMAS_H_
#define WFIT_CATALOG_BENCHMARK_SCHEMAS_H_

#include "catalog/catalog.h"

namespace wfit {

/// Scale factor 1.0 reproduces the paper's ~2.9 GB multi-database host;
/// smaller factors shrink row counts proportionally (floor of 1 row).
struct BenchmarkScale {
  double factor = 1.0;
};

/// Adds the TPC-H schema (8 tables) under dataset tag "tpch".
Status AddTpchSchema(Catalog* catalog, const BenchmarkScale& scale = {});

/// Adds the TPC-C schema (7 tables) under dataset tag "tpcc".
Status AddTpccSchema(Catalog* catalog, const BenchmarkScale& scale = {});

/// Adds the TPC-E schema (6 tables) under dataset tag "tpce".
Status AddTpceSchema(Catalog* catalog, const BenchmarkScale& scale = {});

/// Adds the NREF schema (4 tables) under dataset tag "nref".
Status AddNrefSchema(Catalog* catalog, const BenchmarkScale& scale = {});

/// Builds the full multi-database catalog used by the benchmark workload.
Catalog BuildBenchmarkCatalog(const BenchmarkScale& scale = {});

/// The dataset tags in benchmark order: {"tpch", "tpcc", "tpce", "nref"}.
const std::vector<std::string>& BenchmarkDatasets();

}  // namespace wfit

#endif  // WFIT_CATALOG_BENCHMARK_SCHEMAS_H_
