#include "catalog/index.h"

namespace wfit {

IndexId IndexPool::Intern(const IndexDef& def) {
  WFIT_CHECK(!def.columns.empty(), "index with no columns");
  WFIT_CHECK(def.table < catalog_->num_tables(), "index on unknown table");
  const TableInfo& t = catalog_->table(def.table);
  for (uint32_t c : def.columns) {
    WFIT_CHECK(c < t.columns.size(), "index on unknown column");
  }
  auto it = interned_.find(def);
  if (it != interned_.end()) return it->second;
  IndexId id = static_cast<IndexId>(defs_.size());
  defs_.push_back(def);
  interned_.emplace(def, id);
  return id;
}

std::string IndexPool::Name(IndexId id) const {
  const IndexDef& d = def(id);
  const TableInfo& t = catalog_->table(d.table);
  std::string out = "ix_" + t.qualified_name() + "(";
  for (size_t i = 0; i < d.columns.size(); ++i) {
    if (i > 0) out += ",";
    out += t.columns[d.columns[i]].name;
  }
  out += ")";
  return out;
}

uint32_t IndexPool::EntryWidth(IndexId id) const {
  const IndexDef& d = def(id);
  const TableInfo& t = catalog_->table(d.table);
  uint32_t width = 8;  // row pointer
  for (uint32_t c : d.columns) width += t.columns[c].width_bytes;
  return width;
}

std::vector<IndexId> IndexPool::IndicesOnTable(TableId table) const {
  std::vector<IndexId> out;
  for (IndexId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].table == table) out.push_back(id);
  }
  return out;
}

}  // namespace wfit
