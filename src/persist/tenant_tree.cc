#include "persist/tenant_tree.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace wfit::persist {

namespace fs = std::filesystem;

namespace {

bool SafeChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EncodeTenantDir(const std::string& tenant_id) {
  std::string out;
  out.reserve(tenant_id.size());
  for (char c : tenant_id) {
    if (SafeChar(c)) {  // '%' is not safe, so decoding is unambiguous
      out += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  // "." and ".." are legal tenant ids but reserved path names.
  if (out == ".") return "%2E";
  if (out == "..") return "%2E%2E";
  if (out.empty()) return "%";  // the empty id still needs a directory name
  return out;
}

std::string DecodeTenantDir(const std::string& dir_name) {
  if (dir_name == "%") return "";
  std::string out;
  out.reserve(dir_name.size());
  for (size_t i = 0; i < dir_name.size(); ++i) {
    if (dir_name[i] == '%' && i + 2 < dir_name.size()) {
      int hi = HexDigit(dir_name[i + 1]);
      int lo = HexDigit(dir_name[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += dir_name[i];
  }
  return out;
}

std::string TenantCheckpointDir(const std::string& root,
                                const std::string& tenant_id) {
  return (fs::path(root) / EncodeTenantDir(tenant_id)).string();
}

StatusOr<std::vector<std::string>> ListTenantIds(const std::string& root) {
  std::vector<std::string> ids;
  std::error_code ec;
  if (!fs::exists(root, ec)) return ids;
  // Error-code overloads throughout: a subtree vanishing or turning
  // unreadable mid-listing (external cleanup racing us) must surface as a
  // Status, not a std::filesystem_error.
  fs::directory_iterator it(root, ec);
  if (ec) {
    return Status::Internal("cannot list checkpoint root " + root + ": " +
                            ec.message());
  }
  for (fs::directory_iterator end; it != end;) {
    std::error_code type_ec;
    if (it->is_directory(type_ec) && !type_ec) {
      ids.push_back(DecodeTenantDir(it->path().filename().string()));
    }
    it.increment(ec);
    if (ec) {  // a failed increment lands on end, so check before looping
      return Status::Internal("cannot list checkpoint root " + root + ": " +
                              ec.message());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace wfit::persist
