#include "persist/tenant_tree.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "persist/codec.h"

namespace wfit::persist {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kPackMagic = 0x4B504657u;  // "WFPK" (LE)
constexpr uint32_t kPackVersion = 1;

bool SafeChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// A file name that is safe to create verbatim inside a directory: no
/// separators, no traversal, not empty. Everything our snapshot/journal
/// writers produce qualifies; a hostile pack must not escape the dir.
bool SafeFileName(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  for (char c : name) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return true;
}

Status SyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("cannot open for fsync: " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed: " + path);
  return Status::Ok();
}

}  // namespace

std::string EncodeTenantDir(const std::string& tenant_id) {
  std::string out;
  out.reserve(tenant_id.size());
  for (char c : tenant_id) {
    // A leading '_' is escaped even though '_' is safe elsewhere: names
    // starting with '_' are reserved for non-tenant subtrees of the
    // checkpoint root (the "_archive" cold tier), so the encoder must
    // never produce one. Decoding is unchanged ("%5F" was always an
    // escape for '_').
    if (SafeChar(c) && !(out.empty() && c == '_')) {
      out += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  // "." and ".." are legal tenant ids but reserved path names.
  if (out == ".") return "%2E";
  if (out == "..") return "%2E%2E";
  if (out.empty()) return "%";  // the empty id still needs a directory name
  return out;
}

std::string DecodeTenantDir(const std::string& dir_name) {
  if (dir_name == "%") return "";
  std::string out;
  out.reserve(dir_name.size());
  for (size_t i = 0; i < dir_name.size(); ++i) {
    if (dir_name[i] == '%' && i + 2 < dir_name.size()) {
      int hi = HexDigit(dir_name[i + 1]);
      int lo = HexDigit(dir_name[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += dir_name[i];
  }
  return out;
}

std::string TenantCheckpointDir(const std::string& root,
                                const std::string& tenant_id) {
  return (fs::path(root) / EncodeTenantDir(tenant_id)).string();
}

StatusOr<std::vector<std::string>> ListTenantIds(const std::string& root,
                                                 uint64_t* skipped) {
  std::vector<std::string> ids;
  if (skipped != nullptr) *skipped = 0;
  std::error_code ec;
  if (!fs::exists(root, ec)) return ids;
  // Error-code overloads throughout: a subtree vanishing or turning
  // unreadable mid-listing (external cleanup racing us) must surface as a
  // Status, not a std::filesystem_error.
  fs::directory_iterator it(root, ec);
  if (ec) {
    return Status::Internal("cannot list checkpoint root " + root + ": " +
                            ec.message());
  }
  auto skip = [&] {
    if (skipped != nullptr) ++*skipped;
  };
  for (fs::directory_iterator end; it != end;) {
    std::error_code type_ec;
    if (it->is_directory(type_ec) && !type_ec) {
      // Only names EncodeTenantDir could have produced are tenant
      // directories: the decoded id must re-encode to the exact entry
      // name. "lost+found", editor droppings, or a truncated "%2" can
      // never be ours — skip them instead of inventing a phantom tenant
      // whose re-admission would then fail.
      const std::string name = it->path().filename().string();
      const std::string id = DecodeTenantDir(name);
      if (!name.empty() && name[0] == '_') {
        // Reserved non-tenant subtree (the "_archive" cold tier): not a
        // stray, not a tenant.
      } else if (EncodeTenantDir(id) == name) {
        ids.push_back(id);
      } else {
        skip();
      }
    } else {
      // Regular files / sockets / unreadable entries in the root are not
      // tenants; recovery of everything else must proceed.
      skip();
    }
    it.increment(ec);
    if (ec) {  // a failed increment lands on end, so check before looping
      return Status::Internal("cannot list checkpoint root " + root + ": " +
                              ec.message());
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

StatusOr<std::string> PackCheckpointDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    return Status::NotFound("pack: no such checkpoint directory: " + dir);
  }
  // Deterministic member order (sorted names) so identical trees pack to
  // identical bytes.
  std::vector<std::string> names;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::Internal("pack: cannot list " + dir);
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) return Status::Internal("pack: cannot list " + dir);
    std::error_code type_ec;
    if (it->is_regular_file(type_ec) && !type_ec) {
      names.push_back(it->path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());

  Encoder e;
  e.PutU32(kPackMagic);
  e.PutU32(kPackVersion);
  e.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    std::ifstream in((fs::path(dir) / name).string(), std::ios::binary);
    if (!in) return Status::Internal("pack: cannot read " + name);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    if (in.bad()) return Status::Internal("pack: read failed for " + name);
    e.PutString(name);
    e.PutString(contents);
  }
  const uint32_t crc = Crc32(e.data());
  e.PutU32(crc);
  return e.Release();
}

Status UnpackCheckpointDir(std::string_view pack, const std::string& dir) {
  if (pack.size() < 16) {
    return Status::InvalidArgument("unpack: truncated pack");
  }
  // Verify the trailer CRC over everything before it, then parse.
  Decoder crc_d(pack.substr(pack.size() - 4));
  uint32_t stored_crc = 0;
  WFIT_RETURN_IF_ERROR(crc_d.GetU32(&stored_crc));
  const std::string_view body = pack.substr(0, pack.size() - 4);
  if (Crc32(body) != stored_crc) {
    return Status::InvalidArgument("unpack: pack crc mismatch");
  }
  Decoder d(body);
  uint32_t magic = 0, version = 0, count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&magic));
  WFIT_RETURN_IF_ERROR(d.GetU32(&version));
  if (magic != kPackMagic) {
    return Status::InvalidArgument("unpack: bad magic");
  }
  if (version != kPackVersion) {
    return Status::InvalidArgument("unpack: unsupported pack version " +
                                   std::to_string(version));
  }
  WFIT_RETURN_IF_ERROR(d.GetU32(&count));
  // Fully decode (and vet names) before touching the filesystem so a
  // corrupt pack rejects without side effects.
  std::vector<std::pair<std::string, std::string>> files;
  files.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name, contents;
    WFIT_RETURN_IF_ERROR(d.GetString(&name));
    WFIT_RETURN_IF_ERROR(d.GetString(&contents));
    if (!SafeFileName(name)) {
      return Status::InvalidArgument("unpack: unsafe file name: " + name);
    }
    files.emplace_back(std::move(name), std::move(contents));
  }
  if (!d.done()) {
    return Status::InvalidArgument("unpack: trailing bytes after pack");
  }

  // Replace the directory: the migrated tree is authoritative; merging
  // with a stale local tree could resurrect an older incarnation.
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) return Status::Internal("unpack: cannot clear " + dir);
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("unpack: cannot create " + dir);
  for (const auto& [name, contents] : files) {
    const std::string path = (fs::path(dir) / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("unpack: cannot write " + path);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    if (!out) return Status::Internal("unpack: write failed for " + path);
    WFIT_RETURN_IF_ERROR(SyncFile(path));
  }
  return SyncFile(dir);
}

}  // namespace wfit::persist
