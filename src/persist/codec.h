// Binary encoding primitives for the persistence subsystem: little-endian
// fixed-width integers, bit-exact doubles (IEEE-754 bit pattern through a
// uint64), length-prefixed strings and sets. The Decoder is fully
// bounds-checked and returns Status on any truncation — framing CRCs catch
// corruption, the decoder catches structural damage, and nothing ever reads
// past the buffer.
#ifndef WFIT_PERSIST_CODEC_H_
#define WFIT_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/index_set.h"

namespace wfit::persist {

class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Bit-exact: the IEEE-754 representation round-trips unchanged, which
  /// the recovery determinism contract depends on.
  void PutDouble(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  /// u32 count + u32 ids (sorted, as IndexSet stores them).
  void PutIndexSet(const IndexSet& set);
  void PutU32Vector(const std::vector<uint32_t>& v);
  void PutU64Vector(const std::vector<uint64_t>& v);
  void PutDoubleVector(const std::vector<double>& v);

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);
  Status GetIndexSet(IndexSet* out);
  Status GetU32Vector(std::vector<uint32_t>* out);
  Status GetU64Vector(std::vector<uint64_t>* out);
  Status GetDoubleVector(std::vector<double>* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const {
    return n <= remaining()
               ? Status::Ok()
               : Status::InvalidArgument("decode: truncated buffer");
  }
  /// Element-count prefix check: a corrupt count must not drive a huge
  /// allocation — `count * elem_size` bytes must actually be present.
  Status NeedElements(uint32_t count, size_t elem_size) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_CODEC_H_
