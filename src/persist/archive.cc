#include "persist/archive.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32.h"
#include "persist/codec.h"

namespace wfit::persist {

namespace {

namespace fs = std::filesystem;

constexpr char kSegmentPrefix[] = "archive-";
constexpr char kSegmentSuffix[] = ".wfseg";
constexpr char kTombstoneFile[] = "tombstones.wfat";
constexpr size_t kSegmentHeaderBytes = 8;   // magic + version
constexpr size_t kSegmentTrailerBytes = 16;  // footer_off + footer_crc + magic

std::string SegmentName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return buf;
}

bool ParseSegmentName(const std::string& filename, uint64_t* seq) {
  const size_t prefix = sizeof(kSegmentPrefix) - 1;
  const size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (filename.size() != prefix + 20 + suffix) return false;
  if (filename.compare(0, prefix, kSegmentPrefix) != 0) return false;
  if (filename.compare(prefix + 20, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix; i < prefix + 20; ++i) {
    char c = filename[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal("archive: open dir " + dir);
  Status st = ::fsync(fd) == 0 ? Status::Ok()
                               : Status::Internal("archive: fsync dir " + dir);
  ::close(fd);
  return st;
}

StatusOr<std::string> PreadSlice(const std::string& path, uint64_t offset,
                                 uint64_t len) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("archive: cannot open " + path);
  std::string out(len, '\0');
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::pread(fd, out.data() + got, len - got,
                        static_cast<off_t>(offset + got));
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("archive: short read from " + path);
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

}  // namespace

std::string ArchiveDir(const std::string& checkpoint_root) {
  return (fs::path(checkpoint_root) / "_archive").string();
}

StatusOr<ArchiveStore> ArchiveStore::Open(const std::string& checkpoint_root) {
  return Open(checkpoint_root, Options());
}

StatusOr<ArchiveStore> ArchiveStore::Open(const std::string& checkpoint_root,
                                          Options options) {
  ArchiveStore store(ArchiveDir(checkpoint_root), options);
  std::error_code ec;
  if (!fs::exists(store.dir_, ec)) return store;

  // Segments ascending by seq so a tenant re-archived later overwrites
  // its older entry.
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& entry : fs::directory_iterator(store.dir_, ec)) {
    uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq)) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [seq, path] : segments) {
    store.next_seq_ = std::max(store.next_seq_, seq + 1);
    uint64_t size = fs::file_size(path, ec);
    if (ec || size < kSegmentHeaderBytes + kSegmentTrailerBytes) {
      ++store.corrupt_segments_;
      continue;
    }
    auto header = PreadSlice(path, 0, kSegmentHeaderBytes);
    auto trailer =
        PreadSlice(path, size - kSegmentTrailerBytes, kSegmentTrailerBytes);
    if (!header.ok() || !trailer.ok()) {
      ++store.corrupt_segments_;
      continue;
    }
    Decoder hd(*header);
    Decoder td(*trailer);
    uint32_t magic = 0, version = 0, footer_crc = 0, trailer_magic = 0;
    uint64_t footer_off = 0;
    if (!hd.GetU32(&magic).ok() || !hd.GetU32(&version).ok() ||
        !td.GetU64(&footer_off).ok() || !td.GetU32(&footer_crc).ok() ||
        !td.GetU32(&trailer_magic).ok() || magic != kArchiveMagic ||
        version != kArchiveVersion || trailer_magic != kArchiveMagic ||
        footer_off < kSegmentHeaderBytes ||
        footer_off > size - kSegmentTrailerBytes) {
      ++store.corrupt_segments_;
      continue;
    }
    auto footer =
        PreadSlice(path, footer_off, size - kSegmentTrailerBytes - footer_off);
    if (!footer.ok() || Crc32(*footer) != footer_crc) {
      ++store.corrupt_segments_;
      continue;
    }
    Decoder fd(*footer);
    uint32_t count = 0;
    bool bad = !fd.GetU32(&count).ok();
    for (uint32_t i = 0; !bad && i < count; ++i) {
      Entry e;
      std::string tenant;
      bad = !fd.GetString(&tenant).ok() || !fd.GetU64(&e.offset).ok() ||
            !fd.GetU64(&e.len).ok() || !fd.GetU32(&e.crc).ok() ||
            e.offset < kSegmentHeaderBytes || e.offset + e.len > footer_off;
      if (!bad) {
        e.segment_path = path;
        e.seq = seq;
        store.entries_[tenant] = std::move(e);
      }
    }
    if (bad || !fd.done()) ++store.corrupt_segments_;
  }

  // Tombstones: {tenant, seq} frames; an entry at seq <= the tombstone's
  // seq is dead. A torn tail truncates cleanly (stop at first bad frame).
  const std::string ts_path =
      (fs::path(store.dir_) / kTombstoneFile).string();
  std::ifstream in(ts_path, std::ios::binary);
  if (in) {
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    size_t pos = 0;
    while (pos + 8 <= contents.size()) {
      uint32_t len = 0, crc = 0;
      std::memcpy(&len, contents.data() + pos, 4);
      std::memcpy(&crc, contents.data() + pos + 4, 4);
      if (pos + 8 + len > contents.size()) break;
      std::string_view payload(contents.data() + pos + 8, len);
      if (Crc32(payload) != crc) break;
      Decoder d(payload);
      std::string tenant;
      uint64_t seq = 0;
      if (!d.GetString(&tenant).ok() || !d.GetU64(&seq).ok() || !d.done()) {
        break;
      }
      auto it = store.entries_.find(tenant);
      if (it != store.entries_.end() && it->second.seq <= seq) {
        store.entries_.erase(it);
      }
      ++store.tombstones_;
      pos += 8 + len;
    }
  }
  return store;
}

Status ArchiveStore::Stage(const std::string& tenant_id, std::string pack) {
  staged_bytes_ += pack.size();
  auto it = staged_.find(tenant_id);
  if (it != staged_.end()) staged_bytes_ -= it->second.size();
  staged_[tenant_id] = std::move(pack);
  if (staged_bytes_ >= options_.max_segment_bytes) return Flush();
  return Status::Ok();
}

Status ArchiveStore::WriteSegment(
    const std::map<std::string, std::string>& packs) {
  const uint64_t seq = next_seq_;
  Encoder header;
  header.PutU32(kArchiveMagic);
  header.PutU32(kArchiveVersion);
  std::string body = header.Release();

  Encoder footer;
  footer.PutU32(static_cast<uint32_t>(packs.size()));
  for (const auto& [tenant, pack] : packs) {
    footer.PutString(tenant);
    footer.PutU64(body.size());
    footer.PutU64(pack.size());
    footer.PutU32(Crc32(pack));
    body += pack;
  }
  const uint64_t footer_off = body.size();
  body += footer.data();
  Encoder trailer;
  trailer.PutU64(footer_off);
  trailer.PutU32(Crc32(footer.data()));
  trailer.PutU32(kArchiveMagic);
  body += trailer.data();

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return Status::Internal("archive: create_directories " + dir_);
  const std::string final_path = (fs::path(dir_) / SegmentName(seq)).string();
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("archive: open " + tmp_path);
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
            std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) return Status::Internal("archive: write failed: " + tmp_path);
  fs::rename(tmp_path, final_path, ec);
  if (ec) return Status::Internal("archive: rename " + tmp_path);
  WFIT_RETURN_IF_ERROR(SyncDir(dir_));

  // Durable: adopt the new entries.
  ++next_seq_;
  uint64_t offset = kSegmentHeaderBytes;
  for (const auto& [tenant, pack] : packs) {
    Entry e;
    e.segment_path = final_path;
    e.seq = seq;
    e.offset = offset;
    e.len = pack.size();
    e.crc = Crc32(pack);
    entries_[tenant] = std::move(e);
    offset += pack.size();
  }
  return Status::Ok();
}

Status ArchiveStore::Flush() {
  if (staged_.empty()) return Status::Ok();
  WFIT_RETURN_IF_ERROR(WriteSegment(staged_));
  staged_.clear();
  staged_bytes_ = 0;
  return Status::Ok();
}

bool ArchiveStore::Contains(const std::string& tenant_id) const {
  return staged_.count(tenant_id) > 0 || entries_.count(tenant_id) > 0;
}

StatusOr<std::string> ArchiveStore::Fetch(
    const std::string& tenant_id) const {
  auto sit = staged_.find(tenant_id);
  if (sit != staged_.end()) return sit->second;
  auto it = entries_.find(tenant_id);
  if (it == entries_.end()) {
    return Status::NotFound("archive: tenant not archived: " + tenant_id);
  }
  auto pack = PreadSlice(it->second.segment_path, it->second.offset,
                         it->second.len);
  WFIT_RETURN_IF_ERROR(pack.status());
  if (Crc32(*pack) != it->second.crc) {
    return Status::InvalidArgument("archive: entry checksum mismatch for " +
                                   tenant_id);
  }
  return pack;
}

Status ArchiveStore::Drop(const std::string& tenant_id) {
  auto sit = staged_.find(tenant_id);
  if (sit != staged_.end()) {
    staged_bytes_ -= sit->second.size();
    staged_.erase(sit);
  }
  auto it = entries_.find(tenant_id);
  if (it == entries_.end()) return Status::Ok();

  Encoder payload;
  payload.PutString(tenant_id);
  payload.PutU64(it->second.seq);
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data()));
  const std::string ts_path = (fs::path(dir_) / kTombstoneFile).string();
  std::FILE* f = std::fopen(ts_path.c_str(), "ab");
  if (f == nullptr) return Status::Internal("archive: open " + ts_path);
  bool ok = std::fwrite(frame.data().data(), 1, frame.size(), f) ==
                frame.size() &&
            std::fwrite(payload.data().data(), 1, payload.size(), f) ==
                payload.size() &&
            std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) return Status::Internal("archive: tombstone append failed");
  entries_.erase(it);
  ++tombstones_;
  return Status::Ok();
}

std::vector<std::string> ArchiveStore::Tenants() const {
  std::vector<std::string> out;
  out.reserve(entries_.size() + staged_.size());
  for (const auto& [tenant, entry] : entries_) out.push_back(tenant);
  for (const auto& [tenant, pack] : staged_) {
    if (entries_.count(tenant) == 0) out.push_back(tenant);
  }
  std::sort(out.begin(), out.end());
  return out;
}

ArchiveStats ArchiveStore::GetStats() const {
  ArchiveStats stats;
  stats.live_tenants = Tenants().size();
  stats.tombstones = tombstones_;
  stats.corrupt_segments = corrupt_segments_;
  for (const auto& [tenant, entry] : entries_) stats.live_bytes += entry.len;
  stats.live_bytes += staged_bytes_;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq)) {
      ++stats.segments;
      stats.segment_bytes += fs::file_size(entry.path(), ec);
    }
  }
  return stats;
}

Status ArchiveStore::Compact() {
  // Materialize every live entry, rewrite them as one fresh segment,
  // then delete the superseded files. Crash-safe: until the deletes, the
  // store just holds redundant copies and newest-seq-wins picks the new
  // one; the tombstone journal is cleared last (it only names seqs older
  // than the new segment, so it is inert against it).
  std::map<std::string, std::string> live;
  for (const auto& [tenant, entry] : entries_) {
    auto pack = Fetch(tenant);
    WFIT_RETURN_IF_ERROR(pack.status());
    live[tenant] = std::move(pack).value();
  }
  uint64_t new_seq = next_seq_;
  if (!live.empty()) {
    WFIT_RETURN_IF_ERROR(WriteSegment(live));
  }
  std::error_code ec;
  std::vector<std::string> stale;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq) &&
        seq < new_seq) {
      stale.push_back(entry.path().string());
    }
  }
  for (const std::string& path : stale) fs::remove(path, ec);
  fs::remove((fs::path(dir_) / kTombstoneFile).string(), ec);
  tombstones_ = 0;
  return Status::Ok();
}

}  // namespace wfit::persist
