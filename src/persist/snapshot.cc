#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/crc32.h"
#include "core/wfa_plus.h"
#include "core/wfit.h"
#include "persist/codec.h"

namespace wfit::persist {

namespace {

namespace fs = std::filesystem;

constexpr uint8_t kTunerWfit = 1;
constexpr uint8_t kTunerWfaPlus = 2;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".wfsnap";

std::string SnapshotName(uint64_t analyzed) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(analyzed), kSnapshotSuffix);
  return buf;
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

/// fsync a directory so a renamed-in file survives a crash.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  Status st = ::fsync(fd) == 0 ? Status::Ok() : ErrnoStatus("fsync dir", dir);
  ::close(fd);
  return st;
}

// --- pool section -------------------------------------------------------

void EncodePool(const IndexPool& pool, Encoder* e) {
  e->PutU32(static_cast<uint32_t>(pool.size()));
  for (IndexId id = 0; id < pool.size(); ++id) {
    const IndexDef& def = pool.def(id);
    e->PutU32(def.table);
    e->PutU32Vector(def.columns);
  }
}

/// Re-interns the recorded definitions in id order. The pool is
/// append-only, so a pool that already holds a prefix (or all) of them
/// verifies instead of growing; an id mismatch means the pool diverged
/// from the one the snapshot was taken against.
Status DecodePool(Decoder* d, IndexPool* pool) {
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&count));
  for (uint32_t expected = 0; expected < count; ++expected) {
    IndexDef def;
    WFIT_RETURN_IF_ERROR(d->GetU32(&def.table));
    WFIT_RETURN_IF_ERROR(d->GetU32Vector(&def.columns));
    if (def.columns.empty() ||
        def.table >= pool->catalog().num_tables()) {
      return Status::InvalidArgument("snapshot: bad index definition");
    }
    for (uint32_t col : def.columns) {
      if (col >= pool->catalog().table(def.table).columns.size()) {
        return Status::InvalidArgument("snapshot: bad index column");
      }
    }
    if (pool->Intern(def) != expected) {
      return Status::InvalidArgument(
          "snapshot: pool interning order diverged");
    }
  }
  return Status::Ok();
}

// --- windowed statistics ------------------------------------------------

void EncodeWindows(
    const std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>&
        windows,
    Encoder* e) {
  e->PutU32(static_cast<uint32_t>(windows.size()));
  for (const auto& [key, entries] : windows) {
    e->PutU64(key);
    e->PutU32(static_cast<uint32_t>(entries.size()));
    for (const auto& [n, v] : entries) {
      e->PutU64(n);
      e->PutDouble(v);
    }
  }
}

Status DecodeWindows(
    Decoder* d,
    std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>*
        out) {
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&count));
  out->clear();
  out->reserve(std::min<size_t>(count, 1 << 16));
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t key = 0;
    WFIT_RETURN_IF_ERROR(d->GetU64(&key));
    uint32_t entries = 0;
    WFIT_RETURN_IF_ERROR(d->GetU32(&entries));
    std::vector<std::pair<uint64_t, double>> window;
    window.reserve(std::min<size_t>(entries, 1 << 16));
    for (uint32_t j = 0; j < entries; ++j) {
      uint64_t n = 0;
      double v = 0.0;
      WFIT_RETURN_IF_ERROR(d->GetU64(&n));
      WFIT_RETURN_IF_ERROR(d->GetDouble(&v));
      // RecencyWindow aborts on non-monotonic positions (internal
      // invariant); reject them here so a damaged-but-checksummed file
      // degrades to the fallback snapshot instead of a crash loop.
      if (!window.empty() && n < window.back().first) {
        return Status::InvalidArgument(
            "snapshot: window positions not monotonic");
      }
      window.emplace_back(n, v);
    }
    out->emplace_back(key, std::move(window));
  }
  return Status::Ok();
}

void EncodeSelector(const SelectorState& s, Encoder* e) {
  e->PutIndexSet(s.universe);
  e->PutU64(s.position);
  e->PutString(s.rng_state);
  std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
      benefit;
  benefit.reserve(s.benefit_windows.size());
  for (const auto& [id, entries] : s.benefit_windows) {
    benefit.emplace_back(id, entries);
  }
  EncodeWindows(benefit, e);
  EncodeWindows(s.interaction_windows, e);
}

Status DecodeSelector(Decoder* d, SelectorState* out) {
  WFIT_RETURN_IF_ERROR(d->GetIndexSet(&out->universe));
  WFIT_RETURN_IF_ERROR(d->GetU64(&out->position));
  WFIT_RETURN_IF_ERROR(d->GetString(&out->rng_state));
  std::vector<std::pair<uint64_t, std::vector<std::pair<uint64_t, double>>>>
      benefit;
  WFIT_RETURN_IF_ERROR(DecodeWindows(d, &benefit));
  out->benefit_windows.clear();
  out->benefit_windows.reserve(benefit.size());
  for (auto& [key, entries] : benefit) {
    if (key > 0xFFFFFFFFull) {
      return Status::InvalidArgument("snapshot: benefit window key range");
    }
    out->benefit_windows.emplace_back(static_cast<IndexId>(key),
                                      std::move(entries));
  }
  WFIT_RETURN_IF_ERROR(DecodeWindows(d, &out->interaction_windows));
  return Status::Ok();
}

// --- per-part work function state ---------------------------------------

void EncodeParts(const std::vector<std::vector<IndexId>>& members,
                 const std::vector<std::vector<double>>& work_values,
                 const std::vector<Mask>& recs, Encoder* e) {
  e->PutU32(static_cast<uint32_t>(members.size()));
  for (size_t i = 0; i < members.size(); ++i) {
    e->PutU32Vector(members[i]);
    e->PutDoubleVector(work_values[i]);
    e->PutU32(recs[i]);
  }
}

Status DecodeParts(Decoder* d, std::vector<std::vector<IndexId>>* members,
                   std::vector<std::vector<double>>* work_values,
                   std::vector<Mask>* recs) {
  uint32_t parts = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&parts));
  members->clear();
  work_values->clear();
  recs->clear();
  for (uint32_t i = 0; i < parts; ++i) {
    std::vector<IndexId> m;
    std::vector<double> w;
    uint32_t rec = 0;
    WFIT_RETURN_IF_ERROR(d->GetU32Vector(&m));
    WFIT_RETURN_IF_ERROR(d->GetDoubleVector(&w));
    WFIT_RETURN_IF_ERROR(d->GetU32(&rec));
    members->push_back(std::move(m));
    work_values->push_back(std::move(w));
    recs->push_back(rec);
  }
  return Status::Ok();
}

// --- tuner payload ------------------------------------------------------

Status EncodeTuner(const Tuner& tuner, Encoder* e) {
  if (const Wfit* wfit = dynamic_cast<const Wfit*>(&tuner)) {
    WfitState state = wfit->ExportState();
    e->PutU8(kTunerWfit);
    EncodeParts(state.instance_members, state.work_values,
                state.current_recs, e);
    e->PutIndexSet(state.candidate_set);
    e->PutIndexSet(state.initial_materialized);
    e->PutU64(state.repartitions);
    e->PutU64(state.feedback_events);
    EncodeSelector(state.selector, e);
    return Status::Ok();
  }
  if (const WfaPlus* wfa = dynamic_cast<const WfaPlus*>(&tuner)) {
    WfaPlusState state = wfa->ExportState();
    e->PutU8(kTunerWfaPlus);
    EncodeParts(state.instance_members, state.work_values,
                state.current_recs, e);
    e->PutU64(state.feedback_events);
    return Status::Ok();
  }
  return Status::FailedPrecondition("snapshot: tuner \"" + tuner.name() +
                                    "\" is not snapshottable");
}

Status DecodeTuner(Decoder* d, Tuner* tuner) {
  uint8_t kind = 0;
  WFIT_RETURN_IF_ERROR(d->GetU8(&kind));
  if (kind == kTunerWfit) {
    Wfit* wfit = dynamic_cast<Wfit*>(tuner);
    if (wfit == nullptr) {
      return Status::InvalidArgument(
          "snapshot: holds WFIT state but the service tuner is not WFIT");
    }
    WfitState state;
    WFIT_RETURN_IF_ERROR(DecodeParts(d, &state.instance_members,
                                     &state.work_values,
                                     &state.current_recs));
    WFIT_RETURN_IF_ERROR(d->GetIndexSet(&state.candidate_set));
    WFIT_RETURN_IF_ERROR(d->GetIndexSet(&state.initial_materialized));
    WFIT_RETURN_IF_ERROR(d->GetU64(&state.repartitions));
    WFIT_RETURN_IF_ERROR(d->GetU64(&state.feedback_events));
    WFIT_RETURN_IF_ERROR(DecodeSelector(d, &state.selector));
    return wfit->RestoreState(state);
  }
  if (kind == kTunerWfaPlus) {
    WfaPlus* wfa = dynamic_cast<WfaPlus*>(tuner);
    if (wfa == nullptr) {
      return Status::InvalidArgument(
          "snapshot: holds WFA+ state but the service tuner is not WFA+");
    }
    WfaPlusState state;
    WFIT_RETURN_IF_ERROR(DecodeParts(d, &state.instance_members,
                                     &state.work_values,
                                     &state.current_recs));
    WFIT_RETURN_IF_ERROR(d->GetU64(&state.feedback_events));
    return wfa->RestoreState(state);
  }
  return Status::InvalidArgument("snapshot: unknown tuner kind");
}

// --- overload trailer ---------------------------------------------------
//
// Appended after the tuner payload. Pre-overload snapshots simply end at
// the tuner payload (the decoder sees d.done() and keeps the defaults), so
// version 1 files from older builds stay loadable.

void EncodeOverload(const OverloadPersist& o, Encoder* e) {
  e->PutU8(o.mode);
  e->PutDouble(o.sample_rate);
  e->PutU64(o.sample_seed);
  e->PutU32(static_cast<uint32_t>(o.dup_window.size()));
  for (uint64_t fp : o.dup_window) e->PutU64(fp);
}

Status DecodeOverload(Decoder* d, OverloadPersist* out) {
  WFIT_RETURN_IF_ERROR(d->GetU8(&out->mode));
  if (out->mode > 2) {
    return Status::InvalidArgument("snapshot: bad overload mode");
  }
  WFIT_RETURN_IF_ERROR(d->GetDouble(&out->sample_rate));
  if (!(out->sample_rate > 0.0) || out->sample_rate > 1.0) {
    return Status::InvalidArgument("snapshot: bad sample rate");
  }
  WFIT_RETURN_IF_ERROR(d->GetU64(&out->sample_seed));
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&count));
  if (count > 1 << 16) {
    return Status::InvalidArgument("snapshot: dup window too large");
  }
  out->dup_window.clear();
  out->dup_window.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t fp = 0;
    WFIT_RETURN_IF_ERROR(d->GetU64(&fp));
    out->dup_window.push_back(fp);
  }
  return Status::Ok();
}

std::string EncodeHeader(uint32_t magic, uint32_t version,
                         std::string_view payload) {
  Encoder header;
  header.PutU32(magic);
  header.PutU32(version);
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  header.PutU32(Crc32(header.data()));
  return header.Release();
}

}  // namespace

std::string SnapshotFileName(uint64_t analyzed) {
  return SnapshotName(analyzed);
}

StatusOr<std::string> EncodeSnapshotPayload(const Tuner& tuner,
                                            const IndexPool& pool,
                                            const SnapshotMeta& meta) {
  Encoder payload;
  payload.PutU64(meta.analyzed);
  payload.PutU64(meta.journal_lsn);
  EncodePool(pool, &payload);
  WFIT_RETURN_IF_ERROR(EncodeTuner(tuner, &payload));
  EncodeOverload(meta.overload, &payload);
  return payload.Release();
}

Status DecodeSnapshotPayload(std::string_view payload, Tuner* tuner,
                             IndexPool* pool, SnapshotMeta* meta) {
  WFIT_CHECK(tuner != nullptr && pool != nullptr && meta != nullptr,
             "DecodeSnapshotPayload requires tuner, pool and meta");
  Decoder d(payload);
  SnapshotMeta decoded;
  WFIT_RETURN_IF_ERROR(d.GetU64(&decoded.analyzed));
  WFIT_RETURN_IF_ERROR(d.GetU64(&decoded.journal_lsn));
  WFIT_RETURN_IF_ERROR(DecodePool(&d, pool));
  WFIT_RETURN_IF_ERROR(DecodeTuner(&d, tuner));
  if (!d.done()) {
    WFIT_RETURN_IF_ERROR(DecodeOverload(&d, &decoded.overload));
  }
  if (!d.done()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  *meta = decoded;
  return Status::Ok();
}

Status WriteFramedFile(const std::string& path, uint32_t magic,
                       uint32_t version, std::string_view payload) {
  const std::string header = EncodeHeader(magic, version, payload);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open", path);
  bool ok =
      std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size() &&
      std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) return Status::Internal("framed write failed: " + path);
  return Status::Ok();
}

StatusOr<uint64_t> WriteFramedFileDurable(const std::string& dir,
                                          const std::string& filename,
                                          uint32_t magic, uint32_t version,
                                          std::string_view payload) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("create_directories " + dir);
  const std::string final_path = (fs::path(dir) / filename).string();
  const std::string tmp_path = final_path + ".tmp";
  WFIT_RETURN_IF_ERROR(WriteFramedFile(tmp_path, magic, version, payload));
  uint64_t bytes = static_cast<uint64_t>(fs::file_size(tmp_path, ec));
  fs::rename(tmp_path, final_path, ec);
  if (ec) return Status::Internal("rename " + tmp_path);
  WFIT_RETURN_IF_ERROR(SyncDir(dir));
  return bytes;
}

StatusOr<uint64_t> WriteSnapshotPayload(const std::string& dir,
                                        std::string_view payload,
                                        uint64_t analyzed) {
  return WriteFramedFileDurable(dir, SnapshotName(analyzed), kSnapshotMagic,
                                kSnapshotVersion, payload);
}

StatusOr<std::string> ReadFramedFile(const std::string& path, uint32_t magic,
                                     uint32_t version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("framed file not found: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (contents.size() < kHeaderBytes) {
    return Status::InvalidArgument("framed file: short header");
  }
  Decoder header(std::string_view(contents).substr(0, kHeaderBytes));
  uint32_t file_magic = 0, file_version = 0, payload_crc = 0, header_crc = 0;
  uint64_t payload_len = 0;
  WFIT_CHECK(header.GetU32(&file_magic).ok() &&
                 header.GetU32(&file_version).ok() &&
                 header.GetU64(&payload_len).ok() &&
                 header.GetU32(&payload_crc).ok() &&
                 header.GetU32(&header_crc).ok(),
             "fixed-size header must decode");
  if (Crc32(std::string_view(contents).substr(0, kHeaderBytes - 4)) !=
      header_crc) {
    return Status::InvalidArgument("framed file: header checksum mismatch");
  }
  if (file_magic != magic) {
    return Status::InvalidArgument("framed file: bad magic");
  }
  if (file_version != version) {
    return Status::InvalidArgument("framed file: version mismatch (file v" +
                                   std::to_string(file_version) +
                                   ", reader v" + std::to_string(version) +
                                   ")");
  }
  if (contents.size() - kHeaderBytes != payload_len) {
    return Status::InvalidArgument("framed file: payload length mismatch");
  }
  std::string payload = contents.substr(kHeaderBytes, payload_len);
  if (Crc32(payload) != payload_crc) {
    return Status::InvalidArgument("framed file: payload checksum mismatch");
  }
  return payload;
}

Status WriteSnapshotFile(const std::string& path, const Tuner& tuner,
                         const IndexPool& pool, const SnapshotMeta& meta) {
  auto payload = EncodeSnapshotPayload(tuner, pool, meta);
  WFIT_RETURN_IF_ERROR(payload.status());
  return WriteFramedFile(path, kSnapshotMagic, kSnapshotVersion, *payload);
}

StatusOr<uint64_t> WriteSnapshot(const std::string& dir, const Tuner& tuner,
                                 const IndexPool& pool,
                                 const SnapshotMeta& meta, size_t keep) {
  auto payload = EncodeSnapshotPayload(tuner, pool, meta);
  WFIT_RETURN_IF_ERROR(payload.status());
  auto bytes = WriteSnapshotPayload(dir, *payload, meta.analyzed);
  WFIT_RETURN_IF_ERROR(bytes.status());
  // Prune: keep the newest `keep` (fallback depth), drop the rest.
  std::error_code ec;
  std::vector<std::string> snapshots = ListSnapshots(dir);
  for (size_t i = keep; i < snapshots.size(); ++i) {
    fs::remove(snapshots[i], ec);
  }
  return *bytes;
}

Status ReadSnapshot(const std::string& path, Tuner* tuner, IndexPool* pool,
                    SnapshotMeta* meta) {
  WFIT_CHECK(tuner != nullptr && pool != nullptr && meta != nullptr,
             "ReadSnapshot requires tuner, pool and meta");
  auto payload = ReadFramedFile(path, kSnapshotMagic, kSnapshotVersion);
  WFIT_RETURN_IF_ERROR(payload.status());
  return DecodeSnapshotPayload(*payload, tuner, pool, meta);
}

std::vector<std::string> ListSnapshots(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSnapshotPrefix, 0) == 0 &&
        name.size() > std::strlen(kSnapshotSuffix) &&
        name.compare(name.size() - std::strlen(kSnapshotSuffix),
                     std::string::npos, kSnapshotSuffix) == 0) {
      out.push_back(entry.path().string());
    }
  }
  // Fixed-width zero-padded analyzed counts: lexicographic descending ==
  // newest first.
  std::sort(out.rbegin(), out.rend());
  return out;
}

SnapshotLoadResult LoadLatestSnapshot(const std::string& dir, Tuner* tuner,
                                      IndexPool* pool) {
  SnapshotLoadResult result;
  for (const std::string& path : ListSnapshots(dir)) {
    SnapshotMeta meta;
    Status st = ReadSnapshot(path, tuner, pool, &meta);
    if (st.ok()) {
      result.loaded = true;
      result.meta = meta;
      result.path = path;
      return result;
    }
    ++result.skipped;  // fall back to the previous snapshot
  }
  return result;
}

}  // namespace wfit::persist
