// Delta snapshots: incremental checkpoints that diff the canonical
// snapshot payload against the previous checkpoint and persist only the
// changed slices, chained to their base by CRC.
//
// The canonical payload (persist/snapshot.h) is deterministic — the same
// tuner state always encodes to the same bytes — so a delta can be defined
// purely at the byte level: the payload is split into *units* (per-part
// work functions, selector windows, counters, the pool section, ...) by a
// chunker both the writer and the loader share, and a delta records, for
// each unit of the new payload, one of: "copy the base's unit", the new
// bytes, or a *patch* — a concatenation of base-unit ranges and shipped
// bytes. Patches are what make deltas small under WFIT's churn: a
// selector window is a ring (appends evict the oldest entry, shifting
// every byte), so a whole-unit diff would reship ~800 bytes per window
// per statement; the ring-shift patch ships just the appended entries.
// Applying a delta therefore reconstructs the exact payload a full
// snapshot would have contained, verified end-to-end by CRC: each delta
// names its base's payload CRC (the chain link) and its own reconstructed
// payload CRC (so a unit-granularity CRC collision can never smuggle a
// wrong byte through — the reconstruction is rejected and recovery falls
// back to an earlier chain state).
//
// Chain rules (pinned by delta_test.cc):
//   - a delta is only usable on top of its exact base (analyzed + CRC
//     both match); a corrupt or missing *full* snapshot invalidates every
//     delta chained to it — the loader falls back to the previous full
//     snapshot, never to an orphaned delta;
//   - a corrupt delta truncates the chain there: the prefix reconstructed
//     so far is still a valid durable state (the journal covers the rest);
//   - a full snapshot is forced every `full_every` deltas, on structural
//     change (part-structure or candidate-set churn), and whenever the
//     delta would not be materially smaller than the full payload.
#ifndef WFIT_PERSIST_DELTA_H_
#define WFIT_PERSIST_DELTA_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "persist/snapshot.h"

namespace wfit::persist {

inline constexpr uint32_t kDeltaMagic = 0x4C444657u;  // "WFDL" (LE)
inline constexpr uint32_t kDeltaVersion = 1;

/// Sections of the canonical snapshot payload, in payload order. The
/// (section, key) pair identifies a unit across payload versions of the
/// same tuner: parts are keyed by ordinal, selector windows by their
/// index / interaction key.
enum SnapshotSection : uint8_t {
  kSectionMeta = 1,         // analyzed + journal_lsn (16 bytes)
  kSectionPool = 2,         // index pool interning order (append-only)
  kSectionTunerHeader = 3,  // tuner kind tag + part count
  kSectionPart = 4,         // key = part ordinal: members, work, rec
  kSectionCandidates = 5,   // WFIT: candidate set + initial materialized
  kSectionCounters = 6,     // repartition / feedback counters
  kSectionSelectorCore = 7,  // universe + position + RNG stream state
  kSectionBenefitCount = 8,
  kSectionBenefitWindow = 9,  // key = IndexId
  kSectionInteractionCount = 10,
  kSectionInteractionWindow = 11,  // key = packed interaction pair
  kSectionOverload = 12,           // optional overload trailer
};

/// One contiguous slice of the canonical payload.
struct SnapshotUnit {
  uint8_t section = 0;
  uint64_t key = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
};

/// Splits a canonical snapshot payload into its units. The units are
/// contiguous, in payload order, and cover every byte — concatenating them
/// reproduces the payload exactly. InvalidArgument on a malformed payload.
StatusOr<std::vector<SnapshotUnit>> ChunkSnapshotPayload(
    std::string_view payload);

/// Delta files in `dir`, sorted ascending by (root analyzed, analyzed).
std::vector<std::string> ListDeltas(const std::string& dir);

/// Parses delta-<root>-<analyzed>.wfdelta; false for other names.
bool ParseDeltaName(const std::string& filename, uint64_t* root_analyzed,
                    uint64_t* analyzed);

/// Removes full snapshots beyond the newest `keep` and every delta whose
/// root full snapshot is no longer retained (orphaned deltas are
/// unusable by construction — see the chain rules above).
void PruneCheckpointDir(const std::string& dir, size_t keep);

/// Decides full-vs-delta per checkpoint and owns the writer-side chain
/// state (the previous checkpoint's unit signatures). Single-threaded:
/// the analysis worker owns it, like the journal writer.
class DeltaCheckpointer {
 public:
  struct Options {
    /// Master switch; off makes every Write a full snapshot (the PR 3
    /// behavior, bit-for-bit).
    bool enable_deltas = true;
    /// A full snapshot is forced after this many consecutive deltas.
    uint64_t full_every = 8;
    /// A delta larger than this fraction of the full payload is not worth
    /// chaining; write a full snapshot instead.
    double max_delta_fraction = 0.5;
    /// Full-snapshot chains retained on disk (PruneCheckpointDir).
    size_t keep_chains = 2;
  };

  struct Result {
    uint64_t bytes = 0;
    bool wrote_full = false;
    /// Journal-LSN horizon covered by the retained checkpoints after this
    /// write: every journal record below it is reflected in both of the
    /// two newest durable full snapshots, so the journal prefix may be
    /// compacted away (CompactJournal). 0 = nothing safely compactable.
    uint64_t cover_lsn = 0;
  };

  DeltaCheckpointer() = default;
  explicit DeltaCheckpointer(Options options) : options_(options) {}

  /// Writes the next checkpoint of `tuner` into `dir` — a delta against
  /// the previous checkpoint when allowed, a full snapshot otherwise.
  StatusOr<Result> Write(const std::string& dir, const Tuner& tuner,
                         const IndexPool& pool, const SnapshotMeta& meta);

  /// Continues an on-disk chain restored by LoadLatestSnapshot: the next
  /// Write diffs against `payload` (the reconstructed chain-tail payload)
  /// instead of forcing a fresh full snapshot. `root_journal_lsn` is the
  /// chain's full-snapshot journal LSN (the compaction horizon it pins).
  Status Seed(std::string payload, uint64_t root_analyzed,
              uint64_t root_journal_lsn, uint64_t deltas_in_chain);

  /// Forgets the chain; the next Write is a full snapshot.
  void Reset();

  bool seeded() const { return seeded_; }
  uint64_t deltas_in_chain() const { return deltas_in_chain_; }

 private:
  struct UnitSig {
    uint32_t crc = 0;
    uint64_t len = 0;
    /// Offset of the unit inside base_payload_ (patch ops copy ranges).
    uint64_t offset = 0;
  };

  /// Installs `payload` as the new diff base.
  Status Rebase(std::string_view payload,
                const std::vector<SnapshotUnit>& units, uint64_t analyzed);

  Options options_;
  bool seeded_ = false;
  /// The previous checkpoint's canonical payload: patch ops diff against
  /// its bytes, not just unit CRCs. One payload per open tuner (~tens of
  /// KB) — the price of shipping 4 window entries instead of 800 bytes.
  std::string base_payload_;
  uint64_t root_analyzed_ = 0;
  uint64_t base_analyzed_ = 0;   // chain tail
  uint32_t base_crc_ = 0;        // chain tail payload CRC
  uint64_t base_payload_len_ = 0;
  uint64_t deltas_in_chain_ = 0;
  std::map<std::pair<uint8_t, uint64_t>, UnitSig> sigs_;
  /// Pool-append support: CRC/length of the base pool unit's definition
  /// bytes (count prefix excluded), so an append-only-grown pool ships
  /// only the new definitions.
  uint32_t pool_defs_crc_ = 0;
  uint64_t pool_unit_len_ = 0;
  /// Structural-change detection: tuner kind and (for WFIT) the
  /// repartition counter of the base payload — a repartition forces a
  /// full snapshot even though the parts would diff cleanly.
  uint8_t base_kind_ = 0;
  uint64_t base_repartitions_ = 0;
  /// journal_lsn of the retained full snapshots, oldest first; the front
  /// is the compaction horizon once two fulls are durable.
  std::deque<uint64_t> retained_full_lsns_;
};

/// Chain-aware latest-checkpoint load: tries each full snapshot newest
/// first; for a loadable full, applies its delta chain in order, stopping
/// at the first unusable delta (the reconstructed prefix still wins over
/// the bare full). A corrupt full snapshot invalidates its whole chain.
/// When `checkpointer` is non-null it is seeded with the restored chain
/// tail so subsequent writes continue the chain.
SnapshotLoadResult LoadLatestCheckpoint(const std::string& dir, Tuner* tuner,
                                        IndexPool* pool,
                                        DeltaCheckpointer* checkpointer);

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_DELTA_H_
