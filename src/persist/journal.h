// Write-ahead journal for the online tuning service. Every ingested
// statement is appended (with its sequence number) BEFORE it is analyzed,
// and every applied DBA vote is appended with the statement boundary at
// which it took effect — so replaying the journal through the same tuner
// reproduces the analysis history exactly.
//
// Framing per record: [u32 payload_len][u32 payload_crc][payload]. The
// reader accepts every complete, checksummed record and stops cleanly at
// the first torn or corrupt one (a crash mid-append leaves a torn tail;
// that is expected, not an error). Reopening for append truncates the file
// back to the last complete record so new records are never hidden behind
// garbage.
//
// fsync batching: Append only buffers; Sync() makes everything appended so
// far durable. The service syncs once per ingested batch (before analysis)
// and before any analysis that follows a journaled vote, bounding loss to
// work that was never analyzed.
#ifndef WFIT_PERSIST_JOURNAL_H_
#define WFIT_PERSIST_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/index_set.h"
#include "persist/codec.h"
#include "workload/statement.h"

namespace wfit::persist {

enum class JournalRecordType : uint8_t {
  kStatement = 1,
  kFeedback = 2,
  /// Statement `seq` finished analysis (its post-slot votes precede this
  /// record). Markers pin the durable trajectory point: recovery replays
  /// exactly the statements with contiguous markers and re-queues the
  /// journaled-but-unanalyzed rest as fresh intake, so a crash between the
  /// batch WAL fsync and a vote's application can never push the replay
  /// past a boundary whose vote died in memory.
  kAnalyzed = 3,
  /// Overload-control epoch transition: from statement `seq` onward the
  /// service analyzes intake in `overload_mode` (0 = Normal, 1 = Shedding,
  /// 2 = Sampling) at `sample_rate`, with sampling decisions drawn from
  /// the deterministic per-tenant `sample_seed`. Replay re-derives every
  /// shed/sample decision from these records, so a recovered tenant's
  /// trajectory is bit-identical to the uninterrupted run.
  kEpoch = 4,
  /// Compaction base marker: only ever the FIRST record of a journal,
  /// written by CompactJournal when it drops a prefix already covered by
  /// durable checkpoints. Its `seq` is the LSN of the last dropped record,
  /// so record i of the remaining sequence has absolute LSN seq + i. The
  /// marker itself has no LSN — it is framing metadata, not history.
  kCompactionBase = 5,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kStatement;
  /// kStatement / kAnalyzed: the statement's sequence number in the
  /// analysis order.
  uint64_t seq = 0;
  Statement statement;
  /// kFeedback: the vote took effect when `boundary` statements had been
  /// analyzed (i.e. immediately after statement boundary-1, or before the
  /// very first statement when 0).
  uint64_t boundary = 0;
  /// Distinguishes the two application slots that share a boundary: a vote
  /// keyed to statement boundary-1 applies in its post-statement slot
  /// (post = true, before that statement's recommendation is recorded),
  /// while ASAP/stale votes apply in statement boundary's pre-statement
  /// slot (post = false). Replay preserves the recorded trajectory only by
  /// honoring the slot.
  bool post = false;
  IndexSet f_plus;
  IndexSet f_minus;
  /// kEpoch: overload-control state effective from statement `seq`.
  uint8_t overload_mode = 0;
  double sample_rate = 1.0;
  uint64_t sample_seed = 0;
};

/// Statement wire codec (shared with snapshots and tests). IndexIds do not
/// appear in statements; they bind to a catalog whose TableIds are stable
/// across restarts by construction.
void EncodeStatement(const Statement& stmt, Encoder* e);
Status DecodeStatement(Decoder* d, Statement* out);

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { Close(); }

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending after its last complete record:
  /// `valid_bytes`/`lsn` come from ReadJournal (0/0 for a fresh journal).
  /// The file is truncated to `valid_bytes` first, discarding any torn
  /// tail.
  Status Open(const std::string& path, uint64_t valid_bytes, uint64_t lsn);

  Status AppendStatement(uint64_t seq, const Statement& stmt);
  Status AppendFeedback(uint64_t boundary, bool post, const IndexSet& f_plus,
                        const IndexSet& f_minus);
  Status AppendAnalyzed(uint64_t seq);
  Status AppendEpoch(uint64_t seq, uint8_t overload_mode, double sample_rate,
                     uint64_t sample_seed);

  /// Makes every appended record durable (fflush + fsync).
  Status Sync();

  /// Pushes buffered appends into the kernel (fflush only, no fsync) so a
  /// group-commit batcher can make them durable with one fdatasync across
  /// many journals. Counts nothing toward syncs().
  Status Flush();

  /// The underlying descriptor, for batched fsync. Only valid while open;
  /// the owner must Forget() it from any batcher before Close().
  int fd() const;

  void Close();
  bool is_open() const { return file_ != nullptr; }

  /// Records in the file (pre-existing + appended).
  uint64_t lsn() const { return lsn_; }
  /// File size in bytes after the appends so far.
  uint64_t bytes() const { return bytes_; }
  uint64_t syncs() const { return syncs_; }

 private:
  Status AppendRecord(const std::string& payload);

  std::FILE* file_ = nullptr;
  uint64_t lsn_ = 0;
  uint64_t bytes_ = 0;
  uint64_t syncs_ = 0;
};

struct JournalReadResult {
  std::vector<JournalRecord> records;
  /// Offset one past the last complete record — the append position.
  uint64_t valid_bytes = 0;
  /// True when a torn/corrupt tail was skipped.
  bool truncated_tail = false;
  /// LSN of the last record compacted away (0 for an uncompacted journal):
  /// records[i] has absolute LSN base_lsn + i + 1. Reopening for append
  /// must re-stamp the writer at base_lsn + records.size().
  uint64_t base_lsn = 0;
};

/// Reads every complete record of `path`; tolerant of a torn or corrupt
/// tail (replay simply stops there). NotFound if the file does not exist.
/// A kCompactionBase marker (first record only) sets base_lsn and is not
/// returned in `records`.
StatusOr<JournalReadResult> ReadJournal(const std::string& path);

struct CompactionResult {
  uint64_t old_bytes = 0;
  uint64_t new_bytes = 0;
  uint64_t dropped_records = 0;
  /// The journal's base LSN after compaction.
  uint64_t base_lsn = 0;
  /// Append position / record count of the rewritten journal, for
  /// reopening a JournalWriter without a second read pass.
  uint64_t valid_bytes = 0;
  uint64_t record_count = 0;
};

/// Rewrites `path` without the records at absolute LSN <= cover_lsn,
/// prefixed by a kCompactionBase marker carrying the new base. The caller
/// must have closed any writer on `path`, and cover_lsn must be a
/// checkpoint-covered horizon (DeltaCheckpointer::Result::cover_lsn) —
/// compaction does not check that anything re-creates the dropped history.
/// Kept records are byte-copied, never re-encoded; the rewrite is durable
/// (tmp + fsync + rename + directory fsync) before the old bytes are gone.
/// A cover_lsn at or below the current base is a no-op. Any torn tail is
/// dropped, as reopening a writer would anyway.
StatusOr<CompactionResult> CompactJournal(const std::string& path,
                                          uint64_t cover_lsn);

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_JOURNAL_H_
