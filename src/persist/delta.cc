#include "persist/delta.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "persist/codec.h"

namespace wfit::persist {

namespace {

namespace fs = std::filesystem;

constexpr uint8_t kTunerWfit = 1;
constexpr uint8_t kTunerWfaPlus = 2;

constexpr char kDeltaPrefix[] = "delta-";
constexpr char kDeltaSuffix[] = ".wfdelta";

// Delta ops, in new-payload unit order. kCopy takes the base's
// (section, key) unit verbatim; kData carries the unit's new bytes;
// kPoolAppend rebuilds the pool unit as [new count][base defs][appended];
// kPatch rebuilds the unit as a concatenation of base-unit ranges and
// shipped bytes (ring-shifted windows, common prefix/suffix reuse).
constexpr uint8_t kOpCopy = 1;
constexpr uint8_t kOpData = 2;
constexpr uint8_t kOpPoolAppend = 3;
constexpr uint8_t kOpPatch = 4;

// kOpPatch part tags.
constexpr uint8_t kPartBase = 1;  // u64 offset + u64 len into the base unit
constexpr uint8_t kPartData = 2;  // shipped bytes (string)

std::string DeltaName(uint64_t root_analyzed, uint64_t analyzed) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s%020llu-%020llu%s", kDeltaPrefix,
                static_cast<unsigned long long>(root_analyzed),
                static_cast<unsigned long long>(analyzed), kDeltaSuffix);
  return buf;
}

bool ParseU64Fixed(std::string_view s, uint64_t* out) {
  if (s.size() != 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// snapshot-<analyzed>.wfsnap → analyzed.
bool ParseSnapshotName(const std::string& filename, uint64_t* analyzed) {
  constexpr char kPrefix[] = "snapshot-";
  constexpr char kSuffix[] = ".wfsnap";
  const size_t prefix = sizeof(kPrefix) - 1;
  const size_t suffix = sizeof(kSuffix) - 1;
  if (filename.size() != prefix + 20 + suffix) return false;
  if (filename.compare(0, prefix, kPrefix) != 0) return false;
  if (filename.compare(prefix + 20, suffix, kSuffix) != 0) return false;
  return ParseU64Fixed(std::string_view(filename).substr(prefix, 20),
                       analyzed);
}

uint64_t ReadU64Le(std::string_view bytes) {
  WFIT_CHECK(bytes.size() >= 8, "ReadU64Le needs 8 bytes");
  uint64_t v = 0;
  std::memcpy(&v, bytes.data(), 8);
  return v;
}

/// Fixed delta-payload preamble, before the op stream.
struct DeltaHeader {
  uint64_t analyzed = 0;
  uint64_t journal_lsn = 0;
  uint64_t root_analyzed = 0;
  uint64_t base_analyzed = 0;
  uint32_t base_crc = 0;
  uint32_t self_crc = 0;
  uint64_t self_len = 0;
};

Status DecodeDeltaHeader(Decoder* d, DeltaHeader* h) {
  WFIT_RETURN_IF_ERROR(d->GetU64(&h->analyzed));
  WFIT_RETURN_IF_ERROR(d->GetU64(&h->journal_lsn));
  WFIT_RETURN_IF_ERROR(d->GetU64(&h->root_analyzed));
  WFIT_RETURN_IF_ERROR(d->GetU64(&h->base_analyzed));
  WFIT_RETURN_IF_ERROR(d->GetU32(&h->base_crc));
  WFIT_RETURN_IF_ERROR(d->GetU32(&h->self_crc));
  WFIT_RETURN_IF_ERROR(d->GetU64(&h->self_len));
  return Status::Ok();
}

/// Applies a verified delta payload on top of `base`. The reconstruction
/// is checked against the delta's self CRC/length, so a unit-level CRC
/// collision at write time can never produce a wrong payload here — it
/// produces a rejected delta (chain truncates, recovery falls back).
StatusOr<std::string> ApplyDelta(std::string_view base,
                                 const std::vector<SnapshotUnit>& base_units,
                                 const DeltaHeader& h, uint32_t op_count,
                                 std::string_view ops) {
  std::map<std::pair<uint8_t, uint64_t>, const SnapshotUnit*> by_key;
  for (const SnapshotUnit& u : base_units) {
    by_key[{u.section, u.key}] = &u;
  }
  std::string out;
  out.reserve(h.self_len);
  Decoder d(ops);
  for (uint32_t i = 0; i < op_count; ++i) {
    uint8_t op = 0, section = 0;
    uint64_t key = 0;
    WFIT_RETURN_IF_ERROR(d.GetU8(&op));
    WFIT_RETURN_IF_ERROR(d.GetU8(&section));
    WFIT_RETURN_IF_ERROR(d.GetU64(&key));
    switch (op) {
      case kOpCopy: {
        auto it = by_key.find({section, key});
        if (it == by_key.end()) {
          return Status::InvalidArgument("delta: copy of unknown base unit");
        }
        out.append(base.substr(it->second->offset, it->second->len));
        break;
      }
      case kOpData: {
        std::string bytes;
        WFIT_RETURN_IF_ERROR(d.GetString(&bytes));
        out.append(bytes);
        break;
      }
      case kOpPoolAppend: {
        uint32_t new_count = 0;
        std::string appended;
        WFIT_RETURN_IF_ERROR(d.GetU32(&new_count));
        WFIT_RETURN_IF_ERROR(d.GetString(&appended));
        auto it = by_key.find({kSectionPool, 0});
        if (it == by_key.end() || it->second->len < 4) {
          return Status::InvalidArgument("delta: pool append without base");
        }
        Encoder count;
        count.PutU32(new_count);
        out.append(count.data());
        out.append(base.substr(it->second->offset + 4, it->second->len - 4));
        out.append(appended);
        break;
      }
      case kOpPatch: {
        auto it = by_key.find({section, key});
        if (it == by_key.end()) {
          return Status::InvalidArgument("delta: patch of unknown base unit");
        }
        std::string_view base_unit =
            base.substr(it->second->offset, it->second->len);
        uint32_t part_count = 0;
        WFIT_RETURN_IF_ERROR(d.GetU32(&part_count));
        for (uint32_t p = 0; p < part_count; ++p) {
          uint8_t tag = 0;
          WFIT_RETURN_IF_ERROR(d.GetU8(&tag));
          if (tag == kPartBase) {
            uint64_t off = 0, len = 0;
            WFIT_RETURN_IF_ERROR(d.GetU64(&off));
            WFIT_RETURN_IF_ERROR(d.GetU64(&len));
            if (off > base_unit.size() || len > base_unit.size() - off) {
              return Status::InvalidArgument(
                  "delta: patch range outside base unit");
            }
            out.append(base_unit.substr(off, len));
          } else if (tag == kPartData) {
            std::string bytes;
            WFIT_RETURN_IF_ERROR(d.GetString(&bytes));
            out.append(bytes);
          } else {
            return Status::InvalidArgument("delta: unknown patch part");
          }
        }
        break;
      }
      default:
        return Status::InvalidArgument("delta: unknown op");
    }
  }
  if (!d.done()) return Status::InvalidArgument("delta: trailing ops bytes");
  if (out.size() != h.self_len || Crc32(out) != h.self_crc) {
    return Status::InvalidArgument(
        "delta: reconstructed payload does not match its checksum");
  }
  return out;
}

/// Tries to express the changed unit `next` as a patch over `base_unit`.
/// Two matchers, cheapest sufficient one wins:
///   - ring shift, for window units: a window is a bounded ring, so the
///     new unit is usually [12-byte header][base entries minus the k
///     oldest][appended entries] — ship the header + appended entries;
///   - longest common prefix + suffix, for anything with a stable region
///     (the RNG stream text between twists, a part whose recommendation
///     changed but whose work values did not, ...).
/// Emits a kOpPatch and returns true only when it ships materially fewer
/// bytes than kOpData would; correctness never depends on the match (the
/// delta's self CRC verifies the reconstruction end to end).
bool EmitPatchOp(const SnapshotUnit& u, std::string_view next,
                 std::string_view base_unit, Encoder* ops) {
  struct Part {
    uint64_t off = 0;
    uint64_t len = 0;
    std::string_view data;
    bool is_base = false;
  };
  std::vector<Part> parts;
  const bool window = u.section == kSectionBenefitWindow ||
                      u.section == kSectionInteractionWindow;
  bool built = false;
  if (window && base_unit.size() >= 12 && next.size() >= 12 &&
      (base_unit.size() - 12) % 16 == 0 && (next.size() - 12) % 16 == 0) {
    // Entries are fixed 16-byte (position, value) pairs after the 12-byte
    // key+count header; old entries are immutable, so the byte match
    // below is exact whenever the ring really did shift by k.
    const uint64_t nb = (base_unit.size() - 12) / 16;
    const uint64_t nn = (next.size() - 12) / 16;
    for (uint64_t k = 0; k <= nb && !built; ++k) {
      const uint64_t surviving = nb - k;
      if (surviving > nn) continue;
      if (surviving == 0) break;  // nothing shared; fall through
      if (std::memcmp(base_unit.data() + 12 + 16 * k, next.data() + 12,
                      16 * surviving) != 0) {
        continue;
      }
      parts.push_back({0, 0, next.substr(0, 12), false});
      parts.push_back({12 + 16 * k, 16 * surviving, {}, true});
      if (12 + 16 * surviving < next.size()) {
        parts.push_back({0, 0, next.substr(12 + 16 * surviving), false});
      }
      built = true;
    }
  }
  if (!built) {
    size_t p = 0;
    const size_t max_common = std::min(base_unit.size(), next.size());
    while (p < max_common && base_unit[p] == next[p]) ++p;
    size_t s = 0;
    const size_t max_suffix = max_common - p;
    while (s < max_suffix &&
           base_unit[base_unit.size() - 1 - s] == next[next.size() - 1 - s]) {
      ++s;
    }
    if (p + s < 48) return false;  // shared region under the op overhead
    if (p > 0) parts.push_back({0, p, {}, true});
    if (p + s < next.size()) {
      parts.push_back({0, 0, next.substr(p, next.size() - s - p), false});
    }
    if (s > 0) parts.push_back({base_unit.size() - s, s, {}, true});
  }
  uint64_t shipped = 14;  // op + section + key + part count
  for (const Part& part : parts) {
    shipped += part.is_base ? 17 : part.data.size() + 5;
  }
  if (shipped >= next.size()) return false;
  ops->PutU8(kOpPatch);
  ops->PutU8(u.section);
  ops->PutU64(u.key);
  ops->PutU32(static_cast<uint32_t>(parts.size()));
  for (const Part& part : parts) {
    if (part.is_base) {
      ops->PutU8(kPartBase);
      ops->PutU64(part.off);
      ops->PutU64(part.len);
    } else {
      ops->PutU8(kPartData);
      ops->PutString(part.data);
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<SnapshotUnit>> ChunkSnapshotPayload(
    std::string_view payload) {
  std::vector<SnapshotUnit> units;
  Decoder d(payload);
  auto pos = [&] {
    return static_cast<uint64_t>(payload.size() - d.remaining());
  };
  auto push = [&](uint8_t section, uint64_t key, uint64_t start) {
    units.push_back(SnapshotUnit{section, key, start, pos() - start});
  };

  uint64_t u64 = 0;
  uint32_t u32 = 0;
  uint8_t u8 = 0;
  double dbl = 0.0;
  std::string str;
  IndexSet set;
  std::vector<uint32_t> v32;
  std::vector<double> vdbl;

  // Meta: analyzed + journal_lsn.
  uint64_t start = pos();
  WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
  WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
  push(kSectionMeta, 0, start);

  // Pool: count + per-def (table, columns).
  start = pos();
  uint32_t pool_count = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&pool_count));
  for (uint32_t i = 0; i < pool_count; ++i) {
    WFIT_RETURN_IF_ERROR(d.GetU32(&u32));
    WFIT_RETURN_IF_ERROR(d.GetU32Vector(&v32));
  }
  push(kSectionPool, 0, start);

  // Tuner header: kind tag + part count.
  start = pos();
  uint8_t kind = 0;
  WFIT_RETURN_IF_ERROR(d.GetU8(&kind));
  if (kind != kTunerWfit && kind != kTunerWfaPlus) {
    return Status::InvalidArgument("chunk: unknown tuner kind");
  }
  uint32_t parts = 0;
  WFIT_RETURN_IF_ERROR(d.GetU32(&parts));
  push(kSectionTunerHeader, 0, start);

  for (uint32_t p = 0; p < parts; ++p) {
    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetU32Vector(&v32));
    WFIT_RETURN_IF_ERROR(d.GetDoubleVector(&vdbl));
    WFIT_RETURN_IF_ERROR(d.GetU32(&u32));
    push(kSectionPart, p, start);
  }

  if (kind == kTunerWfit) {
    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&set));
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&set));
    push(kSectionCandidates, 0, start);

    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetU64(&u64));  // repartitions
    WFIT_RETURN_IF_ERROR(d.GetU64(&u64));  // feedback_events
    push(kSectionCounters, 0, start);

    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetIndexSet(&set));
    WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
    WFIT_RETURN_IF_ERROR(d.GetString(&str));
    push(kSectionSelectorCore, 0, start);

    start = pos();
    uint32_t benefit = 0;
    WFIT_RETURN_IF_ERROR(d.GetU32(&benefit));
    push(kSectionBenefitCount, 0, start);
    for (uint32_t i = 0; i < benefit; ++i) {
      start = pos();
      uint64_t key = 0;
      WFIT_RETURN_IF_ERROR(d.GetU64(&key));
      uint32_t entries = 0;
      WFIT_RETURN_IF_ERROR(d.GetU32(&entries));
      for (uint32_t j = 0; j < entries; ++j) {
        WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
        WFIT_RETURN_IF_ERROR(d.GetDouble(&dbl));
      }
      push(kSectionBenefitWindow, key, start);
    }

    start = pos();
    uint32_t interaction = 0;
    WFIT_RETURN_IF_ERROR(d.GetU32(&interaction));
    push(kSectionInteractionCount, 0, start);
    for (uint32_t i = 0; i < interaction; ++i) {
      start = pos();
      uint64_t key = 0;
      WFIT_RETURN_IF_ERROR(d.GetU64(&key));
      uint32_t entries = 0;
      WFIT_RETURN_IF_ERROR(d.GetU32(&entries));
      for (uint32_t j = 0; j < entries; ++j) {
        WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
        WFIT_RETURN_IF_ERROR(d.GetDouble(&dbl));
      }
      push(kSectionInteractionWindow, key, start);
    }
  } else {
    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetU64(&u64));  // feedback_events
    push(kSectionCounters, 0, start);
  }

  if (!d.done()) {
    start = pos();
    WFIT_RETURN_IF_ERROR(d.GetU8(&u8));
    WFIT_RETURN_IF_ERROR(d.GetDouble(&dbl));
    WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
    uint32_t fps = 0;
    WFIT_RETURN_IF_ERROR(d.GetU32(&fps));
    for (uint32_t i = 0; i < fps; ++i) {
      WFIT_RETURN_IF_ERROR(d.GetU64(&u64));
    }
    push(kSectionOverload, 0, start);
  }
  if (!d.done()) {
    return Status::InvalidArgument("chunk: trailing payload bytes");
  }
  return units;
}

bool ParseDeltaName(const std::string& filename, uint64_t* root_analyzed,
                    uint64_t* analyzed) {
  const size_t prefix = sizeof(kDeltaPrefix) - 1;
  const size_t suffix = sizeof(kDeltaSuffix) - 1;
  if (filename.size() != prefix + 20 + 1 + 20 + suffix) return false;
  if (filename.compare(0, prefix, kDeltaPrefix) != 0) return false;
  if (filename[prefix + 20] != '-') return false;
  if (filename.compare(prefix + 41, suffix, kDeltaSuffix) != 0) return false;
  std::string_view body(filename);
  return ParseU64Fixed(body.substr(prefix, 20), root_analyzed) &&
         ParseU64Fixed(body.substr(prefix + 21, 20), analyzed);
}

std::vector<std::string> ListDeltas(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t root = 0, analyzed = 0;
    if (ParseDeltaName(entry.path().filename().string(), &root, &analyzed)) {
      out.push_back(entry.path().string());
    }
  }
  // Fixed-width zero-padded names: lexicographic ascending == ascending by
  // (root analyzed, analyzed).
  std::sort(out.begin(), out.end());
  return out;
}

void PruneCheckpointDir(const std::string& dir, size_t keep) {
  std::error_code ec;
  std::vector<std::string> fulls = ListSnapshots(dir);  // newest first
  std::set<uint64_t> retained_roots;
  for (size_t i = 0; i < fulls.size(); ++i) {
    uint64_t analyzed = 0;
    if (i < keep &&
        ParseSnapshotName(fs::path(fulls[i]).filename().string(),
                          &analyzed)) {
      retained_roots.insert(analyzed);
    }
    if (i >= keep) fs::remove(fulls[i], ec);
  }
  for (const std::string& path : ListDeltas(dir)) {
    uint64_t root = 0, analyzed = 0;
    ParseDeltaName(fs::path(path).filename().string(), &root, &analyzed);
    if (retained_roots.count(root) == 0) fs::remove(path, ec);
  }
}

// --- DeltaCheckpointer ---------------------------------------------------

Status DeltaCheckpointer::Rebase(std::string_view payload,
                                 const std::vector<SnapshotUnit>& units,
                                 uint64_t analyzed) {
  sigs_.clear();
  pool_defs_crc_ = 0;
  pool_unit_len_ = 0;
  base_kind_ = 0;
  base_repartitions_ = 0;
  for (const SnapshotUnit& u : units) {
    std::string_view bytes = payload.substr(u.offset, u.len);
    auto [it, inserted] = sigs_.insert(
        {{u.section, u.key}, UnitSig{Crc32(bytes), u.len, u.offset}});
    if (!inserted) {
      return Status::InvalidArgument("delta: duplicate unit key");
    }
    if (u.section == kSectionPool && u.len >= 4) {
      pool_defs_crc_ = Crc32(bytes.substr(4));
      pool_unit_len_ = u.len;
    }
    if (u.section == kSectionTunerHeader && u.len >= 1) {
      base_kind_ = static_cast<uint8_t>(bytes[0]);
    }
    if (u.section == kSectionCounters && u.len >= 8) {
      // For WFIT the first counter is the repartition count — the
      // structural-change signal. (WFA+ has no repartitions; its counters
      // unit starts with feedback_events, which base_kind_ gates off.)
      base_repartitions_ = ReadU64Le(bytes);
    }
  }
  base_analyzed_ = analyzed;
  base_crc_ = Crc32(payload);
  base_payload_len_ = payload.size();
  base_payload_.assign(payload.data(), payload.size());
  return Status::Ok();
}

Status DeltaCheckpointer::Seed(std::string payload, uint64_t root_analyzed,
                               uint64_t root_journal_lsn,
                               uint64_t deltas_in_chain) {
  auto units = ChunkSnapshotPayload(payload);
  WFIT_RETURN_IF_ERROR(units.status());
  if (payload.size() < 8) {
    return Status::InvalidArgument("delta seed: short payload");
  }
  WFIT_RETURN_IF_ERROR(
      Rebase(payload, *units, ReadU64Le(std::string_view(payload))));
  root_analyzed_ = root_analyzed;
  deltas_in_chain_ = deltas_in_chain;
  seeded_ = true;
  retained_full_lsns_.clear();
  retained_full_lsns_.push_back(root_journal_lsn);
  return Status::Ok();
}

void DeltaCheckpointer::Reset() {
  seeded_ = false;
  root_analyzed_ = 0;
  base_analyzed_ = 0;
  base_crc_ = 0;
  base_payload_len_ = 0;
  deltas_in_chain_ = 0;
  sigs_.clear();
  base_payload_.clear();
  pool_defs_crc_ = 0;
  pool_unit_len_ = 0;
  base_kind_ = 0;
  base_repartitions_ = 0;
}

StatusOr<DeltaCheckpointer::Result> DeltaCheckpointer::Write(
    const std::string& dir, const Tuner& tuner, const IndexPool& pool,
    const SnapshotMeta& meta) {
  auto payload_or = EncodeSnapshotPayload(tuner, pool, meta);
  WFIT_RETURN_IF_ERROR(payload_or.status());
  std::string payload = std::move(payload_or).value();
  auto units_or = ChunkSnapshotPayload(payload);
  WFIT_RETURN_IF_ERROR(units_or.status());
  const std::vector<SnapshotUnit>& units = *units_or;

  bool want_full = !options_.enable_deltas || !seeded_ ||
                   deltas_in_chain_ >= options_.full_every;

  Encoder ops;
  uint32_t op_count = 0;
  if (!want_full) {
    for (const SnapshotUnit& u : units) {
      std::string_view bytes =
          std::string_view(payload).substr(u.offset, u.len);
      auto it = sigs_.find({u.section, u.key});
      const bool unchanged = it != sigs_.end() &&
                             it->second.len == u.len &&
                             it->second.crc == Crc32(bytes);
      if (u.section == kSectionTunerHeader || u.section == kSectionCandidates) {
        if (!unchanged) {
          // Structural change: repartitioned part layout or candidate
          // churn — a full snapshot re-anchors the chain.
          want_full = true;
          break;
        }
        ++op_count;
        ops.PutU8(kOpCopy);
        ops.PutU8(u.section);
        ops.PutU64(u.key);
        continue;
      }
      if (u.section == kSectionCounters && base_kind_ == kTunerWfit &&
          u.len >= 8 && ReadU64Le(bytes) != base_repartitions_) {
        want_full = true;  // repartition since the base
        break;
      }
      if (unchanged) {
        ++op_count;
        ops.PutU8(kOpCopy);
        ops.PutU8(u.section);
        ops.PutU64(u.key);
        continue;
      }
      if (u.section == kSectionPool && pool_unit_len_ >= 4 &&
          u.len > pool_unit_len_ &&
          Crc32(bytes.substr(4, pool_unit_len_ - 4)) == pool_defs_crc_) {
        // Append-only pool growth: ship only the new definitions.
        ++op_count;
        ops.PutU8(kOpPoolAppend);
        ops.PutU8(u.section);
        ops.PutU64(u.key);
        uint32_t new_count = 0;
        std::memcpy(&new_count, bytes.data(), 4);
        ops.PutU32(new_count);
        ops.PutString(bytes.substr(pool_unit_len_));
        continue;
      }
      if (it != sigs_.end() && !base_payload_.empty()) {
        std::string_view base_unit = std::string_view(base_payload_)
                                         .substr(it->second.offset,
                                                 it->second.len);
        if (EmitPatchOp(u, bytes, base_unit, &ops)) {
          ++op_count;
          continue;
        }
      }
      ++op_count;
      ops.PutU8(kOpData);
      ops.PutU8(u.section);
      ops.PutU64(u.key);
      ops.PutString(bytes);
    }
    if (!want_full &&
        static_cast<double>(ops.size()) >
            options_.max_delta_fraction * static_cast<double>(payload.size())) {
      want_full = true;  // not materially smaller than a full snapshot
    }
  }

  Result result;
  if (want_full) {
    auto bytes = WriteSnapshotPayload(dir, payload, meta.analyzed);
    WFIT_RETURN_IF_ERROR(bytes.status());
    const size_t keep = std::max<size_t>(options_.keep_chains, 1);
    retained_full_lsns_.push_back(meta.journal_lsn);
    while (retained_full_lsns_.size() > keep) {
      retained_full_lsns_.pop_front();
    }
    PruneCheckpointDir(dir, keep);
    WFIT_RETURN_IF_ERROR(Rebase(payload, units, meta.analyzed));
    root_analyzed_ = meta.analyzed;
    deltas_in_chain_ = 0;
    seeded_ = true;
    result.bytes = *bytes;
    result.wrote_full = true;
    // Compactable only once TWO fulls are durable: a lone snapshot that
    // later proves corrupt must still have its journal prefix to replay.
    result.cover_lsn = retained_full_lsns_.size() >= 2
                           ? retained_full_lsns_.front()
                           : 0;
    return result;
  }

  Encoder delta;
  delta.PutU64(meta.analyzed);
  delta.PutU64(meta.journal_lsn);
  delta.PutU64(root_analyzed_);
  delta.PutU64(base_analyzed_);
  delta.PutU32(base_crc_);
  delta.PutU32(Crc32(payload));
  delta.PutU64(payload.size());
  delta.PutU32(op_count);
  delta.PutString(ops.data());
  auto bytes = WriteFramedFileDurable(dir, DeltaName(root_analyzed_,
                                                     meta.analyzed),
                                      kDeltaMagic, kDeltaVersion,
                                      delta.data());
  WFIT_RETURN_IF_ERROR(bytes.status());
  WFIT_RETURN_IF_ERROR(Rebase(payload, units, meta.analyzed));
  ++deltas_in_chain_;
  result.bytes = *bytes;
  result.wrote_full = false;
  result.cover_lsn = 0;
  return result;
}

// --- chain-aware recovery ------------------------------------------------

SnapshotLoadResult LoadLatestCheckpoint(const std::string& dir, Tuner* tuner,
                                        IndexPool* pool,
                                        DeltaCheckpointer* checkpointer) {
  SnapshotLoadResult result;
  std::vector<std::string> deltas = ListDeltas(dir);
  for (const std::string& full_path : ListSnapshots(dir)) {
    uint64_t root_analyzed = 0;
    if (!ParseSnapshotName(fs::path(full_path).filename().string(),
                          &root_analyzed)) {
      ++result.skipped;
      continue;
    }
    auto root_payload =
        ReadFramedFile(full_path, kSnapshotMagic, kSnapshotVersion);
    if (!root_payload.ok()) {
      // A corrupt full snapshot invalidates every delta chained to it:
      // the chain is not even attempted.
      ++result.skipped;
      continue;
    }
    std::string cur = std::move(root_payload).value();
    // Root journal LSN (the chain's compaction anchor) is the second u64
    // of the root payload; grab it before deltas replace the bytes.
    const uint64_t root_lsn =
        cur.size() >= 16 ? ReadU64Le(std::string_view(cur).substr(8)) : 0;
    uint64_t cur_analyzed = root_analyzed;
    uint64_t applied = 0;
    uint64_t chain_skipped = 0;
    for (const std::string& delta_path : deltas) {
      uint64_t root = 0, analyzed = 0;
      ParseDeltaName(fs::path(delta_path).filename().string(), &root,
                     &analyzed);
      if (root != root_analyzed || analyzed <= cur_analyzed) continue;
      auto delta_payload =
          ReadFramedFile(delta_path, kDeltaMagic, kDeltaVersion);
      if (!delta_payload.ok()) {
        ++chain_skipped;  // truncate the chain here; keep the prefix
        break;
      }
      Decoder d(*delta_payload);
      DeltaHeader h;
      uint32_t op_count = 0;
      std::string ops;
      Status st = DecodeDeltaHeader(&d, &h);
      if (st.ok()) st = d.GetU32(&op_count);
      if (st.ok()) st = d.GetString(&ops);
      if (st.ok() && !d.done()) {
        st = Status::InvalidArgument("delta: trailing bytes");
      }
      if (st.ok() &&
          (h.root_analyzed != root_analyzed || h.analyzed != analyzed ||
           h.base_analyzed != cur_analyzed || h.base_crc != Crc32(cur))) {
        st = Status::InvalidArgument("delta: base mismatch");
      }
      if (st.ok()) {
        auto base_units = ChunkSnapshotPayload(cur);
        if (!base_units.ok()) {
          st = base_units.status();
        } else {
          auto next = ApplyDelta(cur, *base_units, h, op_count, ops);
          if (!next.ok()) {
            st = next.status();
          } else {
            cur = std::move(next).value();
            cur_analyzed = h.analyzed;
            ++applied;
          }
        }
      }
      if (!st.ok()) {
        ++chain_skipped;
        break;
      }
    }

    SnapshotMeta meta;
    if (!DecodeSnapshotPayload(cur, tuner, pool, &meta).ok()) {
      ++result.skipped;
      continue;
    }
    result.loaded = true;
    result.meta = meta;
    result.path = full_path;
    result.skipped += chain_skipped;
    result.deltas_applied = applied;
    if (checkpointer != nullptr) {
      if (!checkpointer->Seed(std::move(cur), root_analyzed, root_lsn,
                              applied)
               .ok()) {
        checkpointer->Reset();
      }
    }
    return result;
  }
  return result;
}

}  // namespace wfit::persist
