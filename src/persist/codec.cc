#include "persist/codec.h"

#include <bit>
#include <cstring>

namespace wfit::persist {

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void Encoder::PutIndexSet(const IndexSet& set) {
  PutU32(static_cast<uint32_t>(set.size()));
  for (IndexId id : set) PutU32(id);
}

void Encoder::PutU32Vector(const std::vector<uint32_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) PutU32(x);
}

void Encoder::PutU64Vector(const std::vector<uint64_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) PutU64(x);
}

void Encoder::PutDoubleVector(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double x : v) PutDouble(x);
}

Status Decoder::NeedElements(uint32_t count, size_t elem_size) const {
  if (static_cast<uint64_t>(count) * elem_size > remaining()) {
    return Status::InvalidArgument("decode: element count exceeds buffer");
  }
  return Status::Ok();
}

Status Decoder::GetU8(uint8_t* out) {
  WFIT_RETURN_IF_ERROR(Need(1));
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status Decoder::GetU32(uint32_t* out) {
  WFIT_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetU64(uint64_t* out) {
  WFIT_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::Ok();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits = 0;
  WFIT_RETURN_IF_ERROR(GetU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::Ok();
}

Status Decoder::GetString(std::string* out) {
  uint32_t len = 0;
  WFIT_RETURN_IF_ERROR(GetU32(&len));
  WFIT_RETURN_IF_ERROR(NeedElements(len, 1));
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status Decoder::GetIndexSet(IndexSet* out) {
  std::vector<uint32_t> ids;
  WFIT_RETURN_IF_ERROR(GetU32Vector(&ids));
  *out = IndexSet::FromVector(std::move(ids));
  return Status::Ok();
}

Status Decoder::GetU32Vector(std::vector<uint32_t>* out) {
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(GetU32(&count));
  WFIT_RETURN_IF_ERROR(NeedElements(count, 4));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    WFIT_RETURN_IF_ERROR(GetU32(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

Status Decoder::GetU64Vector(std::vector<uint64_t>* out) {
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(GetU32(&count));
  WFIT_RETURN_IF_ERROR(NeedElements(count, 8));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    WFIT_RETURN_IF_ERROR(GetU64(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

Status Decoder::GetDoubleVector(std::vector<double>* out) {
  uint32_t count = 0;
  WFIT_RETURN_IF_ERROR(GetU32(&count));
  WFIT_RETURN_IF_ERROR(NeedElements(count, 8));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double v = 0;
    WFIT_RETURN_IF_ERROR(GetDouble(&v));
    out->push_back(v);
  }
  return Status::Ok();
}

}  // namespace wfit::persist
