// Cold-tenant archival tier: packed checkpoint trees of idle evicted
// tenants, batched into append-only segment files so a fleet of mostly
// idle tenants stops costing a directory (and an inode per snapshot)
// each.
//
// Layout, under `<checkpoint root>/_archive/` (a reserved name
// EncodeTenantDir can never produce):
//
//   archive-<seq>.wfseg   one batch of Pack/UnpackCheckpointDir buffers:
//                         [u32 magic][u32 version][pack bytes...]
//                         [footer: u32 count + per entry
//                          {string tenant, u64 offset, u64 len, u32 crc}]
//                         [trailer: u64 footer_off, u32 footer_crc,
//                          u32 magic]
//                         Opening a store reads only trailers + footers;
//                         Fetch preads one entry's slice and CRC-checks
//                         it. A damaged segment is skipped whole.
//   tombstones.wfat       journal-framed {tenant, seq} records: the
//                         tenant's archived entries in segments with
//                         seq <= the tombstone's seq are dead (it was
//                         re-admitted). A torn tail truncates cleanly.
//
// The same tenant re-archived later lands in a newer segment; the newest
// segment's entry wins. Everywhere, a LIVE tenant checkpoint directory
// wins over any archive entry — the archival two-phase is pack + flush
// (durable) first, remove directories second, so a crash between the two
// leaves the directory authoritative and the archive entry is dropped on
// re-admission.
//
// Externally synchronized, like the rest of the persistence layer: the
// router calls it under its own lock.
#ifndef WFIT_PERSIST_ARCHIVE_H_
#define WFIT_PERSIST_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wfit::persist {

inline constexpr uint32_t kArchiveMagic = 0x52414657u;  // "WFAR" (LE)
inline constexpr uint32_t kArchiveVersion = 1;

/// The reserved archive subdirectory of a checkpoint root.
std::string ArchiveDir(const std::string& checkpoint_root);

struct ArchiveStats {
  uint64_t segments = 0;
  uint64_t live_tenants = 0;
  /// Bytes of live (reachable) pack entries, across segments + staged.
  uint64_t live_bytes = 0;
  /// Total bytes of all segment files, including dead entries.
  uint64_t segment_bytes = 0;
  uint64_t tombstones = 0;
  /// Segments skipped at Open because of damage.
  uint64_t corrupt_segments = 0;
};

class ArchiveStore {
 public:
  struct Options {
    /// Staged packs are flushed into a segment once their combined size
    /// reaches this; Flush() forces the rest out.
    uint64_t max_segment_bytes = 4 * 1024 * 1024;
  };

  /// Scans `<checkpoint_root>/_archive/`. A missing directory is an empty
  /// store (created lazily on the first Flush).
  static StatusOr<ArchiveStore> Open(const std::string& checkpoint_root,
                                     Options options);
  static StatusOr<ArchiveStore> Open(const std::string& checkpoint_root);

  /// Buffers one tenant's packed checkpoint tree for the next segment;
  /// auto-flushes when the staged batch reaches max_segment_bytes.
  /// Staged entries are NOT durable until Flush returns Ok.
  Status Stage(const std::string& tenant_id, std::string pack);

  /// Writes all staged packs as one durable segment (tmp + fsync +
  /// rename + dir fsync). No-op when nothing is staged.
  Status Flush();

  bool Contains(const std::string& tenant_id) const;

  /// The tenant's packed checkpoint tree (staged or read+CRC-verified
  /// from its segment). NotFound if absent or tombstoned.
  StatusOr<std::string> Fetch(const std::string& tenant_id) const;

  /// Marks the tenant's archived entry dead (durable tombstone append).
  /// Ok if it was not archived.
  Status Drop(const std::string& tenant_id);

  /// Live archived tenant ids, sorted (staged entries included).
  std::vector<std::string> Tenants() const;

  ArchiveStats GetStats() const;

  /// Rewrites live entries into a fresh segment, deletes superseded
  /// segment files and clears the tombstone journal. Reclaims the space
  /// dead entries hold; crash-safe at every step (the new segment is
  /// durable before anything is deleted, and newest-seq-wins makes the
  /// overlap window harmless).
  Status Compact();

 private:
  struct Entry {
    std::string segment_path;
    uint64_t seq = 0;
    uint64_t offset = 0;
    uint64_t len = 0;
    uint32_t crc = 0;
  };

  explicit ArchiveStore(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  Status WriteSegment(const std::map<std::string, std::string>& packs);

  std::string dir_;
  Options options_;
  std::map<std::string, Entry> entries_;  // live, post-tombstone
  std::map<std::string, std::string> staged_;
  uint64_t staged_bytes_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t tombstones_ = 0;
  uint64_t corrupt_segments_ = 0;
};

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_ARCHIVE_H_
