// Versioned binary snapshots of complete tuner state. A snapshot captures
// everything a restarted service needs to resume mid-stream bit for bit:
// the IndexPool's interning order, the per-part work functions and current
// recommendations, the stable partition, the candidate selector's universe
// / statistics windows / RNG stream position, and the repartition/feedback
// counters — for both Wfit (auto candidate maintenance) and WfaPlus (fixed
// stable partition).
//
// File layout: a CRC-guarded fixed header (magic, version, payload length,
// payload CRC, header CRC) followed by the payload. Any damage — flipped
// bit, short file, wrong version — is rejected with a clean Status before
// a single field reaches the tuner; LoadLatestSnapshot then falls back to
// the previous snapshot.
//
// Writes are atomic: tmp file + fsync + rename + directory fsync, then
// older snapshots beyond `keep` are pruned.
#ifndef WFIT_PERSIST_SNAPSHOT_H_
#define WFIT_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/index.h"
#include "common/status.h"
#include "core/tuner.h"

namespace wfit::persist {

inline constexpr uint32_t kSnapshotMagic = 0x4E534657u;  // "WFSN" (LE)
inline constexpr uint32_t kSnapshotVersion = 1;

/// Overload-control state persisted with a snapshot so a recovered shard
/// resumes shedding/sampling exactly where the crashed one left off.
/// mode: 0 = Normal, 1 = Shedding, 2 = Sampling.
struct OverloadPersist {
  uint8_t mode = 0;
  double sample_rate = 1.0;
  uint64_t sample_seed = 0;
  /// Recent analyzed-statement fingerprints (oldest first) — the
  /// duplicate-template window Shedding consults. Restoring it keeps
  /// shed decisions deterministic across a crash mid-Shedding.
  std::vector<uint64_t> dup_window;
};

struct SnapshotMeta {
  /// Statements analyzed when the snapshot was taken (the paper's n).
  uint64_t analyzed = 0;
  /// Journal records already reflected in this state; recovery replays
  /// only records past this point — exactly once.
  uint64_t journal_lsn = 0;
  /// Written as an optional payload trailer: snapshots from before the
  /// overload controller existed decode with the defaults (Normal).
  OverloadPersist overload;
};

/// Serializes `tuner` (Wfit or WfaPlus; FailedPrecondition otherwise) and
/// the pool's interning order to `path`, non-atomically. Prefer
/// WriteSnapshot for the atomic managed variant.
Status WriteSnapshotFile(const std::string& path, const Tuner& tuner,
                         const IndexPool& pool, const SnapshotMeta& meta);

/// The canonical snapshot payload (the bytes a full snapshot file carries
/// after its header). Deterministic: the same tuner state always encodes
/// to the same bytes — the property delta snapshots (persist/delta.h)
/// diff against.
StatusOr<std::string> EncodeSnapshotPayload(const Tuner& tuner,
                                            const IndexPool& pool,
                                            const SnapshotMeta& meta);

/// Inverse of EncodeSnapshotPayload: restores tuner + pool from a payload
/// already stripped of its header and CRC-verified.
Status DecodeSnapshotPayload(std::string_view payload, Tuner* tuner,
                             IndexPool* pool, SnapshotMeta* meta);

/// Header-verifies a framed file (magic, version, payload length + CRC)
/// and returns its payload. InvalidArgument on any damage. Shared by
/// snapshots (kSnapshotMagic) and deltas (kDeltaMagic).
StatusOr<std::string> ReadFramedFile(const std::string& path, uint32_t magic,
                                     uint32_t version);

/// Writes header + payload to `path` and fsyncs it. Non-atomic.
Status WriteFramedFile(const std::string& path, uint32_t magic,
                       uint32_t version, std::string_view payload);

/// Durable framed write into `dir`: tmp file + fsync + rename + directory
/// fsync. Returns the file size in bytes.
StatusOr<uint64_t> WriteFramedFileDurable(const std::string& dir,
                                          const std::string& filename,
                                          uint32_t magic, uint32_t version,
                                          std::string_view payload);

/// Durable write of an already-encoded canonical payload under the
/// managed name snapshot-<analyzed>.wfsnap. Does NOT prune — callers that
/// maintain delta chains prune via PruneCheckpointDir (persist/delta.h).
StatusOr<uint64_t> WriteSnapshotPayload(const std::string& dir,
                                        std::string_view payload,
                                        uint64_t analyzed);

/// Canonical managed file name: snapshot-<analyzed, zero-padded>.wfsnap.
std::string SnapshotFileName(uint64_t analyzed);

/// Atomic managed write into `dir` under the canonical name
/// snapshot-<analyzed>.wfsnap; keeps the newest `keep` snapshots and prunes
/// the rest. Returns the snapshot size in bytes.
StatusOr<uint64_t> WriteSnapshot(const std::string& dir, const Tuner& tuner,
                                 const IndexPool& pool,
                                 const SnapshotMeta& meta, size_t keep = 2);

/// Restores `path` into a tuner constructed with the same configuration
/// (and the pool it references). Rejects corruption and version mismatches
/// with InvalidArgument before touching the tuner; the pool may gain
/// re-interned definitions (append-only, ids verified).
Status ReadSnapshot(const std::string& path, Tuner* tuner, IndexPool* pool,
                    SnapshotMeta* meta);

/// Snapshot files in `dir`, newest first (by the analyzed count embedded in
/// the fixed-width file name). Non-snapshot files are ignored.
std::vector<std::string> ListSnapshots(const std::string& dir);

struct SnapshotLoadResult {
  bool loaded = false;
  SnapshotMeta meta;
  std::string path;
  /// Corrupt / version-mismatched snapshots skipped before one restored.
  uint64_t skipped = 0;
  /// Deltas applied on top of the full snapshot (LoadLatestCheckpoint;
  /// always 0 for the plain full-snapshot loader).
  uint64_t deltas_applied = 0;
};

/// Tries full snapshots newest-first until one restores cleanly; corrupt
/// or mismatched files are skipped (fallback to the previous snapshot). Ok
/// with loaded == false when the directory holds no usable snapshot (cold
/// start — recovery then replays the journal from the beginning). Ignores
/// delta files; chain-aware recovery is LoadLatestCheckpoint
/// (persist/delta.h).
SnapshotLoadResult LoadLatestSnapshot(const std::string& dir, Tuner* tuner,
                                      IndexPool* pool);

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_SNAPSHOT_H_
