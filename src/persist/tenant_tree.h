// The multi-tenant checkpoint tree: <root>/<tenant_dir>/ holds each
// tenant's snapshots + write-ahead journal, where <tenant_dir> is the
// tenant id percent-encoded so any id is filesystem-safe and the mapping
// is reversible (ListTenantIds recovers the original ids on restart).
//
// Pack/UnpackCheckpointDir flatten one tenant's directory into a single
// self-checking buffer and back — the streaming format of live tenant
// migration: the source node packs the tree its eviction checkpoint
// sealed, ships it over the admin RPC, and the target unpacks it into its
// own checkpoint root before re-admitting the tenant.
#ifndef WFIT_PERSIST_TENANT_TREE_H_
#define WFIT_PERSIST_TENANT_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wfit::persist {

/// Percent-encodes every byte outside [A-Za-z0-9_.-] (plus '.' and '..'
/// themselves, and a *leading* '_' — names starting with '_' are reserved
/// for non-tenant subtrees like the "_archive" cold tier) so the result is
/// a safe, reversible directory name.
std::string EncodeTenantDir(const std::string& tenant_id);

/// Inverse of EncodeTenantDir; malformed escapes decode to themselves.
std::string DecodeTenantDir(const std::string& dir_name);

/// The tenant's checkpoint directory under `root` (not created).
std::string TenantCheckpointDir(const std::string& root,
                                const std::string& tenant_id);

/// Decoded tenant ids of every subdirectory of `root`, sorted — what a
/// restarted router can re-admit. NotFound-free: a missing root is just an
/// empty tree. Stray entries that cannot be a tenant directory — regular
/// files, sockets, or names EncodeTenantDir could never have produced —
/// are skipped (counted in *skipped when non-null) instead of failing the
/// whole recovery: one foreign file in the root must not take the fleet
/// down.
StatusOr<std::vector<std::string>> ListTenantIds(const std::string& root,
                                                 uint64_t* skipped = nullptr);

/// Packs every regular file directly inside `dir` (snapshots + journal;
/// the tree is flat by construction) into one self-checking buffer:
/// [magic][version][count][{name,contents}...][crc]. NotFound when the
/// directory does not exist.
StatusOr<std::string> PackCheckpointDir(const std::string& dir);

/// Unpacks a PackCheckpointDir buffer into `dir`, REPLACING any existing
/// contents — the migrated tree is authoritative over local leftovers.
/// Every file is fsynced and then the directory itself, so a crash during
/// import can never leave a half-written tenant that looks recoverable.
/// Corruption (bad magic/version/crc, truncation, unsafe file names) is
/// rejected with InvalidArgument before anything is written.
Status UnpackCheckpointDir(std::string_view pack, const std::string& dir);

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_TENANT_TREE_H_
