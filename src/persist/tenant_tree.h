// The multi-tenant checkpoint tree: <root>/<tenant_dir>/ holds each
// tenant's snapshots + write-ahead journal, where <tenant_dir> is the
// tenant id percent-encoded so any id is filesystem-safe and the mapping
// is reversible (ListTenantIds recovers the original ids on restart).
#ifndef WFIT_PERSIST_TENANT_TREE_H_
#define WFIT_PERSIST_TENANT_TREE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace wfit::persist {

/// Percent-encodes every byte outside [A-Za-z0-9_.-] (plus '.' and '..'
/// themselves) so the result is a safe, reversible directory name.
std::string EncodeTenantDir(const std::string& tenant_id);

/// Inverse of EncodeTenantDir; malformed escapes decode to themselves.
std::string DecodeTenantDir(const std::string& dir_name);

/// The tenant's checkpoint directory under `root` (not created).
std::string TenantCheckpointDir(const std::string& root,
                                const std::string& tenant_id);

/// Decoded tenant ids of every subdirectory of `root`, sorted — what a
/// restarted router can re-admit. NotFound-free: a missing root is just an
/// empty tree.
StatusOr<std::vector<std::string>> ListTenantIds(const std::string& root);

}  // namespace wfit::persist

#endif  // WFIT_PERSIST_TENANT_TREE_H_
