#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/crc32.h"

namespace wfit::persist {

namespace {

void EncodeColumnRef(const ColumnRef& ref, Encoder* e) {
  e->PutU32(ref.table);
  e->PutU32(ref.column);
}

Status DecodeColumnRef(Decoder* d, ColumnRef* out) {
  WFIT_RETURN_IF_ERROR(d->GetU32(&out->table));
  WFIT_RETURN_IF_ERROR(d->GetU32(&out->column));
  return Status::Ok();
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void EncodeStatement(const Statement& stmt, Encoder* e) {
  e->PutU8(static_cast<uint8_t>(stmt.kind));
  e->PutU32(static_cast<uint32_t>(stmt.tables.size()));
  for (const StatementTable& t : stmt.tables) {
    e->PutU32(t.table);
    e->PutU32(static_cast<uint32_t>(t.predicates.size()));
    for (const ScanPredicate& p : t.predicates) {
      EncodeColumnRef(p.column, e);
      e->PutU8(p.equality ? 1 : 0);
      e->PutU8(p.sargable ? 1 : 0);
      e->PutDouble(p.selectivity);
    }
    e->PutU32Vector(t.referenced_columns);
  }
  e->PutU32(static_cast<uint32_t>(stmt.joins.size()));
  for (const JoinClause& j : stmt.joins) {
    EncodeColumnRef(j.left, e);
    EncodeColumnRef(j.right, e);
  }
  e->PutU32(static_cast<uint32_t>(stmt.order_by.size()));
  for (const ColumnRef& c : stmt.order_by) EncodeColumnRef(c, e);
  e->PutU32(static_cast<uint32_t>(stmt.group_by.size()));
  for (const ColumnRef& c : stmt.group_by) EncodeColumnRef(c, e);
  e->PutU32Vector(stmt.set_columns);
  e->PutU64(stmt.insert_rows);
  e->PutString(stmt.sql);
}

Status DecodeStatement(Decoder* d, Statement* out) {
  uint8_t kind = 0;
  WFIT_RETURN_IF_ERROR(d->GetU8(&kind));
  if (kind > static_cast<uint8_t>(StatementKind::kInsert)) {
    return Status::InvalidArgument("statement: bad kind");
  }
  out->kind = static_cast<StatementKind>(kind);
  uint32_t num_tables = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&num_tables));
  out->tables.clear();
  out->tables.reserve(num_tables);
  for (uint32_t i = 0; i < num_tables; ++i) {
    StatementTable t;
    WFIT_RETURN_IF_ERROR(d->GetU32(&t.table));
    uint32_t num_preds = 0;
    WFIT_RETURN_IF_ERROR(d->GetU32(&num_preds));
    t.predicates.reserve(num_preds);
    for (uint32_t j = 0; j < num_preds; ++j) {
      ScanPredicate p;
      WFIT_RETURN_IF_ERROR(DecodeColumnRef(d, &p.column));
      uint8_t flag = 0;
      WFIT_RETURN_IF_ERROR(d->GetU8(&flag));
      p.equality = flag != 0;
      WFIT_RETURN_IF_ERROR(d->GetU8(&flag));
      p.sargable = flag != 0;
      WFIT_RETURN_IF_ERROR(d->GetDouble(&p.selectivity));
      t.predicates.push_back(p);
    }
    WFIT_RETURN_IF_ERROR(d->GetU32Vector(&t.referenced_columns));
    out->tables.push_back(std::move(t));
  }
  uint32_t num_joins = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&num_joins));
  out->joins.clear();
  out->joins.reserve(num_joins);
  for (uint32_t i = 0; i < num_joins; ++i) {
    JoinClause j;
    WFIT_RETURN_IF_ERROR(DecodeColumnRef(d, &j.left));
    WFIT_RETURN_IF_ERROR(DecodeColumnRef(d, &j.right));
    out->joins.push_back(j);
  }
  uint32_t n = 0;
  WFIT_RETURN_IF_ERROR(d->GetU32(&n));
  out->order_by.clear();
  out->order_by.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ColumnRef c;
    WFIT_RETURN_IF_ERROR(DecodeColumnRef(d, &c));
    out->order_by.push_back(c);
  }
  WFIT_RETURN_IF_ERROR(d->GetU32(&n));
  out->group_by.clear();
  out->group_by.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ColumnRef c;
    WFIT_RETURN_IF_ERROR(DecodeColumnRef(d, &c));
    out->group_by.push_back(c);
  }
  WFIT_RETURN_IF_ERROR(d->GetU32Vector(&out->set_columns));
  WFIT_RETURN_IF_ERROR(d->GetU64(&out->insert_rows));
  WFIT_RETURN_IF_ERROR(d->GetString(&out->sql));
  return Status::Ok();
}

Status JournalWriter::Open(const std::string& path, uint64_t valid_bytes,
                           uint64_t lsn) {
  WFIT_CHECK(file_ == nullptr, "JournalWriter already open");
  // Drop any torn tail first: appending after garbage would strand every
  // new record behind the reader's stop point.
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0 &&
      errno != ENOENT) {
    return ErrnoStatus("truncate", path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return ErrnoStatus("open", path);
  lsn_ = lsn;
  bytes_ = valid_bytes;
  return Status::Ok();
}

Status JournalWriter::AppendRecord(const std::string& payload) {
  WFIT_CHECK(file_ != nullptr, "journal not open");
  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  const std::string& header = frame.data();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("journal append: short write");
  }
  ++lsn_;
  bytes_ += header.size() + payload.size();
  return Status::Ok();
}

Status JournalWriter::AppendStatement(uint64_t seq, const Statement& stmt) {
  Encoder e;
  e.PutU8(static_cast<uint8_t>(JournalRecordType::kStatement));
  e.PutU64(seq);
  EncodeStatement(stmt, &e);
  return AppendRecord(e.data());
}

Status JournalWriter::AppendFeedback(uint64_t boundary, bool post,
                                     const IndexSet& f_plus,
                                     const IndexSet& f_minus) {
  Encoder e;
  e.PutU8(static_cast<uint8_t>(JournalRecordType::kFeedback));
  e.PutU64(boundary);
  e.PutU8(post ? 1 : 0);
  e.PutIndexSet(f_plus);
  e.PutIndexSet(f_minus);
  return AppendRecord(e.data());
}

Status JournalWriter::AppendAnalyzed(uint64_t seq) {
  Encoder e;
  e.PutU8(static_cast<uint8_t>(JournalRecordType::kAnalyzed));
  e.PutU64(seq);
  return AppendRecord(e.data());
}

Status JournalWriter::AppendEpoch(uint64_t seq, uint8_t overload_mode,
                                  double sample_rate, uint64_t sample_seed) {
  Encoder e;
  e.PutU8(static_cast<uint8_t>(JournalRecordType::kEpoch));
  e.PutU64(seq);
  e.PutU8(overload_mode);
  e.PutDouble(sample_rate);
  e.PutU64(sample_seed);
  return AppendRecord(e.data());
}

Status JournalWriter::Sync() {
  WFIT_CHECK(file_ != nullptr, "journal not open");
  if (std::fflush(file_) != 0) return Status::Internal("journal fflush");
  if (::fsync(fileno(file_)) != 0) return Status::Internal("journal fsync");
  ++syncs_;
  return Status::Ok();
}

Status JournalWriter::Flush() {
  WFIT_CHECK(file_ != nullptr, "journal not open");
  if (std::fflush(file_) != 0) return Status::Internal("journal fflush");
  return Status::Ok();
}

int JournalWriter::fd() const {
  WFIT_CHECK(file_ != nullptr, "journal not open");
  return fileno(file_);
}

void JournalWriter::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

StatusOr<JournalReadResult> ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("journal not found: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  JournalReadResult result;
  size_t pos = 0;
  while (pos < contents.size()) {
    if (contents.size() - pos < 8) break;  // torn frame header
    Decoder frame(std::string_view(contents).substr(pos, 8));
    uint32_t len = 0;
    uint32_t crc = 0;
    WFIT_CHECK(frame.GetU32(&len).ok() && frame.GetU32(&crc).ok(),
               "8-byte frame header must decode");
    if (contents.size() - pos - 8 < len) break;  // torn payload
    std::string_view payload = std::string_view(contents).substr(pos + 8, len);
    if (Crc32(payload) != crc) break;  // corrupt record: stop replay here
    Decoder d(payload);
    JournalRecord record;
    uint8_t type = 0;
    Status st = d.GetU8(&type);
    if (st.ok()) {
      switch (static_cast<JournalRecordType>(type)) {
        case JournalRecordType::kStatement:
          record.type = JournalRecordType::kStatement;
          st = d.GetU64(&record.seq);
          if (st.ok()) st = DecodeStatement(&d, &record.statement);
          break;
        case JournalRecordType::kAnalyzed:
          record.type = JournalRecordType::kAnalyzed;
          st = d.GetU64(&record.seq);
          break;
        case JournalRecordType::kCompactionBase:
          // Only legal as the very first frame; anywhere else it is a
          // foreign record and replay stops before it.
          if (pos != 0) {
            st = Status::InvalidArgument("journal: misplaced compaction base");
            break;
          }
          st = d.GetU64(&result.base_lsn);
          if (st.ok() && !d.done()) {
            st = Status::InvalidArgument("journal: trailing base bytes");
          }
          if (st.ok()) {
            pos += 8 + len;
            continue;  // metadata, not a replayable record
          }
          break;
        case JournalRecordType::kEpoch:
          record.type = JournalRecordType::kEpoch;
          st = d.GetU64(&record.seq);
          if (st.ok()) st = d.GetU8(&record.overload_mode);
          if (st.ok()) st = d.GetDouble(&record.sample_rate);
          if (st.ok()) st = d.GetU64(&record.sample_seed);
          break;
        case JournalRecordType::kFeedback: {
          record.type = JournalRecordType::kFeedback;
          st = d.GetU64(&record.boundary);
          uint8_t post = 0;
          if (st.ok()) st = d.GetU8(&post);
          record.post = post != 0;
          if (st.ok()) st = d.GetIndexSet(&record.f_plus);
          if (st.ok()) st = d.GetIndexSet(&record.f_minus);
          break;
        }
        default:
          st = Status::InvalidArgument("journal: unknown record type");
      }
    }
    // A checksummed record that still fails to decode means a foreign or
    // future format, not a torn write; stop replay at the last good one.
    if (!st.ok()) break;
    result.records.push_back(std::move(record));
    pos += 8 + len;
  }
  result.valid_bytes = pos;
  result.truncated_tail = pos < contents.size();
  return result;
}

StatusOr<CompactionResult> CompactJournal(const std::string& path,
                                          uint64_t cover_lsn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("journal not found: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  // Raw frame scan: find the current base and the byte offset of the
  // first record to keep. Payloads are never decoded — kept records are
  // byte-copied so compaction cannot corrupt what it retains.
  uint64_t base_lsn = 0;
  uint64_t lsn = 0;       // absolute LSN of the last record scanned
  uint64_t keep_off = 0;  // offset of the first kept record
  uint64_t kept = 0;
  size_t pos = 0;
  bool first = true;
  while (pos < contents.size()) {
    if (contents.size() - pos < 8) break;
    Decoder frame(std::string_view(contents).substr(pos, 8));
    uint32_t len = 0, crc = 0;
    WFIT_CHECK(frame.GetU32(&len).ok() && frame.GetU32(&crc).ok(),
               "8-byte frame header must decode");
    if (contents.size() - pos - 8 < len) break;
    std::string_view payload = std::string_view(contents).substr(pos + 8, len);
    if (Crc32(payload) != crc) break;
    bool is_base = false;
    if (first && !payload.empty() &&
        payload[0] == static_cast<char>(JournalRecordType::kCompactionBase)) {
      Decoder d(payload.substr(1));
      if (!d.GetU64(&base_lsn).ok()) {
        return Status::InvalidArgument("journal: bad compaction base");
      }
      lsn = base_lsn;
      is_base = true;
    }
    first = false;
    pos += 8 + len;
    if (is_base) {
      keep_off = pos;
      continue;
    }
    ++lsn;
    if (lsn <= cover_lsn) {
      keep_off = pos;  // still inside the dropped prefix
    } else {
      ++kept;
    }
  }

  CompactionResult result;
  result.old_bytes = contents.size();
  if (cover_lsn <= base_lsn) {  // nothing new to drop
    result.new_bytes = contents.size();
    result.base_lsn = base_lsn;
    result.valid_bytes = pos;
    result.record_count = lsn - base_lsn;
    return result;
  }
  const uint64_t new_base = std::min(cover_lsn, lsn);

  Encoder marker;
  marker.PutU8(static_cast<uint8_t>(JournalRecordType::kCompactionBase));
  marker.PutU64(new_base);
  Encoder framed;
  framed.PutU32(static_cast<uint32_t>(marker.size()));
  framed.PutU32(Crc32(marker.data()));

  const std::string tmp = path + ".compact.tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) return ErrnoStatus("open", tmp);
    const std::string& head = framed.data();
    const std::string& body = marker.data();
    bool ok =
        std::fwrite(head.data(), 1, head.size(), out) == head.size() &&
        std::fwrite(body.data(), 1, body.size(), out) == body.size() &&
        (pos == keep_off ||
         std::fwrite(contents.data() + keep_off, 1, pos - keep_off, out) ==
             pos - keep_off);
    if (ok) ok = std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
    std::fclose(out);
    if (!ok) {
      std::remove(tmp.c_str());
      return Status::Internal("journal compact: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return ErrnoStatus("rename", tmp);
  }
  // The rename must survive a crash too: fsync the containing directory.
  {
    std::string dir = path;
    const size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }

  result.new_bytes = framed.size() + marker.size() + (pos - keep_off);
  result.dropped_records = new_base - base_lsn;
  result.base_lsn = new_base;
  result.valid_bytes = result.new_bytes;
  result.record_count = kept;
  return result;
}

}  // namespace wfit::persist
