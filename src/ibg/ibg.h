// Index Benefit Graph (Schnaitter, Polyzotis, Getoor: "Index interactions in
// physical design tuning", PVLDB 2009 — reference [16] of the paper). The
// IBG of a statement q compactly encodes cost(q, X) for every X ⊆ U using
// one what-if call per node: node Y stores cost(q, Y) and used(q, Y); its
// children remove one used index each. The cost of an arbitrary subset is
// found by descending from the root while removing used indices that are
// not in the subset ("covering node" lookup).
//
// Construction is a level-synchronous BFS: all nodes of one level are
// independent what-if probes (a node's children depend only on its own
// `used` set), so with a WorkerPool attached the frontier fans out across
// worker threads and the results are merged serially in canonical mask
// order. Node sets, truncation decisions and relevant_used() are therefore
// byte-identical at any pool width — the determinism contract
// tests/ibg_parallel_test.cc proves.
//
// Thread safety after construction: the node table is immutable, but cost
// lookups memoize into mutable caches, so an IBG must be read by ONE thread
// at a time. This is enforced (cheaply, always on): the first memoizing
// read pins the reader thread and any other thread aborts. The engine
// honors the contract by construction — each per-part IBG is built and
// consumed inside a single worker task, and the selector's statement-wide
// IBG is consumed only by the analysis thread.
#ifndef WFIT_IBG_IBG_H_
#define WFIT_IBG_IBG_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "common/flat_mask_map.h"
#include "optimizer/what_if.h"

namespace wfit {

class WorkerPool;

class IndexBenefitGraph {
 public:
  /// Builds the IBG of `q` over `candidates` (local bit i corresponds to
  /// candidates[i]). Indices on tables the statement does not touch are
  /// harmless but waste bits; callers should pre-filter for efficiency.
  /// Requires candidates.size() <= 25 (masks are 32-bit).
  ///
  /// `max_nodes` bounds the what-if calls a single statement may consume
  /// (the paper reports 5-100 calls/query on DB2). If the node closure
  /// exceeds the budget, the builder retries with the first half of the
  /// candidate list — callers that rank candidates by current benefit
  /// (chooseCands does) therefore shed the least valuable ones first.
  /// Dropped candidates are reported via truncated_candidates().
  ///
  /// With a non-null `pool`, each BFS level's what-if probes run across the
  /// pool (plus the calling thread); the resulting graph is byte-identical
  /// to the serial build.
  IndexBenefitGraph(const Statement& q, const WhatIfOptimizer& optimizer,
                    std::vector<IndexId> candidates,
                    size_t max_nodes = 1u << 20, WorkerPool* pool = nullptr);

  /// Candidates shed by the node-budget fallback (empty in the common case).
  const std::vector<IndexId>& truncated_candidates() const {
    return truncated_;
  }

  const std::vector<IndexId>& candidates() const { return candidates_; }

  /// cost(q, X) for any X over the candidate bits, via covering-node
  /// descent (memoized). Never triggers a what-if call.
  double CostOf(Mask subset) const;

  /// used(q, Z) of the covering node for `subset`; a subset of `subset`.
  Mask UsedAt(Mask subset) const;

  /// Union of `used` masks over all IBG nodes: the only indices that can
  /// ever influence cost(q, ·). Benefit and doi searches enumerate within
  /// this mask.
  Mask relevant_used() const { return relevant_used_; }

  /// benefit_q({bit}, context) = cost(context) − cost(context ∪ {bit}).
  double BenefitOf(int bit, Mask context) const;

  /// β_n(a) = max_X benefit_q({a}, X) over X ⊆ relevant_used() − {a}.
  /// When more than kMaxEnumerationBits indices are plan-relevant the
  /// context enumeration is truncated to the lowest bits (exact in
  /// practice: real plans use far fewer indices).
  double MaxBenefit(int bit) const;

  /// Enumeration budget for benefit/doi context searches.
  static constexpr int kMaxEnumerationBits = 12;

  /// Precomputes cost(q, X) for every X in the benefit/doi enumeration
  /// domain (the lowest kMaxEnumerationBits of relevant_used()) into a
  /// dense array, turning the O(2^k) context searches of MaxBenefit and
  /// DegreeOfInteraction into array reads instead of per-context hashed
  /// descents. Idempotent; called automatically by MaxBenefit and the doi
  /// code. Counts as a memoizing read (single-reader contract).
  void PrepareEnumeration() const;

  /// Local bit of a global index id, or -1 if not a candidate.
  int BitOf(IndexId id) const;

  /// Translates a global configuration to a local mask (ignores ids outside
  /// the candidate list).
  Mask ToMask(const IndexSet& set) const;
  IndexSet ToSet(Mask mask) const;

  size_t num_nodes() const { return nodes_.size(); }
  /// What-if calls consumed during construction.
  uint64_t build_calls() const { return build_calls_; }

 private:
  struct Node {
    double cost = 0.0;
    Mask used = 0;
  };

  /// Level-synchronous BFS over the node closure; returns false when the
  /// closure exceeds `max_nodes` (decided per level BEFORE probing it, so
  /// the outcome and the probe count are independent of the pool width).
  /// Accumulates the optimizer calls it issued into `*calls` (counted
  /// locally: the optimizer's global counter cannot attribute calls when
  /// several IBGs build concurrently on a worker pool).
  bool TryBuild(const Statement& q, const WhatIfOptimizer& optimizer,
                size_t max_nodes, uint64_t* calls);

  /// Descends from the root to the covering node of `subset` (no memo).
  const Node& Covering(Mask subset) const;

  /// Aborts if a second thread issues memoizing reads (see file comment).
  void CheckSingleReader() const;

  std::vector<IndexId> candidates_;
  std::vector<IndexId> truncated_;
  std::unordered_map<IndexId, int> bit_of_;
  /// Node table: open-addressed, pre-sized from min(closure, budget) at
  /// build time; immutable afterwards.
  FlatMaskMap<Node> nodes_;
  /// Memo for CostOf misses outside the dense enumeration domain.
  mutable FlatMaskMap<double> cost_cache_;
  /// Dense cost table over enum_universe_ (lazy; see PrepareEnumeration).
  mutable std::vector<double> enum_costs_;
  mutable Mask enum_universe_ = 0;
  mutable bool enum_ready_ = false;
  /// Dense rank of each universe bit, for mask compression.
  mutable uint8_t enum_pos_[32] = {};
  /// Hashed id of the single thread allowed to issue memoizing reads;
  /// 0 = unclaimed.
  mutable std::atomic<uint64_t> reader_{0};
  /// Probe fan-out pool during construction only; nulled afterwards.
  WorkerPool* pool_ = nullptr;
  Mask root_ = 0;
  Mask relevant_used_ = 0;
  uint64_t build_calls_ = 0;
};

}  // namespace wfit

#endif  // WFIT_IBG_IBG_H_
