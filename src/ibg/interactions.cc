#include "ibg/interactions.h"

#include <algorithm>
#include <cmath>

namespace wfit {

double DegreeOfInteraction(const IndexBenefitGraph& ibg, int bit_a,
                           int bit_b) {
  WFIT_CHECK(bit_a != bit_b, "doi of an index with itself");
  const Mask mask_a = Mask{1} << bit_a;
  const Mask mask_b = Mask{1} << bit_b;
  // Indices that never appear in any plan cannot change any cost.
  if ((ibg.relevant_used() & mask_a) == 0 ||
      (ibg.relevant_used() & mask_b) == 0) {
    return 0.0;
  }
  // Contexts are enumerated within the plan-relevant indices, truncated to
  // the IBG's enumeration budget (doi is pairwise, so the budget is spent
  // per pair). The contexts (and their a/b/ab extensions within the lowest
  // 12 relevant bits) land in the IBG's dense enumeration table.
  ibg.PrepareEnumeration();
  const Mask universe =
      KeepLowestBits(ibg.relevant_used() & ~(mask_a | mask_b),
                     IndexBenefitGraph::kMaxEnumerationBits - 2);
  double best = 0.0;
  for (SubmaskIterator it(universe); !it.done(); it.Next()) {
    Mask x = it.mask();
    // |cost(X) − cost(X∪a) − cost(X∪b) + cost(X∪ab)|
    double v = ibg.CostOf(x) - ibg.CostOf(x | mask_a) -
               ibg.CostOf(x | mask_b) + ibg.CostOf(x | mask_a | mask_b);
    best = std::max(best, std::abs(v));
  }
  return best;
}

std::vector<InteractionEntry> ComputeInteractions(
    const IndexBenefitGraph& ibg) {
  std::vector<InteractionEntry> out;
  const auto& cands = ibg.candidates();
  const Mask used = ibg.relevant_used();
  for (size_t i = 0; i < cands.size(); ++i) {
    if ((used & (Mask{1} << i)) == 0) continue;
    for (size_t j = i + 1; j < cands.size(); ++j) {
      if ((used & (Mask{1} << j)) == 0) continue;
      double doi = DegreeOfInteraction(ibg, static_cast<int>(i),
                                       static_cast<int>(j));
      if (doi > 0.0) {
        out.push_back(InteractionEntry{cands[i], cands[j], doi});
      }
    }
  }
  return out;
}

}  // namespace wfit
