#include "ibg/ibg.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace wfit {

IndexBenefitGraph::IndexBenefitGraph(const Statement& q,
                                     const WhatIfOptimizer& optimizer,
                                     std::vector<IndexId> candidates,
                                     size_t max_nodes)
    : candidates_(std::move(candidates)) {
  WFIT_CHECK(candidates_.size() <= 25, "IBG: too many candidates for a mask");
  WFIT_CHECK(max_nodes >= 1, "IBG: node budget must allow the root");
  while (!TryBuild(q, optimizer, max_nodes, &build_calls_)) {
    // Budget exceeded: shed the tail half of the candidate list (callers
    // rank by benefit) and rebuild.
    size_t keep = candidates_.size() / 2;
    truncated_.insert(truncated_.end(), candidates_.begin() + keep,
                      candidates_.end());
    candidates_.resize(keep);
  }
}

bool IndexBenefitGraph::TryBuild(const Statement& q,
                                 const WhatIfOptimizer& optimizer,
                                 size_t max_nodes, uint64_t* calls) {
  nodes_.clear();
  cost_cache_.clear();
  bit_of_.clear();
  relevant_used_ = 0;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    bit_of_[candidates_[i]] = static_cast<int>(i);
  }
  root_ = candidates_.empty()
              ? 0
              : static_cast<Mask>((1u << candidates_.size()) - 1);

  std::deque<Mask> frontier = {root_};
  while (!frontier.empty()) {
    Mask y = frontier.front();
    frontier.pop_front();
    if (nodes_.count(y) != 0) continue;
    if (nodes_.size() >= max_nodes && !candidates_.empty()) return false;
    ++*calls;
    PlanSummary plan = optimizer.Optimize(q, ToSet(y));
    Mask used = ToMask(plan.used);
    WFIT_CHECK(IsSubset(used, y), "optimizer used an index outside the config");
    nodes_[y] = Node{plan.cost, used};
    relevant_used_ |= used;
    // One child per used index: remove it.
    Mask rest = used;
    while (rest != 0) {
      int bit = LowestBit(rest);
      rest &= rest - 1;
      Mask child = y & ~(Mask{1} << bit);
      if (nodes_.count(child) == 0) frontier.push_back(child);
    }
  }
  return true;
}

double IndexBenefitGraph::CostOf(Mask subset) const {
  WFIT_CHECK(IsSubset(subset, root_), "CostOf: mask outside candidate set");
  // Only plan-relevant bits can change the answer; projecting first makes
  // the memo cache dense.
  const Mask key = subset & relevant_used_;
  if (auto it = cost_cache_.find(key); it != cost_cache_.end()) {
    return it->second;
  }
  Mask y = root_;
  while (true) {
    auto it = nodes_.find(y);
    WFIT_CHECK(it != nodes_.end(), "IBG descent reached a missing node");
    Mask extra = it->second.used & ~subset;
    if (extra == 0) {
      cost_cache_.emplace(key, it->second.cost);
      return it->second.cost;
    }
    y &= ~(Mask{1} << LowestBit(extra));
  }
}

Mask IndexBenefitGraph::UsedAt(Mask subset) const {
  WFIT_CHECK(IsSubset(subset, root_), "UsedAt: mask outside candidate set");
  Mask y = root_;
  while (true) {
    auto it = nodes_.find(y);
    WFIT_CHECK(it != nodes_.end(), "IBG descent reached a missing node");
    Mask extra = it->second.used & ~subset;
    if (extra == 0) return it->second.used;
    y &= ~(Mask{1} << LowestBit(extra));
  }
}

double IndexBenefitGraph::BenefitOf(int bit, Mask context) const {
  Mask without = context & ~(Mask{1} << bit);
  Mask with = without | (Mask{1} << bit);
  return CostOf(without) - CostOf(with);
}

double IndexBenefitGraph::MaxBenefit(int bit) const {
  Mask self = Mask{1} << bit;
  if ((relevant_used_ & self) == 0) {
    // Never used in any plan: it cannot produce positive benefit, but an
    // update's maintenance can still be triggered; check the empty context.
    return BenefitOf(bit, 0);
  }
  // Bound the enumeration: beyond kMaxEnumerationBits plan-relevant
  // indices, keep the lowest bits (deterministic truncation).
  Mask universe =
      KeepLowestBits(relevant_used_ & ~self, kMaxEnumerationBits);
  double best = -std::numeric_limits<double>::infinity();
  for (SubmaskIterator it(universe); !it.done(); it.Next()) {
    best = std::max(best, BenefitOf(bit, it.mask()));
  }
  return best;
}

int IndexBenefitGraph::BitOf(IndexId id) const {
  auto it = bit_of_.find(id);
  return it == bit_of_.end() ? -1 : it->second;
}

Mask IndexBenefitGraph::ToMask(const IndexSet& set) const {
  Mask m = 0;
  for (IndexId id : set) {
    int bit = BitOf(id);
    if (bit >= 0) m |= Mask{1} << bit;
  }
  return m;
}

IndexSet IndexBenefitGraph::ToSet(Mask mask) const {
  IndexSet out;
  Mask rest = mask;
  while (rest != 0) {
    int bit = LowestBit(rest);
    rest &= rest - 1;
    out.Add(candidates_[static_cast<size_t>(bit)]);
  }
  return out;
}

}  // namespace wfit
