#include "ibg/ibg.h"

#include <algorithm>
#include <limits>
#include <string>
#include <thread>

#include "common/worker_pool.h"
#include "obs/trace.h"

namespace wfit {

namespace {

/// Builds `set` from `mask` over `candidates` reusing `set`'s capacity.
void ToSetInto(const std::vector<IndexId>& candidates, Mask mask,
               IndexSet* set) {
  set->clear();
  Mask rest = mask;
  while (rest != 0) {
    int bit = LowestBit(rest);
    rest &= rest - 1;
    set->Add(candidates[static_cast<size_t>(bit)]);
  }
}

}  // namespace

IndexBenefitGraph::IndexBenefitGraph(const Statement& q,
                                     const WhatIfOptimizer& optimizer,
                                     std::vector<IndexId> candidates,
                                     size_t max_nodes, WorkerPool* pool)
    : candidates_(std::move(candidates)) {
  WFIT_CHECK(candidates_.size() <= 25, "IBG: too many candidates for a mask");
  WFIT_CHECK(max_nodes >= 1, "IBG: node budget must allow the root");
  pool_ = pool;
  {
    obs::StageTimer timer(obs::Stage::kIbgBuild);
    obs::SpanGuard span("ibg.build");
    while (!TryBuild(q, optimizer, max_nodes, &build_calls_)) {
      // Budget exceeded: shed the tail half of the candidate list (callers
      // rank by benefit) and rebuild.
      size_t keep = candidates_.size() / 2;
      truncated_.insert(truncated_.end(), candidates_.begin() + keep,
                        candidates_.end());
      candidates_.resize(keep);
    }
    if (span.trace_id() != 0) {
      span.SetDetail(std::to_string(nodes_.size()) + " nodes, " +
                     std::to_string(build_calls_) + " probes");
    }
  }
  pool_ = nullptr;  // construction-only; not used by lookups
}

bool IndexBenefitGraph::TryBuild(const Statement& q,
                                 const WhatIfOptimizer& optimizer,
                                 size_t max_nodes, uint64_t* calls) {
  const size_t n = candidates_.size();
  // Closure bound: the graph can never exceed min(2^n, budget + 1) nodes
  // (the level that would cross the budget is never probed).
  const size_t bound = std::min(size_t{1} << n, max_nodes + 1);
  nodes_.Reset(std::min(bound, size_t{1} << 12));
  cost_cache_.Reset(64);
  enum_ready_ = false;
  bit_of_.clear();
  relevant_used_ = 0;
  for (size_t i = 0; i < n; ++i) {
    bit_of_[candidates_[i]] = static_cast<int>(i);
  }
  root_ = n == 0 ? 0 : static_cast<Mask>((1u << n) - 1);

  // Level-synchronous BFS. All masks of one level are distinct and absent
  // from lower levels (a level-ℓ node has exactly ℓ bits removed from the
  // root), so the per-level budget check and the canonical (ascending mask)
  // merge order make the outcome independent of probe scheduling.
  std::vector<Mask> level = {root_};
  std::vector<Mask> next_level;
  std::vector<PlanSummary> plans;
  std::vector<IndexSet> configs;
  while (!level.empty()) {
    if (nodes_.size() + level.size() > max_nodes && n != 0) return false;
    // Probe the whole level: independent pure what-if calls.
    plans.resize(level.size());
    if (pool_ != nullptr && level.size() > 1) {
      configs.resize(level.size());
      for (size_t i = 0; i < level.size(); ++i) {
        ToSetInto(candidates_, level[i], &configs[i]);
      }
      pool_->ParallelFor(level.size(), [&](size_t i) {
        plans[i] = optimizer.Optimize(q, configs[i]);
      });
    } else {
      IndexSet scratch;
      for (size_t i = 0; i < level.size(); ++i) {
        ToSetInto(candidates_, level[i], &scratch);
        plans[i] = optimizer.Optimize(q, scratch);
      }
    }
    *calls += level.size();
    // Merge serially in level order and collect the next frontier.
    next_level.clear();
    for (size_t i = 0; i < level.size(); ++i) {
      const Mask y = level[i];
      Mask used = ToMask(plans[i].used);
      WFIT_CHECK(IsSubset(used, y),
                 "optimizer used an index outside the config");
      nodes_.Insert(y, Node{plans[i].cost, used});
      relevant_used_ |= used;
      // One child per used index: remove it.
      Mask rest = used;
      while (rest != 0) {
        int bit = LowestBit(rest);
        rest &= rest - 1;
        next_level.push_back(y & ~(Mask{1} << bit));
      }
    }
    // Canonical mask order; duplicates (several parents sharing a child)
    // collapse here.
    std::sort(next_level.begin(), next_level.end());
    next_level.erase(std::unique(next_level.begin(), next_level.end()),
                     next_level.end());
    level.swap(next_level);
  }
  return true;
}

void IndexBenefitGraph::CheckSingleReader() const {
  const uint64_t id =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
  uint64_t expected = 0;
  if (reader_.compare_exchange_strong(expected, id,
                                      std::memory_order_relaxed)) {
    return;  // first memoizing reader claims the graph
  }
  WFIT_CHECK(expected == id,
             "IndexBenefitGraph: memoizing reads from two threads (cost "
             "lookups mutate the memo caches; give each thread its own IBG)");
}

const IndexBenefitGraph::Node& IndexBenefitGraph::Covering(
    Mask subset) const {
  Mask y = root_;
  while (true) {
    const Node* node = nodes_.Find(y);
    WFIT_CHECK(node != nullptr, "IBG descent reached a missing node");
    Mask extra = node->used & ~subset;
    if (extra == 0) return *node;
    y &= ~(Mask{1} << LowestBit(extra));
  }
}

double IndexBenefitGraph::CostOf(Mask subset) const {
  WFIT_DCHECK(IsSubset(subset, root_), "CostOf: mask outside candidate set");
  // Only plan-relevant bits can change the answer; projecting first makes
  // the memo caches dense.
  const Mask key = subset & relevant_used_;
  if (enum_ready_ && IsSubset(key, enum_universe_)) {
    // Dense fast path: the benefit/doi enumeration domain.
    Mask rest = key;
    size_t idx = 0;
    while (rest != 0) {
      int bit = LowestBit(rest);
      rest &= rest - 1;
      idx |= size_t{1} << enum_pos_[bit];
    }
    return enum_costs_[idx];
  }
  CheckSingleReader();
  if (const double* cached = cost_cache_.Find(key)) return *cached;
  double cost = Covering(key).cost;
  cost_cache_.Insert(key, cost);
  return cost;
}

Mask IndexBenefitGraph::UsedAt(Mask subset) const {
  WFIT_CHECK(IsSubset(subset, root_), "UsedAt: mask outside candidate set");
  return Covering(subset).used;
}

double IndexBenefitGraph::BenefitOf(int bit, Mask context) const {
  Mask without = context & ~(Mask{1} << bit);
  Mask with = without | (Mask{1} << bit);
  return CostOf(without) - CostOf(with);
}

void IndexBenefitGraph::PrepareEnumeration() const {
  if (enum_ready_) return;
  CheckSingleReader();
  enum_universe_ = KeepLowestBits(relevant_used_, kMaxEnumerationBits);
  int k = 0;
  for (Mask rest = enum_universe_; rest != 0; rest &= rest - 1) {
    enum_pos_[LowestBit(rest)] = static_cast<uint8_t>(k++);
  }
  enum_costs_.resize(size_t{1} << k);
  // Expand each dense index back to its mask and take one descent; the
  // 2^k ≤ 4096 descents replace the millions of memoized hash lookups the
  // per-context searches would otherwise issue.
  for (size_t idx = 0; idx < enum_costs_.size(); ++idx) {
    Mask m = 0;
    size_t bits = idx;
    Mask universe = enum_universe_;
    while (bits != 0) {
      int low = LowestBit(universe);
      if (bits & 1) m |= Mask{1} << low;
      universe &= universe - 1;
      bits >>= 1;
    }
    enum_costs_[idx] = Covering(m).cost;
  }
  enum_ready_ = true;
}

double IndexBenefitGraph::MaxBenefit(int bit) const {
  Mask self = Mask{1} << bit;
  if ((relevant_used_ & self) == 0) {
    // Never used in any plan: it cannot produce positive benefit, but an
    // update's maintenance can still be triggered; check the empty context.
    return BenefitOf(bit, 0);
  }
  PrepareEnumeration();
  // Bound the enumeration: beyond kMaxEnumerationBits plan-relevant
  // indices, keep the lowest bits (deterministic truncation). The universe
  // is computed exactly as before the dense memo existed — when self is
  // among the lowest relevant bits it may include one bit beyond
  // enum_universe_, and those contexts simply take the memoized-descent
  // path instead of the dense array.
  Mask universe = KeepLowestBits(relevant_used_ & ~self, kMaxEnumerationBits);
  double best = -std::numeric_limits<double>::infinity();
  for (SubmaskIterator it(universe); !it.done(); it.Next()) {
    best = std::max(best, BenefitOf(bit, it.mask()));
  }
  return best;
}

int IndexBenefitGraph::BitOf(IndexId id) const {
  auto it = bit_of_.find(id);
  return it == bit_of_.end() ? -1 : it->second;
}

Mask IndexBenefitGraph::ToMask(const IndexSet& set) const {
  Mask m = 0;
  for (IndexId id : set) {
    int bit = BitOf(id);
    if (bit >= 0) m |= Mask{1} << bit;
  }
  return m;
}

IndexSet IndexBenefitGraph::ToSet(Mask mask) const {
  IndexSet out;
  ToSetInto(candidates_, mask, &out);
  return out;
}

}  // namespace wfit
