// Degree of interaction between index pairs (Sec. 2 of the paper):
//   doi_q(a,b) = max_X |benefit_q({a}, X) − benefit_q({a}, X ∪ {b})|
// computed exactly over the IBG: only indices that appear in some plan
// (IBG::relevant_used) can influence cost, so the max is enumerated over
// subsets of that mask. doi is symmetric in (a, b); tests verify this.
#ifndef WFIT_IBG_INTERACTIONS_H_
#define WFIT_IBG_INTERACTIONS_H_

#include <vector>

#include "ibg/ibg.h"

namespace wfit {

/// doi_q for one pair of local bits. Returns 0 when either index never
/// appears in a plan of q.
double DegreeOfInteraction(const IndexBenefitGraph& ibg, int bit_a, int bit_b);

/// One interacting pair, in global IndexId terms.
struct InteractionEntry {
  IndexId a = 0;
  IndexId b = 0;
  double doi = 0.0;
};

/// All pairs with doi > 0, over the IBG's candidates.
std::vector<InteractionEntry> ComputeInteractions(
    const IndexBenefitGraph& ibg);

}  // namespace wfit

#endif  // WFIT_IBG_INTERACTIONS_H_
