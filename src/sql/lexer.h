// Hand-rolled lexer for the SQL subset. Keywords are not distinguished here;
// the parser matches identifiers case-insensitively against keywords so that
// quoted-identifier support never becomes a lexer concern.
#ifndef WFIT_SQL_LEXER_H_
#define WFIT_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace wfit::sql {

/// Tokenizes `input`. The returned vector always ends with a kEnd token.
/// Fails with InvalidArgument on unterminated strings or stray characters.
StatusOr<std::vector<Token>> Lex(const std::string& input);

}  // namespace wfit::sql

#endif  // WFIT_SQL_LEXER_H_
