#include "sql/printer.h"

#include <sstream>

namespace wfit::sql {

namespace {

std::string FormatNumber(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string PrintColumn(const ColumnName& c) {
  if (c.qualifier.empty()) return c.column;
  return c.qualifier + "." + c.column;
}

std::string PrintLiteral(const Literal& l) {
  if (l.is_string) return "'" + l.text + "'";
  return FormatNumber(l.number);
}

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "=";
}

std::string PrintPredicate(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kBetween:
      return PrintColumn(p.lhs) + " BETWEEN " + PrintLiteral(p.low) + " AND " +
             PrintLiteral(p.high);
    case Predicate::Kind::kJoin:
      return PrintColumn(p.lhs) + " = " + PrintColumn(p.rhs);
    case Predicate::Kind::kCompare:
      return PrintColumn(p.lhs) + " " + OpText(p.op) + " " +
             PrintLiteral(p.value);
  }
  return "";
}

std::string PrintWhere(const std::vector<Predicate>& where) {
  if (where.empty()) return "";
  std::string out = " WHERE ";
  for (size_t i = 0; i < where.size(); ++i) {
    if (i > 0) out += " AND ";
    out += PrintPredicate(where[i]);
  }
  return out;
}

std::string PrintColumnList(const std::vector<ColumnName>& cols) {
  std::string out;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintColumn(cols[i]);
  }
  return out;
}

}  // namespace

std::string Print(const SelectStmt& stmt) {
  std::string out = "SELECT ";
  if (stmt.count_star) {
    out += "count(*)";
  } else if (stmt.select_list.empty()) {
    out += "*";
  } else {
    out += PrintColumnList(stmt.select_list);
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.from[i].name;
    if (!stmt.from[i].alias.empty()) out += " " + stmt.from[i].alias;
  }
  out += PrintWhere(stmt.where);
  if (!stmt.group_by.empty()) out += " GROUP BY " + PrintColumnList(stmt.group_by);
  if (!stmt.order_by.empty()) out += " ORDER BY " + PrintColumnList(stmt.order_by);
  return out;
}

std::string Print(const UpdateStmt& stmt) {
  std::string out = "UPDATE " + stmt.table + " SET ";
  for (size_t i = 0; i < stmt.set_columns.size(); ++i) {
    if (i > 0) out += ", ";
    // RHS expressions are not preserved; a self-assignment round-trips.
    out += stmt.set_columns[i] + " = " + stmt.set_columns[i] + " + 0";
  }
  out += PrintWhere(stmt.where);
  return out;
}

std::string Print(const DeleteStmt& stmt) {
  return "DELETE FROM " + stmt.table + PrintWhere(stmt.where);
}

std::string Print(const InsertStmt& stmt) {
  std::string out = "INSERT INTO " + stmt.table + " VALUES ";
  for (uint64_t i = 0; i < stmt.num_rows; ++i) {
    if (i > 0) out += ", ";
    out += "(0)";
  }
  return out;
}

std::string Print(const SqlStatement& stmt) {
  return std::visit([](const auto& s) { return Print(s); }, stmt);
}

}  // namespace wfit::sql
