#include "sql/parser.h"

#include <algorithm>
#include <cctype>

#include "sql/lexer.h"

namespace wfit::sql {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Token-stream cursor with keyword matching. All Parse* methods return a
/// Status and write into out-parameters (Google style: outputs last).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseStatement(SqlStatement* out);
  bool AtEnd() {
    SkipSemicolons();
    return Peek().kind == TokenKind::kEnd;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && Lower(t.text) == kw;
  }
  bool MatchKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, const std::string& what) {
    if (!Match(kind)) return ErrorHere("expected " + what);
    return Status::Ok();
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return ErrorHere("expected keyword " + kw);
    return Status::Ok();
  }
  Status ErrorHere(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }
  void SkipSemicolons() {
    while (Peek().kind == TokenKind::kSemicolon) Advance();
  }

  Status ParseSelect(SelectStmt* out);
  Status ParseUpdate(UpdateStmt* out);
  Status ParseDelete(DeleteStmt* out);
  Status ParseInsert(InsertStmt* out);

  Status ParseColumnName(ColumnName* out);
  Status ParseTableName(std::string* out);
  Status ParseLiteral(Literal* out);
  Status ParseWhere(std::vector<Predicate>* out);
  Status ParsePredicate(Predicate* out);
  Status ParseColumnList(std::vector<ColumnName>* out);
  Status SkipScalarExpr();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Status Parser::ParseColumnName(ColumnName* out) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere("expected column name");
  }
  std::string first = Advance().text;
  std::string second, third;
  if (Match(TokenKind::kDot)) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected identifier after '.'");
    }
    second = Advance().text;
    if (Match(TokenKind::kDot)) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected identifier after '.'");
      }
      third = Advance().text;
    }
  }
  if (!third.empty()) {
    out->qualifier = first + "." + second;  // dataset.table.column
    out->column = third;
  } else if (!second.empty()) {
    out->qualifier = first;  // table.column or alias.column
    out->column = second;
  } else {
    out->qualifier.clear();
    out->column = first;
  }
  return Status::Ok();
}

Status Parser::ParseTableName(std::string* out) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere("expected table name");
  }
  *out = Advance().text;
  if (Match(TokenKind::kDot)) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected identifier after '.'");
    }
    *out += "." + Advance().text;
  }
  return Status::Ok();
}

Status Parser::ParseLiteral(Literal* out) {
  bool negative = false;
  while (Peek().kind == TokenKind::kMinus || Peek().kind == TokenKind::kPlus) {
    if (Advance().kind == TokenKind::kMinus) negative = !negative;
  }
  const Token& t = Peek();
  if (t.kind == TokenKind::kNumber) {
    out->is_string = false;
    out->number = negative ? -t.number : t.number;
    Advance();
    return Status::Ok();
  }
  if (t.kind == TokenKind::kString) {
    if (negative) return ErrorHere("cannot negate a string literal");
    out->is_string = true;
    out->text = t.text;
    Advance();
    return Status::Ok();
  }
  return ErrorHere("expected literal");
}

Status Parser::ParsePredicate(Predicate* out) {
  WFIT_RETURN_IF_ERROR(ParseColumnName(&out->lhs));
  if (MatchKeyword("between")) {
    out->kind = Predicate::Kind::kBetween;
    WFIT_RETURN_IF_ERROR(ParseLiteral(&out->low));
    WFIT_RETURN_IF_ERROR(ExpectKeyword("and"));
    WFIT_RETURN_IF_ERROR(ParseLiteral(&out->high));
    return Status::Ok();
  }
  CompareOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = CompareOp::kEq; break;
    case TokenKind::kNe: op = CompareOp::kNe; break;
    case TokenKind::kLt: op = CompareOp::kLt; break;
    case TokenKind::kLe: op = CompareOp::kLe; break;
    case TokenKind::kGt: op = CompareOp::kGt; break;
    case TokenKind::kGe: op = CompareOp::kGe; break;
    default:
      return ErrorHere("expected comparison operator or BETWEEN");
  }
  Advance();
  // Column-to-column comparison (only '=' joins are supported) vs literal.
  if (Peek().kind == TokenKind::kIdentifier) {
    if (op != CompareOp::kEq) {
      return ErrorHere("only equality joins are supported");
    }
    out->kind = Predicate::Kind::kJoin;
    out->op = op;
    return ParseColumnName(&out->rhs);
  }
  out->kind = Predicate::Kind::kCompare;
  out->op = op;
  return ParseLiteral(&out->value);
}

Status Parser::ParseWhere(std::vector<Predicate>* out) {
  if (!MatchKeyword("where")) return Status::Ok();
  do {
    Predicate p;
    WFIT_RETURN_IF_ERROR(ParsePredicate(&p));
    out->push_back(std::move(p));
  } while (MatchKeyword("and"));
  return Status::Ok();
}

Status Parser::ParseColumnList(std::vector<ColumnName>* out) {
  do {
    ColumnName c;
    WFIT_RETURN_IF_ERROR(ParseColumnName(&c));
    out->push_back(std::move(c));
  } while (Match(TokenKind::kComma));
  return Status::Ok();
}

Status Parser::ParseSelect(SelectStmt* out) {
  WFIT_RETURN_IF_ERROR(ExpectKeyword("select"));
  if (PeekKeyword("count")) {
    Advance();
    WFIT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' after count"));
    WFIT_RETURN_IF_ERROR(Expect(TokenKind::kStar, "'*' in count(*)"));
    WFIT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')' after count(*)"));
    out->count_star = true;
  } else if (Match(TokenKind::kStar)) {
    out->count_star = false;  // SELECT *: select list stays empty on purpose
  } else {
    WFIT_RETURN_IF_ERROR(ParseColumnList(&out->select_list));
  }
  WFIT_RETURN_IF_ERROR(ExpectKeyword("from"));
  do {
    TableRef ref;
    WFIT_RETURN_IF_ERROR(ParseTableName(&ref.name));
    if (MatchKeyword("as")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !PeekKeyword("where") && !PeekKeyword("group") &&
               !PeekKeyword("order")) {
      ref.alias = Advance().text;
    }
    out->from.push_back(std::move(ref));
  } while (Match(TokenKind::kComma));
  WFIT_RETURN_IF_ERROR(ParseWhere(&out->where));
  if (MatchKeyword("group")) {
    WFIT_RETURN_IF_ERROR(ExpectKeyword("by"));
    WFIT_RETURN_IF_ERROR(ParseColumnList(&out->group_by));
  }
  if (MatchKeyword("order")) {
    WFIT_RETURN_IF_ERROR(ExpectKeyword("by"));
    WFIT_RETURN_IF_ERROR(ParseColumnList(&out->order_by));
    // ASC/DESC does not affect costing; accept and discard.
    if (PeekKeyword("asc") || PeekKeyword("desc")) Advance();
  }
  return Status::Ok();
}

// Consumes a scalar expression on the right-hand side of SET: literals,
// column refs, function calls and +/- chains. Only the shape is validated.
Status Parser::SkipScalarExpr() {
  int depth = 0;
  bool expect_operand = true;
  while (true) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kEnd) {
      if (depth > 0) return ErrorHere("unbalanced parentheses in SET");
      if (expect_operand) return ErrorHere("incomplete expression in SET");
      return Status::Ok();
    }
    if (depth == 0 && !expect_operand &&
        (t.kind == TokenKind::kComma || t.kind == TokenKind::kSemicolon ||
         PeekKeyword("where"))) {
      return Status::Ok();
    }
    switch (t.kind) {
      case TokenKind::kLParen:
        ++depth;
        Advance();
        expect_operand = true;
        break;
      case TokenKind::kRParen:
        if (depth == 0) return ErrorHere("unbalanced ')' in SET");
        --depth;
        Advance();
        expect_operand = false;
        break;
      case TokenKind::kNumber:
      case TokenKind::kString:
        Advance();
        expect_operand = false;
        break;
      case TokenKind::kIdentifier:
        Advance();
        // Function call or qualified column.
        while (Peek().kind == TokenKind::kDot) {
          Advance();
          if (Peek().kind != TokenKind::kIdentifier) {
            return ErrorHere("expected identifier after '.'");
          }
          Advance();
        }
        expect_operand = false;
        break;
      case TokenKind::kPlus:
      case TokenKind::kMinus:
      case TokenKind::kStar:
        Advance();
        expect_operand = true;
        break;
      default:
        return ErrorHere("unexpected token in SET expression");
    }
  }
}

Status Parser::ParseUpdate(UpdateStmt* out) {
  WFIT_RETURN_IF_ERROR(ExpectKeyword("update"));
  WFIT_RETURN_IF_ERROR(ParseTableName(&out->table));
  WFIT_RETURN_IF_ERROR(ExpectKeyword("set"));
  do {
    ColumnName col;
    WFIT_RETURN_IF_ERROR(ParseColumnName(&col));
    out->set_columns.push_back(col.column);
    WFIT_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'=' in SET"));
    WFIT_RETURN_IF_ERROR(SkipScalarExpr());
  } while (Match(TokenKind::kComma));
  return ParseWhere(&out->where);
}

Status Parser::ParseDelete(DeleteStmt* out) {
  WFIT_RETURN_IF_ERROR(ExpectKeyword("delete"));
  WFIT_RETURN_IF_ERROR(ExpectKeyword("from"));
  WFIT_RETURN_IF_ERROR(ParseTableName(&out->table));
  return ParseWhere(&out->where);
}

Status Parser::ParseInsert(InsertStmt* out) {
  WFIT_RETURN_IF_ERROR(ExpectKeyword("insert"));
  WFIT_RETURN_IF_ERROR(ExpectKeyword("into"));
  WFIT_RETURN_IF_ERROR(ParseTableName(&out->table));
  WFIT_RETURN_IF_ERROR(ExpectKeyword("values"));
  out->num_rows = 0;
  do {
    WFIT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'(' in VALUES"));
    int depth = 1;
    while (depth > 0) {
      const Token& t = Advance();
      if (t.kind == TokenKind::kLParen) ++depth;
      else if (t.kind == TokenKind::kRParen) --depth;
      else if (t.kind == TokenKind::kEnd) {
        return ErrorHere("unterminated VALUES tuple");
      }
    }
    ++out->num_rows;
  } while (Match(TokenKind::kComma));
  return Status::Ok();
}

Status Parser::ParseStatement(SqlStatement* out) {
  SkipSemicolons();
  if (PeekKeyword("select")) {
    SelectStmt s;
    WFIT_RETURN_IF_ERROR(ParseSelect(&s));
    *out = std::move(s);
  } else if (PeekKeyword("update")) {
    UpdateStmt s;
    WFIT_RETURN_IF_ERROR(ParseUpdate(&s));
    *out = std::move(s);
  } else if (PeekKeyword("delete")) {
    DeleteStmt s;
    WFIT_RETURN_IF_ERROR(ParseDelete(&s));
    *out = std::move(s);
  } else if (PeekKeyword("insert")) {
    InsertStmt s;
    WFIT_RETURN_IF_ERROR(ParseInsert(&s));
    *out = std::move(s);
  } else {
    return ErrorHere("expected SELECT, UPDATE, DELETE or INSERT");
  }
  SkipSemicolons();
  return Status::Ok();
}

}  // namespace

StatusOr<SqlStatement> ParseStatement(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  SqlStatement stmt;
  WFIT_RETURN_IF_ERROR(parser.ParseStatement(&stmt));
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after statement");
  }
  return stmt;
}

StatusOr<std::vector<SqlStatement>> ParseScript(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  std::vector<SqlStatement> out;
  while (!parser.AtEnd()) {
    SqlStatement stmt;
    WFIT_RETURN_IF_ERROR(parser.ParseStatement(&stmt));
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace wfit::sql
