// Recursive-descent parser for the SQL subset (see sql/ast.h).
#ifndef WFIT_SQL_PARSER_H_
#define WFIT_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace wfit::sql {

/// Parses a single statement (trailing semicolon optional).
StatusOr<SqlStatement> ParseStatement(const std::string& text);

/// Parses a ';'-separated script; empty statements are skipped.
StatusOr<std::vector<SqlStatement>> ParseScript(const std::string& text);

}  // namespace wfit::sql

#endif  // WFIT_SQL_PARSER_H_
