// Abstract syntax for the SQL subset used by the workload: single-block
// SELECT with conjunctive WHERE, plus UPDATE / DELETE / multi-row INSERT.
// This mirrors the statement shapes of the paper's benchmark workload
// (Sec. 6.1): join queries with mixed-selectivity predicates and update
// statements with range predicates.
#ifndef WFIT_SQL_AST_H_
#define WFIT_SQL_AST_H_

#include <string>
#include <variant>
#include <vector>

namespace wfit::sql {

/// Column reference as written: optional qualifier (table or dataset.table)
/// plus column name.
struct ColumnName {
  std::string qualifier;  // may be empty or "dataset.table"
  std::string column;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A scalar literal: either numeric or string. String literals are mapped
/// onto the column's numeric domain by the binder.
struct Literal {
  bool is_string = false;
  double number = 0.0;
  std::string text;
};

/// One conjunct of a WHERE clause.
struct Predicate {
  enum class Kind { kCompare, kBetween, kJoin } kind = Kind::kCompare;
  ColumnName lhs;
  // kCompare:
  CompareOp op = CompareOp::kEq;
  Literal value;
  // kBetween:
  Literal low, high;
  // kJoin (column = column):
  ColumnName rhs;
};

struct TableRef {
  std::string name;   // "table" or "dataset.table"
  std::string alias;  // empty if none
};

struct SelectStmt {
  bool count_star = false;
  std::vector<ColumnName> select_list;  // empty iff count_star
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::vector<ColumnName> group_by;
  std::vector<ColumnName> order_by;
};

struct UpdateStmt {
  std::string table;
  /// Assigned columns; the right-hand sides are parsed but not evaluated
  /// (the cost model needs only which columns change and how many rows).
  std::vector<std::string> set_columns;
  std::vector<Predicate> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<Predicate> where;
};

struct InsertStmt {
  std::string table;
  /// Number of VALUES tuples in the statement.
  uint64_t num_rows = 0;
};

using SqlStatement = std::variant<SelectStmt, UpdateStmt, DeleteStmt, InsertStmt>;

}  // namespace wfit::sql

#endif  // WFIT_SQL_AST_H_
