#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace wfit::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // Line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = input.substr(i, j - i);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') && j > i &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string payload;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            payload += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        payload += input[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(payload);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return Status::InvalidArgument("stray '!' at offset " +
                                         std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace wfit::sql
