// Token model for the SQL subset understood by the workload front end.
#ifndef WFIT_SQL_TOKEN_H_
#define WFIT_SQL_TOKEN_H_

#include <string>

namespace wfit::sql {

enum class TokenKind {
  kIdentifier,   // table / column / function names (case-preserved)
  kNumber,       // numeric literal (double)
  kString,       // quoted literal, quotes stripped
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kNe,
  kPlus,
  kMinus,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier / string payload
  double number = 0.0; // kNumber payload
  size_t offset = 0;   // byte offset in the input, for error messages
};

}  // namespace wfit::sql

#endif  // WFIT_SQL_TOKEN_H_
