// Renders AST statements back to SQL text. Round-tripping through
// ParseStatement(Print(stmt)) yields an equivalent AST (checked by tests);
// the workload generator uses this to emit its statements as SQL.
#ifndef WFIT_SQL_PRINTER_H_
#define WFIT_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace wfit::sql {

std::string Print(const SqlStatement& stmt);
std::string Print(const SelectStmt& stmt);
std::string Print(const UpdateStmt& stmt);
std::string Print(const DeleteStmt& stmt);
std::string Print(const InsertStmt& stmt);

}  // namespace wfit::sql

#endif  // WFIT_SQL_PRINTER_H_
