#include "optimizer/caching_what_if.h"

#include "obs/trace.h"

namespace wfit {

namespace {

/// Validates `base` before the base-class initializer dereferences it.
const CostModel* BaseModel(const WhatIfOptimizer* base) {
  WFIT_CHECK(base != nullptr, "CachingWhatIfOptimizer requires a base");
  return &base->cost_model();
}

}  // namespace

CachingWhatIfOptimizer::CachingWhatIfOptimizer(
    const WhatIfOptimizer* base, const CrossStatementCacheOptions& cross_options)
    : WhatIfOptimizer(BaseModel(base)),
      base_(base),
      cross_options_(cross_options) {}

void CachingWhatIfOptimizer::BeginStatement(const Statement* q) {
  std::lock_guard<std::mutex> lock(mu_);
  scope_ = q;
  cache_.clear();
  cross_ = nullptr;
  if (q == nullptr || cross_options_.max_templates == 0) return;

  const uint64_t fp = q->Fingerprint();
  auto it = template_index_.find(fp);
  if (it != template_index_.end()) {
    if (SameCostShape(it->second->shape, *q)) {
      // Warm template: move to the LRU front and attach.
      templates_.splice(templates_.begin(), templates_, it->second);
      cross_ = &templates_.front().plans;
      return;
    }
    // Fingerprint collision with a different shape: serving it would be
    // wrong, keeping both under one key needs chaining — evict instead
    // (counted; expected ~never).
    fingerprint_collisions_.fetch_add(1, std::memory_order_relaxed);
    templates_.erase(it->second);
    template_index_.erase(it);
  }
  // Second-touch admission: the first sighting only leaves a footprint; an
  // entry (and the per-probe caching work that comes with it) is created
  // when the template provably repeats.
  if (seen_once_.insert(fp).second) {
    if (seen_once_.size() > 8 * cross_options_.max_templates) {
      seen_once_.clear();  // coarse reset; costs a template one cold repeat
    }
    return;
  }
  if (templates_.size() >= cross_options_.max_templates) {
    template_index_.erase(templates_.back().fingerprint);
    templates_.pop_back();
  }
  TemplateEntry entry;
  entry.fingerprint = fp;
  entry.shape = *q;
  entry.shape.sql.clear();
  templates_.push_front(std::move(entry));
  template_index_.emplace(fp, templates_.begin());
  cross_ = &templates_.front().plans;
}

size_t CachingWhatIfOptimizer::scoped_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t CachingWhatIfOptimizer::cross_templates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return templates_.size();
}

PlanSummary CachingWhatIfOptimizer::Optimize(const Statement& q,
                                             const IndexSet& x) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  if (&q != scope_) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    return base_->Optimize(q, x);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(x);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    if (cross_ != nullptr) {
      auto cit = cross_->find(x);
      if (cit != cross_->end()) {
        cross_hits_.fetch_add(1, std::memory_order_relaxed);
        // Promote into tier 1 so repeats within this statement are
        // statement-tier hits (keeps the tier metrics meaningful).
        cache_.emplace(x, cit->second);
        return cit->second;
      }
    }
  }
  // Computed outside the lock: concurrent probes of the same configuration
  // may both run the base optimizer (each counted as a miss); the values
  // are identical, so the duplicate inserts below are benign no-ops.
  PlanSummary plan = [&] {
    obs::StageTimer timer(obs::Stage::kProbe);
    obs::SpanGuard span("probe.real");
    return base_->Optimize(q, x);
  }();
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(x, plan);
    if (cross_ != nullptr &&
        cross_->size() < cross_options_.max_configs_per_template) {
      cross_->emplace(x, plan);
    }
  }
  return plan;
}

}  // namespace wfit
