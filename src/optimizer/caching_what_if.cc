#include "optimizer/caching_what_if.h"

namespace wfit {

namespace {

/// Validates `base` before the base-class initializer dereferences it.
const CostModel* BaseModel(const WhatIfOptimizer* base) {
  WFIT_CHECK(base != nullptr, "CachingWhatIfOptimizer requires a base");
  return &base->cost_model();
}

}  // namespace

CachingWhatIfOptimizer::CachingWhatIfOptimizer(const WhatIfOptimizer* base)
    : WhatIfOptimizer(BaseModel(base)), base_(base) {}

void CachingWhatIfOptimizer::BeginStatement(const Statement* q) {
  std::lock_guard<std::mutex> lock(mu_);
  scope_ = q;
  cache_.clear();
}

size_t CachingWhatIfOptimizer::scoped_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

PlanSummary CachingWhatIfOptimizer::Optimize(const Statement& q,
                                             const IndexSet& x) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  if (&q != scope_) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    return base_->Optimize(q, x);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(x);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Computed outside the lock: concurrent probes of the same configuration
  // may both run the base optimizer (each counted as a miss); the values
  // are identical, so the duplicate insert below is a benign no-op.
  PlanSummary plan = base_->Optimize(q, x);
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(x, plan);
  }
  return plan;
}

}  // namespace wfit
