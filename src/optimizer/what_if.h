// The what-if optimizer: cost(q, X) for a statement q under a hypothetical
// index configuration X, plus the set of indices the chosen plan uses. This
// plays the role of DB2's what-if mode in the paper's prototype; see
// DESIGN.md for the substitution argument.
//
// Plan space per table: sequential scan, index scan/seek with B-tree prefix
// matching (leading equalities + one range), index-only (covering) scans,
// sort-avoiding index scans for ORDER BY, and two-index intersections —
// the intersections and covering plans are what create the index
// interactions that WFIT's stable partitions model. Multi-table SELECTs use
// a left-deep chain ordered by filtered cardinality with a choice of
// hash join or index-nested-loop per step. Updates pay a locate cost (which
// indices can reduce) plus per-index maintenance (which indices inflate).
#ifndef WFIT_OPTIMIZER_WHAT_IF_H_
#define WFIT_OPTIMIZER_WHAT_IF_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "workload/statement.h"

namespace wfit {

/// Result of one what-if optimization.
struct PlanSummary {
  double cost = 0.0;
  /// Indices the winning plan touches; always a subset of the hypothetical
  /// configuration, and minimal under cost ties.
  IndexSet used;
};

/// The interface is virtual so decorators (CachingWhatIfOptimizer) can be
/// layered over the real optimizer; Optimize is safe to call concurrently
/// from multiple threads (cost arithmetic is pure, the call counter is
/// atomic), which the parallel per-part analysis engine relies on.
class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const CostModel* model) : model_(model) {
    WFIT_CHECK(model != nullptr, "WhatIfOptimizer requires a cost model");
  }
  virtual ~WhatIfOptimizer() = default;

  WhatIfOptimizer(const WhatIfOptimizer&) = delete;
  WhatIfOptimizer& operator=(const WhatIfOptimizer&) = delete;

  /// cost(q, X) with used-index reporting. Increments the what-if call
  /// counter (the paper reports calls/query as the main overhead metric).
  virtual PlanSummary Optimize(const Statement& q, const IndexSet& x) const;

  /// Convenience: cost only.
  double Cost(const Statement& q, const IndexSet& x) const {
    return Optimize(q, x).cost;
  }

  uint64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCount() { num_calls_.store(0, std::memory_order_relaxed); }

  const CostModel& cost_model() const { return *model_; }

 protected:
  /// Calls served by this layer (decorators count probes; the concrete
  /// optimizer counts real optimizations).
  mutable std::atomic<uint64_t> num_calls_{0};

 private:
  struct AccessPath {
    double cost = 0.0;
    double out_rows = 0.0;
    IndexSet used;
    /// True when rows are produced in `order_col` order (sort avoided).
    bool sorted = false;
  };

  /// Best access path for one table slice of the statement. `needs_fetch`
  /// forces heap access (updates must fetch rows regardless of covering).
  AccessPath BestTableAccess(const StatementTable& t,
                             const std::vector<IndexId>& available,
                             const ColumnRef* order_col,
                             bool needs_fetch) const;

  /// All single-index candidate paths on `t` (helper for BestTableAccess).
  std::vector<AccessPath> SingleIndexPaths(const StatementTable& t,
                                           const std::vector<IndexId>& available,
                                           const ColumnRef* order_col,
                                           bool needs_fetch) const;

  PlanSummary OptimizeSelect(const Statement& q, const IndexSet& x) const;
  PlanSummary OptimizeUpdate(const Statement& q, const IndexSet& x) const;

  const CostModel* model_;
};

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_WHAT_IF_H_
