// extractIndices(q): syntactic candidate generation, the role DB2's design
// advisor plays for the paper's prototype (Fig. 6, line 1). Produces
// single-column indices for sargable predicates and join columns, composite
// indices for predicate combinations, sort-avoiding indices for ORDER BY,
// and covering indices when the statement references few columns.
#ifndef WFIT_OPTIMIZER_INDEX_EXTRACTOR_H_
#define WFIT_OPTIMIZER_INDEX_EXTRACTOR_H_

#include <vector>

#include "catalog/index.h"
#include "core/index_set.h"
#include "workload/statement.h"

namespace wfit {

struct ExtractorOptions {
  /// Hard cap on candidates emitted per statement.
  size_t max_candidates_per_statement = 12;
  /// Emit composite (multi-column) candidates.
  bool composite_candidates = true;
  /// Emit covering candidates when a table slice references at most this
  /// many columns.
  size_t covering_max_columns = 3;
};

/// Extracts candidate indices for `q`, interning them in `pool`.
/// Deterministic: candidates are emitted in priority order (predicate
/// singles, join singles, composites, covering) and truncated to the cap.
std::vector<IndexId> ExtractIndices(const Statement& q, IndexPool* pool,
                                    const ExtractorOptions& options = {});

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_INDEX_EXTRACTOR_H_
