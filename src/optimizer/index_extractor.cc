#include "optimizer/index_extractor.h"

#include <algorithm>
#include <set>

namespace wfit {

namespace {

/// Emits `def` into `out` unless the cap is hit or the def was seen.
class Emitter {
 public:
  Emitter(IndexPool* pool, size_t cap) : pool_(pool), cap_(cap) {}

  void Emit(const IndexDef& def) {
    if (out_.size() >= cap_) return;
    IndexId id = pool_->Intern(def);
    if (seen_.insert(id).second) out_.push_back(id);
  }

  std::vector<IndexId> Take() { return std::move(out_); }

 private:
  IndexPool* pool_;
  size_t cap_;
  std::set<IndexId> seen_;
  std::vector<IndexId> out_;
};

}  // namespace

std::vector<IndexId> ExtractIndices(const Statement& q, IndexPool* pool,
                                    const ExtractorOptions& options) {
  WFIT_CHECK(pool != nullptr, "ExtractIndices requires a pool");
  Emitter emit(pool, options.max_candidates_per_statement);

  // Pass 1: single-column indices on sargable predicate columns
  // (equality predicates first — they make the best leading keys).
  for (bool want_equality : {true, false}) {
    for (const StatementTable& t : q.tables) {
      for (const ScanPredicate& p : t.predicates) {
        if (!p.sargable || p.equality != want_equality) continue;
        emit.Emit(IndexDef{t.table, {p.column.column}});
      }
    }
  }

  // Pass 2: join columns (enable index-nested-loop plans).
  for (const JoinClause& j : q.joins) {
    emit.Emit(IndexDef{j.left.table, {j.left.column}});
    emit.Emit(IndexDef{j.right.table, {j.right.column}});
  }

  // Pass 3: ORDER BY leading column (sort avoidance).
  for (const ColumnRef& c : q.order_by) {
    emit.Emit(IndexDef{c.table, {c.column}});
  }

  if (options.composite_candidates) {
    // Pass 4: per-table composites: equality columns (ordinal order) then
    // one range column; pairs of sargable predicate columns.
    for (const StatementTable& t : q.tables) {
      std::vector<uint32_t> eq_cols, range_cols;
      for (const ScanPredicate& p : t.predicates) {
        if (!p.sargable) continue;
        (p.equality ? eq_cols : range_cols).push_back(p.column.column);
      }
      std::sort(eq_cols.begin(), eq_cols.end());
      eq_cols.erase(std::unique(eq_cols.begin(), eq_cols.end()),
                    eq_cols.end());
      std::sort(range_cols.begin(), range_cols.end());
      range_cols.erase(std::unique(range_cols.begin(), range_cols.end()),
                       range_cols.end());
      if (eq_cols.size() >= 2) {
        emit.Emit(IndexDef{t.table, eq_cols});
      }
      for (uint32_t r : range_cols) {
        if (!eq_cols.empty()) {
          std::vector<uint32_t> cols = eq_cols;
          cols.push_back(r);
          emit.Emit(IndexDef{t.table, cols});
        }
      }
      // Range-range pairs (intersection alternative as one composite).
      if (range_cols.size() >= 2) {
        emit.Emit(IndexDef{t.table, {range_cols[0], range_cols[1]}});
      }
      // Equality prefix + ORDER BY column (filter and avoid the sort).
      for (const ColumnRef& oc : q.order_by) {
        if (oc.table != t.table) continue;
        for (uint32_t e : eq_cols) {
          if (e != oc.column) {
            emit.Emit(IndexDef{t.table, {e, oc.column}});
          }
        }
      }
    }
  }

  // Pass 5: covering candidates for narrow statements: sargable predicate
  // columns first (prefix usable), then the remaining referenced columns.
  for (const StatementTable& t : q.tables) {
    if (t.referenced_columns.size() == 0 ||
        t.referenced_columns.size() > options.covering_max_columns) {
      continue;
    }
    std::vector<uint32_t> cols;
    for (const ScanPredicate& p : t.predicates) {
      if (!p.sargable) continue;
      if (std::find(cols.begin(), cols.end(), p.column.column) == cols.end()) {
        cols.push_back(p.column.column);
      }
    }
    std::vector<uint32_t> rest = t.referenced_columns;
    std::sort(rest.begin(), rest.end());
    for (uint32_t c : rest) {
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    if (cols.size() >= 2) {
      emit.Emit(IndexDef{t.table, cols});
    }
  }

  return emit.Take();
}

}  // namespace wfit
