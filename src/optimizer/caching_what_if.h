// CachingWhatIfOptimizer: a statement-scoped memo over any WhatIfOptimizer.
//
// WFIT's per-statement work probes cost(q, X) from several places — the
// candidate selector's statement-wide IBG and one IBG per stable-partition
// part — and those probes overlap (shared subsets, the IBG node-budget
// retry path re-probing surviving configurations). The decorator
// deduplicates identical (q, X) probes within one statement: callers scope
// it with BeginStatement(&q), which clears the table, and every probe for a
// different statement bypasses the cache entirely, so a stale cost can
// never leak across statements.
//
// Thread safety: Optimize may be called concurrently from worker-pool
// threads analyzing different parts of the same statement; the table is
// mutex-protected and the counters are atomic. BeginStatement must be
// called from the (single) analysis thread between statements, never while
// probes are in flight.
#ifndef WFIT_OPTIMIZER_CACHING_WHAT_IF_H_
#define WFIT_OPTIMIZER_CACHING_WHAT_IF_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/index_set.h"
#include "optimizer/what_if.h"

namespace wfit {

class CachingWhatIfOptimizer final : public WhatIfOptimizer {
 public:
  /// Decorates `base` (not owned; must outlive the decorator). cost_model()
  /// passes through to the base model, so WfaInstance construction and
  /// transition costing are unchanged.
  explicit CachingWhatIfOptimizer(const WhatIfOptimizer* base);

  /// Scopes the cache to `q` and clears all entries. Pass nullptr to
  /// disable caching (every probe bypasses to the base optimizer).
  void BeginStatement(const Statement* q);

  /// Returns the memoized plan when (q, X) was already probed for the
  /// scoped statement; otherwise delegates to the base optimizer and
  /// memoizes. Probes for non-scoped statements delegate without caching.
  PlanSummary Optimize(const Statement& q, const IndexSet& x) const override;

  /// Monotone counters across the decorator's lifetime (the cache itself
  /// is cleared per statement). num_calls() == hits + misses + bypasses.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t bypasses() const {
    return bypasses_.load(std::memory_order_relaxed);
  }

  /// Entries currently memoized for the scoped statement (for tests).
  size_t scoped_entries() const;

  const WhatIfOptimizer* base() const { return base_; }

 private:
  const WhatIfOptimizer* base_;
  const Statement* scope_ = nullptr;
  mutable std::mutex mu_;
  mutable std::unordered_map<IndexSet, PlanSummary, IndexSetHash> cache_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> bypasses_{0};
};

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_CACHING_WHAT_IF_H_
