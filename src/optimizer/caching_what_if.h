// CachingWhatIfOptimizer: a two-tier memo over any WhatIfOptimizer.
//
// Tier 1 (statement-scoped): WFIT's per-statement work probes cost(q, X)
// from several places — the candidate selector's statement-wide IBG and one
// IBG per stable-partition part — and those probes overlap (shared subsets,
// the IBG node-budget retry path re-probing surviving configurations). The
// decorator deduplicates identical (q, X) probes within one statement:
// callers scope it with BeginStatement(&q), which clears the tier, and every
// probe for a different statement bypasses the cache entirely, so a stale
// cost can never leak across statements.
//
// Tier 2 (cross-statement): generator and OLTP workloads repeat statement
// templates, and a repeated statement re-pays every optimizer probe tier 1
// already answered last time. The cross-statement tier survives
// BeginStatement: a bounded LRU of template entries keyed by the
// statement's structural Fingerprint(), each holding the (configuration →
// plan) map accumulated over previous occurrences. Admission is
// second-touch: a template only earns an entry once its fingerprint has
// been scoped twice, so ad-hoc never-repeated statements (the benchmark
// trace) pay nothing beyond one hash, while prepared-statement workloads
// warm up from their second repetition. Correctness does not rest on the
// hash — a candidate entry is verified with SameCostShape() before it is
// attached, so a fingerprint collision evicts instead of serving a wrong
// cost. The optimizer is a pure function of
// (statement, configuration), so a warm tier 2 changes which probes reach
// the base optimizer but never any returned cost: recommendation
// trajectories are bit-for-bit identical with the tier cold, warm, or
// disabled (asserted in recovery_test and parallel_analysis_test). The tier
// is deliberately NOT persisted by persist/ snapshots — recovery restarts
// it cold, which by the same argument cannot change the replayed
// trajectory.
//
// Thread safety: Optimize may be called concurrently from worker-pool
// threads analyzing parts (or IBG frontier probes) of the same statement;
// the tables are mutex-protected and the counters are atomic.
// BeginStatement must be called from the (single) analysis thread between
// statements, never while probes are in flight.
#ifndef WFIT_OPTIMIZER_CACHING_WHAT_IF_H_
#define WFIT_OPTIMIZER_CACHING_WHAT_IF_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/index_set.h"
#include "optimizer/what_if.h"

namespace wfit {

/// Bounds for the cross-statement tier. Default-constructed = enabled with
/// service-friendly bounds; set `max_templates = 0` to disable the tier.
struct CrossStatementCacheOptions {
  /// LRU capacity in distinct statement templates (0 disables the tier).
  size_t max_templates = 128;
  /// Per-template bound on memoized configurations; once reached, new
  /// configurations are no longer added (the warm core of the template
  /// stays; tier 1 still dedupes within a statement).
  size_t max_configs_per_template = 8192;
};

class CachingWhatIfOptimizer final : public WhatIfOptimizer {
 public:
  /// Decorates `base` (not owned; must outlive the decorator). cost_model()
  /// passes through to the base model, so WfaInstance construction and
  /// transition costing are unchanged.
  explicit CachingWhatIfOptimizer(
      const WhatIfOptimizer* base,
      const CrossStatementCacheOptions& cross_options = {});

  /// Scopes the cache to `q`: clears tier 1 and attaches (or creates) the
  /// matching cross-statement template entry. Pass nullptr to disable
  /// caching (every probe bypasses to the base optimizer).
  void BeginStatement(const Statement* q);

  /// Returns the memoized plan when (q, X) was already probed — for the
  /// scoped statement (tier 1) or any earlier structurally identical
  /// statement (tier 2); otherwise delegates to the base optimizer and
  /// memoizes in both tiers. Probes for non-scoped statements delegate
  /// without caching.
  PlanSummary Optimize(const Statement& q, const IndexSet& x) const override;

  /// Monotone counters across the decorator's lifetime. Every hit (either
  /// tier) is one avoided optimizer call;
  /// num_calls() == hits + cross_hits + misses + bypasses.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t cross_hits() const {
    return cross_hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t bypasses() const {
    return bypasses_.load(std::memory_order_relaxed);
  }
  /// Templates evicted because a different statement shape hashed to the
  /// same fingerprint (expected ~never; a canary for the hash quality).
  uint64_t fingerprint_collisions() const {
    return fingerprint_collisions_.load(std::memory_order_relaxed);
  }

  /// Entries currently memoized for the scoped statement (tier 1 only).
  size_t scoped_entries() const;
  /// Distinct templates currently resident in the cross-statement tier.
  size_t cross_templates() const;

  const WhatIfOptimizer* base() const { return base_; }
  const CrossStatementCacheOptions& cross_options() const {
    return cross_options_;
  }

 private:
  using PlanMap = std::unordered_map<IndexSet, PlanSummary, IndexSetHash>;

  struct TemplateEntry {
    uint64_t fingerprint = 0;
    /// Structural copy used to verify fingerprint candidates (sql cleared —
    /// it plays no role in costing and can be large).
    Statement shape;
    PlanMap plans;
  };

  const WhatIfOptimizer* base_;
  const CrossStatementCacheOptions cross_options_;
  const Statement* scope_ = nullptr;
  mutable std::mutex mu_;
  /// Tier 1: cleared every BeginStatement.
  mutable PlanMap cache_;
  /// Tier 2: most-recently-used first; BeginStatement moves the scoped
  /// template to the front and evicts from the back. `cross_` points at the
  /// scoped statement's entry (nullptr = tier disabled / no scope).
  mutable std::list<TemplateEntry> templates_;
  std::unordered_map<uint64_t, std::list<TemplateEntry>::iterator>
      template_index_;
  PlanMap* cross_ = nullptr;
  /// Second-touch admission: fingerprints scoped once, awaiting a repeat.
  /// Cleared wholesale when it outgrows its bound (coarse, but the only
  /// cost of forgetting is one extra cold statement for a template).
  std::unordered_set<uint64_t> seen_once_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> cross_hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> bypasses_{0};
  mutable std::atomic<uint64_t> fingerprint_collisions_{0};
};

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_CACHING_WHAT_IF_H_
