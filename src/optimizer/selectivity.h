// Selectivity estimation from column statistics. Uniformity and
// independence assumptions throughout, matching what a textbook
// System-R-style optimizer would estimate.
#ifndef WFIT_OPTIMIZER_SELECTIVITY_H_
#define WFIT_OPTIMIZER_SELECTIVITY_H_

#include "catalog/catalog.h"
#include "sql/ast.h"

namespace wfit {

/// P(col = v): 1/distinct.
double EqualitySelectivity(const ColumnInfo& col);

/// P(lo <= col <= hi): domain overlap fraction, clamped to [0,1], with a
/// floor of one distinct value's worth of selectivity.
double RangeSelectivity(const ColumnInfo& col, double lo, double hi);

/// P(col op v) for scalar comparisons.
double CompareSelectivity(const ColumnInfo& col, sql::CompareOp op, double v);

/// Equi-join selectivity: 1/max(distinct(a), distinct(b)).
double JoinSelectivity(const ColumnInfo& a, const ColumnInfo& b);

/// Deterministically maps a string literal into a column's numeric domain
/// (dictionary-code simulation) so that string predicates get plausible
/// selectivities.
double MapStringToDomain(const ColumnInfo& col, const std::string& text);

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_SELECTIVITY_H_
