#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace wfit {

CostModel::CostModel(const Catalog* catalog, const IndexPool* pool,
                     const CostModelOptions& options)
    : catalog_(catalog), pool_(pool), options_(options) {
  WFIT_CHECK(catalog != nullptr && pool != nullptr,
             "CostModel requires catalog and index pool");
}

double CostModel::TablePages(TableId t) const {
  const TableInfo& info = catalog_->table(t);
  double bytes = static_cast<double>(info.row_count) * info.RowWidth();
  return std::max(1.0, bytes / options_.page_size_bytes);
}

double CostModel::TableScanCost(TableId t) const {
  const TableInfo& info = catalog_->table(t);
  return TablePages(t) * options_.seq_page_cost +
         static_cast<double>(info.row_count) * options_.cpu_tuple_cost;
}

double CostModel::IndexPages(IndexId a) const {
  const IndexDef& def = pool_->def(a);
  const TableInfo& info = catalog_->table(def.table);
  double bytes =
      static_cast<double>(info.row_count) * pool_->EntryWidth(a);
  return std::max(1.0, bytes / options_.page_size_bytes);
}

double CostModel::SortCost(double rows) const {
  if (rows <= 1.0) return 0.0;
  return rows * std::log2(rows + 1.0) * options_.sort_tuple_cost;
}

double CostModel::CreateCost(IndexId a) const {
  const IndexDef& def = pool_->def(a);
  const TableInfo& info = catalog_->table(def.table);
  double rows = static_cast<double>(info.row_count);
  double scan = TableScanCost(def.table);
  double sort = SortCost(rows);
  double write = IndexPages(a) * options_.seq_page_cost;
  return options_.build_cost_factor * (scan + sort + write);
}

double CostModel::DropCost(IndexId) const { return options_.drop_cost; }

double CostModel::TransitionCost(const IndexSet& from,
                                 const IndexSet& to) const {
  double cost = 0.0;
  for (IndexId a : to.Minus(from)) cost += CreateCost(a);
  for (IndexId a : from.Minus(to)) cost += DropCost(a);
  return cost;
}

double CostModel::MaintenanceCost(IndexId a, double rows) const {
  if (rows <= 0.0) return 0.0;
  (void)a;  // flat per-row charge: leaf locality is not modeled
  return rows * (options_.index_maintenance_per_row +
                 options_.cpu_index_tuple_cost) +
         options_.btree_probe_cost;
}

}  // namespace wfit
