// The cost model behind the what-if optimizer: statistics-based costing of
// scans, index probes, intersections, joins, sorts, index maintenance, and
// the transition costs δ+/δ− of creating and dropping indices. Constants
// follow the usual page/CPU split of System-R descendants (cf. PostgreSQL's
// seq_page_cost/random_page_cost).
#ifndef WFIT_OPTIMIZER_COST_MODEL_H_
#define WFIT_OPTIMIZER_COST_MODEL_H_

#include "catalog/catalog.h"
#include "catalog/index.h"
#include "core/index_set.h"

namespace wfit {

struct CostModelOptions {
  double page_size_bytes = 8192.0;
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.005;
  double cpu_index_tuple_cost = 0.0025;
  double cpu_operator_cost = 0.001;
  /// Cost of one B-tree root-to-leaf descent.
  double btree_probe_cost = 3.0;
  /// Per-tuple n·log2(n) multiplier for sorts.
  double sort_tuple_cost = 0.002;
  /// Index creation: base-table scan + sort + index write, scaled by this
  /// factor (δ is asymmetric: creation dominates).
  double build_cost_factor = 1.0;
  /// Dropping an index is a catalog operation: small flat cost.
  double drop_cost = 20.0;
  /// Per modified row, per affected index: descend + leaf write.
  double index_maintenance_per_row = 2.0;
  /// Per modified row cost on the base table (heap write).
  double base_write_per_row = 4.0;
};

/// Pure cost arithmetic; all methods are const and deterministic.
class CostModel {
 public:
  CostModel(const Catalog* catalog, const IndexPool* pool,
            const CostModelOptions& options = {});

  const CostModelOptions& options() const { return options_; }
  const Catalog& catalog() const { return *catalog_; }
  const IndexPool& pool() const { return *pool_; }

  /// Heap pages of a table.
  double TablePages(TableId t) const;
  /// Full sequential scan (I/O + per-tuple CPU).
  double TableScanCost(TableId t) const;
  /// Leaf pages of a full index.
  double IndexPages(IndexId a) const;

  /// δ+(a): cost to create index a (scan + sort + write).
  double CreateCost(IndexId a) const;
  /// δ−(a): cost to drop index a.
  double DropCost(IndexId a) const;
  /// δ(X, Y): create Y−X, drop X−Y. Asymmetric; satisfies the triangle
  /// inequality (verified by tests).
  double TransitionCost(const IndexSet& from, const IndexSet& to) const;

  /// Maintenance charge for `rows` modified rows against index a.
  double MaintenanceCost(IndexId a, double rows) const;

  /// Cost to sort n tuples.
  double SortCost(double rows) const;

 private:
  const Catalog* catalog_;
  const IndexPool* pool_;
  CostModelOptions options_;
};

}  // namespace wfit

#endif  // WFIT_OPTIMIZER_COST_MODEL_H_
