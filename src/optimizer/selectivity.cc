#include "optimizer/selectivity.h"

#include <algorithm>
#include <cmath>

namespace wfit {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double DomainWidth(const ColumnInfo& col) {
  return std::max(col.max_value - col.min_value, 1e-12);
}

}  // namespace

double EqualitySelectivity(const ColumnInfo& col) {
  return 1.0 / static_cast<double>(std::max<uint64_t>(1, col.distinct_values));
}

double RangeSelectivity(const ColumnInfo& col, double lo, double hi) {
  if (hi < lo) return 0.0;
  double clipped_lo = std::max(lo, col.min_value);
  double clipped_hi = std::min(hi, col.max_value);
  if (clipped_hi < clipped_lo) return 0.0;
  double frac = (clipped_hi - clipped_lo) / DomainWidth(col);
  // A degenerate range still selects at least one value group.
  return Clamp01(std::max(frac, EqualitySelectivity(col)));
}

double CompareSelectivity(const ColumnInfo& col, sql::CompareOp op, double v) {
  switch (op) {
    case sql::CompareOp::kEq:
      if (v < col.min_value || v > col.max_value) return 0.0;
      return EqualitySelectivity(col);
    case sql::CompareOp::kNe:
      return Clamp01(1.0 - EqualitySelectivity(col));
    case sql::CompareOp::kLt:
    case sql::CompareOp::kLe:
      return RangeSelectivity(col, col.min_value, v);
    case sql::CompareOp::kGt:
    case sql::CompareOp::kGe:
      return RangeSelectivity(col, v, col.max_value);
  }
  return 1.0;
}

double JoinSelectivity(const ColumnInfo& a, const ColumnInfo& b) {
  uint64_t d = std::max({a.distinct_values, b.distinct_values,
                         static_cast<uint64_t>(1)});
  return 1.0 / static_cast<double>(d);
}

double MapStringToDomain(const ColumnInfo& col, const std::string& text) {
  // FNV-1a, folded into [0, 1).
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  double unit = static_cast<double>(h % 1000000ull) / 1000000.0;
  return col.min_value + unit * (col.max_value - col.min_value);
}

}  // namespace wfit
