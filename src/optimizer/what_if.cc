#include "optimizer/what_if.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optimizer/selectivity.h"

namespace wfit {

namespace {

constexpr double kCostEps = 1e-9;

}  // namespace

std::vector<WhatIfOptimizer::AccessPath> WhatIfOptimizer::SingleIndexPaths(
    const StatementTable& t, const std::vector<IndexId>& available,
    const ColumnRef* order_col, bool needs_fetch) const {
  const CostModelOptions& opt = model_->options();
  const TableInfo& info = model_->catalog().table(t.table);
  const double rows = static_cast<double>(info.row_count);
  const double sel_all = Statement::CombinedSelectivity(t);
  const double out_rows = std::max(1.0, rows * sel_all);
  const double table_pages = model_->TablePages(t.table);

  std::vector<AccessPath> paths;
  for (IndexId a : available) {
    const IndexDef& def = model_->pool().def(a);
    if (def.table != t.table) continue;

    // B-tree prefix matching: leading equality predicates, then at most one
    // range predicate.
    double prefix_sel = 1.0;
    size_t matched = 0;
    for (uint32_t key_col : def.columns) {
      const ScanPredicate* eq = nullptr;
      const ScanPredicate* range = nullptr;
      for (const ScanPredicate& p : t.predicates) {
        if (!p.sargable || p.column.column != key_col) continue;
        if (p.equality && eq == nullptr) eq = &p;
        if (!p.equality && range == nullptr) range = &p;
      }
      if (eq != nullptr) {
        prefix_sel *= eq->selectivity;
        ++matched;
        continue;  // equality keeps the prefix going
      }
      if (range != nullptr) {
        prefix_sel *= range->selectivity;
        ++matched;
      }
      break;  // range (or no predicate) terminates the prefix
    }

    // Covering: every referenced column is a key column.
    bool covering = true;
    for (uint32_t c : t.referenced_columns) {
      if (std::find(def.columns.begin(), def.columns.end(), c) ==
          def.columns.end()) {
        covering = false;
        break;
      }
    }
    const bool sorted =
        order_col != nullptr && order_col->table == t.table &&
        !def.columns.empty() && def.columns[0] == order_col->column;

    const double index_pages = model_->IndexPages(a);
    const double entries = std::max(1.0, rows * prefix_sel);

    if (matched > 0) {
      // Index scan over the matching range.
      double leaf = opt.btree_probe_cost +
                    index_pages * prefix_sel * opt.seq_page_cost +
                    entries * opt.cpu_index_tuple_cost;
      double residual =
          entries * opt.cpu_operator_cost *
          static_cast<double>(std::max<size_t>(1, t.predicates.size()));
      AccessPath path;
      path.out_rows = out_rows;
      path.sorted = sorted;
      path.used.Add(a);
      if (covering && !needs_fetch) {
        path.cost = leaf + residual;
      } else {
        // Bitmap-style cap: never fetch more than a full heap pass.
        double fetch = std::min(entries * opt.random_page_cost,
                                table_pages * opt.seq_page_cost +
                                    entries * opt.cpu_tuple_cost);
        path.cost = leaf + fetch + residual;
      }
      paths.push_back(std::move(path));
      continue;
    }

    // No sargable prefix: an index-only or in-order full index scan can
    // still beat the heap scan.
    if (covering && !needs_fetch) {
      AccessPath path;
      path.out_rows = out_rows;
      path.sorted = sorted;
      path.used.Add(a);
      path.cost = opt.btree_probe_cost + index_pages * opt.seq_page_cost +
                  rows * opt.cpu_index_tuple_cost +
                  rows * opt.cpu_operator_cost *
                      static_cast<double>(t.predicates.size());
      paths.push_back(std::move(path));
    } else if (sorted) {
      // Full index scan + heap fetch, in order (avoids the sort).
      AccessPath path;
      path.out_rows = out_rows;
      path.sorted = true;
      path.used.Add(a);
      double fetch = std::min(rows * opt.random_page_cost,
                              4.0 * table_pages * opt.seq_page_cost);
      path.cost = opt.btree_probe_cost + index_pages * opt.seq_page_cost +
                  rows * opt.cpu_index_tuple_cost + fetch +
                  rows * opt.cpu_operator_cost *
                      static_cast<double>(t.predicates.size());
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

WhatIfOptimizer::AccessPath WhatIfOptimizer::BestTableAccess(
    const StatementTable& t, const std::vector<IndexId>& available,
    const ColumnRef* order_col, bool needs_fetch) const {
  const CostModelOptions& opt = model_->options();
  const TableInfo& info = model_->catalog().table(t.table);
  const double rows = static_cast<double>(info.row_count);
  const double sel_all = Statement::CombinedSelectivity(t);
  const double out_rows = std::max(1.0, rows * sel_all);
  const double table_pages = model_->TablePages(t.table);

  // Baseline: sequential scan.
  AccessPath best;
  best.cost = model_->TableScanCost(t.table) +
              rows * opt.cpu_operator_cost *
                  static_cast<double>(t.predicates.size());
  best.out_rows = out_rows;
  best.sorted = false;

  auto consider = [&](const AccessPath& candidate) {
    if (candidate.cost + kCostEps < best.cost ||
        (std::abs(candidate.cost - best.cost) <= kCostEps &&
         candidate.used.size() < best.used.size())) {
      best = candidate;
    }
  };

  std::vector<AccessPath> singles =
      SingleIndexPaths(t, available, order_col, needs_fetch);
  for (const AccessPath& p : singles) consider(p);

  // Two-index intersections: both sides must actually filter. The fetch
  // shrinks to the conjunction of the two prefix selectivities; this is the
  // canonical positive index interaction.
  for (size_t i = 0; i < singles.size(); ++i) {
    for (size_t j = i + 1; j < singles.size(); ++j) {
      const AccessPath& pa = singles[i];
      const AccessPath& pb = singles[j];
      if (pa.used.size() != 1 || pb.used.size() != 1) continue;
      IndexId a = *pa.used.begin();
      IndexId b = *pb.used.begin();
      // Recompute each side's prefix selectivity from its path: infeasible
      // directly, so re-derive from the first key column's predicates.
      auto prefix_sel_of = [&](IndexId ix) {
        const IndexDef& def = model_->pool().def(ix);
        double sel = 1.0;
        bool any = false;
        for (uint32_t key_col : def.columns) {
          const ScanPredicate* eq = nullptr;
          const ScanPredicate* range = nullptr;
          for (const ScanPredicate& p : t.predicates) {
            if (!p.sargable || p.column.column != key_col) continue;
            if (p.equality && eq == nullptr) eq = &p;
            if (!p.equality && range == nullptr) range = &p;
          }
          if (eq != nullptr) {
            sel *= eq->selectivity;
            any = true;
            continue;
          }
          if (range != nullptr) {
            sel *= range->selectivity;
            any = true;
          }
          break;
        }
        return any ? sel : 1.0;
      };
      double sel_a = prefix_sel_of(a);
      double sel_b = prefix_sel_of(b);
      if (sel_a >= 1.0 || sel_b >= 1.0) continue;
      double entries_a = std::max(1.0, rows * sel_a);
      double entries_b = std::max(1.0, rows * sel_b);
      double rid_a = opt.btree_probe_cost +
                     model_->IndexPages(a) * sel_a * opt.seq_page_cost +
                     entries_a * opt.cpu_index_tuple_cost;
      double rid_b = opt.btree_probe_cost +
                     model_->IndexPages(b) * sel_b * opt.seq_page_cost +
                     entries_b * opt.cpu_index_tuple_cost;
      double and_cpu = (entries_a + entries_b) * opt.cpu_operator_cost;
      double matches = std::max(1.0, rows * sel_a * sel_b);
      double fetch = std::min(matches * opt.random_page_cost,
                              table_pages * opt.seq_page_cost +
                                  matches * opt.cpu_tuple_cost);
      double residual = matches * opt.cpu_operator_cost *
                        static_cast<double>(t.predicates.size());
      AccessPath path;
      path.cost = rid_a + rid_b + and_cpu + fetch + residual;
      path.out_rows = out_rows;
      path.sorted = false;
      path.used.Add(a);
      path.used.Add(b);
      consider(path);
    }
  }
  return best;
}

PlanSummary WhatIfOptimizer::OptimizeSelect(const Statement& q,
                                            const IndexSet& x) const {
  const CostModelOptions& opt = model_->options();
  // Partition the hypothetical configuration by table once.
  auto available_for = [&](TableId t) {
    std::vector<IndexId> out;
    for (IndexId a : x) {
      if (model_->pool().def(a).table == t) out.push_back(a);
    }
    return out;
  };

  const ColumnRef* order_col =
      q.order_by.empty() ? nullptr : &q.order_by.front();

  if (q.tables.size() == 1) {
    const StatementTable& t = q.tables[0];
    AccessPath best = BestTableAccess(t, available_for(t.table), order_col,
                                      /*needs_fetch=*/false);
    double cost = best.cost;
    if (order_col != nullptr && !best.sorted) {
      cost += model_->SortCost(best.out_rows);
    }
    if (!q.group_by.empty()) {
      cost += best.out_rows * opt.cpu_operator_cost * 2.0;
    }
    return PlanSummary{cost, best.used};
  }

  // Multi-table: left-deep chain ordered by filtered cardinality.
  struct TableState {
    const StatementTable* slice;
    AccessPath path;
    double filtered_rows;
  };
  std::vector<TableState> states;
  for (const StatementTable& t : q.tables) {
    TableState s;
    s.slice = &t;
    s.path = BestTableAccess(t, available_for(t.table), nullptr,
                             /*needs_fetch=*/false);
    s.filtered_rows = s.path.out_rows;
    states.push_back(std::move(s));
  }
  std::stable_sort(states.begin(), states.end(),
                   [](const TableState& a, const TableState& b) {
                     return a.filtered_rows < b.filtered_rows;
                   });

  double total = states[0].path.cost;
  double acc_rows = states[0].filtered_rows;
  IndexSet used = states[0].path.used;
  std::vector<TableId> joined = {states[0].slice->table};

  for (size_t i = 1; i < states.size(); ++i) {
    const TableState& s = states[i];
    TableId t = s.slice->table;
    // Combined selectivity of every join clause linking t to the chain,
    // and t's join column for index-nested-loop consideration.
    double join_sel = 1.0;
    const ColumnRef* inner_join_col = nullptr;
    for (const JoinClause& j : q.joins) {
      const ColumnRef* mine = nullptr;
      const ColumnRef* theirs = nullptr;
      if (j.left.table == t) {
        mine = &j.left;
        theirs = &j.right;
      } else if (j.right.table == t) {
        mine = &j.right;
        theirs = &j.left;
      } else {
        continue;
      }
      if (std::find(joined.begin(), joined.end(), theirs->table) ==
          joined.end()) {
        continue;  // clause connects to a table not yet in the chain
      }
      const ColumnInfo& ca = model_->catalog().column(*mine);
      const ColumnInfo& cb = model_->catalog().column(*theirs);
      join_sel *= JoinSelectivity(ca, cb);
      if (inner_join_col == nullptr) inner_join_col = mine;
    }

    // Option 1: hash join against t's best standalone access path.
    double hash_cost =
        s.path.cost + (acc_rows + s.filtered_rows) * opt.cpu_operator_cost * 2.0;
    IndexSet hash_used = s.path.used;

    // Option 2: index-nested-loop via an index whose leading key is t's
    // join column.
    double inl_cost = std::numeric_limits<double>::infinity();
    IndexSet inl_used;
    if (inner_join_col != nullptr) {
      const TableInfo& info = model_->catalog().table(t);
      double rows_t = static_cast<double>(info.row_count);
      const ColumnInfo& jc = model_->catalog().column(*inner_join_col);
      double matches_per =
          rows_t / static_cast<double>(std::max<uint64_t>(1, jc.distinct_values));
      for (IndexId a : available_for(t)) {
        const IndexDef& def = model_->pool().def(a);
        if (def.columns.empty() ||
            def.columns[0] != inner_join_col->column) {
          continue;
        }
        bool covering = true;
        for (uint32_t c : s.slice->referenced_columns) {
          if (std::find(def.columns.begin(), def.columns.end(), c) ==
              def.columns.end()) {
            covering = false;
            break;
          }
        }
        double per_probe =
            opt.btree_probe_cost +
            matches_per * (opt.cpu_index_tuple_cost +
                           (covering ? 0.0 : opt.random_page_cost) +
                           opt.cpu_operator_cost *
                               static_cast<double>(s.slice->predicates.size()));
        double cost = acc_rows * per_probe;
        if (cost < inl_cost) {
          inl_cost = cost;
          inl_used.clear();
          inl_used.Add(a);
        }
      }
    }

    if (inl_cost + kCostEps < hash_cost) {
      total += inl_cost;
      used = used.Union(inl_used);
    } else {
      total += hash_cost;
      used = used.Union(hash_used);
    }

    const TableInfo& info = model_->catalog().table(t);
    double rows_t = static_cast<double>(info.row_count);
    double local_sel = Statement::CombinedSelectivity(*s.slice);
    acc_rows = std::max(1.0, acc_rows * rows_t * local_sel * join_sel);
    joined.push_back(t);
  }

  if (order_col != nullptr) total += model_->SortCost(acc_rows);
  if (!q.group_by.empty()) total += acc_rows * opt.cpu_operator_cost * 2.0;
  return PlanSummary{total, used};
}

PlanSummary WhatIfOptimizer::OptimizeUpdate(const Statement& q,
                                            const IndexSet& x) const {
  const CostModelOptions& opt = model_->options();
  WFIT_CHECK(q.tables.size() == 1, "update statements touch exactly one table");
  const StatementTable& t = q.tables[0];
  const TableInfo& info = model_->catalog().table(t.table);
  const double rows = static_cast<double>(info.row_count);

  std::vector<IndexId> available;
  for (IndexId a : x) {
    if (model_->pool().def(a).table == t.table) available.push_back(a);
  }

  double modified;
  double locate_cost = 0.0;
  IndexSet used;
  if (q.kind == StatementKind::kInsert) {
    modified = static_cast<double>(q.insert_rows);
  } else {
    modified = std::max(1.0, rows * Statement::CombinedSelectivity(t));
    AccessPath locate = BestTableAccess(t, available, nullptr,
                                        /*needs_fetch=*/true);
    locate_cost = locate.cost;
    used = locate.used;
  }

  double write_cost = modified * opt.base_write_per_row;

  double maintenance = 0.0;
  for (IndexId a : available) {
    bool affected = true;
    if (q.kind == StatementKind::kUpdate) {
      // Only indices containing an assigned column must be maintained.
      affected = false;
      const IndexDef& def = model_->pool().def(a);
      for (uint32_t set_col : q.set_columns) {
        if (std::find(def.columns.begin(), def.columns.end(), set_col) !=
            def.columns.end()) {
          affected = true;
          break;
        }
      }
    }
    if (affected) {
      maintenance += model_->MaintenanceCost(a, modified);
      used.Add(a);  // maintenance makes the index cost-relevant
    }
  }

  return PlanSummary{locate_cost + write_cost + maintenance, used};
}

PlanSummary WhatIfOptimizer::Optimize(const Statement& q,
                                      const IndexSet& x) const {
  num_calls_.fetch_add(1, std::memory_order_relaxed);
  if (q.kind == StatementKind::kSelect) return OptimizeSelect(q, x);
  return OptimizeUpdate(q, x);
}

}  // namespace wfit
