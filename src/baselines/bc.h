// BC: adaptation of Bruno & Chaudhuri's online physical design tuning
// (ICDE 2007), the paper's main competitor. Per Sec. 6.1, the adaptation
// "analyzes the workload using ideas similar to WFIT, except that it always
// employs a stable partition corresponding to full index independence",
// with heuristic per-index benefit adjustments standing in for WFIT's
// principled interaction handling.
//
// Concretely: one single-index work-function instance per candidate, driven
// not by exact what-if costs of the candidate's configurations (that is
// WFIT-IND) but by BC's independence-style benefit signal —
//   gain(a) = cost(q, ∅) − cost(q, {a}), measured in isolation, and
//   credited only when a appears in the query's "ideal configuration" plan
//   (the heuristic adjustment that avoids double-crediting alternative
//   indexes, at the price of staying blind to jointly-valuable pairs).
// Negative gains (update maintenance) always count.
#ifndef WFIT_BASELINES_BC_H_
#define WFIT_BASELINES_BC_H_

#include <vector>

#include "core/tuner.h"
#include "core/work_function.h"
#include "optimizer/what_if.h"

namespace wfit {

struct BcOptions {
  /// Scales the per-query benefit signal fed to the per-index accounts;
  /// 1.0 reproduces BC's measured deltas.
  double benefit_scale = 1.0;
};

class BcTuner : public Tuner {
 public:
  BcTuner(const IndexPool* pool, const WhatIfOptimizer* optimizer,
          const IndexSet& candidates, const IndexSet& initial_config,
          const BcOptions& options = {});

  void AnalyzeQuery(const Statement& q) override;
  IndexSet Recommendation() const override;
  std::string name() const override { return "BC"; }

  /// The benefit signal a candidate received for the last statement
  /// (diagnostics / tests).
  double LastGain(IndexId a) const;

 private:
  const IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
  BcOptions options_;
  std::vector<IndexId> candidates_;
  std::vector<WfaInstance> instances_;  // one singleton per candidate
  std::vector<double> last_gain_;
};

}  // namespace wfit

#endif  // WFIT_BASELINES_BC_H_
