// OPT: the idealized offline algorithm of the evaluation (Sec. 6.1) — it
// knows the whole workload in advance and picks the recommendation schedule
// minimizing totWork. With a stable partition the objective decomposes per
// part (Sec. 4.2 / Appendix A), so the global optimum is the union of exact
// per-part dynamic programs over the index transition graph (Fig. 2). The
// DP transition uses the same per-coordinate min-plus relaxation as WFA,
// giving O(N · k · 2^k) per part instead of O(N · 4^k).
#ifndef WFIT_BASELINES_OPT_H_
#define WFIT_BASELINES_OPT_H_

#include <vector>

#include "core/index_set.h"
#include "ibg/ibg.h"
#include "optimizer/what_if.h"
#include "workload/statement.h"

namespace wfit {

/// OPT's recommendation schedule: configs[n] is the configuration
/// materialized while processing statement n (0-based).
struct OptimalSchedule {
  std::vector<IndexSet> configs;
  /// Optimal total work as computed by the DP (query costs + transitions).
  double total_work = 0.0;
  /// prefix_optimum[n]: the optimal total work for the prefix ending at
  /// statement n. This is the paper's OPT reference curve — "OPT can have
  /// very different recommendation schedules for Qn and Qn+1" (Sec. 6.1) —
  /// and it falls out of the forward DP for free.
  std::vector<double> prefix_optimum;
};

class OptimalPlanner {
 public:
  OptimalPlanner(const IndexPool* pool, const WhatIfOptimizer* optimizer);

  /// Solves for the optimal schedule over `partition`'s configuration
  /// space, starting from `initial`. Parts are limited to 20 indices.
  OptimalSchedule Solve(const Workload& workload,
                        const std::vector<IndexSet>& partition,
                        const IndexSet& initial) const;

 private:
  const IndexPool* pool_;
  const WhatIfOptimizer* optimizer_;
};

}  // namespace wfit

#endif  // WFIT_BASELINES_OPT_H_
