#include "baselines/opt.h"

#include <algorithm>
#include <limits>

#include "core/wfa_plus.h"

namespace wfit {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-part DP state.
struct PartDp {
  std::vector<IndexId> members;
  std::vector<double> create_cost;
  std::vector<double> drop_cost;
  std::vector<double> dp;                  // current values, 2^k
  std::vector<std::vector<Mask>> preds;    // preds[n][S] = S_{n-1}
  Mask initial = 0;
};

/// One relaxed step with predecessor tracking:
///   dp'[S] = min_X { dp[X] + δ(X, S) },  src[S] = argmin chain origin.
void RelaxWithParents(PartDp* part, std::vector<Mask>* src_out) {
  std::vector<double>& v = part->dp;
  const size_t n = v.size();
  std::vector<Mask> src(n);
  for (Mask s = 0; s < n; ++s) src[s] = s;
  for (size_t bit = 0; bit < part->members.size(); ++bit) {
    const Mask m = Mask{1} << bit;
    const double up = part->create_cost[bit];
    const double down = part->drop_cost[bit];
    for (Mask s = 0; s < n; ++s) {
      if ((s & m) != 0) continue;
      const Mask s1 = s | m;
      const double v0 = v[s];
      const double v1 = v[s1];
      if (v1 + down < v0) {
        v[s] = v1 + down;
        src[s] = src[s1];
      }
      if (v0 + up < v1) {
        v[s1] = v0 + up;
        src[s1] = src[s];
      }
    }
  }
  *src_out = std::move(src);
}

}  // namespace

OptimalPlanner::OptimalPlanner(const IndexPool* pool,
                               const WhatIfOptimizer* optimizer)
    : pool_(pool), optimizer_(optimizer) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "OptimalPlanner requires pool and optimizer");
}

OptimalSchedule OptimalPlanner::Solve(const Workload& workload,
                                      const std::vector<IndexSet>& partition,
                                      const IndexSet& initial) const {
  const CostModel& model = optimizer_->cost_model();
  const size_t num_statements = workload.size();

  std::vector<PartDp> parts;
  std::vector<IndexId> all_members;
  for (const IndexSet& p : partition) {
    WFIT_CHECK(p.size() <= 20, "OPT: part too large");
    PartDp part;
    part.members.assign(p.begin(), p.end());
    for (size_t i = 0; i < part.members.size(); ++i) {
      part.create_cost.push_back(model.CreateCost(part.members[i]));
      part.drop_cost.push_back(model.DropCost(part.members[i]));
      if (initial.Contains(part.members[i])) part.initial |= Mask{1} << i;
      all_members.push_back(part.members[i]);
    }
    part.dp.assign(size_t{1} << part.members.size(), kInf);
    part.dp[part.initial] = 0.0;
    part.preds.resize(num_statements);
    parts.push_back(std::move(part));
  }
  std::sort(all_members.begin(), all_members.end());

  // Forward DP: per statement, transition (relax) then add query cost.
  OptimalSchedule out;
  out.prefix_optimum.reserve(num_statements);
  double base_cost_total = 0.0;
  for (size_t n = 0; n < num_statements; ++n) {
    const Statement& q = workload[n];
    base_cost_total += optimizer_->Cost(q, IndexSet{});
    for (PartDp& part : parts) {
      RelaxWithParents(&part, &part.preds[n]);
      // Add cost(q_n, S) for every part configuration S via a per-part
      // IBG (cost(q, X) with X ⊆ Ck never involves other parts).
      std::vector<IndexId> relevant =
          RelevantCandidates(q, *pool_, part.members);
      if (relevant.empty()) continue;  // contribution is identically zero
      IndexBenefitGraph ibg(q, *optimizer_, relevant);
      std::vector<int> ibg_bit(part.members.size());
      for (size_t i = 0; i < part.members.size(); ++i) {
        ibg_bit[i] = ibg.BitOf(part.members[i]);
      }
      const size_t states = part.dp.size();
      for (Mask s = 0; s < states; ++s) {
        Mask m = 0;
        Mask rest = s;
        while (rest != 0) {
          int bit = LowestBit(rest);
          rest &= rest - 1;
          int ib = ibg_bit[static_cast<size_t>(bit)];
          if (ib >= 0) m |= Mask{1} << ib;
        }
        // Per-part objective: the part's share of the decomposed cost,
        // cost(q, S ∩ Ck) − cost(q, ∅); the base cost is added once
        // globally. Subtracting the base keeps per-part sums equal to the
        // true totWork under stability (Eq. 2.1).
        part.dp[s] += ibg.CostOf(m) - ibg.CostOf(0);
      }
    }
    // The optimum for the prefix Q_{n+1}: each part is free to end in its
    // cheapest state.
    double prefix = base_cost_total;
    for (const PartDp& part : parts) {
      prefix += *std::min_element(part.dp.begin(), part.dp.end());
    }
    out.prefix_optimum.push_back(prefix);
  }

  // Backtrack each part from its cheapest final configuration.
  out.configs.assign(num_statements, IndexSet{});
  double total = base_cost_total;
  for (PartDp& part : parts) {
    Mask best = 0;
    double best_value = kInf;
    for (Mask s = 0; s < part.dp.size(); ++s) {
      if (part.dp[s] < best_value) {
        best_value = part.dp[s];
        best = s;
      }
    }
    total += best_value;
    Mask cur = best;
    for (size_t n = num_statements; n-- > 0;) {
      Mask rest = cur;
      while (rest != 0) {
        int bit = LowestBit(rest);
        rest &= rest - 1;
        out.configs[n].Add(part.members[static_cast<size_t>(bit)]);
      }
      cur = part.preds[n][cur];
    }
  }
  out.total_work = total;
  return out;
}

}  // namespace wfit
