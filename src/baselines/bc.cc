#include "baselines/bc.h"

#include <algorithm>

namespace wfit {

BcTuner::BcTuner(const IndexPool* pool, const WhatIfOptimizer* optimizer,
                 const IndexSet& candidates, const IndexSet& initial_config,
                 const BcOptions& options)
    : pool_(pool),
      optimizer_(optimizer),
      options_(options),
      candidates_(candidates.begin(), candidates.end()),
      last_gain_(candidates_.size(), 0.0) {
  WFIT_CHECK(pool != nullptr && optimizer != nullptr,
             "BcTuner requires pool and optimizer");
  for (IndexId a : candidates_) {
    instances_.push_back(WfaInstance(
        {a}, optimizer->cost_model(),
        /*initial_config=*/initial_config.Contains(a) ? 1u : 0u));
  }
}

IndexSet BcTuner::Recommendation() const {
  IndexSet out;
  for (const WfaInstance& instance : instances_) {
    out = out.Union(instance.RecommendationSet());
  }
  return out;
}

double BcTuner::LastGain(IndexId a) const {
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i] == a) return last_gain_[i];
  }
  return 0.0;
}

void BcTuner::AnalyzeQuery(const Statement& q) {
  const double empty_cost = optimizer_->Cost(q, IndexSet{});
  // The query's ideal configuration: what the optimizer would use if every
  // candidate were materialized.
  PlanSummary ideal =
      optimizer_->Optimize(q, IndexSet::FromVector(candidates_));

  for (size_t i = 0; i < candidates_.size(); ++i) {
    IndexId a = candidates_[i];
    // Independence assumption: measure a's benefit in isolation.
    double isolated = empty_cost - optimizer_->Cost(q, IndexSet{a});
    double gain = isolated;
    if (isolated > 0.0 && !ideal.used.Contains(a)) {
      gain = 0.0;  // heuristic adjustment: the ideal plan ignores a
    }
    gain *= options_.benefit_scale;
    last_gain_[i] = gain;
    // Feed the per-index account: with the index the statement "costs"
    // empty_cost − gain, without it empty_cost.
    instances_[i].AnalyzeQuery([empty_cost, gain](Mask s) {
      return s == 0 ? empty_cost : empty_cost - gain;
    });
  }
}

}  // namespace wfit
