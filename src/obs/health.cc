#include "obs/health.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "obs/log.h"

namespace wfit::obs {

namespace {

void AppendU64(const char* key, uint64_t value, bool* first,
               std::string* out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, *first ? "" : ",",
                key, value);
  *first = false;
  out->append(buf);
}

void AppendBool(const char* key, bool value, bool* first, std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(value ? "true" : "false");
}

void AppendStr(const char* key, const std::string& value, bool* first,
               std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":\"");
  AppendJsonEscaped(value, out);
  out->push_back('"');
}

/// Finds `"key":` at or after `from` and returns the index of the first
/// character of the value, or npos.
size_t ValuePos(const std::string& text, const char* key, size_t from) {
  const std::string needle = std::string("\"") + key + "\":";
  size_t pos = text.find(needle, from);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

uint64_t U64At(const std::string& text, const char* key, size_t from,
               size_t until = std::string::npos) {
  size_t pos = ValuePos(text, key, from);
  if (pos == std::string::npos || pos >= until) return 0;
  return std::strtoull(text.c_str() + pos, nullptr, 10);
}

bool BoolAt(const std::string& text, const char* key, size_t from,
            size_t until = std::string::npos) {
  size_t pos = ValuePos(text, key, from);
  if (pos == std::string::npos || pos >= until) return false;
  return text.compare(pos, 4, "true") == 0;
}

std::string StrAt(const std::string& text, const char* key, size_t from,
                  size_t until = std::string::npos) {
  size_t pos = ValuePos(text, key, from);
  if (pos == std::string::npos || pos >= until || pos >= text.size() ||
      text[pos] != '"') {
    return {};
  }
  std::string out;
  for (size_t i = pos + 1; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      char n = text[++i];
      switch (n) {
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        default:
          out.push_back(n);
      }
      continue;
    }
    if (c == '"') break;
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string EncodeHealthJson(const NodeHealthReport& r) {
  std::string out = "{";
  bool first = true;
  AppendStr("node_id", r.node_id, &first, &out);
  AppendU64("config_version", r.config_version, &first, &out);
  AppendBool("membership_enabled", r.membership_enabled, &first, &out);
  AppendBool("acting_coordinator", r.acting_coordinator, &first, &out);
  AppendU64("tenants_known", r.tenants_known, &first, &out);
  AppendU64("tenants_resident", r.tenants_resident, &first, &out);
  AppendU64("queue_depth", r.queue_depth, &first, &out);
  AppendU64("statements_analyzed", r.statements_analyzed, &first, &out);
  AppendU64("admin_queue_depth", r.admin_queue_depth, &first, &out);
  AppendU64("admin_shed_total", r.admin_shed_total, &first, &out);
  AppendU64("failovers", r.failovers, &first, &out);
  AppendU64("tenants_failed_over", r.tenants_failed_over, &first, &out);
  AppendU64("rebalance_migrations", r.rebalance_migrations, &first, &out);
  AppendU64("decommissions", r.decommissions, &first, &out);
  AppendU64("last_takeover_ms", r.last_takeover_ms, &first, &out);
  AppendU64("heartbeats_sent", r.heartbeats_sent, &first, &out);
  AppendU64("heartbeats_received", r.heartbeats_received, &first, &out);
  AppendBool("tracing_enabled", r.tracing_enabled, &first, &out);
  AppendU64("trace_spans", r.trace_spans, &first, &out);
  AppendU64("trace_dropped", r.trace_dropped, &first, &out);
  out.append(",\"peers\":[");
  bool first_peer = true;
  for (const PeerHealthEntry& peer : r.peers) {
    if (!first_peer) out.push_back(',');
    first_peer = false;
    out.push_back('{');
    bool f = true;
    AppendStr("id", peer.id, &f, &out);
    AppendStr("health", peer.health, &f, &out);
    AppendU64("consecutive_misses", peer.consecutive_misses, &f, &out);
    AppendU64("silence_ms", peer.silence_ms, &f, &out);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

bool DecodeHealthJson(const std::string& text, NodeHealthReport* out) {
  NodeHealthReport r;
  r.node_id = StrAt(text, "node_id", 0);
  if (r.node_id.empty()) return false;
  r.config_version = U64At(text, "config_version", 0);
  r.membership_enabled = BoolAt(text, "membership_enabled", 0);
  r.acting_coordinator = BoolAt(text, "acting_coordinator", 0);
  r.tenants_known = U64At(text, "tenants_known", 0);
  r.tenants_resident = U64At(text, "tenants_resident", 0);
  r.queue_depth = U64At(text, "queue_depth", 0);
  r.statements_analyzed = U64At(text, "statements_analyzed", 0);
  r.admin_queue_depth = U64At(text, "admin_queue_depth", 0);
  r.admin_shed_total = U64At(text, "admin_shed_total", 0);
  r.failovers = U64At(text, "failovers", 0);
  r.tenants_failed_over = U64At(text, "tenants_failed_over", 0);
  r.rebalance_migrations = U64At(text, "rebalance_migrations", 0);
  r.decommissions = U64At(text, "decommissions", 0);
  r.last_takeover_ms = U64At(text, "last_takeover_ms", 0);
  r.heartbeats_sent = U64At(text, "heartbeats_sent", 0);
  r.heartbeats_received = U64At(text, "heartbeats_received", 0);
  r.tracing_enabled = BoolAt(text, "tracing_enabled", 0);
  r.trace_spans = U64At(text, "trace_spans", 0);
  r.trace_dropped = U64At(text, "trace_dropped", 0);
  size_t peers = text.find("\"peers\":[");
  if (peers != std::string::npos) {
    size_t pos = peers + 9;
    while (true) {
      size_t open = text.find('{', pos);
      size_t end = text.find(']', pos);
      if (open == std::string::npos ||
          (end != std::string::npos && end < open)) {
        break;
      }
      size_t close = text.find('}', open);
      if (close == std::string::npos) break;
      PeerHealthEntry peer;
      peer.id = StrAt(text, "id", open, close);
      peer.health = StrAt(text, "health", open, close);
      peer.consecutive_misses =
          U64At(text, "consecutive_misses", open, close);
      peer.silence_ms = U64At(text, "silence_ms", open, close);
      if (!peer.id.empty()) r.peers.push_back(std::move(peer));
      pos = close + 1;
    }
  }
  *out = std::move(r);
  return true;
}

namespace {

std::string EscapePromLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The family a sample belongs to: its metric name, with histogram child
/// suffixes stripped when the base family is known.
std::string FamilyOf(const std::string& name,
                     const std::set<std::string>& families) {
  if (families.count(name) > 0) return name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      std::string base = name.substr(0, name.size() - len);
      if (families.count(base) > 0) return base;
    }
  }
  return name;
}

}  // namespace

std::string MergeFleetScrapeText(
    const std::vector<std::pair<std::string, std::string>>& scrapes) {
  // family -> (header lines once, labelled samples from every node), in
  // first-seen family order so each family stays one contiguous block.
  std::vector<std::string> family_order;
  std::map<std::string, std::string> headers;
  std::map<std::string, std::string> samples;
  std::set<std::string> families;
  std::set<std::string> header_lines_seen;

  for (const auto& [node_id, text] : scrapes) {
    const std::string label = "node=\"" + EscapePromLabel(node_id) + "\"";
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# HELP <family> ..." / "# TYPE <family> ...".
        std::istringstream hs(line);
        std::string hash, kind, family;
        hs >> hash >> kind >> family;
        if (family.empty()) continue;
        if (families.insert(family).second) family_order.push_back(family);
        if (header_lines_seen.insert(line).second) {
          headers[family] += line + "\n";
        }
        continue;
      }
      size_t brace = line.find('{');
      size_t space = line.find(' ');
      std::string name =
          line.substr(0, std::min(brace, space));
      const std::string family = FamilyOf(name, families);
      if (families.insert(family).second) family_order.push_back(family);
      std::string labelled;
      if (brace != std::string::npos && brace < space) {
        const bool empty_labels =
            brace + 1 < line.size() && line[brace + 1] == '}';
        labelled = line.substr(0, brace + 1) + label +
                   (empty_labels ? "" : ",") + line.substr(brace + 1);
      } else if (space != std::string::npos) {
        labelled = name + "{" + label + "}" + line.substr(space);
      } else {
        continue;  // no value: not a sample line
      }
      samples[family] += labelled + "\n";
    }
  }

  std::string out;
  for (const std::string& family : family_order) {
    out += headers[family];
    out += samples[family];
  }
  return out;
}

}  // namespace wfit::obs
