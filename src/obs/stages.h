// Per-stage timing capture, decoupled from the span ring so stage latency
// HISTOGRAMS (a metrics concern, always on) survive even when tracing is
// compiled out. A StageSink is installed thread-locally for the duration
// of one statement's analysis; code anywhere below — the IBG builder on a
// pool thread, the what-if decorator, the checkpoint writer — records
// stage durations into whichever sink is current. WorkerPool propagates
// the submitter's sink (and trace context) to its tasks, so fan-out work
// attributes its time to the statement that caused it.
//
// Recording is one TLS pointer read when no sink is installed; sinks must
// be internally thread-safe (pool threads record concurrently).
#ifndef WFIT_OBS_STAGES_H_
#define WFIT_OBS_STAGES_H_

#include <chrono>
#include <cstdint>

namespace wfit::obs {

enum class Stage : int {
  kQueueWait = 0,    // ingest enqueue -> batch pop
  kIbgBuild = 1,     // level-synchronous IBG construction
  kProbe = 2,        // real (cache-missing) what-if optimizer calls
  kCheckpointWrite = 3,  // durable snapshot writes
};
inline constexpr int kStageCount = 4;

const char* StageName(Stage stage);

/// A thread-safe receiver of stage durations. ServiceMetrics implements
/// this; tests may substitute their own.
class StageSink {
 public:
  virtual ~StageSink() = default;
  virtual void RecordStage(Stage stage, uint64_t ns) = 0;
};

/// The sink installed on the current thread (null when none).
StageSink* CurrentStageSink();

/// Installs `sink` on this thread for the guard's lifetime, restoring the
/// previous sink on destruction. Pass null to suppress recording.
class ScopedStageSink {
 public:
  explicit ScopedStageSink(StageSink* sink);
  ~ScopedStageSink();
  ScopedStageSink(const ScopedStageSink&) = delete;
  ScopedStageSink& operator=(const ScopedStageSink&) = delete;

 private:
  StageSink* prev_;
};

/// Records `ns` against the current sink; no-op (one TLS read) without one.
void RecordStage(Stage stage, uint64_t ns);

/// RAII stage timer. Reads the clock only when a sink is installed, so an
/// uninstrumented path pays one TLS load per construction.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) : stage_(stage), sink_(CurrentStageSink()) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (sink_ != nullptr) {
      sink_->RecordStage(
          stage_, static_cast<uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count()));
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  StageSink* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wfit::obs

#endif  // WFIT_OBS_STAGES_H_
