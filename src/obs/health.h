// The fleet health plane's data model: one NodeHealthReport per node,
// serialized as a flat JSON object (hand-rolled here — obs sits below
// persist and links only the standard library) and carried in the
// kGetHealth response text. wfit_top and ClusterClient::FleetHealth
// decode it with the matching parser.
//
// MergeFleetScrapeText is the other half of the health plane: it merges
// per-node Prometheus text expositions into one document, injecting a
// node="<id>" label into every sample so one scrape endpoint can serve
// the whole fleet with per-node series, keeping the first HELP/TYPE
// header seen per family.
#ifndef WFIT_OBS_HEALTH_H_
#define WFIT_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wfit::obs {

struct PeerHealthEntry {
  std::string id;
  std::string health;  // "alive" | "suspect" | "dead"
  uint64_t consecutive_misses = 0;
  uint64_t silence_ms = 0;  // lease age: ms since last heard either way
};

struct NodeHealthReport {
  std::string node_id;
  uint64_t config_version = 0;
  bool membership_enabled = false;
  bool acting_coordinator = false;
  // Tenancy and load.
  uint64_t tenants_known = 0;
  uint64_t tenants_resident = 0;
  uint64_t queue_depth = 0;
  uint64_t statements_analyzed = 0;
  uint64_t admin_queue_depth = 0;
  uint64_t admin_shed_total = 0;
  // Membership / self-healing.
  uint64_t failovers = 0;
  uint64_t tenants_failed_over = 0;
  uint64_t rebalance_migrations = 0;
  uint64_t decommissions = 0;
  uint64_t last_takeover_ms = 0;
  uint64_t heartbeats_sent = 0;
  uint64_t heartbeats_received = 0;
  // Tracing.
  bool tracing_enabled = false;
  uint64_t trace_spans = 0;
  uint64_t trace_dropped = 0;
  std::vector<PeerHealthEntry> peers;
};

std::string EncodeHealthJson(const NodeHealthReport& report);

/// Lenient parser for EncodeHealthJson output; false when `text` is not
/// a health report at all (missing node_id).
bool DecodeHealthJson(const std::string& text, NodeHealthReport* out);

/// Merges per-(node id, exposition text) scrapes into one document with
/// node labels injected into every sample line.
std::string MergeFleetScrapeText(
    const std::vector<std::pair<std::string, std::string>>& scrapes);

}  // namespace wfit::obs

#endif  // WFIT_OBS_HEALTH_H_
