// Leveled NDJSON structured logging: one JSON object per line on a
// configurable FILE* sink (stderr by default), so fleet logs are machine-
// parseable (jq, log shippers) instead of printf prose. Events carry a
// millisecond unix timestamp, level, event name, and typed fields; when a
// trace is active on the logging thread the trace/span ids are attached
// automatically, linking log lines to spans.
//
//   obs::Log(obs::LogLevel::kWarn, "journal.append_failed")
//       .Str("tenant", id).U64("seq", seq).Str("error", s.ToString());
//
// The record is emitted by the builder's destructor (end of the full
// expression). Thread-safe: the line is assembled locally and written
// with one fwrite under a process-wide mutex.
#ifndef WFIT_OBS_LOG_H_
#define WFIT_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace wfit::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Records below the threshold are suppressed (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects log output (default stderr; null restores stderr). The sink
/// must outlive all logging. Tests point this at a tmpfile.
void SetLogSink(std::FILE* sink);

/// Stamps every record from this process with {"node":"<id>"} — set once
/// at startup by servers.
void SetLogNodeId(const std::string& node_id);

/// Appends `value` JSON-escaped (no surrounding quotes) to `out`.
void AppendJsonEscaped(std::string_view value, std::string* out);

class LogEvent {
 public:
  LogEvent(LogLevel level, const char* event);
  ~LogEvent();  // emits the record
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(const char* key, std::string_view value);
  LogEvent& U64(const char* key, uint64_t value);
  LogEvent& I64(const char* key, int64_t value);
  LogEvent& Dbl(const char* key, double value);
  LogEvent& Bool(const char* key, bool value);

 private:
  bool enabled_;
  std::string line_;
};

inline LogEvent Log(LogLevel level, const char* event) {
  return LogEvent(level, event);
}

}  // namespace wfit::obs

#endif  // WFIT_OBS_LOG_H_
