// Trace exporters. Two formats:
//
//  * SPAN LINES — one span per text line, the transport format of the
//    kDumpTrace RPC. Trivially parseable (fixed leading fields, free-form
//    detail last), so a client can merge dumps from many nodes, dedup by
//    (node, span id), and re-export without a JSON parser.
//
//  * CHROME TRACE-EVENT JSON — {"traceEvents":[...]} with "X" duration
//    events, loadable directly in Perfetto (ui.perfetto.dev) or
//    chrome://tracing. Each process/node becomes one pid row (named via a
//    process_name metadata event); span timestamps are CLOCK_MONOTONIC
//    microseconds, which all processes on one machine share, so merged
//    fleet traces align on a common time axis.
#ifndef WFIT_OBS_TRACE_EXPORT_H_
#define WFIT_OBS_TRACE_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace wfit::obs {

/// "trace span parent start_ns dur_ns tid name detail\n" (ids in hex).
std::string FormatSpanLine(const Span& span);

/// Inverse of FormatSpanLine; false on malformed input.
bool ParseSpanLine(const std::string& line, Span* out);

/// All spans, one line each — the kDumpTrace response body.
std::string FormatSpanLines(const std::vector<Span>& spans);

/// Every parseable span in `text` (one per line; blank/bad lines skipped).
std::vector<Span> ParseSpanLines(const std::string& text);

/// One process's spans as a complete Chrome trace JSON document.
std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::string& process_name);

/// A merged fleet trace: each (process_name, spans) pair becomes one pid.
std::string ChromeTraceJsonMulti(
    const std::vector<std::pair<std::string, std::vector<Span>>>& processes);

}  // namespace wfit::obs

#endif  // WFIT_OBS_TRACE_EXPORT_H_
