#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace wfit::obs {

namespace {

const char* kStageNames[kStageCount] = {"queue_wait", "ibg_build", "probe",
                                        "checkpoint_write"};

thread_local StageSink* tls_stage_sink = nullptr;

}  // namespace

const char* StageName(Stage stage) {
  int i = static_cast<int>(stage);
  return (i >= 0 && i < kStageCount) ? kStageNames[i] : "unknown";
}

StageSink* CurrentStageSink() { return tls_stage_sink; }

ScopedStageSink::ScopedStageSink(StageSink* sink) : prev_(tls_stage_sink) {
  tls_stage_sink = sink;
}

ScopedStageSink::~ScopedStageSink() { tls_stage_sink = prev_; }

void RecordStage(Stage stage, uint64_t ns) {
  if (StageSink* sink = tls_stage_sink) sink->RecordStage(stage, ns);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifndef WFIT_DISABLE_TRACING

namespace {

constexpr size_t kRingSpans = 4096;  // per thread; drops-oldest beyond
constexpr size_t kSlotWords = sizeof(Span) / 8;

/// A single-writer ring of spans stored as atomic words. The owning
/// thread stores slot words relaxed then publishes with a release store
/// of head; collectors detect (and discard) slots the writer lapped.
struct SpanRing {
  std::unique_ptr<std::atomic<uint64_t>[]> words{
      new std::atomic<uint64_t>[kRingSpans * kSlotWords]()};
  std::atomic<uint64_t> head{0};
  /// Collection ignores indices below the floor (ClearTraceForTest).
  std::atomic<uint64_t> floor{0};
  uint32_t tid = 0;

  void Push(const Span& span) {
    uint64_t buf[kSlotWords];
    std::memcpy(buf, &span, sizeof(Span));
    const uint64_t index = head.load(std::memory_order_relaxed);
    std::atomic<uint64_t>* slot = &words[(index % kRingSpans) * kSlotWords];
    for (size_t w = 0; w < kSlotWords; ++w) {
      slot[w].store(buf[w], std::memory_order_relaxed);
    }
    head.store(index + 1, std::memory_order_release);
  }
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<SpanRing>> rings;  // live for the process
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

SpanRing& ThreadRing() {
  thread_local SpanRing* ring = [] {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.rings.push_back(std::make_unique<SpanRing>());
    registry.rings.back()->tid =
        static_cast<uint32_t>(registry.rings.size());
    return registry.rings.back().get();
  }();
  return *ring;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("WFIT_TRACE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t NextId() {
  static std::atomic<uint64_t> counter{0};
  static const uint64_t seed = SplitMix64(NowNs());
  uint64_t id =
      SplitMix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

thread_local TraceContext tls_ctx;

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

bool TracingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

uint64_t NewTraceId() { return NextId(); }
uint64_t NewSpanId() { return NextId(); }

TraceContext CurrentTraceContext() { return tls_ctx; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : prev_(tls_ctx) {
  tls_ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tls_ctx = prev_; }

SpanGuard::SpanGuard(const char* name) {
  if (!TracingEnabled()) return;
  enabled_ = true;
  prev_ = tls_ctx;
  span_id_ = NewSpanId();
  ctx_.trace_id = prev_.trace_id != 0 ? prev_.trace_id : NewTraceId();
  ctx_.parent_span = span_id_;
  tls_ctx = ctx_;
  CopyTruncated(name_, sizeof(name_), name);
  start_ns_ = NowNs();
}

void SpanGuard::SetDetail(std::string_view detail) {
  if (enabled_) CopyTruncated(detail_, sizeof(detail_), detail);
}

SpanGuard::~SpanGuard() {
  if (!enabled_) return;
  tls_ctx = prev_;
  Span span{};
  span.trace_id = ctx_.trace_id;
  span.span_id = span_id_;
  span.parent_span = prev_.parent_span;
  span.start_ns = start_ns_;
  span.dur_ns = NowNs() - start_ns_;
  SpanRing& ring = ThreadRing();
  span.tid = ring.tid;
  std::memcpy(span.name, name_, sizeof(name_));
  std::memcpy(span.detail, detail_, sizeof(detail_));
  ring.Push(span);
}

void RecordInstant(const char* name, std::string_view detail) {
  if (!TracingEnabled()) return;
  Span span{};
  span.trace_id = tls_ctx.trace_id;
  span.span_id = NewSpanId();
  span.parent_span = tls_ctx.parent_span;
  span.start_ns = NowNs();
  span.dur_ns = 0;
  SpanRing& ring = ThreadRing();
  span.tid = ring.tid;
  CopyTruncated(span.name, sizeof(span.name), name);
  CopyTruncated(span.detail, sizeof(span.detail), detail);
  ring.Push(span);
}

std::vector<Span> CollectSpans() {
  std::vector<SpanRing*> rings;
  {
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    rings.reserve(registry.rings.size());
    for (auto& ring : registry.rings) rings.push_back(ring.get());
  }
  std::vector<Span> out;
  for (SpanRing* ring : rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    uint64_t begin = head > kRingSpans ? head - kRingSpans : 0;
    if (begin < floor) begin = floor;
    for (uint64_t index = begin; index < head; ++index) {
      uint64_t buf[kSlotWords];
      const std::atomic<uint64_t>* slot =
          &ring->words[(index % kRingSpans) * kSlotWords];
      for (size_t w = 0; w < kSlotWords; ++w) {
        buf[w] = slot[w].load(std::memory_order_relaxed);
      }
      // Lap check: if the writer reached index + capacity it may have
      // been rewriting this slot during the copy — discard it.
      if (ring->head.load(std::memory_order_acquire) >= index + kRingSpans) {
        continue;
      }
      Span span;
      std::memcpy(&span, buf, sizeof(Span));
      if (span.name[0] == '\0') continue;
      span.name[sizeof(span.name) - 1] = '\0';
      span.detail[sizeof(span.detail) - 1] = '\0';
      out.push_back(span);
    }
  }
  return out;
}

TraceCounters CollectTraceCounters() {
  TraceCounters counters;
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    const uint64_t recorded = head > floor ? head - floor : 0;
    counters.recorded += recorded;
    if (recorded > kRingSpans) counters.dropped += recorded - kRingSpans;
  }
  return counters;
}

void ClearTraceForTest() {
  RingRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& ring : registry.rings) {
    ring->floor.store(ring->head.load(std::memory_order_acquire),
                      std::memory_order_relaxed);
  }
}

#endif  // WFIT_DISABLE_TRACING

}  // namespace wfit::obs
