// Low-overhead distributed tracing for the tuning fleet.
//
// Spans are recorded into PER-THREAD single-writer ring buffers: the
// owning thread publishes a slot with plain-word atomic stores and a
// release store of the ring head, so recording never takes a lock and
// never blocks another thread. Collection (kDumpTrace, SIGUSR2) reads the
// rings concurrently with acquire/relaxed loads and discards any slot the
// writer lapped mid-copy — torn reads are detected, not prevented, which
// keeps the hot path wait-free and the whole scheme clean under TSan.
// A full ring drops the OLDEST spans (head keeps advancing over the ring)
// and the loss is observable: dropped() = max(0, recorded - capacity).
//
// Trace CONTEXT (trace id + parent span id) is thread-local; the RPC
// layer installs the caller's context around each handler, WorkerPool
// forwards the submitter's context into pool tasks, and SpanGuard nests
// by swapping itself in as the parent for its scope. Ids are 64-bit and
// never zero; zero means "no trace".
//
// Cost model: with tracing compiled in but runtime-disabled (the
// default), a SpanGuard is one relaxed atomic load. Compiling with
// WFIT_DISABLE_TRACING turns every tracing entry point into an empty
// inline so the fast path is checked to cost nothing at build time.
// Stage histograms (obs/stages.h) are metrics and stay on either way.
#ifndef WFIT_OBS_TRACE_H_
#define WFIT_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stages.h"

namespace wfit::obs {

/// The propagated part of a trace: which trace this thread is working
/// for, and the span that caused the current work.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  bool active() const { return trace_id != 0; }
};

/// One completed span, exactly as stored in the ring (trivially copyable,
/// 8-byte multiple so slots copy as atomic words). Names and details are
/// truncated to their fixed buffers.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  uint64_t start_ns = 0;  // steady-clock nanoseconds (same epoch per process)
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // stable per-thread index within this process
  uint32_t reserved = 0;
  char name[24] = {};
  char detail[40] = {};
};
static_assert(sizeof(Span) % 8 == 0, "spans must copy as whole words");

struct TraceCounters {
  uint64_t recorded = 0;  // spans ever pushed
  uint64_t dropped = 0;   // spans overwritten before collection
};

/// Steady-clock nanoseconds; the timestamp domain of Span::start_ns.
uint64_t NowNs();

#ifndef WFIT_DISABLE_TRACING

/// Runtime switch, default off unless the WFIT_TRACE environment variable
/// is set to a nonempty value other than "0".
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Fresh nonzero ids (mixed so concurrent threads never collide).
uint64_t NewTraceId();
uint64_t NewSpanId();

TraceContext CurrentTraceContext();

/// Installs `ctx` on this thread for the guard's lifetime.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// RAII duration span. While alive, it is the current parent, so nested
/// guards (and RPCs issued from this scope) become its children. A guard
/// opened with no current trace starts a new one.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a short free-form annotation (truncated to the slot).
  void SetDetail(std::string_view detail);

  /// The ids this guard is recording under (zero when not tracing).
  uint64_t trace_id() const { return ctx_.trace_id; }
  uint64_t span_id() const { return span_id_; }

 private:
  bool enabled_ = false;
  TraceContext prev_;
  TraceContext ctx_;  // trace id + THIS span as parent while alive
  uint64_t span_id_ = 0;
  uint64_t start_ns_ = 0;
  char name_[24] = {};
  char detail_[40] = {};
};

/// Records a zero-duration event under the current context.
void RecordInstant(const char* name, std::string_view detail = {});

/// Snapshot of every thread's ring, oldest-first per thread. Safe to call
/// while writers are active; spans being overwritten during the copy are
/// dropped from the result.
std::vector<Span> CollectSpans();
TraceCounters CollectTraceCounters();

/// Drops all collected state (tests and bench isolation only).
void ClearTraceForTest();

#else  // WFIT_DISABLE_TRACING: everything compiles to nothing.

inline constexpr bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}
inline constexpr uint64_t NewTraceId() { return 0; }
inline constexpr uint64_t NewSpanId() { return 0; }
inline TraceContext CurrentTraceContext() { return {}; }

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext) {}
};

class SpanGuard {
 public:
  explicit SpanGuard(const char*) {}
  void SetDetail(std::string_view) {}
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
};

inline void RecordInstant(const char*, std::string_view = {}) {}
inline std::vector<Span> CollectSpans() { return {}; }
inline TraceCounters CollectTraceCounters() { return {}; }
inline void ClearTraceForTest() {}

#endif  // WFIT_DISABLE_TRACING

/// Everything a worker task inherits from its submitter: the trace
/// context (so fan-out spans parent under the submitting statement) and
/// the stage sink (so pool-thread probe/build time lands in the right
/// histograms). WorkerPool captures this at Submit and installs it around
/// the task.
struct ThreadState {
  TraceContext ctx;
  StageSink* stages = nullptr;
  bool empty() const { return !ctx.active() && stages == nullptr; }
};

inline ThreadState CaptureThreadState() {
  return {CurrentTraceContext(), CurrentStageSink()};
}

class ScopedThreadState {
 public:
  explicit ScopedThreadState(const ThreadState& state)
      : ctx_(state.ctx), stages_(state.stages) {}

 private:
  ScopedTraceContext ctx_;
  ScopedStageSink stages_;
};

}  // namespace wfit::obs

#endif  // WFIT_OBS_TRACE_H_
