#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/log.h"

namespace wfit::obs {

std::string FormatSpanLine(const Span& span) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "%016" PRIx64 " %016" PRIx64 " %016" PRIx64
                        " %" PRIu64 " %" PRIu64 " %u %s %s\n",
                        span.trace_id, span.span_id, span.parent_span,
                        span.start_ns, span.dur_ns, span.tid, span.name,
                        span.detail);
  if (n < 0) return {};
  return std::string(buf, static_cast<size_t>(n) < sizeof(buf)
                              ? static_cast<size_t>(n)
                              : sizeof(buf) - 1);
}

bool ParseSpanLine(const std::string& line, Span* out) {
  Span span{};
  char name[64] = {};
  // The detail is everything after the name (may contain spaces).
  int consumed = -1;
  unsigned tid = 0;
  int fields = std::sscanf(line.c_str(),
                           "%16" SCNx64 " %16" SCNx64 " %16" SCNx64
                           " %" SCNu64 " %" SCNu64 " %u %63s %n",
                           &span.trace_id, &span.span_id, &span.parent_span,
                           &span.start_ns, &span.dur_ns, &tid, name,
                           &consumed);
  if (fields < 7 || name[0] == '\0') return false;
  span.tid = tid;
  std::snprintf(span.name, sizeof(span.name), "%s", name);
  if (consumed >= 0 && static_cast<size_t>(consumed) < line.size()) {
    std::string detail = line.substr(static_cast<size_t>(consumed));
    while (!detail.empty() &&
           (detail.back() == '\n' || detail.back() == '\r')) {
      detail.pop_back();
    }
    std::snprintf(span.detail, sizeof(span.detail), "%s", detail.c_str());
  }
  *out = span;
  return true;
}

std::string FormatSpanLines(const std::vector<Span>& spans) {
  std::string out;
  out.reserve(spans.size() * 96);
  for (const Span& span : spans) out += FormatSpanLine(span);
  return out;
}

std::vector<Span> ParseSpanLines(const std::string& text) {
  std::vector<Span> spans;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Span span;
    if (ParseSpanLine(line, &span)) spans.push_back(span);
  }
  return spans;
}

namespace {

void AppendMetadataEvent(int pid, const std::string& process_name,
                         bool* first, std::string* out) {
  if (!*first) out->append(",\n");
  *first = false;
  char head[96];
  std::snprintf(head, sizeof(head),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"",
                pid);
  out->append(head);
  AppendJsonEscaped(process_name, out);
  out->append("\"}}");
}

void AppendSpanEvent(const Span& span, int pid, bool* first,
                     std::string* out) {
  if (!*first) out->append(",\n");
  *first = false;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
                "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":\"%016" PRIx64
                "\",\"span\":\"%016" PRIx64 "\",\"parent\":\"%016" PRIx64
                "\"",
                span.name, pid, span.tid,
                static_cast<double>(span.start_ns) / 1000.0,
                static_cast<double>(span.dur_ns) / 1000.0, span.trace_id,
                span.span_id, span.parent_span);
  out->append(buf);
  if (span.detail[0] != '\0') {
    out->append(",\"detail\":\"");
    AppendJsonEscaped(span.detail, out);
    out->push_back('"');
  }
  out->append("}}");
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Span>& spans,
                            const std::string& process_name) {
  return ChromeTraceJsonMulti({{process_name, spans}});
}

std::string ChromeTraceJsonMulti(
    const std::vector<std::pair<std::string, std::vector<Span>>>& processes) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  int pid = 0;
  for (const auto& [name, spans] : processes) {
    ++pid;
    AppendMetadataEvent(pid, name, &first, &out);
    for (const Span& span : spans) {
      AppendSpanEvent(span, pid, &first, &out);
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

}  // namespace wfit::obs
