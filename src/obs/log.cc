#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <mutex>

#include "obs/trace.h"

namespace wfit::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::FILE*> g_sink{nullptr};
std::mutex g_write_mu;
std::mutex g_node_mu;
std::string g_node_id;  // guarded by g_node_mu

uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendKey(const char* key, std::string* out) {
  out->push_back(',');
  out->push_back('"');
  AppendJsonEscaped(key, out);
  out->append("\":");
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogSink(std::FILE* sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

void SetLogNodeId(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(g_node_mu);
  g_node_id = node_id;
}

void AppendJsonEscaped(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

LogEvent::LogEvent(LogLevel level, const char* event)
    : enabled_(static_cast<int>(level) >=
               g_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  line_.reserve(160);
  char head[64];
  std::snprintf(head, sizeof(head), "{\"ts_ms\":%" PRIu64 ",\"level\":\"%s\"",
                UnixMillis(), LogLevelName(level));
  line_.append(head);
  {
    std::lock_guard<std::mutex> lock(g_node_mu);
    if (!g_node_id.empty()) {
      line_.append(",\"node\":\"");
      AppendJsonEscaped(g_node_id, &line_);
      line_.push_back('"');
    }
  }
  line_.append(",\"event\":\"");
  AppendJsonEscaped(event, &line_);
  line_.push_back('"');
  const TraceContext ctx = CurrentTraceContext();
  if (ctx.active()) {
    char ids[64];
    std::snprintf(ids, sizeof(ids),
                  ",\"trace\":\"%016" PRIx64 "\",\"span\":\"%016" PRIx64 "\"",
                  ctx.trace_id, ctx.parent_span);
    line_.append(ids);
  }
}

LogEvent& LogEvent::Str(const char* key, std::string_view value) {
  if (enabled_) {
    AppendKey(key, &line_);
    line_.push_back('"');
    AppendJsonEscaped(value, &line_);
    line_.push_back('"');
  }
  return *this;
}

LogEvent& LogEvent::U64(const char* key, uint64_t value) {
  if (enabled_) {
    AppendKey(key, &line_);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    line_.append(buf);
  }
  return *this;
}

LogEvent& LogEvent::I64(const char* key, int64_t value) {
  if (enabled_) {
    AppendKey(key, &line_);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    line_.append(buf);
  }
  return *this;
}

LogEvent& LogEvent::Dbl(const char* key, double value) {
  if (enabled_) {
    AppendKey(key, &line_);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    line_.append(buf);
  }
  return *this;
}

LogEvent& LogEvent::Bool(const char* key, bool value) {
  if (enabled_) {
    AppendKey(key, &line_);
    line_.append(value ? "true" : "false");
  }
  return *this;
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_.append("}\n");
  std::FILE* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = stderr;
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::fwrite(line_.data(), 1, line_.size(), sink);
  std::fflush(sink);
}

}  // namespace wfit::obs
